(* The Intersection Schema Tool (the paper's Figure 5), as a CLI.

   The GUI tool showed three panels: source schemas on the left, the
   current global schema on the right, and the mappings table (with the
   transformation queries) at the bottom; after the forwards queries, a
   second screen collected the reverse queries, pre-filling the ones the
   tool could derive automatically.

   `demo` walks the same flow on the paper's Section 2.4 example - the
   Pedro/PepSeeker proteinhit intersection - printing each panel and then
   verifying the integration by querying the new global schema.

   `interactive` reads mapping lines from stdin, so the same flow can be
   driven by hand or from a script:

     TARGET := SIDE_SCHEMA : FORWARD_QUERY
     (empty line to finish)                                               *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Ast = Automed_iql.Ast
module Parser = Automed_iql.Parser
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Matcher = Automed_matching.Matcher
module Transform = Automed_transform.Transform
module Intersection = Automed_integration.Intersection
module Workflow = Automed_integration.Workflow
module Sources = Automed_ispider.Sources

let die fmt = Format.kasprintf (fun s -> prerr_endline s; exit 1) fmt
let ok = function Ok v -> v | Error e -> die "error: %s" e

let heading title =
  Printf.printf "\n== %s %s\n" title
    (String.make (max 0 (66 - String.length title)) '=')

let show_schema repo name =
  match Repository.schema repo name with
  | None -> die "no schema %s" name
  | Some s ->
      Printf.printf "%s:\n" name;
      List.iter
        (fun o -> Printf.printf "    %s\n" (Scheme.to_string o))
        (Schema.objects s)

let show_mappings side =
  Printf.printf "  source schema %s:\n" side.Intersection.schema;
  List.iter
    (fun m ->
      Printf.printf "    %-28s <=  %s\n"
        (Scheme.to_string m.Intersection.target)
        (Ast.to_string m.Intersection.forward))
    side.Intersection.mappings

let show_reverse_queries side =
  Printf.printf "  reverse queries for %s (auto-derived where possible):\n"
    side.Intersection.schema;
  List.iter
    (fun m ->
      match
        ( m.Intersection.restore,
          match m.Intersection.forward with
          | Ast.SchemeRef src -> Some src
          | Ast.Comp (_, [ Ast.Gen (_, Ast.SchemeRef src) ]) -> Some src
          | _ -> None )
      with
      | Some (src, q), _ ->
          Printf.printf "    %-28s <=  %s   [user]\n" (Scheme.to_string src)
            (Ast.to_string q)
      | None, Some src -> (
          match
            Intersection.invert_forward ~target:m.Intersection.target ~source:src
              m.Intersection.forward
          with
          | Some q ->
              Printf.printf "    %-28s <=  %s   [auto]\n" (Scheme.to_string src)
                (Ast.to_string q)
          | None ->
              Printf.printf "    %-28s <=  Range Void Any   [not derivable]\n"
                (Scheme.to_string src))
      | None, None -> ())
    side.Intersection.mappings

(* -- demo: the paper's Section 2.4 example ------------------------------- *)

let demo () =
  let repo = Repository.create () in
  ok (Sources.wrap_all repo (Sources.generate ()));
  let wf =
    ok
      (Workflow.start repo ~name:"demo"
         ~sources:[ Sources.pedro_name; Sources.pepseeker_name; Sources.gpmdb_name ])
  in
  heading "Step 1-2: federated schema created; data services available";
  Printf.printf "initial global schema: %s\n" (Workflow.global_name wf);
  (match Workflow.run_query wf "count(<<pedro:proteinhit>>)" with
  | Ok v -> Printf.printf "count(<<pedro:proteinhit>>) = %s\n" (Value.to_string v)
  | Error e -> die "%s" (Fmt.str "%a" Processor.pp_error e));

  heading "Step 3: inspect source schemas (left panel)";
  Printf.printf "(fragments relevant to the example)\n";
  List.iter
    (fun (schema, objs) ->
      Printf.printf "%s:\n" schema;
      List.iter (fun o -> Printf.printf "    %s\n" o) objs)
    [
      ("pedro", [ "<<proteinhit>>"; "<<proteinhit,db_search>>" ]);
      ("pepseeker", [ "<<proteinhit>>"; "<<proteinhit,fileparameters>>" ]);
    ];

  heading "Step 4: mappings table (bottom panel) - forwards direction";
  let spec =
    {
      Intersection.name = "i_uproteinhit";
      sides =
        [
          {
            Intersection.schema = Sources.pedro_name;
            mappings =
              [
                {
                  Intersection.target = Scheme.column "UProteinHit" "dbsearch";
                  forward =
                    Parser.parse_exn
                      "[{'PEDRO', k, x} | {k,x} <- <<proteinhit,db_search>>]";
                  restore = None;
                };
              ];
          };
          {
            Intersection.schema = Sources.pepseeker_name;
            mappings =
              [
                {
                  Intersection.target = Scheme.column "UProteinHit" "dbsearch";
                  forward =
                    Parser.parse_exn
                      "[{'pepSeeker', k, x} | {k,x} <- \
                       <<proteinhit,fileparameters>>]";
                  restore = None;
                };
              ];
          };
        ];
    }
  in
  List.iter show_mappings spec.Intersection.sides;

  heading "Step 4b: reverse direction (second screen)";
  List.iter show_reverse_queries spec.Intersection.sides;

  heading "Step 5: generate the intersection schema and the new global schema";
  let it = ok (Workflow.integrate wf spec) in
  Printf.printf "intersection schema: %s (%d user transformations, %d automatic)\n"
    (Schema.name it.Workflow.outcome.Intersection.intersection)
    it.Workflow.outcome.Intersection.manual_steps
    it.Workflow.outcome.Intersection.auto_steps;
  Printf.printf "new global schema (right panel): %s\n" (Workflow.global_name wf);
  show_schema repo "i_uproteinhit";
  Printf.printf
    "redundant objects dropped from the global schema:\n\
    \    <<pedro:proteinhit,db_search>>\n\
    \    <<pepseeker:proteinhit,fileparameters>>\n";

  heading "Step 6: verify by querying the new global schema";
  (match Workflow.run_query wf "count(<<UProteinHit,dbsearch>>)" with
  | Ok v ->
      Printf.printf "count(<<UProteinHit,dbsearch>>) = %s (bag union of both sources)\n"
        (Value.to_string v)
  | Error e -> die "%s" (Fmt.str "%a" Processor.pp_error e));
  (match
     Workflow.run_query wf
       "[{k, x} | {s, k, x} <- <<UProteinHit,dbsearch>>; s = 'pepSeeker']"
   with
  | Ok (Value.Bag b) ->
      Printf.printf "pepSeeker-side entries: %d\n" (Value.Bag.cardinal b)
  | Ok _ | Error _ -> die "verification query failed");
  Printf.printf "\nworkflow can now continue from step 3 with another pair.\n"

(* -- interactive --------------------------------------------------------- *)

let find_sub ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i =
    if i + lsub > ls then None
    else if String.sub s i lsub = sub then Some i
    else go (i + 1)
  in
  go 0

let parse_mapping_line line =
  (* TARGET := SIDE : FORWARD *)
  match find_sub ~sub:":=" line with
  | None -> Error (Printf.sprintf "expected TARGET := SIDE : QUERY in %S" line)
  | Some i -> (
      let target = String.trim (String.sub line 0 i) in
      let rest = String.sub line (i + 2) (String.length line - i - 2) in
      match String.index_opt rest ':' with
      | None -> Error "missing ':' between side schema and query"
      | Some j ->
          let side = String.trim (String.sub rest 0 j) in
          let qtext = String.sub rest (j + 1) (String.length rest - j - 1) in
          let ( let* ) = Result.bind in
          let* target = Scheme.of_string target in
          let* forward = Parser.parse qtext in
          Ok (target, side, forward))

let interactive () =
  let module Mapping_table = Automed_integration.Mapping_table in
  let repo = Repository.create () in
  ok (Sources.wrap_all repo (Sources.generate ()));
  let session =
    ok
      (Mapping_table.start repo ~name:"i_interactive"
         ~sources:[ "pedro"; "gpmdb"; "pepseeker" ])
  in
  Printf.printf
    "sources: pedro, gpmdb, pepseeker\n\
     enter mappings as  <<Target>> := side : [ ... | ... ]  (blank line ends):\n";
  (try
     while true do
       print_string "> ";
       let line = String.trim (read_line ()) in
       if line = "" then raise Exit
       else
         match parse_mapping_line line with
         | Error e -> Printf.printf "error: %s\n" e
         | Ok (target, side, forward) -> (
             (* every entry is validated (and type-checked) on the spot *)
             match
               Mapping_table.add session ~target ~source:side
                 ~forward:(Ast.to_string forward)
             with
             | Ok e ->
                 Printf.printf "  added #%d%s" e.Mapping_table.entry_id
                   (if e.Mapping_table.typed then "" else " (untyped)");
                 (match e.Mapping_table.reverse with
                 | Some r ->
                     Printf.printf "; auto reverse: %s\n" (Ast.to_string r)
                 | None -> print_newline ())
             | Error e -> Printf.printf "error: %s\n" e)
     done
   with Exit | End_of_file -> ());
  let spec = ok (Mapping_table.finish session) in
  let o = ok (Intersection.create repo spec) in
  Printf.printf "created %s with %d objects (%d manual, %d auto steps)\n"
    (Schema.name o.Intersection.intersection)
    (Schema.object_count o.Intersection.intersection)
    o.Intersection.manual_steps o.Intersection.auto_steps;
  show_schema repo "i_interactive"

let () =
  match Sys.argv with
  | [| _; "demo" |] | [| _ |] -> demo ()
  | [| _; "interactive" |] -> interactive ()
  | _ ->
      prerr_endline "usage: intersection_tool [demo|interactive]";
      exit 2
