(* automed-cli: a command-line front end to the dataspace.

   By default the commands operate on the built-in iSpider dataspace
   (synthetic Pedro, gpmDB and PepSeeker sources); [--integrated] runs
   the intersection-based integration first so that the global schema
   versions exist.  With [--csv DIR] (repeatable, [NAME=DIR]) additional
   relational sources are loaded from directories of CSV files (one file
   per table, first header field is the key) and wrapped into the
   repository. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Ast = Automed_iql.Ast
module Types = Automed_iql.Types
module Parser = Automed_iql.Parser
module Relational = Automed_datasource.Relational
module Csv = Automed_datasource.Csv
module Wrapper = Automed_datasource.Wrapper
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Matcher = Automed_matching.Matcher
module Workflow = Automed_integration.Workflow
module Analysis = Automed_analysis.Analysis
module Diagnostic = Automed_analysis.Diagnostic
module Sources = Automed_ispider.Sources
module Queries = Automed_ispider.Queries
module Intersection_run = Automed_ispider.Intersection_run
module Classical_run = Automed_ispider.Classical_run

open Cmdliner

let fail fmt = Format.kasprintf (fun s -> `Error (false, s)) fmt

(* -- repository construction -------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_csv_source repo spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "--csv expects NAME=DIR, got %S" spec)
  | Some i ->
      let name = String.sub spec 0 i in
      let dir = String.sub spec (i + 1) (String.length spec - i - 1) in
      if not (Sys.is_directory dir) then
        Error (Printf.sprintf "not a directory: %s" dir)
      else
        let files =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".csv")
          |> List.sort String.compare
        in
        let ( let* ) = Result.bind in
        let* db =
          List.fold_left
            (fun acc file ->
              let* db = acc in
              let tname = Filename.remove_extension file in
              let* table =
                Csv.load_table_auto ~name:tname
                  (read_file (Filename.concat dir file))
              in
              Relational.add_table db table)
            (Ok (Relational.create_db name))
            files
        in
        let* _ = Wrapper.wrap repo db in
        Ok ()

let build_repo ~integrated ~csv_specs =
  let repo = Repository.create () in
  let ( let* ) = Result.bind in
  let* () = Sources.wrap_all repo (Sources.generate ()) in
  let* () =
    List.fold_left
      (fun acc spec ->
        let* () = acc in
        load_csv_source repo spec)
      (Ok ()) csv_specs
  in
  if integrated then
    let* _run = Intersection_run.execute repo in
    Ok repo
  else Ok repo

(* -- common options ------------------------------------------------------ *)

let integrated =
  Arg.(
    value & flag
    & info [ "integrated" ] ~doc:"Run the intersection-based integration first.")

let csv_specs =
  Arg.(
    value & opt_all string []
    & info [ "csv" ] ~docv:"NAME=DIR"
        ~doc:"Load an additional relational source from a directory of CSV files.")

let with_repo integrated csv_specs f =
  match build_repo ~integrated ~csv_specs with
  | Error e -> `Error (false, e)
  | Ok repo -> f repo

(* -- commands ------------------------------------------------------------ *)

let schemas_cmd =
  let run integrated csv_specs =
    with_repo integrated csv_specs (fun repo ->
        List.iter
          (fun s ->
            Printf.printf "%-28s %4d objects%s\n" (Schema.name s)
              (Schema.object_count s)
              (if Repository.has_stored_extents repo (Schema.name s) then
                 "  [materialised]"
               else ""))
          (Repository.schemas repo);
        `Ok ())
  in
  Cmd.v (Cmd.info "schemas" ~doc:"List all schemas in the repository.")
    Term.(ret (const run $ integrated $ csv_specs))

let schema_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SCHEMA" ~doc:"Schema name.")

let show_cmd =
  let run integrated csv_specs name =
    with_repo integrated csv_specs (fun repo ->
        match Repository.schema repo name with
        | None -> fail "no schema %s" name
        | Some s ->
            Printf.printf "%s\n" (Fmt.str "%a" Schema.pp s);
            `Ok ())
  in
  Cmd.v (Cmd.info "show" ~doc:"Show a schema's objects and extent types.")
    Term.(ret (const run $ integrated $ csv_specs $ schema_arg))

let query_cmd =
  let iql =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"IQL" ~doc:"IQL query text.")
  in
  let run integrated csv_specs name text =
    with_repo integrated csv_specs (fun repo ->
        let proc = Processor.create repo in
        match Processor.run_string proc ~schema:name text with
        | Ok (Value.Bag b) ->
            List.iter
              (fun (v, n) ->
                if n = 1 then Printf.printf "%s\n" (Value.to_string v)
                else Printf.printf "%s  (x%d)\n" (Value.to_string v) n)
              b;
            Printf.printf "-- %d answers\n" (Value.Bag.cardinal b);
            `Ok ()
        | Ok v ->
            Printf.printf "%s\n" (Value.to_string v);
            `Ok ()
        | Error e -> fail "%s" (Fmt.str "%a" Processor.pp_error e))
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run an IQL query against a schema.")
    Term.(ret (const run $ integrated $ csv_specs $ schema_arg $ iql))

let reformulate_cmd =
  let iql =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"IQL" ~doc:"IQL query text.")
  in
  let run integrated csv_specs name text =
    with_repo integrated csv_specs (fun repo ->
        let proc = Processor.create repo in
        match Parser.parse text with
        | Error e -> fail "%s" e
        | Ok ast -> (
            match Processor.reformulate proc ~schema:name ast with
            | Ok unfolded ->
                Printf.printf "%s\n" (Ast.to_string unfolded);
                `Ok ()
            | Error e -> fail "%s" (Fmt.str "%a" Processor.pp_error e)))
  in
  Cmd.v
    (Cmd.info "reformulate"
       ~doc:"Unfold a query over a schema onto the data source schemas.")
    Term.(ret (const run $ integrated $ csv_specs $ schema_arg $ iql))

let match_cmd =
  let left =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"LEFT" ~doc:"Left schema.")
  in
  let right =
    Arg.(
      required & pos 1 (some string) None & info [] ~docv:"RIGHT" ~doc:"Right schema.")
  in
  let threshold =
    Arg.(
      value & opt float 0.35
      & info [ "threshold" ] ~doc:"Minimum combined score to report.")
  in
  let run integrated csv_specs left right threshold =
    with_repo integrated csv_specs (fun repo ->
        match Matcher.suggest ~threshold repo ~left ~right with
        | Error e -> fail "%s" e
        | Ok suggestions ->
            List.iter
              (fun s -> Printf.printf "%s\n" (Fmt.str "%a" Matcher.pp_suggestion s))
              suggestions;
            Printf.printf "-- %d suggestions\n" (List.length suggestions);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "match"
       ~doc:"Suggest semantic correspondences between two schemas.")
    Term.(ret (const run $ integrated $ csv_specs $ left $ right $ threshold))

let pathways_cmd =
  let run integrated csv_specs =
    with_repo integrated csv_specs (fun repo ->
        List.iter
          (fun (p : Automed_transform.Transform.pathway) ->
            Printf.printf "%-28s -> %-28s %3d steps (%d non-trivial)\n"
              p.Automed_transform.Transform.from_schema
              p.Automed_transform.Transform.to_schema
              (List.length p.Automed_transform.Transform.steps)
              (Automed_transform.Transform.count_non_trivial p))
          (Repository.pathways repo);
        `Ok ())
  in
  Cmd.v
    (Cmd.info "pathways" ~doc:"List all pathways in the repository.")
    Term.(ret (const run $ integrated $ csv_specs))

let export_cmd =
  let with_extents =
    Arg.(
      value & flag
      & info [ "extents" ] ~doc:"Also serialise the materialised extents.")
  in
  let run integrated csv_specs with_extents =
    with_repo integrated csv_specs (fun repo ->
        print_string
          (Automed_repository.Serialize.save ~extents:with_extents repo);
        `Ok ())
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Serialise the repository (schemas, pathways, optionally extents) \
          to stdout.")
    Term.(ret (const run $ integrated $ csv_specs $ with_extents))

let extent_cmd =
  (* the paper's Extent Tool: "allows the extent of any schema object to
     be displayed" (Section 2.3, step 4) *)
  let obj =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OBJECT" ~doc:"Schema object, e.g. <<protein>>.")
  in
  let run integrated csv_specs name obj_text =
    with_repo integrated csv_specs (fun repo ->
        match Scheme.of_string obj_text with
        | Error e -> fail "%s" e
        | Ok scheme -> (
            let proc = Processor.create repo in
            match Processor.extent_of proc ~schema:name scheme with
            | Error e -> fail "%s" (Fmt.str "%a" Processor.pp_error e)
            | Ok bag ->
                List.iter
                  (fun (v, n) ->
                    if n = 1 then Printf.printf "%s\n" (Value.to_string v)
                    else Printf.printf "%s  (x%d)\n" (Value.to_string v) n)
                  bag;
                Printf.printf "-- %d elements (%d distinct)\n"
                  (Value.Bag.cardinal bag)
                  (Value.Bag.distinct_cardinal bag);
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "extent"
       ~doc:"Display the derived extent of a schema object (the Extent Tool).")
    Term.(ret (const run $ integrated $ csv_specs $ schema_arg $ obj))

let materialize_cmd =
  let run integrated csv_specs name =
    with_repo integrated csv_specs (fun repo ->
        let proc = Processor.create repo in
        match Automed_datasource.Materialize.db_of_schema proc ~schema:name with
        | Error e -> fail "%s" e
        | Ok db ->
            List.iter
              (fun t ->
                Printf.printf "-- table %s\n" (Relational.table_name t);
                let header = List.map fst (Relational.columns t) in
                let rows =
                  List.map
                    (List.map (function
                      | None -> ""
                      | Some (Value.Str s) -> s
                      | Some v -> Value.to_string v))
                    (Relational.rows t)
                in
                print_string (Csv.render (header :: rows)))
              (Relational.tables db);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "materialize"
       ~doc:
         "Derive every relational table of a schema and print it as CSV \
          (integration as ETL).")
    Term.(ret (const run $ integrated $ csv_specs $ schema_arg))

let lint_cmd =
  let root =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~docv:"SCHEMA"
          ~doc:
            "Schema that reachability is measured from.  Defaults to the \
             target of the most recently registered pathway (the current \
             global schema version in workflow-built repositories).")
  in
  let format_ =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("tsv", `Tsv) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,text) (human-readable) or $(b,tsv) \
                (machine-readable, one diagnostic per line).")
  in
  let errors_only =
    Arg.(
      value & flag
      & info [ "errors-only" ] ~doc:"Report only error-severity diagnostics.")
  in
  let run integrated csv_specs root format_ errors_only =
    with_repo integrated csv_specs (fun repo ->
        let diags = Analysis.lint_repository ?root repo in
        let diags = if errors_only then Diagnostic.errors diags else diags in
        (match format_ with
        | `Text ->
            List.iter
              (fun d -> print_endline (Fmt.str "%a" Diagnostic.pp d))
              diags;
            Printf.printf "-- %d pathways checked: %s\n"
              (List.length (Repository.pathways repo))
              (Fmt.str "%a" Diagnostic.pp_summary (Diagnostic.count diags))
        | `Tsv ->
            List.iter (fun d -> print_endline (Diagnostic.to_tsv d)) diags);
        if Diagnostic.has_errors diags then exit 1;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse every pathway and the repository network \
          without executing anything: well-formedness of each step, IQL \
          type checking of embedded queries, pathway-algebra hazards and \
          network reachability.  Exits 1 when errors are found.")
    Term.(ret (const run $ integrated $ csv_specs $ root $ format_ $ errors_only))

let case_study_cmd =
  let run () =
    let repo = Repository.create () in
    let ds = Sources.generate () in
    (match Sources.wrap_all repo ds with
    | Ok () -> ()
    | Error e -> prerr_endline e; exit 1);
    match Intersection_run.execute repo with
    | Error e -> `Error (false, e)
    | Ok run ->
        Printf.printf "intersection methodology: %d manual transformations\n"
          run.Intersection_run.total_manual;
        List.iter
          (fun (s : Intersection_run.step) ->
            Printf.printf "  %-48s %3d\n" s.Intersection_run.label
              s.Intersection_run.manual)
          run.Intersection_run.steps;
        let repo2 = Repository.create () in
        (match Sources.wrap_all repo2 ds with
        | Ok () -> ()
        | Error e -> prerr_endline e; exit 1);
        (match Classical_run.execute repo2 with
        | Error e -> prerr_endline e
        | Ok c ->
            Printf.printf
              "classical methodology: %d manual transformations (19+35+41)\n"
              c.Classical_run.total_manual);
        Printf.printf "\nqueries over %s:\n"
          (Workflow.global_name run.Intersection_run.workflow);
        List.iter
          (fun (q : Queries.query) ->
            match
              Workflow.run_query run.Intersection_run.workflow
                q.Queries.global_text
            with
            | Ok (Value.Bag b) ->
                Printf.printf "  Q%d: %d answers\n" q.Queries.number
                  (Value.Bag.cardinal b)
            | Ok _ | Error _ -> Printf.printf "  Q%d: failed\n" q.Queries.number)
          Queries.all;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "case-study"
       ~doc:"Replay the paper's Section 3 case study end to end.")
    Term.(ret (const run $ const ()))

let main =
  let doc = "AutoMed-style dataspace integration with intersection schemas" in
  let info = Cmd.info "automed-cli" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ schemas_cmd; show_cmd; query_cmd; reformulate_cmd; match_cmd;
      pathways_cmd; lint_cmd; export_cmd; extent_cmd; materialize_cmd;
      case_study_cmd ]

let () = exit (Cmd.eval main)
