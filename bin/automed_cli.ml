(* automed-cli: a command-line front end to the dataspace.

   By default the commands operate on the built-in iSpider dataspace
   (synthetic Pedro, gpmDB and PepSeeker sources); [--integrated] runs
   the intersection-based integration first so that the global schema
   versions exist.  With [--csv DIR] (repeatable, [NAME=DIR]) additional
   relational sources are loaded from directories of CSV files (one file
   per table, first header field is the key) and wrapped into the
   repository. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Ast = Automed_iql.Ast
module Types = Automed_iql.Types
module Parser = Automed_iql.Parser
module Relational = Automed_datasource.Relational
module Csv = Automed_datasource.Csv
module Wrapper = Automed_datasource.Wrapper
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Matcher = Automed_matching.Matcher
module Workflow = Automed_integration.Workflow
module Analysis = Automed_analysis.Analysis
module Diagnostic = Automed_analysis.Diagnostic
module Rewrite = Automed_analysis.Rewrite
module Reachability = Automed_analysis.Reachability
module Transform = Automed_transform.Transform
module Sources = Automed_ispider.Sources
module Queries = Automed_ispider.Queries
module Intersection_run = Automed_ispider.Intersection_run
module Classical_run = Automed_ispider.Classical_run
module Telemetry = Automed_telemetry.Telemetry
module Chrome_trace = Automed_telemetry.Chrome_trace
module Intersection = Automed_integration.Intersection
module Resilience = Automed_resilience.Resilience
module Durable = Automed_durable.Durable
module Evolution = Automed_evolution.Evolution
module Journal = Automed_durable.Journal
module Vfs = Automed_durable.Vfs

open Cmdliner

let fail fmt = Format.kasprintf (fun s -> `Error (false, s)) fmt

(* -- repository construction -------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_csv_source ?resilience repo spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "--csv expects NAME=DIR, got %S" spec)
  | Some i ->
      let name = String.sub spec 0 i in
      let dir = String.sub spec (i + 1) (String.length spec - i - 1) in
      if not (Sys.is_directory dir) then
        Error (Printf.sprintf "not a directory: %s" dir)
      else
        let files =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".csv")
          |> List.sort String.compare
        in
        let ( let* ) = Result.bind in
        let* db =
          List.fold_left
            (fun acc file ->
              let* db = acc in
              let tname = Filename.remove_extension file in
              let* table =
                Csv.load_table_auto ~name:tname
                  (read_file (Filename.concat dir file))
              in
              Relational.add_table db table)
            (Ok (Relational.create_db name))
            files
        in
        let* _ = Wrapper.wrap ?resilience repo db in
        Ok ()

let build_repo ~integrated ~csv_specs ~resilience =
  let repo = Repository.create () in
  let ( let* ) = Result.bind in
  let* () = Sources.wrap_all ?resilience repo (Sources.generate ()) in
  let* () =
    List.fold_left
      (fun acc spec ->
        let* () = acc in
        load_csv_source ?resilience repo spec)
      (Ok ()) csv_specs
  in
  if integrated then
    let* _run = Intersection_run.execute ?resilience repo in
    Ok repo
  else Ok repo

(* -- common options ------------------------------------------------------ *)

let integrated =
  Arg.(
    value & flag
    & info [ "integrated" ] ~doc:"Run the intersection-based integration first.")

let csv_specs =
  Arg.(
    value & opt_all string []
    & info [ "csv" ] ~docv:"NAME=DIR"
        ~doc:"Load an additional relational source from a directory of CSV files.")

let no_resilience =
  Arg.(
    value & flag
    & info [ "no-resilience" ]
        ~doc:
          "Build the repository without the fault-handling layer: source \
           fetches are not retried and $(b,lint) warns about every \
           unprotected source.")

let no_simplify =
  Arg.(
    value & flag
    & info [ "no-simplify" ]
        ~doc:
          "Disable certified pathway simplification and source-reachability \
           pruning in the query processor: every stored pathway is replayed \
           verbatim.  Answers are identical either way; this is the escape \
           hatch (and the baseline for benchmarks).")

let fault_seed =
  Arg.(
    value & opt int64 0x5EEDL
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the deterministic fault injector and backoff jitter; the \
           same seed always produces the same failures.")

(* [f] receives the repository and, unless --no-resilience, the registry
   every wrapped source was registered in *)
let with_repo ?(fault_seed = 0x5EEDL) integrated csv_specs no_resilience f =
  let resilience =
    if no_resilience then None else Some (Resilience.create ~seed:fault_seed ())
  in
  match build_repo ~integrated ~csv_specs ~resilience with
  | Error e -> `Error (false, e)
  | Ok repo -> f repo resilience

(* -- commands ------------------------------------------------------------ *)

let schemas_cmd =
  let run integrated csv_specs no_resilience =
    with_repo integrated csv_specs no_resilience (fun repo _res ->
        List.iter
          (fun s ->
            Printf.printf "%-28s %4d objects%s\n" (Schema.name s)
              (Schema.object_count s)
              (if Repository.has_stored_extents repo (Schema.name s) then
                 "  [materialised]"
               else ""))
          (Repository.schemas repo);
        `Ok ())
  in
  Cmd.v (Cmd.info "schemas" ~doc:"List all schemas in the repository.")
    Term.(ret (const run $ integrated $ csv_specs $ no_resilience))

let schema_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SCHEMA" ~doc:"Schema name.")

let show_cmd =
  let run integrated csv_specs no_resilience name =
    with_repo integrated csv_specs no_resilience (fun repo _res ->
        match Repository.schema repo name with
        | None -> fail "no schema %s" name
        | Some s ->
            Printf.printf "%s\n" (Fmt.str "%a" Schema.pp s);
            `Ok ())
  in
  Cmd.v (Cmd.info "show" ~doc:"Show a schema's objects and extent types.")
    Term.(ret (const run $ integrated $ csv_specs $ no_resilience $ schema_arg))

(* NAME=RATE fault profile specs, e.g. --fault pedro=0.2 *)
let parse_fault_spec spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "--fault expects NAME=RATE, got %S" spec)
  | Some i -> (
      let name = String.sub spec 0 i in
      let rate = String.sub spec (i + 1) (String.length spec - i - 1) in
      match float_of_string_opt rate with
      | Some r when r >= 0.0 && r <= 1.0 -> Ok (name, r)
      | _ -> Error (Printf.sprintf "--fault rate must be in [0,1], got %S" rate))

let apply_faults resilience specs =
  List.fold_left
    (fun acc spec ->
      Result.bind acc (fun () ->
          Result.map
            (fun (name, r) ->
              Resilience.inject resilience ~source:name (Resilience.Fault.rate r))
            (parse_fault_spec spec)))
    (Ok ()) specs

let print_bag b =
  List.iter
    (fun (v, n) ->
      if n = 1 then Printf.printf "%s\n" (Value.to_string v)
      else Printf.printf "%s  (x%d)\n" (Value.to_string v) n)
    b;
  Printf.printf "-- %d answers\n" (Value.Bag.cardinal b)

let query_cmd =
  let iql =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"IQL" ~doc:"IQL query text.")
  in
  let degrade =
    Arg.(
      value & flag
      & info [ "degrade" ]
          ~doc:
            "Degrade gracefully: a source that exhausts its resilience \
             policy is skipped (contributing its certain-answer lower \
             bound, i.e. nothing) and reported in a completeness footer \
             instead of failing the query.")
  in
  let faults =
    Arg.(
      value & opt_all string []
      & info [ "fault" ] ~docv:"NAME=RATE"
          ~doc:
            "Inject deterministic faults: every extent fetch from source \
             $(i,NAME) fails with probability $(i,RATE) (repeatable; see \
             $(b,--fault-seed)).")
  in
  let run integrated csv_specs no_resilience no_simplify fault_seed name text
      faults degrade =
    with_repo ~fault_seed integrated csv_specs no_resilience (fun repo res ->
        let ( let* ) = Result.bind in
        match
          let* () =
            match (res, faults) with
            | _, [] -> Ok ()
            | Some r, _ -> apply_faults r faults
            | None, _ :: _ -> Error "--fault requires the resilience layer"
          in
          Ok (Processor.create ?resilience:res ~simplify:(not no_simplify) repo)
        with
        | Error e -> fail "%s" e
        | Ok proc when degrade -> (
            match Parser.parse text with
            | Error e -> fail "%s" e
            | Ok ast -> (
                match Processor.run_degraded proc ~schema:name ast with
                | Ok (Value.Bag b, c) ->
                    print_bag b;
                    Printf.printf "-- completeness: %s\n"
                      (Fmt.str "%a" Processor.pp_completeness c);
                    `Ok ()
                | Ok (v, c) ->
                    Printf.printf "%s\n" (Value.to_string v);
                    Printf.printf "-- completeness: %s\n"
                      (Fmt.str "%a" Processor.pp_completeness c);
                    `Ok ()
                | Error e -> fail "%s" (Fmt.str "%a" Processor.pp_error e)))
        | Ok proc -> (
            match Processor.run_string proc ~schema:name text with
            | Ok (Value.Bag b) ->
                print_bag b;
                `Ok ()
            | Ok v ->
                Printf.printf "%s\n" (Value.to_string v);
                `Ok ()
            | Error e -> fail "%s" (Fmt.str "%a" Processor.pp_error e)))
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run an IQL query against a schema.")
    Term.(
      ret
        (const run $ integrated $ csv_specs $ no_resilience $ no_simplify
       $ fault_seed $ schema_arg $ iql $ faults $ degrade))

let reformulate_cmd =
  let iql =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"IQL" ~doc:"IQL query text.")
  in
  let run integrated csv_specs no_resilience no_simplify name text =
    with_repo integrated csv_specs no_resilience (fun repo res ->
        let proc =
          Processor.create ?resilience:res ~simplify:(not no_simplify) repo
        in
        match Parser.parse text with
        | Error e -> fail "%s" e
        | Ok ast -> (
            match Processor.reformulate proc ~schema:name ast with
            | Ok unfolded ->
                Printf.printf "%s\n" (Ast.to_string unfolded);
                `Ok ()
            | Error e -> fail "%s" (Fmt.str "%a" Processor.pp_error e)))
  in
  Cmd.v
    (Cmd.info "reformulate"
       ~doc:"Unfold a query over a schema onto the data source schemas.")
    Term.(
      ret
        (const run $ integrated $ csv_specs $ no_resilience $ no_simplify
       $ schema_arg $ iql))

let match_cmd =
  let left =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"LEFT" ~doc:"Left schema.")
  in
  let right =
    Arg.(
      required & pos 1 (some string) None & info [] ~docv:"RIGHT" ~doc:"Right schema.")
  in
  let threshold =
    Arg.(
      value & opt float 0.35
      & info [ "threshold" ] ~doc:"Minimum combined score to report.")
  in
  let run integrated csv_specs no_resilience left right threshold =
    with_repo integrated csv_specs no_resilience (fun repo _res ->
        match Matcher.suggest ~threshold repo ~left ~right with
        | Error e -> fail "%s" e
        | Ok suggestions ->
            List.iter
              (fun s -> Printf.printf "%s\n" (Fmt.str "%a" Matcher.pp_suggestion s))
              suggestions;
            Printf.printf "-- %d suggestions\n" (List.length suggestions);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "match"
       ~doc:"Suggest semantic correspondences between two schemas.")
    Term.(
      ret
        (const run $ integrated $ csv_specs $ no_resilience $ left $ right
       $ threshold))

let pathways_cmd =
  let run integrated csv_specs no_resilience =
    with_repo integrated csv_specs no_resilience (fun repo _res ->
        List.iter
          (fun (p : Automed_transform.Transform.pathway) ->
            Printf.printf "%-28s -> %-28s %3d steps (%d non-trivial)\n"
              p.Automed_transform.Transform.from_schema
              p.Automed_transform.Transform.to_schema
              (List.length p.Automed_transform.Transform.steps)
              (Automed_transform.Transform.count_non_trivial p))
          (Repository.pathways repo);
        `Ok ())
  in
  Cmd.v
    (Cmd.info "pathways" ~doc:"List all pathways in the repository.")
    Term.(ret (const run $ integrated $ csv_specs $ no_resilience))

let export_cmd =
  let with_extents =
    Arg.(
      value & flag
      & info [ "extents" ] ~doc:"Also serialise the materialised extents.")
  in
  let run integrated csv_specs no_resilience with_extents =
    with_repo integrated csv_specs no_resilience (fun repo _res ->
        print_string
          (Automed_repository.Serialize.save ~extents:with_extents repo);
        `Ok ())
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Serialise the repository (schemas, pathways, optionally extents) \
          to stdout.")
    Term.(
      ret (const run $ integrated $ csv_specs $ no_resilience $ with_extents))

let extent_cmd =
  (* the paper's Extent Tool: "allows the extent of any schema object to
     be displayed" (Section 2.3, step 4) *)
  let obj =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OBJECT" ~doc:"Schema object, e.g. <<protein>>.")
  in
  let run integrated csv_specs no_resilience no_simplify name obj_text =
    with_repo integrated csv_specs no_resilience (fun repo res ->
        match Scheme.of_string obj_text with
        | Error e -> fail "%s" e
        | Ok scheme -> (
            let proc =
              Processor.create ?resilience:res ~simplify:(not no_simplify) repo
            in
            match Processor.extent_of proc ~schema:name scheme with
            | Error e -> fail "%s" (Fmt.str "%a" Processor.pp_error e)
            | Ok bag ->
                List.iter
                  (fun (v, n) ->
                    if n = 1 then Printf.printf "%s\n" (Value.to_string v)
                    else Printf.printf "%s  (x%d)\n" (Value.to_string v) n)
                  bag;
                Printf.printf "-- %d elements (%d distinct)\n"
                  (Value.Bag.cardinal bag)
                  (Value.Bag.distinct_cardinal bag);
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "extent"
       ~doc:"Display the derived extent of a schema object (the Extent Tool).")
    Term.(
      ret
        (const run $ integrated $ csv_specs $ no_resilience $ no_simplify
       $ schema_arg $ obj))

let materialize_cmd =
  let run integrated csv_specs no_resilience no_simplify name =
    with_repo integrated csv_specs no_resilience (fun repo res ->
        let proc =
          Processor.create ?resilience:res ~simplify:(not no_simplify) repo
        in
        match Automed_datasource.Materialize.db_of_schema proc ~schema:name with
        | Error e -> fail "%s" e
        | Ok db ->
            List.iter
              (fun t ->
                Printf.printf "-- table %s\n" (Relational.table_name t);
                let header = List.map fst (Relational.columns t) in
                let rows =
                  List.map
                    (List.map (function
                      | None -> ""
                      | Some (Value.Str s) -> s
                      | Some v -> Value.to_string v))
                    (Relational.rows t)
                in
                print_string (Csv.render (header :: rows)))
              (Relational.tables db);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "materialize"
       ~doc:
         "Derive every relational table of a schema and print it as CSV \
          (integration as ETL).")
    Term.(
      ret
        (const run $ integrated $ csv_specs $ no_resilience $ no_simplify
       $ schema_arg))

let lint_cmd =
  let root =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~docv:"SCHEMA"
          ~doc:
            "Schema that reachability is measured from.  Defaults to the \
             target of the most recently registered pathway (the current \
             global schema version in workflow-built repositories).")
  in
  let format_ =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("tsv", `Tsv) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,text) (human-readable) or $(b,tsv) \
                (machine-readable, one diagnostic per line).")
  in
  let errors_only =
    Arg.(
      value & flag
      & info [ "errors-only" ] ~doc:"Report only error-severity diagnostics.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Append a footer of diagnostic counts by severity, sourced \
             from the telemetry counter API.")
  in
  let warnings_as_errors =
    Arg.(
      value & flag
      & info [ "warnings-as-errors" ]
          ~doc:
            "Exit 1 when any warning-severity diagnostic remains (after \
             $(b,--allow) filtering), not just errors.  For CI gates.")
  in
  let allow =
    Arg.(
      value & opt_all string []
      & info [ "allow" ] ~docv:"RULE"
          ~doc:
            "Suppress every diagnostic emitted by lint rule $(i,RULE) \
             (repeatable).  Suppressed diagnostics are neither printed \
             nor counted towards the exit status.")
  in
  let fix =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:
            "Before linting, rewrite every stored pathway to its \
             certified simplified form (the lint autofixer).  Each fix \
             goes through the repository API, so an attached journal \
             records the replacement like any other mutation.  Rewrites \
             the equivalence checker cannot certify are refused and \
             reported.")
  in
  let run integrated csv_specs no_resilience root format_ errors_only stats
      warnings_as_errors allow fix =
    with_repo integrated csv_specs no_resilience (fun repo res ->
        (if fix then
           let fixes = Analysis.fix_repository repo in
           List.iter
             (fun (f : Analysis.fix) ->
               match f.applied with
               | Ok () ->
                   Printf.printf "fixed %s: %d -> %d steps (%s)\n" f.pathway
                     f.steps_before f.steps_after
                     (String.concat ", "
                        (List.sort_uniq String.compare
                           (List.map
                              (fun (a : Rewrite.application) -> a.rule)
                              f.applications)))
               | Error e ->
                   Printf.printf "refused %s: %s\n" f.pathway e)
             fixes;
           Printf.printf "-- %d pathways rewritten\n"
             (List.length
                (List.filter
                   (fun (f : Analysis.fix) -> Result.is_ok f.applied)
                   fixes)));
        let covered = Option.map Resilience.sources res in
        let journaled = Some (Repository.observed repo) in
        let mem = Telemetry.Memory.create () in
        let diags =
          if stats then
            Telemetry.with_sink (Telemetry.Memory.sink mem) (fun () ->
                Analysis.lint_repository ?root ?covered ?journaled repo)
          else Analysis.lint_repository ?root ?covered ?journaled repo
        in
        let diags =
          if allow = [] then diags
          else
            List.filter
              (fun d -> not (List.mem d.Diagnostic.rule allow))
              diags
        in
        let diags = if errors_only then Diagnostic.errors diags else diags in
        (match format_ with
        | `Text ->
            List.iter
              (fun d -> print_endline (Fmt.str "%a" Diagnostic.pp d))
              diags;
            Printf.printf "-- %d pathways checked: %s\n"
              (List.length (Repository.pathways repo))
              (Fmt.str "%a" Diagnostic.pp_summary (Diagnostic.count diags))
        | `Tsv ->
            List.iter (fun d -> print_endline (Diagnostic.to_tsv d)) diags);
        (if stats then begin
           List.iter
             (fun sev ->
               let name = "lint.diagnostics." ^ sev in
               match format_ with
               | `Tsv ->
                   Printf.printf "stat\t%s\t%d\n" name
                     (Telemetry.Memory.counter mem name)
               | `Text ->
                   Printf.printf "-- stat %s = %d\n" name
                     (Telemetry.Memory.counter mem name))
             [ "error"; "warning"; "info" ];
           (* any histograms observed while linting, with their
              reservoir percentiles *)
           let snapshot = Telemetry.Metrics.of_memory mem in
           List.iter
             (fun (name, (h : Telemetry.Memory.histo)) ->
               match Telemetry.Metrics.quantiles_of snapshot name with
               | None -> ()
               | Some q -> (
                   match format_ with
                   | `Tsv ->
                       Printf.printf
                         "histo\t%s\t%d\t%g\t%g\t%g\n" name h.n
                         q.Telemetry.Memory.q50 q.Telemetry.Memory.q95
                         q.Telemetry.Memory.q99
                   | `Text ->
                       Printf.printf
                         "-- histo %s: n=%d p50=%g p95=%g p99=%g\n" name h.n
                         q.Telemetry.Memory.q50 q.Telemetry.Memory.q95
                         q.Telemetry.Memory.q99))
             snapshot.Telemetry.Metrics.histograms
         end);
        if
          Diagnostic.has_errors diags
          || (warnings_as_errors && Diagnostic.warnings diags <> [])
        then exit 1;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse every pathway and the repository network \
          without executing anything: well-formedness of each step, IQL \
          type checking of embedded queries, pathway-algebra hazards and \
          network reachability.  Exits 1 when errors are found (or, with \
          $(b,--warnings-as-errors), warnings).  $(b,--fix) first rewrites \
          every stored pathway to its certified simplified form.")
    Term.(
      ret
        (const run $ integrated $ csv_specs $ no_resilience $ root $ format_
       $ errors_only $ stats $ warnings_as_errors $ allow $ fix))

let analyze_cmd =
  (* per-pathway report of the proof-checked simplification pipeline:
     which rewrite rules fire where, what the equivalence checker
     certified, and which stored-extent sources are reachable from the
     root. *)
  let root =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~docv:"SCHEMA"
          ~doc:
            "Schema the reachability report is measured from.  Defaults \
             to the target of the most recently registered pathway.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ]
          ~doc:
            "Print every individual rewrite-rule application (the full \
             audit trail) instead of per-rule counts.")
  in
  let print_applications verbose apps =
    if verbose then
      List.iter
        (fun a -> Printf.printf "  %s\n" (Fmt.str "%a" Rewrite.pp_application a))
        apps
    else
      let tally = Hashtbl.create 8 in
      List.iter
        (fun (a : Rewrite.application) ->
          Hashtbl.replace tally a.rule
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally a.rule)))
        apps;
      List.iter
        (fun (rule, _) ->
          match Hashtbl.find_opt tally rule with
          | None -> ()
          | Some n -> Printf.printf "  %s: %d application(s)\n" rule n)
        Rewrite.rules
  in
  let run integrated csv_specs no_resilience root verbose =
    with_repo integrated csv_specs no_resilience (fun repo _res ->
        let pathways = Repository.pathways repo in
        let simplified = ref 0 and removed = ref 0 and refused = ref 0 in
        List.iter
          (fun (p : Transform.pathway) ->
            let label =
              Printf.sprintf "%s -> %s" p.Transform.from_schema
                p.Transform.to_schema
            in
            let steps = List.length p.Transform.steps in
            match Repository.schema repo p.Transform.from_schema with
            | None ->
                Printf.printf
                  "pathway %s (%d steps): source schema not registered\n"
                  label steps
            | Some src -> (
                match Analysis.simplify_certified src p with
                | `Unchanged ->
                    Printf.printf "pathway %s (%d steps): no rewrite applies\n"
                      label steps
                | `Simplified (o, cert) ->
                    let after =
                      List.length o.Rewrite.pathway.Transform.steps
                    in
                    incr simplified;
                    removed := !removed + steps - after;
                    Printf.printf "pathway %s (%d -> %d steps)\n" label steps
                      after;
                    print_applications verbose o.Rewrite.applications;
                    Printf.printf
                      "  certified: %d objects agree symbolically, %d \
                       differential trial(s)%s\n"
                      cert.Automed_analysis.Equiv.objects
                      cert.Automed_analysis.Equiv.trials
                      (if cert.Automed_analysis.Equiv.reverse_checked then
                         ", reverse direction checked"
                       else "")
                | `Refused (o, reason) ->
                    incr refused;
                    Printf.printf
                      "pathway %s (%d steps): rewrite REFUSED — %s\n" label
                      steps reason;
                    print_applications verbose o.Rewrite.applications))
          pathways;
        (let root =
           match root with
           | Some r -> Some r
           | None -> (
               match pathways with
               | [] -> None
               | p :: _ -> Some p.Transform.to_schema)
         in
         match root with
         | None -> ()
         | Some root ->
             let unreachable = Reachability.unreachable_sources ~root repo in
             Printf.printf "reachability (root %s):\n" root;
             List.iter
               (fun s ->
                 let name = Schema.name s in
                 if name <> root && Repository.has_stored_extents repo name
                 then
                   Printf.printf "  %-24s %s\n" name
                     (if List.mem name unreachable then
                        "unreachable (no live definition chain to root)"
                      else "reachable"))
               (Repository.schemas repo));
        Printf.printf
          "-- %d pathways analysed: %d simplified (%d steps removed), %d \
           refused\n"
          (List.length pathways) !simplified !removed !refused;
        if !refused > 0 then exit 1;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static simplification pipeline over every stored \
          pathway and report each rewrite-rule application with its \
          equivalence certificate, plus a source-reachability report.  \
          Nothing is modified (use $(b,lint --fix) to commit the \
          rewrites).  Exits 1 if any rewrite is refused certification.")
    Term.(
      ret
        (const run $ integrated $ csv_specs $ no_resilience $ root $ verbose))

(* -- tracing ------------------------------------------------------------- *)

(* The [trace] subcommand replays a named example scenario end to end with
   a telemetry sink installed, so the full request path — source wrapping,
   pathway registration, reformulation, pathway application, evaluation,
   source fetches — lands in one Chrome-trace file. *)

let ( let* ) = Result.bind

let traced_query proc ~schema text =
  Telemetry.with_span "query" ~attrs:(fun () -> [ ("iql", text) ]) @@ fun () ->
  let* ast = Parser.parse text in
  let* reformulated =
    Result.map_error (Fmt.str "%a" Processor.pp_error)
      (Processor.reformulate proc ~schema ast)
  in
  ignore (reformulated : Ast.expr);
  let* _answer =
    Result.map_error (Fmt.str "%a" Processor.pp_error)
      (Processor.run proc ~schema ast)
  in
  Ok ()

(* the two-source music dataspace of examples/quickstart.ml *)
let quickstart_scenario () =
  let mk_db name tname key cols rows =
    let* table = Relational.create_table ~name:tname ~key cols in
    let* table = Relational.insert_all table rows in
    Relational.add_table (Relational.create_db name) table
  in
  let* store_db =
    mk_db "store" "album" "id"
      [ ("id", Relational.CStr); ("title", Relational.CStr);
        ("price", Relational.CFloat) ]
      [
        [ Relational.str_cell "a1"; Relational.str_cell "Blue Train";
          Relational.float_cell 9.99 ];
        [ Relational.str_cell "a2"; Relational.str_cell "Kind of Blue";
          Relational.float_cell 12.50 ];
      ]
  in
  let* radio_db =
    mk_db "radio" "record" "rid"
      [ ("rid", Relational.CStr); ("name", Relational.CStr);
        ("airplays", Relational.CInt) ]
      [
        [ Relational.str_cell "r7"; Relational.str_cell "Kind of Blue";
          Relational.int_cell 41 ];
        [ Relational.str_cell "r8"; Relational.str_cell "A Love Supreme";
          Relational.int_cell 17 ];
      ]
  in
  let repo = Repository.create () in
  let* _ = Wrapper.wrap repo store_db in
  let* _ = Wrapper.wrap repo radio_db in
  let* wf = Workflow.start repo ~name:"music" ~sources:[ "store"; "radio" ] in
  let side schema table title_col =
    {
      Intersection.schema;
      mappings =
        [
          { Intersection.target = Scheme.table "URelease";
            forward =
              Parser.parse_exn
                (Printf.sprintf "[{'%s', k} | k <- <<%s>>]" schema table);
            restore = None };
          { Intersection.target = Scheme.column "URelease" "title";
            forward =
              Parser.parse_exn
                (Printf.sprintf "[{'%s', k, x} | {k,x} <- <<%s,%s>>]" schema
                   table title_col);
            restore = None };
        ];
    }
  in
  let spec =
    {
      Intersection.name = "i_release";
      sides = [ side "store" "album" "title"; side "radio" "record" "name" ];
    }
  in
  let* _it = Workflow.integrate wf spec in
  let proc = Workflow.processor wf in
  let schema = Workflow.global_name wf in
  List.fold_left
    (fun acc text ->
      let* () = acc in
      traced_query proc ~schema text)
    (Ok ())
    [
      "count(<<URelease>>)";
      "[t | {s, k, t} <- <<URelease,title>>; s = 'radio']";
      "[t | {s1, k1, t} <- <<URelease,title>>; {s2, k2, t2} <- \
       <<URelease,title>>; s1 = 'store'; s2 = 'radio'; t = t2]";
      "[{k, p} | {k, p} <- <<store:album,price>>]";
    ]

(* the paper's iSpider case study: integration plus the 7 priority queries *)
let ispider_scenario () =
  let repo = Repository.create () in
  let* () = Sources.wrap_all repo (Sources.generate ()) in
  let* run = Intersection_run.execute repo in
  let wf = run.Intersection_run.workflow in
  let proc = Workflow.processor wf in
  let schema = Workflow.global_name wf in
  List.fold_left
    (fun acc (q : Queries.query) ->
      let* () = acc in
      traced_query proc ~schema q.Queries.global_text)
    (Ok ()) Queries.all

let scenarios =
  [
    ("quickstart", quickstart_scenario);
    ("ispider_integration", ispider_scenario);
  ]

let scenario_of_name name =
  let base = Filename.remove_extension (Filename.basename name) in
  match List.assoc_opt base scenarios with
  | Some s -> Some s
  | None -> if base = "ispider" then Some ispider_scenario else None

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let trace_cmd =
  let example =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXAMPLE"
          ~doc:
            "Example scenario to trace: $(b,examples/quickstart) or \
             $(b,examples/ispider_integration) (the $(b,examples/) prefix \
             and $(b,.ml) suffix are optional).")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Where to write the Chrome-trace JSON (open in \
             chrome://tracing or https://ui.perfetto.dev).")
  in
  let metrics =
    Arg.(
      value
      & opt (some (enum [ ("text", `Text); ("tsv", `Tsv) ])) None
      & info [ "metrics" ] ~docv:"FORMAT"
          ~doc:
            "Also print a counter/histogram summary in $(b,text) or \
             $(b,tsv) form.")
  in
  let run example out metrics =
    match scenario_of_name example with
    | None ->
        fail "unknown example %s (known: %s)" example
          (String.concat ", " (List.map fst scenarios))
    | Some scenario -> (
        let mem = Telemetry.Memory.create () in
        match Telemetry.with_sink (Telemetry.Memory.sink mem) scenario with
        | Error e -> fail "%s" e
        | Ok () -> (
            let json = Chrome_trace.render ~process_name:example mem in
            match Chrome_trace.validate json with
            | Error e -> fail "internal error: emitted trace is invalid: %s" e
            | Ok () ->
                write_file out json;
                Printf.printf "wrote %s: %d spans, %d counters\n" out
                  (List.length (Telemetry.Memory.spans mem))
                  (List.length (Telemetry.Memory.counters mem));
                (let snapshot = Telemetry.Metrics.of_memory mem in
                 match metrics with
                 | Some `Text -> print_string (Telemetry.Metrics.to_text snapshot)
                 | Some `Tsv -> print_string (Telemetry.Metrics.to_tsv snapshot)
                 | None -> ());
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay an example scenario with telemetry enabled and export \
          the spans as Chrome-trace JSON.")
    Term.(ret (const run $ example $ out $ metrics))

let trace_validate_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace file to validate.")
  in
  let run file =
    match read_file file with
    | exception Sys_error e -> fail "%s" e
    | contents -> (
        match Chrome_trace.validate contents with
        | Ok () ->
            Printf.printf "%s: valid Chrome-trace JSON\n" file;
            `Ok ()
        | Error e -> fail "%s: %s" file e)
  in
  Cmd.v
    (Cmd.info "trace-validate"
       ~doc:
         "Check that a file parses as JSON and has the Chrome trace-event \
          shape (used by the CI runtest rule).")
    Term.(ret (const run $ file))

(* -- explain -------------------------------------------------------------- *)

(* [automed explain] tells the full story of a query without (text mode:
   before) trusting it: the reformulation tree per source with every
   pruning decision and its reason, the certified-simplification state of
   each pathway, cache state, breaker status, the per-stage timing
   waterfall reconstructed from the telemetry spans of an actual
   provenance-annotated run, and the lineage of every answer tuple. *)

module Lineage = Automed_provenance.Lineage
module Microjson = Automed_telemetry.Microjson

let span_ms s = s.Telemetry.Memory.dur *. 1000.0

let group_by_name spans =
  let names =
    List.fold_left
      (fun acc (s : Telemetry.Memory.span) ->
        if List.mem s.name acc then acc else s.name :: acc)
      [] spans
    |> List.rev
  in
  List.map
    (fun n ->
      (n, List.filter (fun (s : Telemetry.Memory.span) -> s.name = n) spans))
    names

(* Indented span tree.  Sibling groups larger than [collapse] spans of
   the same name are aggregated into one line, so a run over many
   extents stays readable. *)
let print_waterfall spans =
  let collapse = 5 in
  let children = Hashtbl.create 64 in
  List.iter
    (fun (s : Telemetry.Memory.span) ->
      let key = match s.parent with None -> -1 | Some p -> p in
      Hashtbl.replace children key
        (s :: Option.value ~default:[] (Hashtbl.find_opt children key)))
    spans;
  let kids id =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt children id))
  in
  let interesting (k, _) =
    match k with "schema" | "object" | "iql" | "skipped" -> true | _ -> false
  in
  let attr_str attrs =
    match List.filter interesting attrs with
    | [] -> ""
    | kvs ->
        "  ["
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ "]"
  in
  let rec go indent (s : Telemetry.Memory.span) =
    Printf.printf "%s%8.3fms  %s%s\n" indent (span_ms s) s.name
      (attr_str s.attrs);
    List.iter
      (fun (name, group) ->
        if List.length group <= collapse then
          List.iter (go (indent ^ "  ")) group
        else
          let total = List.fold_left (fun a c -> a +. span_ms c) 0.0 group in
          Printf.printf "%s  %8.3fms  %s (x%d, aggregated)\n" indent total
            name (List.length group))
      (group_by_name (kids s.id))
  in
  List.iter (go "") (kids (-1))

let print_tuples limit (ann : Processor.annotated) =
  let tuples = ann.Processor.tuples in
  let shown = if limit > 0 then List.filteri (fun i _ -> i < limit) tuples
              else tuples in
  List.iter
    (fun (tp : Processor.annotated_tuple) ->
      Printf.printf "%s%s\n" (Value.to_string tp.value)
        (if tp.count = 1 then "" else Printf.sprintf "  (x%d)" tp.count);
      Printf.printf "    lineage: %s\n" (Fmt.str "%a" Lineage.pp tp.lineage);
      Printf.printf "    mac: %s\n" tp.mac)
    shown;
  if List.length tuples > List.length shown then
    Printf.printf "... (%d more tuples; raise --limit)\n"
      (List.length tuples - List.length shown);
  Printf.printf "-- %d distinct answer values\n" (List.length tuples)

(* JSON rendering, self-validated before printing (the CI schema gate). *)
let explain_json ~schema ~query (plan : Processor.explain)
    (ann : Processor.annotated) completeness (mem : Telemetry.Memory.t) =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  let rec node_json (n : Processor.explain_node) =
    add "{\"schema\":";
    add (Microjson.escape n.Processor.en_schema);
    add ",\"object\":";
    add (Microjson.escape (Scheme.to_string n.Processor.en_object));
    add ",\"stored\":";
    add (if n.Processor.en_stored then "true" else "false");
    add ",\"rows\":";
    (match n.Processor.en_rows with
    | Some r -> add (string_of_int r)
    | None -> add "null");
    add ",\"cached\":";
    add
      (match n.Processor.en_cached with
      | Processor.Cache_hit -> "true"
      | Processor.Cache_cold -> "false");
    add ",\"pathways\":[";
    List.iteri
      (fun i (p : Processor.explain_pathway) ->
        if i > 0 then add ",";
        add "{\"from\":";
        add (Microjson.escape p.Processor.ep_from);
        add (Printf.sprintf ",\"steps\":%d,\"simplified_steps\":%d"
               p.Processor.ep_steps p.Processor.ep_simplified_steps);
        add ",\"surviving\":[";
        add (String.concat ","
               (List.map string_of_int p.Processor.ep_surviving));
        add "],\"cert\":";
        (match p.Processor.ep_cert with
        | Some c -> add (Microjson.escape c)
        | None -> add "null");
        (match p.Processor.ep_decision with
        | Processor.Applied children ->
            add ",\"decision\":\"applied\",\"reason\":null,\"children\":[";
            List.iteri
              (fun i c ->
                if i > 0 then add ",";
                node_json c)
              children;
            add "]"
        | Processor.Pruned reason ->
            add ",\"decision\":\"pruned\",\"reason\":";
            add (Microjson.escape reason);
            add ",\"children\":[]"
        | Processor.No_definition reason ->
            add ",\"decision\":\"no-definition\",\"reason\":";
            add (Microjson.escape reason);
            add ",\"children\":[]");
        add "}")
      n.Processor.en_pathways;
    add "]}"
  in
  add "{\"schema\":";
  add (Microjson.escape schema);
  add ",\"query\":";
  add (Microjson.escape query);
  add ",\"optimized\":";
  add (Microjson.escape (Ast.to_string plan.Processor.ex_optimized));
  add ",\"plan\":[";
  List.iteri
    (fun i n ->
      if i > 0 then add ",";
      node_json n)
    plan.Processor.ex_roots;
  add "],\"tuples\":[";
  List.iteri
    (fun i (tp : Processor.annotated_tuple) ->
      if i > 0 then add ",";
      add "{\"value\":";
      add (Microjson.escape (Value.to_string tp.value));
      add (Printf.sprintf ",\"count\":%d,\"lineage\":" tp.count);
      add (Lineage.to_json tp.lineage);
      add ",\"mac\":";
      add (Microjson.escape tp.mac);
      add "}")
    ann.Processor.tuples;
  add "],\"completeness\":";
  (match completeness with
  | None -> add "null"
  | Some (c : Processor.completeness) ->
      add
        (Printf.sprintf "{\"complete\":%b,\"sources_ok\":[%s],\"skipped\":["
           c.Processor.complete
           (String.concat ","
              (List.map Microjson.escape c.Processor.sources_ok)));
      List.iteri
        (fun i (s, reason) ->
          if i > 0 then add ",";
          add
            (Printf.sprintf "{\"source\":%s,\"reason\":%s,\"impact\":%d}"
               (Microjson.escape s) (Microjson.escape reason)
               (Option.value ~default:0
                  (List.assoc_opt s c.Processor.source_impact))))
        c.Processor.sources_skipped;
      add "]}");
  add ",\"stages\":[";
  let spans = Telemetry.Memory.spans mem in
  let t0 =
    List.fold_left
      (fun a (s : Telemetry.Memory.span) -> Float.min a s.start)
      infinity spans
  in
  List.iteri
    (fun i (s : Telemetry.Memory.span) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "{\"id\":%d,\"parent\":%s,\"name\":%s,\"start_ms\":%s,\"dur_ms\":%s}"
           s.id
           (match s.parent with Some p -> string_of_int p | None -> "null")
           (Microjson.escape s.name)
           (Microjson.number ((s.start -. t0) *. 1000.0))
           (Microjson.number (span_ms s))))
    spans;
  add "],\"metrics\":";
  add (Telemetry.Metrics.to_json (Telemetry.Metrics.of_memory mem));
  add "}";
  Buffer.contents b

let explain_json_check doc =
  match Microjson.parse doc with
  | Error e -> Error (Printf.sprintf "emitted JSON does not parse: %s" e)
  | Ok j ->
      let missing =
        List.filter
          (fun k -> Microjson.member k j = None)
          [ "schema"; "query"; "optimized"; "plan"; "tuples";
            "completeness"; "stages"; "metrics" ]
      in
      if missing = [] then Ok ()
      else
        Error
          (Printf.sprintf "emitted JSON lacks member(s): %s"
             (String.concat ", " missing))

let explain_cmd =
  let iql =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"IQL" ~doc:"IQL query text.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the whole story as one JSON object (plan, per-tuple \
             lineage, completeness, stages, metrics), self-validated \
             against the schema before printing.")
  in
  let degrade =
    Arg.(
      value & flag
      & info [ "degrade" ]
          ~doc:
            "Run in degraded mode: skipped sources are reported with the \
             number of answer tuples each could have affected (per-source \
             lineage counts).")
  in
  let faults =
    Arg.(
      value & opt_all string []
      & info [ "fault" ] ~docv:"NAME=RATE"
          ~doc:"Inject deterministic faults (see $(b,query --fault).)")
  in
  let limit =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N"
          ~doc:
            "Print the lineage of at most $(i,N) answer tuples in text \
             mode (0 = all; JSON mode always includes every tuple).")
  in
  let run integrated csv_specs no_resilience no_simplify fault_seed name text
      faults degrade json limit =
    with_repo ~fault_seed integrated csv_specs no_resilience (fun repo res ->
        match
          let* () =
            match (res, faults) with
            | _, [] -> Ok ()
            | Some r, _ -> apply_faults r faults
            | None, _ :: _ -> Error "--fault requires the resilience layer"
          in
          let* ast = Parser.parse text in
          let proc =
            Processor.create ?resilience:res ~simplify:(not no_simplify) repo
          in
          let mem = Telemetry.Memory.create () in
          let perr r = Result.map_error (Fmt.str "%a" Processor.pp_error) r in
          let* plan, ann, completeness =
            Telemetry.with_sink (Telemetry.Memory.sink mem) (fun () ->
                let* plan =
                  Telemetry.with_span "explain.plan" (fun () ->
                      perr (Processor.explain_plan proc ~schema:name ast))
                in
                if degrade then
                  let* ann, c =
                    Telemetry.with_span "explain.run" (fun () ->
                        perr
                          (Processor.run_degraded_provenance proc ~schema:name
                             ast))
                  in
                  Ok (plan, ann, Some c)
                else
                  let* ann =
                    Telemetry.with_span "explain.run" (fun () ->
                        perr (Processor.run_provenance proc ~schema:name ast))
                  in
                  Ok (plan, ann, None))
          in
          Ok (plan, ann, completeness, mem)
        with
        | Error e -> fail "%s" e
        | Ok (plan, ann, completeness, mem) ->
            if json then (
              let doc =
                explain_json ~schema:name ~query:text plan ann completeness mem
              in
              match explain_json_check doc with
              | Error e -> fail "internal error: %s" e
              | Ok () ->
                  print_endline doc;
                  `Ok ())
            else (
              Printf.printf "== plan ==\n%s\n"
                (Fmt.str "%a" Processor.pp_explain plan);
              Printf.printf "\n== answers ==\n";
              print_tuples limit ann;
              (match completeness with
              | None -> ()
              | Some c ->
                  Printf.printf "\n== completeness ==\n%s\n"
                    (Fmt.str "%a" Processor.pp_completeness c));
              (match res with
              | None -> ()
              | Some r ->
                  Printf.printf "\n== sources ==\n%s\n"
                    (Fmt.str "%a" Resilience.pp_report (Resilience.report r)));
              Printf.printf "\n== waterfall ==\n";
              print_waterfall (Telemetry.Memory.spans mem);
              Printf.printf "\n== metrics ==\n%s"
                (Telemetry.Metrics.to_text (Telemetry.Metrics.of_memory mem));
              `Ok ()))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Tell a query's full plan story: the per-source reformulation \
          tree with every reachability-pruning decision and its reason, \
          certified-simplification state, cache state, breaker status, a \
          per-stage timing waterfall, and the lineage of every answer \
          tuple (which source extents, pathway hops and trace spans it \
          was derived from, with a tamper-evidence digest).")
    Term.(
      ret
        (const run $ integrated $ csv_specs $ no_resilience $ no_simplify
       $ fault_seed $ schema_arg $ iql $ faults $ degrade $ json $ limit))

let case_study_cmd =
  let run () =
    let repo = Repository.create () in
    let ds = Sources.generate () in
    (match Sources.wrap_all repo ds with
    | Ok () -> ()
    | Error e -> prerr_endline e; exit 1);
    match Intersection_run.execute repo with
    | Error e -> `Error (false, e)
    | Ok run ->
        Printf.printf "intersection methodology: %d manual transformations\n"
          run.Intersection_run.total_manual;
        List.iter
          (fun (s : Intersection_run.step) ->
            Printf.printf "  %-48s %3d\n" s.Intersection_run.label
              s.Intersection_run.manual)
          run.Intersection_run.steps;
        let repo2 = Repository.create () in
        (match Sources.wrap_all repo2 ds with
        | Ok () -> ()
        | Error e -> prerr_endline e; exit 1);
        (match Classical_run.execute repo2 with
        | Error e -> prerr_endline e
        | Ok c ->
            Printf.printf
              "classical methodology: %d manual transformations (19+35+41)\n"
              c.Classical_run.total_manual);
        Printf.printf "\nqueries over %s:\n"
          (Workflow.global_name run.Intersection_run.workflow);
        List.iter
          (fun (q : Queries.query) ->
            match
              Workflow.run_query run.Intersection_run.workflow
                q.Queries.global_text
            with
            | Ok (Value.Bag b) ->
                Printf.printf "  Q%d: %d answers\n" q.Queries.number
                  (Value.Bag.cardinal b)
            | Ok _ | Error _ -> Printf.printf "  Q%d: failed\n" q.Queries.number)
          Queries.all;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "case-study"
       ~doc:"Replay the paper's Section 3 case study end to end.")
    Term.(ret (const run $ const ()))

(* -- durable store ------------------------------------------------------- *)

(* The [evolve] subcommand: live schema evolution over the integrated
   dataspace.  Always runs the intersection integration first (evolution
   needs a current global version to repair), then applies — or, with
   --dry-run, previews — one delta. *)

let parse_scheme text =
  match Scheme.of_string text with
  | Ok s -> Ok s
  | Error _ ->
      (* bare names are a convenience for tables: [t] means [<<t>>] *)
      Scheme.of_string (Printf.sprintf "<<%s>>" text)

let parse_delta op args =
  let* () = Ok () in
  match (op, args) with
  | "add-source", [ spec ] -> (
      match String.index_opt spec '=' with
      | None -> Error (Printf.sprintf "add-source expects NAME=DIR, got %S" spec)
      | Some i ->
          let name = String.sub spec 0 i in
          let dir = String.sub spec (i + 1) (String.length spec - i - 1) in
          if not (Sys.file_exists dir && Sys.is_directory dir) then
            Error (Printf.sprintf "not a directory: %s" dir)
          else
            let files =
              Sys.readdir dir |> Array.to_list
              |> List.filter (fun f -> Filename.check_suffix f ".csv")
              |> List.sort String.compare
            in
            let* db =
              List.fold_left
                (fun acc file ->
                  let* db = acc in
                  let tname = Filename.remove_extension file in
                  let* table =
                    Csv.load_table_auto ~name:tname
                      (read_file (Filename.concat dir file))
                  in
                  Relational.add_table db table)
                (Ok (Relational.create_db name))
                files
            in
            (* wrap into a scratch repository to reuse the schema
               extraction and extent materialisation, then lift the
               result out as the evolution delta *)
            let scratch = Repository.create () in
            let* schema = Wrapper.wrap scratch db in
            let extents =
              List.filter_map
                (fun o ->
                  Option.map
                    (fun b -> (o, b))
                    (Repository.stored_extent scratch ~schema:name o))
                (Schema.objects schema)
            in
            Ok (Evolution.Add_source (schema, extents)))
  | "drop-source", [ name ] -> Ok (Evolution.Drop_source name)
  | "add-table", [ source; table ] ->
      Ok
        (Evolution.Alter
           (source, [ Repository.Alter_add_object (Scheme.table table, None) ]))
  | "drop-table", [ source; table ] ->
      let* o = parse_scheme table in
      Ok (Evolution.Alter (source, [ Repository.Alter_drop_object o ]))
  | "rename-table", [ source; old_t; new_t ] ->
      Ok
        (Evolution.Alter
           ( source,
             [
               Repository.Alter_rename_object
                 (Scheme.table old_t, Scheme.table new_t);
             ] ))
  | "add-column", [ source; table; column ] ->
      Ok
        (Evolution.Alter
           ( source,
             [ Repository.Alter_add_object (Scheme.column table column, None) ]
           ))
  | "add-column", [ source; table; column; ty_text ] ->
      let* ty = Types.of_string ty_text in
      Ok
        (Evolution.Alter
           ( source,
             [
               Repository.Alter_add_object (Scheme.column table column, Some ty);
             ] ))
  | "drop-column", [ source; table; column ] ->
      Ok
        (Evolution.Alter
           (source, [ Repository.Alter_drop_object (Scheme.column table column) ]))
  | "rename-column", [ source; table; old_c; new_c ] ->
      Ok
        (Evolution.Alter
           ( source,
             [
               Repository.Alter_rename_object
                 (Scheme.column table old_c, Scheme.column table new_c);
             ] ))
  | _ ->
      Error
        (Printf.sprintf
           "unknown evolution %s (or wrong arguments); see automed evolve \
            --help"
           op)

(* The --dry-run impact preview: for every current-global object the
   delta would drop or rename, replay the explain-plan decision story so
   the integrator sees which pathways feed it today (and why) before
   committing the evolution. *)
let print_impact wf (plan : Evolution.plan) =
  let proc = Workflow.processor wf in
  let global = Workflow.global_name wf in
  let affected =
    plan.Evolution.pl_objects_dropped
    @ List.map fst plan.Evolution.pl_objects_renamed
  in
  let current = Workflow.global_schema wf in
  List.iter
    (fun o ->
      if Schema.mem o current then
        match Processor.explain_plan proc ~schema:global (Ast.SchemeRef o) with
        | Error _ -> ()
        | Ok ex ->
            List.iter
              (fun node ->
                Printf.printf "%s\n"
                  (Fmt.str "%a" Processor.pp_explain_node node))
              ex.Processor.ex_roots)
    affected;
  List.iter
    (fun o ->
      Printf.printf "  %s: new object, no feeding pathway yet\n"
        (Scheme.to_string o))
    plan.Evolution.pl_objects_added

let evolve_cmd =
  let op_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:
            "The evolution: $(b,add-source) NAME=DIR, $(b,drop-source) NAME, \
             $(b,add-table) SOURCE TABLE, $(b,drop-table) SOURCE TABLE, \
             $(b,rename-table) SOURCE OLD NEW, $(b,add-column) SOURCE TABLE \
             COLUMN [TYPE], $(b,drop-column) SOURCE TABLE COLUMN, \
             $(b,rename-column) SOURCE TABLE OLD NEW.")
  in
  let rest_args =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS" ~doc:"Operands.")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:
            "Preview only: print the repair plan (chain steps, pathway \
             patches and quarantines, cache invalidation) and the current \
             explain-plan decisions for every affected global object, \
             without mutating anything.")
  in
  let run csv_specs no_resilience dry op args =
    with_repo false csv_specs no_resilience (fun repo res ->
        match
          let* run = Result.map_error Fun.id (Intersection_run.execute ?resilience:res repo) in
          let wf = run.Intersection_run.workflow in
          let* delta = parse_delta op args in
          Ok (wf, delta)
        with
        | Error e -> fail "%s" e
        | Ok (wf, delta) ->
            if dry then (
              match Evolution.preview wf delta with
              | Error e -> fail "%s" e
              | Ok plan ->
                  Printf.printf "== plan (dry run) ==\n%s\n"
                    (Fmt.str "%a" Evolution.pp_plan plan);
                  Printf.printf "\n== current feeds of affected objects ==\n";
                  print_impact wf plan;
                  `Ok ())
            else
              match Evolution.evolve wf delta with
              | Error e -> fail "%s" e
              | Ok (ev, plan) ->
                  Printf.printf "evolved %s -> %s\n" ev.Workflow.ev_prev
                    ev.Workflow.ev_next;
                  Printf.printf "%s\n" (Fmt.str "%a" Evolution.pp_plan plan);
                  `Ok ())
  in
  Cmd.v
    (Cmd.info "evolve"
       ~doc:
         "Apply one live schema evolution to the integrated dataspace: \
          add or drop a source, or alter a source's tables and columns.  \
          The global schema is repaired incrementally (a delta-sized \
          chain pathway to the next version; stranded pathways patched or \
          quarantined) — never regenerated from scratch.  With \
          $(b,--dry-run), prints the repair plan and the explain-plan \
          decision reasons for every affected global object instead.")
    Term.(
      ret (const run $ csv_specs $ no_resilience $ dry_run $ op_arg $ rest_args))

(* The [repo] subcommands operate on an on-disk durable store: a
   checkpoint plus write-ahead journal managed by [Automed_durable]. *)

let store_dir =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:
          "Directory of the durable store ($(b,checkpoint.str) + \
           $(b,journal.wal)); created if missing.")

let repo_snapshot_cmd =
  let run integrated csv_specs no_resilience dir =
    with_repo integrated csv_specs no_resilience (fun repo _res ->
        let vfs = Vfs.os dir in
        match
          let* d = Durable.attach vfs repo in
          let* () = Durable.snapshot d in
          Ok d
        with
        | Error e -> fail "%s" e
        | Ok _ ->
            Printf.printf "wrote %s/%s (%d schemas, %d pathways)\n" dir
              Durable.checkpoint_file
              (List.length (Repository.schemas repo))
              (List.length (Repository.pathways repo));
            `Ok ())
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Build the repository and write an atomic checksummed checkpoint \
          of it (schemas, pathways, extents) into the store directory, \
          emptying the journal.")
    Term.(
      ret (const run $ integrated $ csv_specs $ no_resilience $ store_dir))

let repo_recover_cmd =
  let run dir =
    match Durable.recover (Vfs.os dir) with
    | Error e -> fail "%s" e
    | Ok (d, report) ->
        print_endline (Fmt.str "%a" Durable.pp_report report);
        Printf.printf "%s\n"
          (Fmt.str "%a" Repository.pp_summary (Durable.repository d));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild the repository from the store's checkpoint plus journal, \
          truncating any torn or corrupt journal tail (reported as a \
          warning).  A corrupt checkpoint is an error, never a silently \
          wrong repository.")
    Term.(ret (const run $ store_dir))

let repo_scrub_cmd =
  let run dir =
    match Durable.scrub (Vfs.os dir) with
    | Error e -> fail "%s" e
    | Ok s ->
        print_endline (Fmt.str "%a" Durable.pp_scrub s);
        let checkpoint_ok =
          s.Durable.checkpoint_status = "absent"
          || String.length s.Durable.checkpoint_status >= 2
             && String.sub s.Durable.checkpoint_status 0 2 = "ok"
        in
        let clean =
          checkpoint_ok
          && (match s.Durable.journal_tail with
             | Journal.Clean -> true
             | Journal.Torn _ | Journal.Corrupt _ -> false)
          && s.Durable.bad_payloads = []
        in
        if clean then `Ok () else exit 1
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Verify the store without modifying it: checkpoint checksum, \
          journal record checksums and payload parsability.  Exits 1 when \
          anything is torn, corrupt or unparseable.")
    Term.(ret (const run $ store_dir))

let repo_log_cmd =
  let run dir =
    let vfs = Vfs.os dir in
    match Journal.read vfs ~file:Durable.journal_file with
    | Error e -> fail "%s" e
    | Ok scan ->
        List.iteri
          (fun i (off, payload) ->
            Printf.printf "%4d  @%-8d %s\n" i off (Durable.describe_op payload))
          scan.Journal.records;
        Printf.printf "-- %d records, %d bytes, tail %s\n"
          (List.length scan.Journal.records)
          scan.Journal.total_bytes
          (Fmt.str "%a" Journal.pp_tail scan.Journal.tail);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "log"
       ~doc:
         "List the journal's records (one committed repository mutation \
          each) in replay order.")
    Term.(ret (const run $ store_dir))

let repo_cmd =
  Cmd.group
    (Cmd.info "repo"
       ~doc:
         "Operate on a durable on-disk repository store: write-ahead \
          journal plus checksummed checkpoints.")
    [ repo_snapshot_cmd; repo_recover_cmd; repo_scrub_cmd; repo_log_cmd ]

(* -- observability: metrics catalog and health status -------------------- *)

module Catalog = Automed_observe.Catalog
module Health = Automed_observe.Health
module Maintain = Automed_maintain.Maintain

(* -- health threshold overrides ------------------------------------------ *)

let threshold_names =
  [ "chain-depth"; "quarantined-pathways"; "void-degraded-steps";
    "retired-sources"; "journal-debt"; "breakers-not-closed";
    "cache-invalidation-churn" ]

let parse_threshold spec =
  match String.index_opt spec '=' with
  | None ->
      Error (Printf.sprintf "expected INDICATOR=WARN,CRITICAL, got %S" spec)
  | Some i -> (
      let name = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      if not (List.mem name threshold_names) then
        Error
          (Printf.sprintf "unknown indicator %S (one of: %s)" name
             (String.concat ", " threshold_names))
      else
        match String.split_on_char ',' rest with
        | [ w; c ] -> (
            match (float_of_string_opt w, float_of_string_opt c) with
            | Some warn, Some critical when warn <= critical ->
                Ok (name, warn, critical)
            | Some _, Some _ ->
                Error
                  (Printf.sprintf "%s: warn must not exceed critical" name)
            | _ ->
                Error
                  (Printf.sprintf "%s: WARN and CRITICAL must be numbers" name))
        | _ ->
            Error
              (Printf.sprintf "%s: expected two values WARN,CRITICAL" name))

let threshold_conv =
  let parse s =
    match parse_threshold s with Ok v -> Ok v | Error e -> Error (`Msg e)
  in
  let print ppf (n, w, c) = Format.fprintf ppf "%s=%g,%g" n w c in
  Arg.conv (parse, print)

let thresholds_arg =
  Arg.(
    value
    & opt_all threshold_conv []
    & info [ "threshold" ] ~docv:"INDICATOR=WARN,CRITICAL"
        ~doc:
          "Override one health indicator's thresholds (repeatable).  \
           Indicators: chain-depth, quarantined-pathways, \
           void-degraded-steps, retired-sources, journal-debt, \
           breakers-not-closed, cache-invalidation-churn.")

let apply_thresholds overrides =
  List.fold_left
    (fun (c : Health.config) (name, warn, critical) ->
      let t = { Health.warn; critical } in
      match name with
      | "chain-depth" -> { c with Health.chain_depth = t }
      | "quarantined-pathways" -> { c with Health.quarantined = t }
      | "void-degraded-steps" -> { c with Health.void_degraded = t }
      | "retired-sources" -> { c with Health.retired_sources = t }
      | "journal-debt" -> { c with Health.journal_bytes = t }
      | "breakers-not-closed" -> { c with Health.breakers = t }
      | _ -> { c with Health.cache_churn = t })
    Health.default_config overrides

let metrics_catalog_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the catalog as one JSON object.")
  in
  let run json =
    if json then print_endline (Catalog.to_json ())
    else print_string (Catalog.to_text ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "catalog"
       ~doc:
         "Dump the typed metrics catalog: every counter and histogram \
          name a probe can emit, with its kind, unit and description.")
    Term.(ret (const run $ json))

let ml_files_under dir =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry -> walk acc (Filename.concat path entry))
        acc (Sys.readdir path)
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  List.sort compare (walk [] dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let metrics_check_cmd =
  let srcs =
    Arg.(
      value & opt_all string []
      & info [ "src" ] ~docv:"DIR"
          ~doc:
            "Source tree to scan (repeatable); every .ml file under it is \
             checked.  Defaults to lib, bin and bench under the current \
             directory.")
  in
  let run srcs =
    let srcs = if srcs = [] then [ "lib"; "bin"; "bench" ] else srcs in
    let roots = List.filter Sys.file_exists srcs in
    match List.concat_map ml_files_under roots with
    | [] -> fail "no .ml files found under: %s" (String.concat ", " srcs)
    | files -> (
        let issues =
          Catalog.check (List.map (fun f -> (f, read_file f)) files)
        in
        match issues with
        | [] ->
            Printf.printf
              "metrics catalog clean: %d declarations, %d files scanned\n"
              (List.length Catalog.all) (List.length files);
            `Ok ()
        | _ ->
            List.iter
              (fun i -> Printf.eprintf "%s\n" (Fmt.str "%a" Catalog.pp_issue i))
              issues;
            fail "%d metrics catalog issue(s)" (List.length issues))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Scan source trees for $(b,Telemetry.count)/$(b,Telemetry.observe) \
          probe sites and fail when a site uses an uncatalogued name, a \
          catalogue entry has no emit site left, or a counter name is used \
          as a histogram (or vice versa).")
    Term.(ret (const run $ srcs))

let metrics_cmd =
  Cmd.group
    (Cmd.info "metrics"
       ~doc:
         "The typed metrics catalog: the single source of truth every \
          telemetry probe name must be declared in.")
    [ metrics_catalog_cmd; metrics_check_cmd ]

let status_json report (metrics : Telemetry.Metrics.t) top =
  let b = Buffer.create 2048 in
  let add = Buffer.add_string b in
  (* splice the extra dashboard members into the health report object *)
  let h = Health.to_json report in
  add (String.sub h 0 (String.length h - 1));
  add ",\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then add ",";
      add (Printf.sprintf "%s:%d" (Microjson.escape name) v))
    top;
  add "},\"latency\":{";
  List.iteri
    (fun i (name, (q : Telemetry.Memory.quantiles)) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf "%s:{\"p50\":%s,\"p95\":%s,\"p99\":%s}"
           (Microjson.escape name) (Microjson.number q.q50)
           (Microjson.number q.q95) (Microjson.number q.q99)))
    metrics.Telemetry.Metrics.quantiles;
  add "}}";
  Buffer.contents b

let status_json_check doc =
  match Microjson.parse doc with
  | Error e -> Error (Printf.sprintf "emitted JSON does not parse: %s" e)
  | Ok j ->
      let missing =
        List.filter
          (fun k -> Microjson.member k j = None)
          [ "global"; "version"; "overall"; "needs_reintegration";
            "indicators"; "counters"; "latency" ]
      in
      if missing = [] then Ok ()
      else
        Error
          (Printf.sprintf "emitted JSON lacks member(s): %s"
             (String.concat ", " missing))

let status_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the dashboard as one JSON object, self-validated against \
             the schema before printing.")
  in
  let exit_code =
    Arg.(
      value & flag
      & info [ "exit-code" ]
          ~doc:
            "Reflect the overall classification in the exit status: 0 when \
             ok, 1 when any indicator is warn, 2 when any is critical — \
             for CI gates and cron probes.")
  in
  let run no_simplify fault_seed json exit_code thresholds =
    let config = apply_thresholds thresholds in
    let resilience = Resilience.create ~seed:fault_seed () in
    let repo = Repository.create () in
    let ( let* ) = Result.bind in
    match
      let* durable = Durable.attach (Vfs.memory ()) repo in
      let* () = Sources.wrap_all ~resilience repo (Sources.generate ()) in
      let* run =
        Intersection_run.execute ~resilience ~simplify:(not no_simplify) repo
      in
      Ok (durable, run.Intersection_run.workflow)
    with
    | Error e -> fail "%s" e
    | Ok (durable, wf) ->
        (* probe workload: the seven case-study queries, under a private
           sink, so the counter and latency panes reflect live behaviour *)
        let mem = Telemetry.Memory.create () in
        Telemetry.with_sink (Telemetry.Memory.sink mem) (fun () ->
            List.iter
              (fun (q : Queries.query) ->
                let t0 = Telemetry.wall_clock () in
                ignore (Workflow.run_query wf q.Queries.global_text);
                Telemetry.observe "status.probe_ms"
                  ((Telemetry.wall_clock () -. t0) *. 1000.0))
              Queries.all);
        let metrics = Telemetry.Metrics.of_memory mem in
        let report = Health.assess ~config ~resilience ~durable ~metrics wf in
        let finish () =
          if not exit_code then `Ok ()
          else
            match report.Health.r_overall with
            | Health.Good -> `Ok ()
            | Health.Warn -> exit 1
            | Health.Critical -> exit 2
        in
        let top =
          List.filteri
            (fun i _ -> i < 10)
            (List.stable_sort
               (fun (_, a) (_, b) -> compare b a)
               metrics.Telemetry.Metrics.counters)
        in
        if json then (
          let doc = status_json report metrics top in
          match status_json_check doc with
          | Error e -> fail "internal error: %s" e
          | Ok () ->
              print_endline doc;
              finish ())
        else (
          print_string (Health.to_text report);
          Printf.printf
            "\ntop counters (probe workload: the 7 case-study queries)\n";
          List.iter
            (fun (n, v) -> Printf.printf "  %-44s %8d\n" n v)
            top;
          Printf.printf "\nlatency percentiles\n";
          List.iter
            (fun (n, (q : Telemetry.Memory.quantiles)) ->
              Printf.printf "  %-36s %-8s p50 %10.3f  p95 %10.3f  p99 %10.3f\n"
                n
                (match Catalog.find n with
                | Some d -> d.Catalog.unit_
                | None -> "")
                q.q50 q.q95 q.q99)
            metrics.Telemetry.Metrics.quantiles;
          finish ())
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "The dataspace health dashboard: builds the integrated iSpider \
          dataspace with the resilience and durability layers wired, runs \
          the seven case-study queries as a probe workload, and reports \
          repair debt (version-chain depth, quarantined pathways, \
          Void-degraded definitions, retired sources, journal bytes, \
          breaker states, cache churn) classified against ok/warn/critical \
          thresholds, plus the top counters and latency percentiles of \
          the probe run.")
    Term.(
      ret
        (const run $ no_simplify $ fault_seed $ json $ exit_code
       $ thresholds_arg))

(* -- autonomic maintenance ----------------------------------------------- *)

(* The deterministic churn script shared with the E-E1/E-M1 benches:
   block [i/5] adds a satellite source, grows and alters a scratch table
   on pedro, then drops the satellite again — each block leaves one
   renamed table and one quarantined pathway behind, so debt accrues at
   a constant rate per block. *)
let maintain_churn_delta i =
  let k = string_of_int (i / 5) in
  match i mod 5 with
  | 0 ->
      let name = "sat" ^ k in
      let table = Scheme.table ("s" ^ k) in
      Result.map
        (fun schema ->
          Evolution.Add_source
            ( schema,
              [ ( table,
                  Value.Bag.of_list
                    [ Value.Str (name ^ "-r1"); Value.Str (name ^ "-r2") ] )
              ] ))
        (Schema.of_objects name [ (table, None) ])
  | 1 ->
      Ok
        (Evolution.Alter
           ( Sources.pedro_name,
             [ Repository.Alter_add_object (Scheme.table ("tmp" ^ k), None) ]
           ))
  | 2 ->
      Ok
        (Evolution.Alter
           ( Sources.pedro_name,
             [
               Repository.Alter_add_object
                 (Scheme.column ("tmp" ^ k) "note", None);
             ] ))
  | 3 ->
      Ok
        (Evolution.Alter
           ( Sources.pedro_name,
             [
               Repository.Alter_drop_object (Scheme.column ("tmp" ^ k) "note");
               Repository.Alter_rename_object
                 (Scheme.table ("tmp" ^ k), Scheme.table ("kept" ^ k));
             ] ))
  | _ -> Ok (Evolution.Drop_source ("sat" ^ k))

(* Build the journaled, resilient iSpider dataspace the maintenance
   commands operate on — the same shape as [status]. *)
let build_live_dataspace ~no_simplify ~fault_seed ~fault_rate =
  let policy =
    { Resilience.Policy.default with Resilience.Policy.retries = 6 }
  in
  let resilience = Resilience.create ~seed:fault_seed ~policy () in
  let repo = Repository.create () in
  let ( let* ) = Result.bind in
  let* durable = Durable.attach (Vfs.memory ()) repo in
  let* () = Sources.wrap_all ~resilience repo (Sources.generate ()) in
  let* run =
    Intersection_run.execute ~resilience ~simplify:(not no_simplify) repo
  in
  if fault_rate > 0.0 then
    Resilience.inject resilience ~source:Sources.pedro_name
      (Resilience.Fault.rate fault_rate);
  Ok (durable, resilience, run.Intersection_run.workflow)

let maintain_cycles default =
  Arg.(
    value & opt int default
    & info [ "cycles" ] ~docv:"N"
        ~doc:
          "Evolution churn cycles to drive against the dataspace (the \
           deterministic 5-phase script the benches use).")

let maintain_fault_rate =
  Arg.(
    value & opt float 0.0
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Per-attempt failure probability injected on the pedro source \
           during churn (deterministic under $(b,--fault-seed)).")

let health_summary wf =
  let report = Health.assess wf in
  Printf.sprintf "overall %s, chain depth %.0f links"
    (Health.level_label report.Health.r_overall)
    (match
       List.find_opt
         (fun i -> i.Health.i_name = "chain-depth")
         report.Health.r_indicators
     with
    | Some i -> i.Health.i_value
    | None -> 0.0)

let print_compaction verb (c : Maintain.compaction) =
  Printf.printf
    "%s: composed %d chain links (%d steps) from anchor %s into a \
     %d-step certified shortcut\n" verb c.Maintain.c_links
    c.Maintain.c_steps_before c.Maintain.c_anchor c.Maintain.c_steps_after;
  Printf.printf
    "  replaced link %s; %d contributions rerouted, %d dead ones \
     dropped\n" c.Maintain.c_retired c.Maintain.c_rerouted
    c.Maintain.c_dropped_contributions;
  let cert = c.Maintain.c_certificate in
  Printf.printf
    "  certificate: %d object definitions over %d differential trials%s\n"
    cert.Maintain.Equiv.objects cert.Maintain.Equiv.trials
    (if cert.Maintain.Equiv.reverse_checked then ", reverse checked" else "")

let print_reclamation verb (r : Maintain.reclamation) =
  Printf.printf
    "%s: %d inert quarantined pathway(s) removed, %d retired schema(s) \
     pruned%s\n" verb r.Maintain.rc_pathways_removed
    (List.length r.Maintain.rc_schemas_pruned)
    (match r.Maintain.rc_new_version with
    | Some v -> Printf.sprintf ", re-integrated as %s" v
    | None -> "")

let maintain_cmd =
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:
            "After the churn, report what compaction and reclamation \
             would do (every check and certification runs) without \
             mutating the repository.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Run the churn unmaintained, then a single scheduler tick: \
             shows the debt the tick pays down.")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Interleave one scheduler tick after every churn cycle (the \
             default): the autonomic loop that keeps debt below warn.")
  in
  let run no_simplify fault_seed cycles fault_rate dry_run once watch
      thresholds =
    ignore watch;
    let config = apply_thresholds thresholds in
    let policy = { Maintain.default_policy with Maintain.health = config } in
    match build_live_dataspace ~no_simplify ~fault_seed ~fault_rate with
    | Error e -> fail "%s" e
    | Ok (durable, resilience, wf) -> (
        let scheduler = Maintain.Scheduler.create ~policy () in
        let tick () =
          match
            Maintain.Scheduler.tick ~durable ~resilience scheduler wf
          with
          | Error e -> Error e
          | Ok events ->
              print_string (Maintain.Scheduler.report_to_text events);
              Ok ()
        in
        let ( let* ) = Result.bind in
        let outcome =
          let churn i =
            let* delta = maintain_churn_delta i in
            let* _ev, _plan = Evolution.evolve wf delta in
            Ok ()
          in
          let rec cycle i =
            if i >= cycles then Ok ()
            else
              let* () = churn i in
              let* () =
                if dry_run || once then Ok () (* maintenance held back *)
                else tick ()
              in
              cycle (i + 1)
          in
          let* () = cycle 0 in
          if dry_run then (
            Printf.printf "after %d unmaintained cycles: %s\n" cycles
              (health_summary wf);
            let* c = Maintain.compact ~dry_run:true wf in
            (match c with
            | Maintain.Compacted c -> print_compaction "would compact" c
            | Maintain.Nothing_to_do why ->
                Printf.printf "compaction: nothing to do (%s)\n" why
            | Maintain.Refused why ->
                Printf.printf "compaction would be refused: %s\n" why);
            let* r = Maintain.reclaim ~dry_run:true wf in
            print_reclamation "would reclaim" r;
            Ok ())
          else if once then (
            Printf.printf "after %d unmaintained cycles: %s\n" cycles
              (health_summary wf);
            let* () = tick () in
            Printf.printf "after one maintenance tick: %s\n"
              (health_summary wf);
            Ok ())
          else (
            Printf.printf
              "%d churn cycles with a maintenance tick each; %d \
               maintenance action(s) fired\n" cycles
              (List.length (Maintain.Scheduler.events scheduler));
            Printf.printf "final state: %s\n" (health_summary wf);
            Ok ())
        in
        match outcome with
        | Error e -> fail "%s" e
        | Ok () ->
            let report =
              Health.assess ~config ~resilience ~durable wf
            in
            print_string (Health.to_text report);
            (* watch mode is a promise: the scheduler keeps debt below
               warn.  Breaking it is a failure; --dry-run and --once
               exist precisely to *show* accumulated debt, so they
               always exit 0. *)
            if
              (not (dry_run || once))
              && report.Health.r_overall <> Health.Good
            then exit 1;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "maintain"
       ~doc:
         "The autonomic maintenance loop: drives deterministic evolution \
          churn against the integrated iSpider dataspace while the \
          debt-driven scheduler fires certified chain compaction, \
          quarantine reclamation and journal checkpoints with \
          hysteresis.  $(b,--dry-run) previews the actions, $(b,--once) \
          runs a single tick after unmaintained churn, $(b,--watch) \
          (the default) interleaves a tick per cycle.")
    Term.(
      ret
        (const run $ no_simplify $ fault_seed $ maintain_cycles 40
       $ maintain_fault_rate $ dry_run $ once $ watch $ thresholds_arg))

let compact_cmd =
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:
            "Run every check and certification but leave the repository \
             untouched.")
  in
  let run no_simplify fault_seed cycles fault_rate dry_run =
    match build_live_dataspace ~no_simplify ~fault_seed ~fault_rate with
    | Error e -> fail "%s" e
    | Ok (_durable, _resilience, wf) -> (
        let ( let* ) = Result.bind in
        let outcome =
          let rec churn i =
            if i >= cycles then Ok ()
            else
              let* delta = maintain_churn_delta i in
              let* _ = Evolution.evolve wf delta in
              churn (i + 1)
          in
          let* () = churn 0 in
          let repo = Workflow.repository wf in
          let before =
            Health.effective_chain_depth repo ~root:(Workflow.global_name wf)
          in
          let* result = Maintain.compact ~dry_run wf in
          Ok (repo, before, result)
        in
        match outcome with
        | Error e -> fail "%s" e
        | Ok (repo, before, result) -> (
            match result with
            | Maintain.Compacted c ->
                print_compaction
                  (if dry_run then "would compact" else "compacted")
                  c;
                let after =
                  Health.effective_chain_depth repo
                    ~root:(Workflow.global_name wf)
                in
                Printf.printf "  effective chain depth: %d -> %d links\n"
                  before after;
                `Ok ()
            | Maintain.Nothing_to_do why ->
                Printf.printf "nothing to do: %s\n" why;
                `Ok ()
            | Maintain.Refused why -> fail "compaction refused: %s" why))
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "One-shot certified chain compaction: churns the integrated \
          iSpider dataspace through $(b,--cycles) evolution cycles, then \
          composes the accumulated global version chain into a single \
          certified shortcut pathway (refusing if no equivalence \
          certificate can be produced) and reroutes interior \
          contributions onto the current version.  Every old version \
          keeps answering bit-identically.")
    Term.(
      ret
        (const run $ no_simplify $ fault_seed $ maintain_cycles 12
       $ maintain_fault_rate $ dry_run))

let main =
  let doc = "AutoMed-style dataspace integration with intersection schemas" in
  let info = Cmd.info "automed-cli" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ schemas_cmd; show_cmd; query_cmd; reformulate_cmd; match_cmd;
      pathways_cmd; lint_cmd; analyze_cmd; export_cmd; extent_cmd;
      materialize_cmd; trace_cmd; trace_validate_cmd; explain_cmd;
      case_study_cmd; evolve_cmd; repo_cmd; metrics_cmd; status_cmd;
      maintain_cmd; compact_cmd ]

let () = exit (Cmd.eval main)
