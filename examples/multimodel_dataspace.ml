(* Heterogeneous models in one dataspace.

   AutoMed's HDM is a *common* data model: modelling languages are
   defined on top of it, so sources need not be relational.  This example
   integrates a relational staff database with an XML personnel document
   and an RDF-style contact graph: one intersection schema spans three
   modelling languages.

   Run with:  dune exec examples/multimodel_dataspace.exe *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Model = Automed_model.Model
module Hdm = Automed_hdm.Hdm
module Value = Automed_iql.Value
module Types = Automed_iql.Types
module Parser = Automed_iql.Parser
module Relational = Automed_datasource.Relational
module Wrapper = Automed_datasource.Wrapper
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Intersection = Automed_integration.Intersection
module Workflow = Automed_integration.Workflow

let ok = function Ok v -> v | Error e -> failwith e

let xml_scheme construct args = Scheme.make ~language:"xml" ~construct args
let rdf_scheme construct args = Scheme.make ~language:"rdf" ~construct args

let () =
  let repo = Repository.create () in

  (* source 1: a relational staff table, loaded through the wrapper *)
  let hr_db =
    let staff =
      ok
        (Relational.create_table ~name:"staff" ~key:"id"
           [ ("id", Relational.CStr); ("email", Relational.CStr) ])
    in
    let staff =
      ok
        (Relational.insert_all staff
           [
             [ Relational.str_cell "s1"; Relational.str_cell "ada@example.org" ];
             [ Relational.str_cell "s2"; Relational.str_cell "bob@example.org" ];
           ])
    in
    ok (Relational.add_table (Relational.create_db "hr") staff)
  in
  let _ = ok (Wrapper.wrap repo hr_db) in

  (* source 2: an XML personnel document, parsed and wrapped through the
     xml modelling language *)
  let xml_text =
    {|<staff>
        <person mail="bob@example.org">Bob</person>
        <person mail="eve@example.org">Eve</person>
      </staff>|}
  in
  let doc = ok (Automed_datasource.Document.parse xml_text) in
  let xml_schema = ok (Automed_datasource.Document.wrap repo ~name:"personnel" doc) in
  ignore (xml_scheme "element" [ "person" ]);

  (* source 3: an RDF-ish contact graph - a mailbox property *)
  let mbox = rdf_scheme "property" [ "mbox" ] in
  let rdf_schema =
    ok
      (Schema.of_objects "contacts"
         [ (mbox, Some (Types.tuple_row [ Types.TStr; Types.TStr ])) ])
  in
  ok (Repository.add_schema repo rdf_schema);
  ok
    (Repository.set_extent repo ~schema:"contacts" mbox
       (Value.Bag.of_list
          [ Value.tuple2 (Value.Str "urn:ada") (Value.Str "ada@example.org");
            Value.tuple2 (Value.Str "urn:carol") (Value.Str "carol@example.org") ]));

  (* the HDM representations really are per-language graphs *)
  let g = ok (Schema.hdm xml_schema) in
  Printf.printf "HDM of the XML source: %d nodes/edges\n" (Hdm.size g);

  (* one intersection schema across the three modelling languages *)
  let wf =
    ok
      (Workflow.start repo ~name:"people"
         ~sources:[ "hr"; "personnel"; "contacts" ])
  in
  let spec =
    {
      Intersection.name = "i_person";
      sides =
        [
          {
            Intersection.schema = "hr";
            mappings =
              [
                { Intersection.target = Scheme.column "UPerson" "email";
                  forward =
                    Parser.parse_exn "[{'hr', k, x} | {k,x} <- <<staff,email>>]";
                  restore = None };
              ];
          };
          {
            Intersection.schema = "personnel";
            mappings =
              [
                { Intersection.target = Scheme.column "UPerson" "email";
                  forward =
                    Parser.parse_exn
                      "[{'xml', k, x} | {k,x} <- <<xml,attribute,person,mail>>]";
                  restore = None };
              ];
          };
          {
            Intersection.schema = "contacts";
            mappings =
              [
                { Intersection.target = Scheme.column "UPerson" "email";
                  forward =
                    Parser.parse_exn
                      "[{'rdf', k, x} | {k,x} <- <<rdf,property,mbox>>]";
                  restore = None };
              ];
          };
        ];
    }
  in
  let _ = ok (Workflow.integrate wf spec) in
  Printf.printf "global schema: %s\n\n" (Workflow.global_name wf);

  let run text =
    match Workflow.run_query wf text with
    | Ok v -> Printf.printf "%s\n  = %s\n" text (Value.to_string v)
    | Error e -> failwith (Fmt.str "%a" Automed_query.Processor.pp_error e)
  in
  run "count(<<UPerson,email>>)";
  (* the same person appearing in two models, joined on the email value *)
  run
    "[{s1, s2, m} | {s1, k1, m} <- <<UPerson,email>>; {s2, k2, m2} <- \
     <<UPerson,email>>; m = m2; s1 < s2]";

  (* static analysis: the cross-model pathway network lints clean *)
  let diags = Automed_analysis.Analysis.lint_repository repo in
  List.iter
    (fun d -> print_endline (Fmt.str "%a" Automed_analysis.Diagnostic.pp d))
    diags;
  Printf.printf "\npathway linter: %s\n"
    (Fmt.str "%a" Automed_analysis.Diagnostic.pp_summary
       (Automed_analysis.Diagnostic.count diags));
  if Automed_analysis.Diagnostic.has_errors diags then exit 1
