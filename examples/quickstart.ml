(* Quickstart: integrate two small relational sources with an
   intersection schema and query the result.

   Run with:  dune exec examples/quickstart.exe

   Set QUICKSTART_FAULTS=NAME=RATE (e.g. radio=1) to replay the same
   scenario with a deterministic fault injector on one source: queries
   then run in degraded mode and print a completeness footer instead of
   failing — the CI runtest alias exercises this path. *)

module Scheme = Automed_base.Scheme
module Value = Automed_iql.Value
module Parser = Automed_iql.Parser
module Relational = Automed_datasource.Relational
module Wrapper = Automed_datasource.Wrapper
module Repository = Automed_repository.Repository
module Intersection = Automed_integration.Intersection
module Workflow = Automed_integration.Workflow
module Processor = Automed_query.Processor
module Resilience = Automed_resilience.Resilience

let ok = function Ok v -> v | Error e -> failwith e

(* QUICKSTART_FAULTS=NAME=RATE: the source to break and how often *)
let fault_spec =
  match Sys.getenv_opt "QUICKSTART_FAULTS" with
  | None -> None
  | Some s -> (
      match String.index_opt s '=' with
      | Some i ->
          let name = String.sub s 0 i in
          let rate = float_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
          Some (name, rate)
      | None -> failwith "QUICKSTART_FAULTS expects NAME=RATE")

let resilience =
  Option.map (fun _ -> Resilience.create ~seed:0x5EEDL ()) fault_spec

(* 1. Two data sources that overlap semantically: a store's "album"
   catalogue and a radio station's "record" playlist. *)

let store_db =
  let album =
    ok
      (Relational.create_table ~name:"album" ~key:"id"
         [ ("id", Relational.CStr); ("title", Relational.CStr);
           ("price", Relational.CFloat) ])
  in
  let album =
    ok
      (Relational.insert_all album
         [
           [ Relational.str_cell "a1"; Relational.str_cell "Blue Train";
             Relational.float_cell 9.99 ];
           [ Relational.str_cell "a2"; Relational.str_cell "Kind of Blue";
             Relational.float_cell 12.50 ];
         ])
  in
  ok (Relational.add_table (Relational.create_db "store") album)

let radio_db =
  let record =
    ok
      (Relational.create_table ~name:"record" ~key:"rid"
         [ ("rid", Relational.CStr); ("name", Relational.CStr);
           ("airplays", Relational.CInt) ])
  in
  let record =
    ok
      (Relational.insert_all record
         [
           [ Relational.str_cell "r7"; Relational.str_cell "Kind of Blue";
             Relational.int_cell 41 ];
           [ Relational.str_cell "r8"; Relational.str_cell "A Love Supreme";
             Relational.int_cell 17 ];
         ])
  in
  ok (Relational.add_table (Relational.create_db "radio") record)

let () =
  (* 2. Wrap both sources: this extracts their schemas into the
     repository and materialises their extents. *)
  let repo = Repository.create () in
  let _ = ok (Wrapper.wrap ?resilience repo store_db) in
  let _ = ok (Wrapper.wrap ?resilience repo radio_db) in

  (* 3. Start the incremental workflow.  The initial global schema is a
     federated schema: all objects of both sources, prefixed with their
     provenance - queryable before any integration work. *)
  let wf =
    ok (Workflow.start ?resilience repo ~name:"music" ~sources:[ "store"; "radio" ])
  in
  Printf.printf "initial global schema: %s\n" (Workflow.global_name wf);
  let count = ok (Result.map_error (Fmt.str "%a" Automed_query.Processor.pp_error)
                    (Workflow.run_query wf "count(<<store:album>>)")) in
  Printf.printf "albums visible on day one: %s\n\n" (Value.to_string count);

  (* 4. Declare the semantic intersection: albums and records are the
     same concept.  Each side gives a forward (add) query tagging its
     contribution; reverse (delete) queries are derived automatically. *)
  let spec =
    {
      Intersection.name = "i_release";
      sides =
        [
          {
            Intersection.schema = "store";
            mappings =
              [
                { Intersection.target = Scheme.table "URelease";
                  forward = Parser.parse_exn "[{'store', k} | k <- <<album>>]";
                  restore = None };
                { Intersection.target = Scheme.column "URelease" "title";
                  forward =
                    Parser.parse_exn
                      "[{'store', k, x} | {k,x} <- <<album,title>>]";
                  restore = None };
              ];
          };
          {
            Intersection.schema = "radio";
            mappings =
              [
                { Intersection.target = Scheme.table "URelease";
                  forward = Parser.parse_exn "[{'radio', k} | k <- <<record>>]";
                  restore = None };
                { Intersection.target = Scheme.column "URelease" "title";
                  forward =
                    Parser.parse_exn
                      "[{'radio', k, x} | {k,x} <- <<record,name>>]";
                  restore = None };
              ];
          };
        ];
    }
  in
  let it = ok (Workflow.integrate wf spec) in
  Printf.printf "created intersection schema %s: %d user transformations\n"
    (Automed_model.Schema.name it.Workflow.outcome.Intersection.intersection)
    it.Workflow.outcome.Intersection.manual_steps;
  Printf.printf "new global schema: %s\n\n" (Workflow.global_name wf);

  (* 5. Query the integrated concept.  Extents are the bag union of both
     sides; provenance tags tell contributions apart.  Under an injected
     fault profile the queries run in degraded mode: a failing source is
     skipped (contributing its certain-answer lower bound of nothing)
     and named in a completeness footer, instead of failing the query. *)
  (match (resilience, fault_spec) with
  | Some res, Some (source, rate) ->
      Resilience.inject res ~source (Resilience.Fault.rate rate);
      Printf.printf "injected fault profile: %s fails %.0f%% of fetches\n\n"
        source (100.0 *. rate)
  | _ -> ());
  let degraded_footers = ref 0 in
  let run text =
    match resilience with
    | None -> (
        match Workflow.run_query wf text with
        | Ok v -> Printf.printf "%s\n  = %s\n" text (Value.to_string v)
        | Error e -> failwith (Fmt.str "%a" Automed_query.Processor.pp_error e))
    | Some _ -> (
        match Workflow.run_query_degraded wf text with
        | Ok (v, c) ->
            Printf.printf "%s\n  = %s\n" text (Value.to_string v);
            Printf.printf "  -- completeness: %s\n"
              (Fmt.str "%a" Processor.pp_completeness c);
            if not c.Processor.complete then incr degraded_footers
        | Error e -> failwith (Fmt.str "%a" Automed_query.Processor.pp_error e))
  in
  run "count(<<URelease>>)";
  run "[t | {s, k, t} <- <<URelease,title>>; s = 'radio']";
  (* titles known to both sources: a join within the intersection *)
  run
    "[t | {s1, k1, t} <- <<URelease,title>>; {s2, k2, t2} <- \
     <<URelease,title>>; s1 = 'store'; s2 = 'radio'; t = t2]";
  (* un-integrated content remains available through its prefixed name *)
  run "[{k, p} | {k, p} <- <<store:album,price>>]";

  (match (resilience, fault_spec) with
  | Some res, Some (source, rate) ->
      Printf.printf "\nfaults injected on %s: %d (queries degraded: %d)\n"
        source (Resilience.stats res source).Resilience.faults_injected
        !degraded_footers;
      (* with a certain fault (rate 1) every query must have been answered
         from the surviving sources, i.e. every footer reported a skip *)
      if rate >= 1.0 && !degraded_footers = 0 then (
        prerr_endline "expected degraded answers under a certain fault";
        exit 1)
  | _ -> ());

  (* 6. Static analysis: the pathway network we just built lints clean. *)
  let covered = Option.map Resilience.sources resilience in
  let diags = Automed_analysis.Analysis.lint_repository ?covered repo in
  List.iter
    (fun d -> print_endline (Fmt.str "%a" Automed_analysis.Diagnostic.pp d))
    diags;
  Printf.printf "\npathway linter: %s\n"
    (Fmt.str "%a" Automed_analysis.Diagnostic.pp_summary
       (Automed_analysis.Diagnostic.count diags));
  if Automed_analysis.Diagnostic.has_errors diags then exit 1
