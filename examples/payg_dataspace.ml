(* Pay-as-you-go dataspace management.

   Shows the properties the paper claims for the incremental methodology:

   - data services are available before any integration (step 2);
   - the Schema Matching tool suggests where to integrate next (step 4);
   - every iteration strictly grows what is answerable;
   - earlier global-schema versions remain registered and queryable, so
     running services never break while integration proceeds.

   Run with:  dune exec examples/payg_dataspace.exe *)

module Scheme = Automed_base.Scheme
module Value = Automed_iql.Value
module Parser = Automed_iql.Parser
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Matcher = Automed_matching.Matcher
module Workflow = Automed_integration.Workflow
module Intersection = Automed_integration.Intersection
module Sources = Automed_ispider.Sources
module Queries = Automed_ispider.Queries

let ok = function Ok v -> v | Error e -> failwith e

let answerable wf (q : Queries.query) =
  match Parser.parse q.Queries.global_text with
  | Error _ -> false
  | Ok ast -> Workflow.answerable wf ast

let report wf =
  let n = List.length (List.filter (answerable wf) Queries.all) in
  Printf.printf "  global schema %-12s -> %d/7 priority queries answerable\n"
    (Workflow.global_name wf) n

let () =
  let repo = Repository.create () in
  ok (Sources.wrap_all repo (Sources.generate ()));
  let wf =
    ok
      (Workflow.start repo ~name:"payg"
         ~sources:[ Sources.pedro_name; Sources.gpmdb_name; Sources.pepseeker_name ])
  in

  Printf.printf "day one: the federated schema already serves queries.\n";
  report wf;
  (match Workflow.run_query wf "count(<<pepseeker:iontable>>)" with
  | Ok v -> Printf.printf "  e.g. count(<<pepseeker:iontable>>) = %s\n" (Value.to_string v)
  | Error e -> failwith (Fmt.str "%a" Processor.pp_error e));

  Printf.printf
    "\nbefore integrating, consult the Schema Matching tool (step 4):\n";
  let suggestions =
    ok (Workflow.suggestions ~threshold:0.45 wf ~left:"pedro" ~right:"gpmdb")
  in
  List.iteri
    (fun i s ->
      if i < 5 then Printf.printf "  %s\n" (Fmt.str "%a" Matcher.pp_suggestion s))
    suggestions;

  Printf.printf
    "\nintegrate the top correspondence as an intersection schema:\n";
  let spec =
    {
      Intersection.name = "i_protein";
      sides =
        [
          {
            Intersection.schema = "pedro";
            mappings =
              [
                { Intersection.target = Scheme.table "UProtein";
                  forward = Parser.parse_exn "[{'PEDRO', k} | k <- <<protein>>]";
                  restore = None };
                { Intersection.target = Scheme.column "UProtein" "accession_num";
                  forward =
                    Parser.parse_exn
                      "[{'PEDRO', k, x} | {k,x} <- <<protein,accession_num>>]";
                  restore = None };
              ];
          };
          {
            Intersection.schema = "gpmdb";
            mappings =
              [
                { Intersection.target = Scheme.table "UProtein";
                  forward = Parser.parse_exn "[{'gpmDB', k} | k <- <<proseq>>]";
                  restore = None };
                { Intersection.target = Scheme.column "UProtein" "accession_num";
                  forward =
                    Parser.parse_exn
                      "[{'gpmDB', k, x} | {k,x} <- <<proseq,label>>]";
                  restore = None };
              ];
          };
          {
            Intersection.schema = "pepseeker";
            mappings =
              [
                { Intersection.target = Scheme.table "UProtein";
                  forward =
                    Parser.parse_exn
                      "[{'pepSeeker', x} | {k, x} <- <<proteinhit,proteinid>>]";
                  restore = None };
                { Intersection.target = Scheme.column "UProtein" "accession_num";
                  forward =
                    Parser.parse_exn
                      "[{'pepSeeker', k, x} | {k,x} <- <<protein,accession>>]";
                  restore = None };
              ];
          };
        ];
    }
  in
  let _it = ok (Workflow.integrate wf spec) in
  report wf;
  (match
     Workflow.run_query wf
       (Printf.sprintf "[{s,k} | {s,k,a} <- <<UProtein,accession_num>>; a = '%s']"
          Sources.Known.accession)
   with
  | Ok v ->
      Printf.printf "  protein %s found in: %s\n" Sources.Known.accession
        (Value.to_string v)
  | Error e -> failwith (Fmt.str "%a" Processor.pp_error e));

  Printf.printf
    "\nan ad-hoc extension (footnote 8) unlocks the description query:\n";
  let _it =
    ok
      (Workflow.integrate_adhoc wf ~name:"x_descr"
         {
           Intersection.schema = "pedro";
           mappings =
             [
               { Intersection.target = Scheme.column "UProtein" "description";
                 forward =
                   Parser.parse_exn
                     "[{'PEDRO', k, x} | {k,x} <- <<protein,description>>]";
                 restore = None };
             ];
         })
  in
  report wf;

  Printf.printf
    "\nhistory: every version of the global schema remains queryable -\n";
  let proc = Workflow.processor wf in
  List.iter
    (fun v ->
      let schema = Printf.sprintf "payg_v%d" v in
      match Processor.run_string proc ~schema "count(<<pedro:protein>>)" with
      | Ok value -> Printf.printf "  %s: count(<<pedro:protein>>) = %s\n" schema (Value.to_string value)
      | Error _ ->
          (* after integration the object moved into UProtein *)
          Printf.printf "  %s: <<pedro:protein>> integrated into <<UProtein>>\n"
            schema)
    [ 0; 1; 2 ];
  Printf.printf "\ntotal manual transformations so far: %d\n" (Workflow.manual_steps wf);

  (* static analysis: every pathway registered along the way lints clean *)
  let diags = Automed_analysis.Analysis.lint_repository repo in
  List.iter
    (fun d -> print_endline (Fmt.str "%a" Automed_analysis.Diagnostic.pp d))
    diags;
  Printf.printf "\npathway linter: %s\n"
    (Fmt.str "%a" Automed_analysis.Diagnostic.pp_summary
       (Automed_analysis.Diagnostic.count diags));
  if Automed_analysis.Diagnostic.has_errors diags then exit 1
