(* A bibliographic dataspace across three data models.

   dblp is relational, arxiv is an XML document, the library catalogue
   is CSV - and one pay-as-you-go workflow integrates them: publications
   first, years second, everything else stays federated but queryable.

   Run with:  dune exec examples/bibliographic_dataspace.exe *)

module Repository = Automed_repository.Repository
module Workflow = Automed_integration.Workflow
module Value = Automed_iql.Value
module Bibliome = Automed_bibliome.Bibliome

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let repo = Repository.create () in
  ok (Bibliome.setup repo);
  Printf.printf "wrapped: dblp (relational), arxiv (XML), library (CSV)\n";
  let wf = ok (Bibliome.integrate repo) in
  Printf.printf "integrated: %s after %d user-defined transformations\n\n"
    (Workflow.global_name wf) (Workflow.manual_steps wf);
  List.iter
    (fun (c : Bibliome.check) ->
      match Workflow.run_query wf c.Bibliome.query with
      | Ok v ->
          Printf.printf "%s\n  %s\n  = %s%s\n\n" c.Bibliome.label
            c.Bibliome.query (Value.to_string v)
            (if Value.to_string v = c.Bibliome.expected then ""
             else Printf.sprintf "   (expected %s!)" c.Bibliome.expected)
      | Error e ->
          failwith (Fmt.str "%s: %a" c.Bibliome.label
                      Automed_query.Processor.pp_error e))
    Bibliome.checks
