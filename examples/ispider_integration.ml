(* The full iSpider case study (paper Section 3), narrated.

   Replays the query-driven, intersection-schema-based integration of
   Pedro, gpmDB and PepSeeker; prints every iteration's mappings table,
   the growing global schema, and the answers to the seven priority
   queries; then contrasts the effort with the classical baseline.

   Run with:  dune exec examples/ispider_integration.exe *)

module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Workflow = Automed_integration.Workflow
module Intersection = Automed_integration.Intersection
module Sources = Automed_ispider.Sources
module Queries = Automed_ispider.Queries
module Intersection_run = Automed_ispider.Intersection_run
module Classical_run = Automed_ispider.Classical_run

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let ds = Sources.generate () in
  let repo = Repository.create () in
  ok (Sources.wrap_all repo ds);
  Printf.printf "sources wrapped:\n";
  List.iter
    (fun name ->
      Printf.printf "  %-10s %3d schema objects\n" name
        (Schema.object_count (Repository.schema_exn repo name)))
    [ Sources.pedro_name; Sources.gpmdb_name; Sources.pepseeker_name ];

  let run = ok (Intersection_run.execute repo) in
  let wf = run.Intersection_run.workflow in

  Printf.printf "\nincremental integration (one iteration per priority query):\n";
  List.iter
    (fun (it : Workflow.iteration) ->
      Printf.printf "\niteration %d: %s\n" it.Workflow.index
        it.Workflow.description;
      List.iter
        (fun (side, (p : Transform.pathway)) ->
          let shape = ok (Transform.intersection_shape p) in
          Printf.printf "  %s: %d adds" side (List.length shape.Transform.adds);
          List.iter
            (fun (target, q) ->
              Printf.printf "\n    add %s %s"
                (Automed_base.Scheme.to_string target)
                (Automed_iql.Ast.to_string q))
            shape.Transform.adds;
          Printf.printf
            "\n    (+ %d auto extends, %d auto deletes, %d auto contracts)\n"
            (List.length shape.Transform.extends)
            (List.length shape.Transform.deletes)
            (List.length shape.Transform.contracts))
        it.Workflow.outcome.Intersection.side_pathways;
      Printf.printf "  -> global schema %s (%d objects)\n" it.Workflow.global_name
        (Schema.object_count (Repository.schema_exn repo it.Workflow.global_name)))
    (Workflow.iterations wf);

  Printf.printf "\ntotal user-defined transformations: %d (paper: 26)\n"
    run.Intersection_run.total_manual;

  Printf.printf "\nthe seven priority queries over %s:\n" (Workflow.global_name wf);
  List.iter
    (fun (q : Queries.query) ->
      match Workflow.run_query wf q.Queries.global_text with
      | Ok (Value.Bag b) ->
          let gt = q.Queries.ground_truth ds in
          Printf.printf "  Q%d (%s)\n      %d answers, ground truth %s\n"
            q.Queries.number q.Queries.title (Value.Bag.cardinal b)
            (if Value.Bag.equal b gt then "MATCHES" else "DIFFERS");
      | Ok v -> Printf.printf "  Q%d: unexpected %s\n" q.Queries.number (Value.to_string v)
      | Error e ->
          Printf.printf "  Q%d: error %s\n" q.Queries.number
            (Fmt.str "%a" Processor.pp_error e))
    Queries.all;

  (* the classical baseline, for contrast *)
  let repo2 = Repository.create () in
  ok (Sources.wrap_all repo2 ds);
  let c = ok (Classical_run.execute repo2) in
  Printf.printf
    "\nclassical baseline: %d non-trivial transformations \
     (gpmDB->GS1 %d, PepSeeker->GS1 %d, PepSeeker->GS2 %d)\n"
    c.Classical_run.total_manual c.Classical_run.gs1_gpm c.Classical_run.gs1_pep
    c.Classical_run.gs2_pep;
  Printf.printf "intersection methodology needed %.1f%% of the classical effort.\n"
    (100.0
    *. float_of_int run.Intersection_run.total_manual
    /. float_of_int c.Classical_run.total_manual);

  (* static analysis: both integration styles produce lint-clean networks *)
  List.iter
    (fun (label, r) ->
      let diags = Automed_analysis.Analysis.lint_repository r in
      List.iter
        (fun d -> print_endline (Fmt.str "%a" Automed_analysis.Diagnostic.pp d))
        diags;
      Printf.printf "pathway linter (%s): %s\n" label
        (Fmt.str "%a" Automed_analysis.Diagnostic.pp_summary
           (Automed_analysis.Diagnostic.count diags));
      if Automed_analysis.Diagnostic.has_errors diags then exit 1)
    [ ("intersection", repo); ("classical", repo2) ]
