(** Live schema evolution: crash-safe source churn with incremental
    global-schema repair.

    Dataspace sources churn: new ones appear, old ones disappear, and
    surviving ones alter their shape (tables and columns are added,
    dropped, renamed).  Re-running the whole integration workflow after
    every such delta would cost O(repository); this module repairs the
    current global schema {e incrementally}, at a cost proportional to
    the delta:

    - every evolution produces global version [v(N+1)] from [vN] through
      one delta-sized {e chain pathway} ([vN -> v(N+1)] carrying only
      the extend/contract/rename steps of the delta) — the query
      processor derives every untouched object of the new version
      through the chain from the previous version's cached extents;
    - a new (or newly added) source feeds its data through a delta-sized
      {e contribution pathway} ({!Repository.add_contribution});
    - pathways stranded by an alter are {e patched} in place
      (modification propagation over the BAV step algebra: renames are
      substituted into input positions, lost definitions degrade to
      their [Void] certain-answer lower bound), or quarantined when no
      patch exists;
    - a dropped source is {e retired}, not deleted: its schema and
      pathways stay registered (old global versions remain well-defined
      and queryable), its extents are cleared, every data-bearing
      pathway out of it is quarantined, and the query processor reports
      it as an {e evolved-away} skip in degraded runs.

    Every repository mutation goes through the journaled repository API,
    so an evolution is crash-safe: a crash at any op boundary replays
    bit-identically through {!Automed_durable.Durable.recover}.  Cache
    invalidation is targeted at the touched sources only
    ({!Workflow.evolve_version}), which is what makes post-evolution
    re-querying cheap. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Workflow = Automed_integration.Workflow

type delta =
  | Add_source of Schema.t * (Scheme.t * Value.Bag.t) list
      (** a new source schema with its stored extents *)
  | Drop_source of string  (** the source evolved away *)
  | Alter of string * Repository.schema_alter list
      (** in-place shape changes of one source, applied in order *)

type plan = {
  pl_kind : string;  (** human description of the delta *)
  pl_prev : string;  (** global version the evolution starts from *)
  pl_next : string;  (** global version it produces *)
  pl_sources_touched : string list;
      (** sources whose cache entries are invalidated *)
  pl_chain_steps : int;  (** steps of the delta-sized chain pathway *)
  pl_new_contributions : int;
  pl_pathways_patched : string list;  (** ["from -> to"] labels *)
  pl_pathways_quarantined : string list;
  pl_objects_added : Scheme.t list;  (** objects of the next version *)
  pl_objects_dropped : Scheme.t list;
  pl_objects_renamed : (Scheme.t * Scheme.t) list;
}
(** The impact of an evolution: what {!evolve} will (or did) change.
    {!preview} computes it without mutating anything — the CLI's
    [automed evolve --dry-run]. *)

val pp_plan : plan Fmt.t

val preview : Workflow.t -> delta -> (plan, string) result
(** Dry run: validates the delta against the current repository state
    and reports the repair {!plan} without performing any mutation.
    [pl_next] shows the next version number speculatively;
    [pl_pathways_patched] lists every pathway the repair will examine. *)

val evolve :
  ?description:string ->
  Workflow.t ->
  delta ->
  (Workflow.evolution * plan, string) result
(** Applies the delta: repairs the pathway network, registers the next
    global version through the delta-sized chain, advances the workflow,
    invalidates exactly the touched sources' cache entries and flushes
    the journal.  Dispatches on the delta to {!evolve_add_source},
    {!evolve_drop_source} or {!evolve_alter}. *)

val evolve_add_source :
  ?description:string ->
  Workflow.t ->
  Schema.t ->
  extents:(Scheme.t * Value.Bag.t) list ->
  (Workflow.evolution * plan, string) result
(** Registers the schema and its extents, then exposes every object of
    the new source (prefixed, [<<S:o>>]) in the next global version:
    the chain extends the new names, one contribution pathway renames
    the source's objects into them.  The source joins the workflow's
    extensional set (later {!Workflow.integrate} iterations federate
    it) and is registered with the resilience registry when one is
    attached. *)

val evolve_drop_source :
  ?description:string ->
  Workflow.t ->
  string ->
  (Workflow.evolution * plan, string) result
(** Quarantines every data-bearing pathway out of the source, retires it
    ({!Repository.retire_source}: schema and pathways stay, extents are
    cleared), marks it evolved in the resilience registry, and contracts
    its prefixed objects out of the next global version.  Old versions
    keep the objects with [Void] certain answers; degraded runs report
    the source as evolved away (a distinct skip kind in lineage and
    completeness). *)

val evolve_alter :
  ?description:string ->
  Workflow.t ->
  string ->
  Repository.schema_alter list ->
  (Workflow.evolution * plan, string) result
(** Applies the alters to the source schema (extents re-key/drop along),
    patches every pathway out of the source (quarantining any the
    repository re-validation still rejects), and builds the next global
    version: added objects are extended into it (fed by a new
    delta-sized contribution), dropped ones contracted out, renamed ones
    renamed along the chain. *)

(** {1 Modification-propagation internals}

    Exposed for tests and for custom repairs through
    {!Workflow.evolve_version}. *)

val subst_inputs :
  from_:Scheme.t -> to_:Scheme.t -> Transform.prim list -> Transform.prim list
(** Substitutes a source-side rename into the input positions of a step
    sequence (queries, consumed slots, delete/contract subjects) while
    leaving introduced target-side names untouched. *)

val patch_steps :
  Schema.t -> Transform.prim list -> Transform.prim list * Schema.t
(** Tolerant replay against an evolved source schema: steps that no
    longer work degrade to their best information-preserving repair
    ([Void] lower bounds) or are dropped.  Returns the repaired steps
    and the derived final state. *)
