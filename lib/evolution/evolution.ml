module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Quarantine = Automed_analysis.Quarantine
module Processor = Automed_query.Processor
module Resilience = Automed_resilience.Resilience
module Workflow = Automed_integration.Workflow
module Telemetry = Automed_telemetry.Telemetry

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

type delta =
  | Add_source of Schema.t * (Scheme.t * Value.Bag.t) list
  | Drop_source of string
  | Alter of string * Repository.schema_alter list

type plan = {
  pl_kind : string;
  pl_prev : string;
  pl_next : string;
  pl_sources_touched : string list;
  pl_chain_steps : int;
  pl_new_contributions : int;
  pl_pathways_patched : string list;
  pl_pathways_quarantined : string list;
  pl_objects_added : Scheme.t list;
  pl_objects_dropped : Scheme.t list;
  pl_objects_renamed : (Scheme.t * Scheme.t) list;
}

let pp_plan ppf p =
  Fmt.pf ppf "%s: %s -> %s" p.pl_kind p.pl_prev p.pl_next;
  Fmt.pf ppf "@\n  chain pathway: %d step%s" p.pl_chain_steps
    (if p.pl_chain_steps = 1 then "" else "s");
  if p.pl_new_contributions > 0 then
    Fmt.pf ppf "@\n  new contribution pathway%s: %d"
      (if p.pl_new_contributions = 1 then "" else "s")
      p.pl_new_contributions;
  List.iter
    (fun l -> Fmt.pf ppf "@\n  patch pathway: %s" l)
    p.pl_pathways_patched;
  List.iter
    (fun l -> Fmt.pf ppf "@\n  quarantine pathway: %s" l)
    p.pl_pathways_quarantined;
  List.iter
    (fun o -> Fmt.pf ppf "@\n  + global object %a" Scheme.pp o)
    p.pl_objects_added;
  List.iter
    (fun o -> Fmt.pf ppf "@\n  - global object %a" Scheme.pp o)
    p.pl_objects_dropped;
  List.iter
    (fun (a, b) ->
      Fmt.pf ppf "@\n  ~ global object %a -> %a" Scheme.pp a Scheme.pp b)
    p.pl_objects_renamed;
  Fmt.pf ppf "@\n  cache invalidation: %s"
    (String.concat ", " p.pl_sources_touched)

let label (p : Transform.pathway) =
  Printf.sprintf "%s -> %s" p.from_schema p.to_schema

(* -- modification propagation: patching stranded steps ------------------- *)

let query_refs q =
  let refs = ref [] in
  ignore
    (Ast.subst_schemes
       (fun s ->
         refs := s :: !refs;
         None)
       q);
  !refs

let refs_ok state q =
  List.for_all (fun s -> Schema.mem s state) (query_refs q)

(* Rename [a -> b] substituted into the {e input positions} of a step
   sequence: scheme references inside queries, the consumed slot of
   rename/id, and the subject of delete/contract — never the subject of
   add/extend or the produced slot of rename/id, which name objects the
   pathway introduces on the target side and must keep their names so
   downstream schema versions stay well-defined. *)
let subst_inputs ~from_:a ~to_:b steps =
  let rq q = Ast.rename_scheme ~from_:a ~to_:b q in
  let ro o = if Scheme.equal o a then b else o in
  List.map
    (fun (st : Transform.prim) ->
      match st with
      | Transform.Add (o, q) -> Transform.Add (o, rq q)
      | Transform.Delete (o, q) -> Transform.Delete (ro o, rq q)
      | Transform.Extend (o, ql, qu) -> Transform.Extend (o, rq ql, rq qu)
      | Transform.Contract (o, ql, qu) ->
          Transform.Contract (ro o, rq ql, rq qu)
      | Transform.Rename (x, y) -> Transform.Rename (ro x, y)
      | Transform.Id (x, y) -> Transform.Id (ro x, y))
    steps

(* Tolerant replay of a step sequence against an evolved source schema.
   Every step that no longer works is degraded to the best information-
   preserving repair instead of failing the fold:

   - a definition whose query lost a referenced object falls back to the
     [Void] lower bound (the object survives, its certain answers become
     empty);
   - a step consuming an object the evolution dropped is dropped or
     becomes a [Void]-bounded contract;
   - a rename whose input is gone re-introduces its output as a [Void]
     extend, so target-side names stay defined.

   Returns the kept/repaired steps and the final derived state. *)
let patch_steps src steps =
  let apply state (st : Transform.prim) =
    match Transform.apply_prim state st with
    | Ok state' -> (Some st, state')
    | Error _ -> (None, state)
  in
  let step state (st : Transform.prim) =
    match st with
    | Transform.Add (o, q) ->
        if Schema.mem o state then (None, state)
        else if refs_ok state q then apply state st
        else apply state (Transform.Extend (o, Ast.Void, Ast.Any))
    | Transform.Extend (o, ql, qu) ->
        if Schema.mem o state then (None, state)
        else if
          refs_ok state ql && (qu = Ast.Any || refs_ok state qu)
        then apply state st
        else apply state (Transform.Extend (o, Ast.Void, Ast.Any))
    | Transform.Delete (o, q) ->
        if not (Schema.mem o state) then (None, state)
        else (
          match Transform.apply_prim state st with
          | Ok state' when refs_ok state' q -> (Some st, state')
          | _ -> apply state (Transform.Contract (o, Ast.Void, Ast.Any)))
    | Transform.Contract (o, ql, qu) ->
        if not (Schema.mem o state) then (None, state)
        else (
          match Transform.apply_prim state st with
          | Ok state'
            when (ql = Ast.Void || refs_ok state' ql)
                 && (qu = Ast.Any || refs_ok state' qu) ->
              (Some st, state')
          | _ -> apply state (Transform.Contract (o, Ast.Void, Ast.Any)))
    | Transform.Rename (x, y) ->
        if Schema.mem x state then apply state st
        else if Schema.mem y state then (None, state)
        else apply state (Transform.Extend (y, Ast.Void, Ast.Any))
    | Transform.Id (x, _) ->
        if Schema.mem x state then apply state st else (None, state)
  in
  let kept, final =
    List.fold_left
      (fun (acc, state) st ->
        let st', state' = step state st in
        ((match st' with Some s -> s :: acc | None -> acc), state'))
      ([], src) steps
  in
  (List.rev kept, final)

(* After patching, force agreement with the registered target: contract
   derived objects the target does not know (e.g. an object the
   evolution just added, which only the {e next} version exposes) and —
   for exact pathways — re-extend target objects the patch lost. *)
let reconcile repo (p : Transform.pathway) kept final =
  let target = Repository.schema_exn repo p.to_schema in
  let extra =
    List.filter (fun o -> not (Schema.mem o target)) (Schema.objects final)
  in
  let steps =
    kept
    @ List.map (fun o -> Transform.Contract (o, Ast.Void, Ast.Any)) extra
  in
  if Repository.is_contribution repo p then steps
  else
    let derived =
      List.filter (fun o -> not (List.mem o extra)) (Schema.objects final)
    in
    let missing =
      List.filter
        (fun o -> not (List.mem o derived))
        (Schema.objects target)
    in
    steps
    @ List.map (fun o -> Transform.Extend (o, Ast.Void, Ast.Any)) missing

let patched_pathway repo ~renames (p : Transform.pathway) =
  let src = Repository.schema_exn repo p.from_schema in
  let steps =
    List.fold_left
      (fun steps (a, b) -> subst_inputs ~from_:a ~to_:b steps)
      p.steps renames
  in
  let kept, final = patch_steps src steps in
  let steps = reconcile repo p kept final in
  if steps = p.steps then None else Some { p with Transform.steps }

(* Repairs every pathway flowing out of the altered source, replacing
   each through the journaled repository API; a patch the repository
   still rejects (it re-validates well-formedness and endpoint
   agreement) falls back to quarantine, so the network is never left
   with a stranded pathway. *)
let repair_pathways_from repo ~renames source =
  List.fold_left
    (fun acc (p : Transform.pathway) ->
      let* patched = acc in
      match patched_pathway repo ~renames p with
      | None -> Ok patched
      | Some p' -> (
          match Repository.replace_pathway repo ~old:p p' with
          | Ok () ->
              Telemetry.count "evolution.pathways_patched";
              Ok (label p :: patched)
          | Error _ ->
              let* _q = Quarantine.quarantine repo p in
              Ok (label p :: patched)))
    (Ok [])
    (Repository.pathways_from repo source)

(* -- the three evolution operations -------------------------------------- *)

let prefixed_of source g =
  List.filter
    (fun o ->
      match Scheme.unprefix o with
      | Some (s, _) -> s = source
      | None -> false)
    (Schema.objects g)

let contribution_steps src ~exported =
  let others =
    List.filter (fun o -> not (List.mem o exported)) (Schema.objects src)
  in
  List.map (fun o -> Transform.Contract (o, Ast.Void, Ast.Any)) others
  @ List.map
      (fun o -> Transform.Rename (o, Scheme.prefix (Schema.name src) o))
      exported

let register_with_resilience wf name =
  match Processor.resilience (Workflow.processor wf) with
  | Some r -> Resilience.register r name
  | None -> ()

let preview_add_source wf (s : Schema.t) =
  let repo = Workflow.repository wf in
  let name = Schema.name s in
  let* () =
    if Repository.mem_schema repo name then
      err "schema %s is already registered" name
    else Ok ()
  in
  let prev = Workflow.global_name wf in
  Ok
    {
      pl_kind = Printf.sprintf "add source %s" name;
      pl_prev = prev;
      pl_next = Printf.sprintf "%s (v%d)" prev (Workflow.version wf + 1);
      pl_sources_touched = [ name ];
      pl_chain_steps = Schema.object_count s;
      pl_new_contributions = 1;
      pl_pathways_patched = [];
      pl_pathways_quarantined = [];
      pl_objects_added =
        List.map (fun o -> Scheme.prefix name o) (Schema.objects s);
      pl_objects_dropped = [];
      pl_objects_renamed = [];
    }

let evolve_add_source ?description wf (s : Schema.t) ~extents =
  let repo = Workflow.repository wf in
  let name = Schema.name s in
  let* plan = preview_add_source wf s in
  let* ev =
    Workflow.evolve_version
      ~description:
        (Option.value description
           ~default:(Printf.sprintf "add source %s" name))
      wf ~sources_touched:[ name ]
      ~repair:(fun ~prev ~next ->
        let* () = Repository.add_schema repo s in
        let* () =
          List.fold_left
            (fun acc (o, bag) ->
              let* () = acc in
              Repository.set_extent repo ~schema:name o bag)
            (Ok ()) extents
        in
        let chain =
          {
            Transform.from_schema = prev;
            to_schema = next;
            steps =
              List.map
                (fun o ->
                  Transform.Extend
                    (Scheme.prefix name o, Ast.Void, Ast.Any))
                (Schema.objects s);
          }
        in
        let* () = Repository.add_pathway repo chain in
        let contrib =
          {
            Transform.from_schema = name;
            to_schema = next;
            steps = contribution_steps s ~exported:(Schema.objects s);
          }
        in
        let* () = Repository.add_contribution repo contrib in
        register_with_resilience wf name;
        Workflow.note_source_added wf name;
        Ok ())
  in
  Telemetry.count "evolution.sources_added";
  Ok (ev, { plan with pl_next = ev.Workflow.ev_next })

let preview_drop_source wf source =
  let repo = Workflow.repository wf in
  let* () =
    if not (Repository.mem_schema repo source) then
      err "schema %s is not registered" source
    else if Repository.retired repo source then
      err "source %s has already evolved away" source
    else Ok ()
  in
  let prev = Workflow.global_name wf in
  let g = Repository.schema_exn repo prev in
  let doomed = prefixed_of source g in
  let quarantined =
    List.filter_map
      (fun (p : Transform.pathway) ->
        if Quarantine.is_quarantined p then None else Some (label p))
      (Repository.pathways_from repo source)
  in
  Ok
    {
      pl_kind = Printf.sprintf "drop source %s" source;
      pl_prev = prev;
      pl_next = Printf.sprintf "%s (v%d)" prev (Workflow.version wf + 1);
      pl_sources_touched = [ source ];
      pl_chain_steps = List.length doomed;
      pl_new_contributions = 0;
      pl_pathways_patched = [];
      pl_pathways_quarantined = quarantined;
      pl_objects_added = [];
      pl_objects_dropped = doomed;
      pl_objects_renamed = [];
    }

let evolve_drop_source ?description wf source =
  let repo = Workflow.repository wf in
  let* plan = preview_drop_source wf source in
  let* ev =
    Workflow.evolve_version
      ~description:
        (Option.value description
           ~default:(Printf.sprintf "drop source %s" source))
      wf ~sources_touched:[ source ]
      ~repair:(fun ~prev ~next ->
        (* quarantine every data-bearing pathway out of the source, so
           no schema version — old or new — fetches it again *)
        let* () =
          List.fold_left
            (fun acc (p : Transform.pathway) ->
              let* () = acc in
              if Quarantine.is_quarantined p then Ok ()
              else
                let* _q = Quarantine.quarantine repo p in
                Ok ())
            (Ok ())
            (Repository.pathways_from repo source)
        in
        let* () = Repository.retire_source repo source in
        (match Processor.resilience (Workflow.processor wf) with
        | Some r when Resilience.covers r source ->
            Resilience.retire r ~source
        | _ -> ());
        let g = Repository.schema_exn repo prev in
        let chain =
          {
            Transform.from_schema = prev;
            to_schema = next;
            steps =
              List.map
                (fun o -> Transform.Contract (o, Ast.Void, Ast.Any))
                (prefixed_of source g);
          }
        in
        let* () = Repository.add_pathway repo chain in
        Workflow.note_source_dropped wf source;
        Ok ())
  in
  Telemetry.count "evolution.sources_dropped";
  Ok (ev, { plan with pl_next = ev.Workflow.ev_next })

(* The net schema-level effect of an alter batch, tracked over the
   global version's object set (prefixed names) to build the chain, and
   over the source's own names to build the added-objects contribution. *)
let alter_effects repo ~prev source alters =
  let* src0 =
    match Repository.schema repo source with
    | Some s ->
        if Repository.retired repo source then
          err "source %s has evolved away" source
        else Ok s
    | None -> err "schema %s is not registered" source
  in
  let g = Repository.schema_exn repo prev in
  let* _final, added_rev, dropped_rev, renamed_rev =
    List.fold_left
      (fun acc alter ->
        let* src, added, dropped, renamed = acc in
        match (alter : Repository.schema_alter) with
        | Repository.Alter_add_object (o, ty) ->
            let* src' = Schema.add_object ?extent_ty:ty o src in
            Ok (src', o :: added, dropped, renamed)
        | Repository.Alter_drop_object o ->
            let* src' = Schema.remove_object o src in
            let added' = List.filter (fun x -> not (Scheme.equal x o)) added in
            let dropped' =
              if List.exists (Scheme.equal o) added then dropped
              else o :: dropped
            in
            Ok (src', added', dropped', renamed)
        | Repository.Alter_rename_object (a, b) ->
            let* src' = Schema.rename_object a b src in
            if List.exists (Scheme.equal a) added then
              Ok
                ( src',
                  b :: List.filter (fun x -> not (Scheme.equal x a)) added,
                  dropped,
                  renamed )
            else Ok (src', added, dropped, (a, b) :: renamed))
      (Ok (src0, [], [], []))
      alters
  in
  let added = List.rev added_rev
  and dropped = List.rev dropped_rev
  and renamed = List.rev renamed_rev in
  (* chain steps over the previous global version: only objects the
     version actually exposes (redundancy dropping may have removed
     some) produce a step *)
  let p o = Scheme.prefix source o in
  let in_g = ref (Scheme.Set.of_list (Schema.objects g)) in
  let steps =
    List.filter_map
      (fun x -> x)
      (List.map
         (fun o ->
           if Scheme.Set.mem (p o) !in_g then None
           else begin
             in_g := Scheme.Set.add (p o) !in_g;
             Some (Transform.Extend (p o, Ast.Void, Ast.Any))
           end)
         added
      @ List.map
          (fun o ->
            if Scheme.Set.mem (p o) !in_g then begin
              in_g := Scheme.Set.remove (p o) !in_g;
              Some (Transform.Contract (p o, Ast.Void, Ast.Any))
            end
            else None)
          dropped
      @ List.map
          (fun (a, b) ->
            if Scheme.Set.mem (p a) !in_g then begin
              in_g := Scheme.Set.add (p b) (Scheme.Set.remove (p a) !in_g);
              Some (Transform.Rename (p a, p b))
            end
            else None)
          renamed)
  in
  Ok (steps, added, dropped, renamed)

let preview_alter wf source alters =
  let repo = Workflow.repository wf in
  let prev = Workflow.global_name wf in
  let* chain, added, dropped, renamed =
    alter_effects repo ~prev source alters
  in
  let p o = Scheme.prefix source o in
  Ok
    {
      pl_kind = Printf.sprintf "alter source %s" source;
      pl_prev = prev;
      pl_next = Printf.sprintf "%s (v%d)" prev (Workflow.version wf + 1);
      pl_sources_touched = [ source ];
      pl_chain_steps = List.length chain;
      pl_new_contributions = (if added = [] then 0 else 1);
      pl_pathways_patched =
        List.map label (Repository.pathways_from repo source);
      pl_pathways_quarantined = [];
      pl_objects_added = List.map p added;
      pl_objects_dropped = List.map p dropped;
      pl_objects_renamed = List.map (fun (a, b) -> (p a, p b)) renamed;
    }

let evolve_alter ?description wf source alters =
  let repo = Workflow.repository wf in
  let* () =
    if alters = [] then Error "alter batch is empty" else Ok ()
  in
  let* plan = preview_alter wf source alters in
  let patched = ref [] in
  let* ev =
    Workflow.evolve_version
      ~description:
        (Option.value description
           ~default:(Printf.sprintf "alter source %s" source))
      wf ~sources_touched:[ source ]
      ~repair:(fun ~prev ~next ->
        let* chain_steps, added, _dropped, renamed =
          alter_effects repo ~prev source alters
        in
        let* () =
          List.fold_left
            (fun acc alter ->
              let* () = acc in
              Repository.alter_schema repo source alter)
            (Ok ()) alters
        in
        let* labels = repair_pathways_from repo ~renames:renamed source in
        patched := labels;
        let chain =
          { Transform.from_schema = prev; to_schema = next;
            steps = chain_steps }
        in
        let* () = Repository.add_pathway repo chain in
        let* () =
          if added = [] then Ok ()
          else
            let src = Repository.schema_exn repo source in
            Repository.add_contribution repo
              {
                Transform.from_schema = source;
                to_schema = next;
                steps = contribution_steps src ~exported:added;
              }
        in
        Ok ())
  in
  Telemetry.count "evolution.sources_altered";
  Ok
    ( ev,
      {
        plan with
        pl_next = ev.Workflow.ev_next;
        pl_pathways_patched = List.rev !patched;
      } )

(* -- uniform front door --------------------------------------------------- *)

let preview wf = function
  | Add_source (s, _) -> preview_add_source wf s
  | Drop_source s -> preview_drop_source wf s
  | Alter (s, alters) -> preview_alter wf s alters

(* Each applied evolution runs inside an [evolution.evolve] span (kind +
   source attrs, so a trace tells an add from an alter) and lands one
   observation in the [evolution.repair_ms] histogram — the per-repair
   latency distribution that [automed status] and the E-E1 churn bench
   report as percentiles. *)
let delta_attrs = function
  | Add_source (s, _) -> [ ("kind", "add-source"); ("source", Schema.name s) ]
  | Drop_source s -> [ ("kind", "drop-source"); ("source", s) ]
  | Alter (s, alters) ->
      [ ("kind", "alter"); ("source", s);
        ("alters", string_of_int (List.length alters)) ]

let evolve ?description wf delta =
  Telemetry.with_span "evolution.evolve" ~attrs:(fun () -> delta_attrs delta)
  @@ fun () ->
  let t0 = Telemetry.wall_clock () in
  let result =
    match delta with
    | Add_source (s, extents) -> evolve_add_source ?description wf s ~extents
    | Drop_source s -> evolve_drop_source ?description wf s
    | Alter (s, alters) -> evolve_alter ?description wf s alters
  in
  if Telemetry.active () && Result.is_ok result then
    Telemetry.observe "evolution.repair_ms"
      ((Telemetry.wall_clock () -. t0) *. 1000.0);
  result
