module Repository = Automed_repository.Repository
module Workflow = Automed_integration.Workflow
module Resilience = Automed_resilience.Resilience
module Durable = Automed_durable.Durable
module Telemetry = Automed_telemetry.Telemetry
module Microjson = Automed_telemetry.Microjson
module Quarantine = Automed_analysis.Quarantine
module Transform = Automed_transform.Transform

type level = Good | Warn | Critical

let level_label = function
  | Good -> "ok"
  | Warn -> "warn"
  | Critical -> "critical"

let level_rank = function Good -> 0 | Warn -> 1 | Critical -> 2
let worst a b = if level_rank a >= level_rank b then a else b

type thresholds = { warn : float; critical : float }

let classify t v =
  if v >= t.critical then Critical else if v >= t.warn then Warn else Good

type config = {
  chain_depth : thresholds;
  quarantined : thresholds;
  void_degraded : thresholds;
  retired_sources : thresholds;
  journal_bytes : thresholds;
  breakers : thresholds;
  cache_churn : thresholds;
}

(* Calibrated against the shipped case study, with debt priced on the
   current version's {e active surface} (the pathways a query on the
   current global version can route through) rather than the whole
   repository — old versions stay registered forever, so whole-repo
   counts could only ever grow and no maintenance could pay them down.
   The integrated iSpider baseline classifies ok everywhere: its chain
   anchor is the integration version itself (0 link hops), the
   federation leaves 3 quarantine-shaped all-[Void] pathways and ~430
   individual [Void]-bound steps on the surface, and building the
   dataspace journals ~512 KiB before any churn.  Each unmaintained
   churn cycle then stacks one chain link (carrying ~10-70 [Void]-bound
   steps) onto the surface and every 5-cycle block leaves ~6
   quarantine-shaped pathways behind, so over the E-E1/E-H1 50-cycle
   run chain depth crosses warn at cycle 13 and quarantines at cycle
   19, both reaching critical around cycle 44 (the E-H1 debt curve in
   BENCH_history.jsonl shows the crossings); [Void]-step debt grows
   more slowly (~924 after one cycle, ~1514 after 50) and crosses warn
   on E-M1's 200-cycle unmaintained horizon.  The maintained E-M1 arm
   stays below warn on every core indicator for 200 cycles: compaction
   pays the chain-depth and [Void]-step debt (interior links leave the
   surface), reclamation the quarantine and retired-source debt. *)
let default_config =
  {
    chain_depth = { warn = 14.0; critical = 42.0 };
    quarantined = { warn = 30.0; critical = 60.0 };
    void_degraded = { warn = 2000.0; critical = 4000.0 };
    retired_sources = { warn = 8.0; critical = 24.0 };
    journal_bytes = { warn = 2097152.0; critical = 8388608.0 };
    breakers = { warn = 1.0; critical = 3.0 };
    cache_churn = { warn = 500.0; critical = 5000.0 };
  }

type indicator = {
  i_name : string;
  i_value : float;
  i_unit : string;
  i_thresholds : thresholds;
  i_level : level;
  i_detail : string;
}

type report = {
  r_global : string;
  r_version : int;
  r_indicators : indicator list;
  r_overall : level;
  r_needs_reintegration : bool;
}

(* -- debt walkers --------------------------------------------------------- *)

(* "base_v7" -> Some ("base", 7): the version-name convention of
   [Workflow.version_name], which is how chain links are recognised
   without the repository knowing about versions. *)
let split_version name =
  match String.rindex_opt name '_' with
  | None -> None
  | Some i ->
      let base = String.sub name 0 i in
      let suffix = String.sub name (i + 1) (String.length name - i - 1) in
      if String.length suffix >= 2 && suffix.[0] = 'v' then
        match
          int_of_string_opt (String.sub suffix 1 (String.length suffix - 1))
        with
        | Some j when j >= 0 -> Some (base, j)
        | _ -> None
      else None

(* The pathways a query on [root] can actually route through: the
   transitive [pathways_into] closure.  Maintenance rewires the current
   version around retired interiors, so debt priced on this surface can
   go back down — debt priced on the whole repository never does,
   because old versions (and their quarantines) are kept answerable
   forever. *)
let active_surface repo ~root =
  let rec grow visited acc = function
    | [] -> List.rev acc
    | s :: rest ->
        if List.mem s visited then grow visited acc rest
        else
          let incoming = Repository.pathways_into repo s in
          let srcs =
            List.map
              (fun (p : Transform.pathway) -> p.Transform.from_schema)
              incoming
          in
          grow (s :: visited) (List.rev_append incoming acc) (srcs @ rest)
  in
  grow [] [] [ root ]

(* Non-contribution links between versions of the same global base:
   the chain a query on an old version walks to reach stored data. *)
let chain_links repo name =
  match split_version name with
  | None -> []
  | Some (base, _) ->
      List.filter
        (fun (p : Transform.pathway) ->
          (not (Repository.is_contribution repo p))
          &&
          match split_version p.Transform.from_schema with
          | Some (b, _) -> b = base
          | None -> false)
        (Repository.pathways_into repo name)

(* Link hops from [root] back to its chain anchor (an integration
   version has no incoming global-to-global link).  Unlike the raw
   version counter this falls when compaction replaces the last link
   with an anchor shortcut: the interiors stay registered and
   answerable, but the current version no longer routes through them. *)
let effective_chain_depth repo ~root =
  let rec depth visited name =
    if List.mem name visited then 0
    else
      match chain_links repo name with
      | [] -> 0
      | links ->
          1
          + List.fold_left
              (fun acc (p : Transform.pathway) ->
                max acc (depth (name :: visited) p.Transform.from_schema))
              0 links
  in
  depth [] root

let surface_pathways ?root repo =
  match root with
  | None -> Repository.pathways repo
  | Some root -> active_surface repo ~root

let quarantined_pathways ?root repo =
  List.length
    (List.filter Quarantine.is_quarantined (surface_pathways ?root repo))

(* [Void]-bound steps appear for two reasons: the integration federates
   unmapped objects with deliberately unbounded extends (a fixed,
   structural baseline), and every evolution repair degrades what it
   cannot propagate — a patched definition falls to the [Void] lower
   bound, and each chain link [Void]-bounds the objects the delta added
   or dropped.  The raw count over non-quarantined pathways therefore
   grows with accumulated repairs and resets on re-integration, which
   is exactly the debt being priced; the thresholds sit above the
   structural baseline. *)
let void_degraded_steps ?root repo =
  List.fold_left
    (fun acc (p : Transform.pathway) ->
      if Quarantine.is_quarantined p then acc
      else
        acc
        + List.length
            (List.filter Quarantine.is_void_degraded_step p.Transform.steps))
    0
    (surface_pathways ?root repo)

(* -- assessment ----------------------------------------------------------- *)

let truncate_names names =
  match names with
  | [] -> ""
  | _ ->
      let shown = List.filteri (fun i _ -> i < 4) names in
      String.concat ", " shown
      ^ if List.length names > 4 then ", ..." else ""

let counter_total metrics prefix =
  match metrics with
  | None -> 0
  | Some (m : Telemetry.Metrics.t) ->
      List.fold_left
        (fun acc (name, v) ->
          if
            String.length name >= String.length prefix
            && String.sub name 0 (String.length prefix) = prefix
          then acc + v
          else acc)
        0 m.Telemetry.Metrics.counters

let of_repository ?(config = default_config) ?(version = 0)
    ?(global = "(none)") ?resilience ?durable ?metrics repo =
  let ind name value unit_ thresholds detail =
    {
      i_name = name;
      i_value = value;
      i_unit = unit_;
      i_thresholds = thresholds;
      i_level = classify thresholds value;
      i_detail = detail;
    }
  in
  (* Price debt on the current version's active surface when the global
     schema is actually registered; fall back to whole-repository
     walks (and the raw version counter) otherwise, e.g. for a bare
     repository or a synthetic report. *)
  let root = if Repository.mem_schema repo global then Some global else None in
  let quarantined =
    List.filter Quarantine.is_quarantined (surface_pathways ?root repo)
  in
  let retired = Repository.retired_sources repo in
  let chain_value, chain_detail =
    match root with
    | Some g ->
        ( float_of_int (effective_chain_depth repo ~root:g),
          Printf.sprintf
            "link hops from %s to its chain anchor (raw chain v0..v%d)" g
            version )
    | None ->
        ( float_of_int version,
          Printf.sprintf "global version chain v0..v%d (current %s)" version
            global )
  in
  let jbytes =
    match durable with Some d -> Durable.journal_bytes d | None -> 0
  in
  let jrecords = match durable with Some d -> Durable.appended d | None -> 0 in
  let breaker_rows =
    match resilience with
    | None -> []
    | Some r ->
        List.filter
          (fun (_, state, _, _) -> state <> Resilience.Closed)
          (Resilience.report r)
  in
  let churn = counter_total metrics "processor.invalidated." in
  let indicators =
    [
      ind "chain-depth" chain_value "links" config.chain_depth chain_detail;
      ind "quarantined-pathways"
        (float_of_int (List.length quarantined))
        "pathways" config.quarantined
        (truncate_names
           (List.map
              (fun (p : Transform.pathway) ->
                p.Transform.from_schema ^ "->" ^ p.Transform.to_schema)
              quarantined));
      ind "void-degraded-steps"
        (float_of_int (void_degraded_steps ?root repo))
        "steps" config.void_degraded
        "definitions patched down to the Void bound (quarantines excluded)";
      ind "retired-sources"
        (float_of_int (List.length retired))
        "sources" config.retired_sources (truncate_names retired);
      ind "journal-debt" (float_of_int jbytes) "bytes" config.journal_bytes
        (Printf.sprintf "%d records since last checkpoint" jrecords);
      ind "breakers-not-closed"
        (float_of_int (List.length breaker_rows))
        "breakers" config.breakers
        (truncate_names
           (List.map
              (fun (name, state, _, _) ->
                Printf.sprintf "%s:%s" name
                  (match state with
                  | Resilience.Open -> "open"
                  | Resilience.Half_open -> "half-open"
                  | Resilience.Closed -> "closed"))
              breaker_rows));
      ind "cache-invalidation-churn" (float_of_int churn) "entries"
        config.cache_churn
        "processor.invalidated.* entries dropped in this metric window";
    ]
  in
  let overall =
    List.fold_left (fun acc i -> worst acc i.i_level) Good indicators
  in
  let debt_names =
    [ "chain-depth"; "quarantined-pathways"; "void-degraded-steps" ]
  in
  let needs =
    List.exists
      (fun i -> List.mem i.i_name debt_names && i.i_level <> Good)
      indicators
  in
  {
    r_global = global;
    r_version = version;
    r_indicators = indicators;
    r_overall = overall;
    r_needs_reintegration = needs;
  }

let assess ?config ?resilience ?durable ?metrics wf =
  of_repository ?config
    ~version:(Workflow.version wf)
    ~global:(Workflow.global_name wf)
    ?resilience ?durable ?metrics (Workflow.repository wf)

(* -- rendering ------------------------------------------------------------ *)

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let to_text r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "health of %s (version chain depth %d): %s%s\n" r.r_global
       r.r_version
       (level_label r.r_overall)
       (if r.r_needs_reintegration then
          "  ** re-integration recommended: repair debt over budget **"
        else ""));
  List.iter
    (fun i ->
      Buffer.add_string b
        (Printf.sprintf "  [%-8s] %-26s %10s %-9s (warn %s, critical %s)%s\n"
           (level_label i.i_level) i.i_name (fmt_value i.i_value) i.i_unit
           (fmt_value i.i_thresholds.warn)
           (fmt_value i.i_thresholds.critical)
           (if i.i_detail = "" then "" else "  " ^ i.i_detail)))
    r.r_indicators;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 1024 in
  let add = Buffer.add_string b in
  add "{\"global\":";
  add (Microjson.escape r.r_global);
  add (Printf.sprintf ",\"version\":%d,\"overall\":" r.r_version);
  add (Microjson.escape (level_label r.r_overall));
  add
    (Printf.sprintf ",\"needs_reintegration\":%b,\"indicators\":["
       r.r_needs_reintegration);
  List.iteri
    (fun idx i ->
      if idx > 0 then add ",";
      add "{\"name\":";
      add (Microjson.escape i.i_name);
      add ",\"value\":";
      add (Microjson.number i.i_value);
      add ",\"unit\":";
      add (Microjson.escape i.i_unit);
      add ",\"warn\":";
      add (Microjson.number i.i_thresholds.warn);
      add ",\"critical\":";
      add (Microjson.number i.i_thresholds.critical);
      add ",\"level\":";
      add (Microjson.escape (level_label i.i_level));
      add ",\"detail\":";
      add (Microjson.escape i.i_detail);
      add "}")
    r.r_indicators;
  add "]}";
  Buffer.contents b
