module Repository = Automed_repository.Repository
module Workflow = Automed_integration.Workflow
module Resilience = Automed_resilience.Resilience
module Durable = Automed_durable.Durable
module Telemetry = Automed_telemetry.Telemetry
module Microjson = Automed_telemetry.Microjson
module Quarantine = Automed_analysis.Quarantine
module Transform = Automed_transform.Transform

type level = Good | Warn | Critical

let level_label = function
  | Good -> "ok"
  | Warn -> "warn"
  | Critical -> "critical"

let level_rank = function Good -> 0 | Warn -> 1 | Critical -> 2
let worst a b = if level_rank a >= level_rank b then a else b

type thresholds = { warn : float; critical : float }

let classify t v =
  if v >= t.critical then Critical else if v >= t.warn then Warn else Good

type config = {
  chain_depth : thresholds;
  quarantined : thresholds;
  void_degraded : thresholds;
  retired_sources : thresholds;
  journal_bytes : thresholds;
  breakers : thresholds;
  cache_churn : thresholds;
}

(* Calibrated against the shipped case study: the integrated iSpider
   baseline (version 6, no churn) classifies ok everywhere, and the
   E-E1 50-cycle churn run crosses the chain-depth and quarantine warn
   thresholds around cycles 13-15 and their critical thresholds around
   cycles 41-44 — the E-H1 debt curve in BENCH_history.jsonl shows the
   crossings.  Three baselines are structural, not debt, and the
   thresholds sit above them: the intersection construction leaves 21
   quarantine-shaped all-[Void] federation pathways (intersection and
   extension schemas linked to global versions) plus ~2970 individual
   [Void]-bound federation steps, and building the dataspace journals
   ~512 KiB before any churn; the churn then adds ~13 [Void] steps per
   cycle on top of the baseline. *)
let default_config =
  {
    chain_depth = { warn = 20.0; critical = 48.0 };
    quarantined = { warn = 40.0; critical = 72.0 };
    void_degraded = { warn = 3150.0; critical = 3500.0 };
    retired_sources = { warn = 8.0; critical = 24.0 };
    journal_bytes = { warn = 2097152.0; critical = 8388608.0 };
    breakers = { warn = 1.0; critical = 3.0 };
    cache_churn = { warn = 500.0; critical = 5000.0 };
  }

type indicator = {
  i_name : string;
  i_value : float;
  i_unit : string;
  i_thresholds : thresholds;
  i_level : level;
  i_detail : string;
}

type report = {
  r_global : string;
  r_version : int;
  r_indicators : indicator list;
  r_overall : level;
  r_needs_reintegration : bool;
}

(* -- debt walkers --------------------------------------------------------- *)

let quarantined_pathways repo =
  List.length (List.filter Quarantine.is_quarantined (Repository.pathways repo))

(* [Void]-bound steps appear for two reasons: the integration federates
   unmapped objects with deliberately unbounded extends (a fixed,
   structural baseline), and every evolution repair degrades what it
   cannot propagate — a patched definition falls to the [Void] lower
   bound, and each chain link [Void]-bounds the objects the delta added
   or dropped.  The raw count over non-quarantined pathways therefore
   grows with accumulated repairs and resets on re-integration, which
   is exactly the debt being priced; the thresholds sit above the
   structural baseline. *)
let void_degraded_steps repo =
  List.fold_left
    (fun acc (p : Transform.pathway) ->
      if Quarantine.is_quarantined p then acc
      else
        acc
        + List.length
            (List.filter Quarantine.is_void_degraded_step p.Transform.steps))
    0 (Repository.pathways repo)

(* -- assessment ----------------------------------------------------------- *)

let truncate_names names =
  match names with
  | [] -> ""
  | _ ->
      let shown = List.filteri (fun i _ -> i < 4) names in
      String.concat ", " shown
      ^ if List.length names > 4 then ", ..." else ""

let counter_total metrics prefix =
  match metrics with
  | None -> 0
  | Some (m : Telemetry.Metrics.t) ->
      List.fold_left
        (fun acc (name, v) ->
          if
            String.length name >= String.length prefix
            && String.sub name 0 (String.length prefix) = prefix
          then acc + v
          else acc)
        0 m.Telemetry.Metrics.counters

let of_repository ?(config = default_config) ?(version = 0)
    ?(global = "(none)") ?resilience ?durable ?metrics repo =
  let ind name value unit_ thresholds detail =
    {
      i_name = name;
      i_value = value;
      i_unit = unit_;
      i_thresholds = thresholds;
      i_level = classify thresholds value;
      i_detail = detail;
    }
  in
  let quarantined =
    List.filter Quarantine.is_quarantined (Repository.pathways repo)
  in
  let retired = Repository.retired_sources repo in
  let jbytes =
    match durable with Some d -> Durable.journal_bytes d | None -> 0
  in
  let jrecords = match durable with Some d -> Durable.appended d | None -> 0 in
  let breaker_rows =
    match resilience with
    | None -> []
    | Some r ->
        List.filter
          (fun (_, state, _, _) -> state <> Resilience.Closed)
          (Resilience.report r)
  in
  let churn = counter_total metrics "processor.invalidated." in
  let indicators =
    [
      ind "chain-depth" (float_of_int version) "versions" config.chain_depth
        (Printf.sprintf "global version chain v0..v%d (current %s)" version
           global);
      ind "quarantined-pathways"
        (float_of_int (List.length quarantined))
        "pathways" config.quarantined
        (truncate_names
           (List.map
              (fun (p : Transform.pathway) ->
                p.Transform.from_schema ^ "->" ^ p.Transform.to_schema)
              quarantined));
      ind "void-degraded-steps"
        (float_of_int (void_degraded_steps repo))
        "steps" config.void_degraded
        "definitions patched down to the Void bound (quarantines excluded)";
      ind "retired-sources"
        (float_of_int (List.length retired))
        "sources" config.retired_sources (truncate_names retired);
      ind "journal-debt" (float_of_int jbytes) "bytes" config.journal_bytes
        (Printf.sprintf "%d records since last checkpoint" jrecords);
      ind "breakers-not-closed"
        (float_of_int (List.length breaker_rows))
        "breakers" config.breakers
        (truncate_names
           (List.map
              (fun (name, state, _, _) ->
                Printf.sprintf "%s:%s" name
                  (match state with
                  | Resilience.Open -> "open"
                  | Resilience.Half_open -> "half-open"
                  | Resilience.Closed -> "closed"))
              breaker_rows));
      ind "cache-invalidation-churn" (float_of_int churn) "entries"
        config.cache_churn
        "processor.invalidated.* entries dropped in this metric window";
    ]
  in
  let overall =
    List.fold_left (fun acc i -> worst acc i.i_level) Good indicators
  in
  let debt_names =
    [ "chain-depth"; "quarantined-pathways"; "void-degraded-steps" ]
  in
  let needs =
    List.exists
      (fun i -> List.mem i.i_name debt_names && i.i_level <> Good)
      indicators
  in
  {
    r_global = global;
    r_version = version;
    r_indicators = indicators;
    r_overall = overall;
    r_needs_reintegration = needs;
  }

let assess ?config ?resilience ?durable ?metrics wf =
  of_repository ?config
    ~version:(Workflow.version wf)
    ~global:(Workflow.global_name wf)
    ?resilience ?durable ?metrics (Workflow.repository wf)

(* -- rendering ------------------------------------------------------------ *)

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let to_text r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "health of %s (version chain depth %d): %s%s\n" r.r_global
       r.r_version
       (level_label r.r_overall)
       (if r.r_needs_reintegration then
          "  ** re-integration recommended: repair debt over budget **"
        else ""));
  List.iter
    (fun i ->
      Buffer.add_string b
        (Printf.sprintf "  [%-8s] %-26s %10s %-9s (warn %s, critical %s)%s\n"
           (level_label i.i_level) i.i_name (fmt_value i.i_value) i.i_unit
           (fmt_value i.i_thresholds.warn)
           (fmt_value i.i_thresholds.critical)
           (if i.i_detail = "" then "" else "  " ^ i.i_detail)))
    r.r_indicators;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 1024 in
  let add = Buffer.add_string b in
  add "{\"global\":";
  add (Microjson.escape r.r_global);
  add (Printf.sprintf ",\"version\":%d,\"overall\":" r.r_version);
  add (Microjson.escape (level_label r.r_overall));
  add
    (Printf.sprintf ",\"needs_reintegration\":%b,\"indicators\":["
       r.r_needs_reintegration);
  List.iteri
    (fun idx i ->
      if idx > 0 then add ",";
      add "{\"name\":";
      add (Microjson.escape i.i_name);
      add ",\"value\":";
      add (Microjson.number i.i_value);
      add ",\"unit\":";
      add (Microjson.escape i.i_unit);
      add ",\"warn\":";
      add (Microjson.number i.i_thresholds.warn);
      add ",\"critical\":";
      add (Microjson.number i.i_thresholds.critical);
      add ",\"level\":";
      add (Microjson.escape (level_label i.i_level));
      add ",\"detail\":";
      add (Microjson.escape i.i_detail);
      add "}")
    r.r_indicators;
  add "]}";
  Buffer.contents b
