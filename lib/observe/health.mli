(** Repair-debt accounting and health classification.

    A long-lived dataspace accumulates {e repair debt}: every evolution
    chains another global version, dropped sources leave quarantined
    pathways behind, patched definitions degrade to [Void] bounds,
    journal bytes pile up until the next checkpoint, and churn
    invalidations throw cached work away.  None of that is visible in
    any single subsystem — this module walks the repository, workflow,
    resilience and durable state, prices each debt dimension, and
    classifies it against configurable ok/warn/critical thresholds.

    The report is the trigger input of the ROADMAP's compaction /
    re-integration scheduler: {!report.r_needs_reintegration} is true
    exactly when one of the pay-as-you-go debt indicators (chain depth,
    quarantined pathways, [Void]-degraded steps) has crossed its warn
    threshold, i.e. when composing the chain into one certified pathway
    (or re-running integration) would pay off. *)

module Repository = Automed_repository.Repository
module Workflow = Automed_integration.Workflow
module Resilience = Automed_resilience.Resilience
module Durable = Automed_durable.Durable
module Telemetry = Automed_telemetry.Telemetry

type level = Good | Warn | Critical

val level_label : level -> string
(** ["ok"], ["warn"] or ["critical"]. *)

type thresholds = { warn : float; critical : float }

val classify : thresholds -> float -> level
(** Boundary semantics: [value >= critical] is [Critical], else
    [value >= warn] is [Warn], else [Good] — at-threshold values
    escalate (pinned by a test). *)

(** Per-indicator thresholds.  The defaults are calibrated against the
    shipped iSpider case study with debt priced on the current
    version's {e active surface} (see {!active_surface}): the
    integrated baseline classifies as ok on every indicator; the
    unmaintained E-E1 50-cycle churn run crosses the chain-depth and
    quarantine warn thresholds mid-run (cycles 13 and 19) and their
    critical thresholds near the end, with [Void]-step debt crossing
    warn on the longer 200-cycle unmaintained horizon (the E-H1 and
    E-M1 debt curves); the maintained E-M1 200-cycle run stays below
    warn throughout. *)
type config = {
  chain_depth : thresholds;
  quarantined : thresholds;
  void_degraded : thresholds;
  retired_sources : thresholds;
  journal_bytes : thresholds;
  breakers : thresholds;
  cache_churn : thresholds;
}

val default_config : config

type indicator = {
  i_name : string;
  i_value : float;
  i_unit : string;
  i_thresholds : thresholds;
  i_level : level;
  i_detail : string;  (** human context: names, states, breakdowns *)
}

type report = {
  r_global : string;  (** current global version name, or ["(none)"] *)
  r_version : int;  (** version-chain depth *)
  r_indicators : indicator list;
  r_overall : level;  (** max over the indicators *)
  r_needs_reintegration : bool;
}

(** {1 Debt walkers} (exposed for the bench harness's per-cycle curve
    and the maintenance scheduler) *)

val active_surface :
  Repository.t -> root:string -> Automed_transform.Transform.pathway list
(** The pathways a query rooted at schema [root] can route through: the
    transitive [pathways_into] closure.  Maintenance compaction rewires
    the current version around retired interiors, so debt priced on
    this surface can go back down — whole-repository counts only ever
    grow, because old versions (and their quarantines) stay registered
    and answerable forever. *)

val effective_chain_depth : Repository.t -> root:string -> int
(** Link hops from [root] back to its chain anchor, following
    non-contribution pathways between versions of the same global base
    (names in the [base_vN] convention).  An integration version has no
    incoming chain link, so the integrated baseline measures 0; each
    evolution adds a hop; compaction collapses the walk back to one. *)

val quarantined_pathways : ?root:string -> Repository.t -> int
(** Pathways in the all-[Void] quarantine shape; with [root], only
    those on that schema's {!active_surface}. *)

val void_degraded_steps : ?root:string -> Repository.t -> int
(** [Void]-lower-bound extend/contract steps in {e non-quarantined}
    pathways: definitions individually degraded to "no information"
    (by an evolution patch, or a deliberately unbounded federation
    step) without the whole pathway being quarantined.  With [root],
    only steps of pathways on that schema's {!active_surface}. *)

(** {1 Assessment} *)

val of_repository :
  ?config:config ->
  ?version:int ->
  ?global:string ->
  ?resilience:Resilience.t ->
  ?durable:Durable.t ->
  ?metrics:Telemetry.Metrics.t ->
  Repository.t ->
  report
(** The full walk.  [version]/[global] default to [0]/["(none)"];
    omitted subsystems contribute a zero-valued indicator (reported,
    so the dashboard shape is stable).  [metrics] supplies the
    cache-invalidation churn counters ([processor.invalidated.*]).
    When the [global] schema is registered, the three debt indicators
    are priced on its {!active_surface} and chain depth is
    {!effective_chain_depth}; otherwise the walk falls back to
    whole-repository counts and the raw [version] number. *)

val assess :
  ?config:config ->
  ?resilience:Resilience.t ->
  ?durable:Durable.t ->
  ?metrics:Telemetry.Metrics.t ->
  Workflow.t ->
  report
(** {!of_repository} over a workflow's repository, version and global
    name. *)

val to_text : report -> string
val to_json : report -> string
(** [{"global":..,"version":..,"overall":..,"needs_reintegration":..,
    "indicators":[{"name":..,"value":..,"unit":..,"warn":..,
    "critical":..,"level":..,"detail":..},..]}] *)
