module Microjson = Automed_telemetry.Microjson

type kind = Counter | Histogram

type decl = {
  name : string;
  kind : kind;
  unit_ : string;
  description : string;
  dynamic : bool;
}

let kind_label = function Counter -> "counter" | Histogram -> "histogram"

let c ?(dynamic = false) name unit_ description =
  { name; kind = Counter; unit_; description; dynamic }

let h name unit_ description =
  { name; kind = Histogram; unit_; description; dynamic = false }

(* One entry per probe name in the tree, sorted by name.  Keep this list
   in lock-step with the emit sites: the [metrics check] runtest rule
   fails on any name present on one side only. *)
let all =
  [
    c "analysis.fixes_applied" "fixes"
      "pathway repairs applied by [lint --fix] (journaled replacements)";
    c "analysis.pathways_quarantined" "pathways"
      "stranded pathways degraded to the all-Void quarantine shape";
    c "analysis.rewrite.applications" "rewrites"
      "individual simplification-rule applications during a fixpoint run";
    c "analysis.rewrites_certified" "rewrites"
      "simplified pathways accepted by the independent Equiv certifier";
    c "analysis.rewrites_refused" "rewrites"
      "simplified pathways the certifier could not prove equivalent";
    h "bench.provenance.annotated_ms" "ms"
      "E-O1 per-query wall clock with the lineage-carrying evaluator";
    h "bench.provenance.plain_ms" "ms"
      "E-O1 per-query wall clock with the reference evaluator";
    h "bench.query_ms" "ms"
      "bench-harness per-query wall clock over the global schema";
    c "durable.append" "records"
      "repository mutations appended to the write-ahead journal";
    c "durable.replay" "records"
      "journal records re-applied during recovery";
    c "durable.scrub_bad_record" "records"
      "journal records rejected by scrub/recovery (bad checksum or payload)";
    c "durable.snapshot" "checkpoints"
      "atomic checkpoints written (each empties the journal)";
    c "evolution.pathways_patched" "pathways"
      "stranded pathways repaired in place by modification propagation";
    h "evolution.repair_ms" "ms"
      "wall clock of one applied evolution (chain + patch + invalidate)";
    c "evolution.sources_added" "sources"
      "live source additions applied through Evolution.evolve";
    c "evolution.sources_altered" "sources"
      "live source alterations applied through Evolution.evolve";
    c "evolution.sources_dropped" "sources"
      "live source retirements applied through Evolution.evolve";
    h "iql.eval.bag_size" "rows"
      "cardinality of each materialised bag during IQL evaluation";
    c "iql.eval.nodes" "nodes" "IQL AST nodes evaluated";
    c "lint.diagnostics.error" "diagnostics" "lint diagnostics at error level";
    c "lint.diagnostics.info" "diagnostics" "lint diagnostics at info level";
    c "lint.diagnostics.warning" "diagnostics"
      "lint diagnostics at warning level";
    c "maintain.checkpoints" "checkpoints"
      "journal checkpoints fired by the maintenance scheduler";
    c "maintain.compactions" "compactions"
      "certified chain compactions committed";
    c "maintain.compactions_refused" "compactions"
      "chain compactions refused because a certificate could not be produced";
    c "maintain.pathways_reclaimed" "pathways"
      "provably-inert quarantined pathways removed by reclamation";
    c "maintain.reclamations" "reclamations"
      "targeted re-integrations committed by reclamation";
    c "maintain.scheduler_ticks" "ticks"
      "maintenance scheduler heartbeats (most fire no action)";
    c "processor.degraded_answers" "answers"
      "answers served with at least one source skipped";
    c "processor.degraded_runs" "runs" "degraded-mode query evaluations";
    c "processor.explains" "plans" "side-effect-free explain plans built";
    c "processor.extent.cache_hits" "lookups" "extent-cache hits";
    c "processor.extent.cache_misses" "lookups" "extent-cache misses";
    c "processor.invalidated.extents" "entries"
      "extent-cache entries dropped by targeted churn invalidation";
    c "processor.invalidated.pinfo" "entries"
      "memoised pathway analyses dropped by targeted churn invalidation";
    c "processor.invalidated.provenance" "entries"
      "provenance-cache entries dropped by targeted churn invalidation";
    c "processor.pathway_applications" "pathways"
      "pathway replays started while deriving extents";
    c "processor.pathway_steps_replayed" "steps"
      "primitive transformation steps replayed while deriving extents";
    c "processor.pathway_steps_simplified_away" "steps"
      "steps removed from replay by certified simplification";
    c "processor.pathways_pruned" "pathways"
      "pathway replays skipped because reachability proves them empty";
    c "processor.provenance_runs" "runs" "lineage-annotated query evaluations";
    h "processor.reformulated_size" "nodes"
      "AST size of each reformulated query";
    c "processor.reformulations" "queries"
      "global-to-source query reformulations";
    c "processor.rows_fetched" "rows" "rows fetched from source extents";
    c "processor.runs" "runs" "plain query evaluations";
    c "processor.translations" "queries" "schema-to-schema query translations";
    c "repository.chains_compacted" "transactions"
      "atomic chain-compaction transactions applied (swap + reroutes)";
    c "repository.contributions_registered" "pathways"
      "contribution pathways registered";
    c "repository.find_path.nodes_expanded" "nodes"
      "schemas expanded by the pathway-network search";
    h "repository.find_path.path_length" "steps"
      "length of each pathway chain found between two schemas";
    c "repository.pathways_registered" "pathways" "pathways registered";
    c "repository.pathways_removed" "pathways"
      "pathways removed under a caller-held inertness certificate";
    c "repository.pathways_replaced" "pathways"
      "pathways replaced in place (lint --fix, quarantine, patches)";
    c "repository.pathways_restored" "pathways"
      "pathways restored verbatim from a checkpoint (trusted load)";
    c "repository.schemas_altered" "alters"
      "schema alterations applied (add/drop/rename of objects)";
    c "repository.sources_retired" "sources"
      "source schemas retired (kept queryable, no longer live)";
    c "resilience.breaker_open" "transitions"
      "circuit-breaker closed/half-open to open transitions";
    c "resilience.disk.bit_flip" "faults" "injected disk bit-flip faults";
    c "resilience.disk.failed_rename" "faults"
      "injected atomic-rename failures";
    c "resilience.disk.short_read" "faults" "injected short reads";
    c "resilience.disk.torn_write" "faults" "injected torn writes";
    c "resilience.evolved_reject" "calls"
      "calls rejected because the source evolved away (retired)";
    c "resilience.fault_injected" "attempts"
      "attempts failed by the deterministic fault injector";
    c "resilience.retry" "attempts" "retry attempts beyond the first";
    c "resilience.short_circuit" "calls"
      "calls rejected while a breaker was open";
    c "resilience.timeout" "attempts"
      "attempts lost to the per-call timeout budget";
    c "source.skipped" "fetches"
      "source fetches skipped in degraded mode (policy exhausted)";
    c "source.skipped_evolved" "fetches"
      "source fetches skipped because the source evolved away";
    h "status.probe_ms" "ms"
      "wall-clock of one probe query of the status dashboard";
    c ~dynamic:true "transform.prim.add" "steps"
      "add steps applied (emitted via Transform.prim_counter)";
    c ~dynamic:true "transform.prim.contract" "steps"
      "contract steps applied (emitted via Transform.prim_counter)";
    c ~dynamic:true "transform.prim.delete" "steps"
      "delete steps applied (emitted via Transform.prim_counter)";
    c ~dynamic:true "transform.prim.extend" "steps"
      "extend steps applied (emitted via Transform.prim_counter)";
    c ~dynamic:true "transform.prim.id" "steps"
      "id steps applied (emitted via Transform.prim_counter)";
    c ~dynamic:true "transform.prim.rename" "steps"
      "rename steps applied (emitted via Transform.prim_counter)";
    c "wrapper.rows_materialized" "rows"
      "rows materialised into stored extents by source wrappers";
  ]

let find name = List.find_opt (fun d -> d.name = name) all

let to_text () =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "%-42s %-9s %-12s %s\n" "name" "kind" "unit" "description");
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf "%-42s %-9s %-12s %s%s\n" d.name (kind_label d.kind)
           d.unit_ d.description
           (if d.dynamic then "  [dynamic]" else "")))
    all;
  Buffer.add_string b
    (Printf.sprintf "-- %d metrics (%d counters, %d histograms)\n"
       (List.length all)
       (List.length (List.filter (fun d -> d.kind = Counter) all))
       (List.length (List.filter (fun d -> d.kind = Histogram) all)));
  Buffer.contents b

let to_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"metrics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":%s,\"kind\":%s,\"unit\":%s,\"description\":%s,\"dynamic\":%b}"
           (Microjson.escape d.name)
           (Microjson.escape (kind_label d.kind))
           (Microjson.escape d.unit_)
           (Microjson.escape d.description)
           d.dynamic))
    all;
  Buffer.add_string b "]}";
  Buffer.contents b

(* -- source scanning ------------------------------------------------------ *)

type site = {
  s_file : string;
  s_line : int;
  s_kind : kind;
  s_name : string option;
}

(* A tiny purpose-built lexer: after a [Telemetry.count]/[.observe]
   token, skip whitespace and at most one [~by:] argument (identifier or
   balanced parens, possibly spanning lines), then read the name if it
   is a string literal.  Anything else is a dynamic site. *)
let scan ~file src =
  let n = String.length src in
  let line_at =
    (* offset -> 1-based line, via a precomputed newline index *)
    let newlines = ref [] in
    String.iteri (fun i ch -> if ch = '\n' then newlines := i :: !newlines) src;
    let arr = Array.of_list (List.rev !newlines) in
    fun off ->
      let rec bisect lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if arr.(mid) < off then bisect (mid + 1) hi else bisect lo mid
      in
      1 + bisect 0 (Array.length arr)
  in
  let is_ident ch =
    (ch >= 'a' && ch <= 'z')
    || (ch >= 'A' && ch <= 'Z')
    || (ch >= '0' && ch <= '9')
    || ch = '_' || ch = '.' || ch = '\''
  in
  let skip_ws i =
    let i = ref i in
    while !i < n && (src.[!i] = ' ' || src.[!i] = '\n' || src.[!i] = '\t') do
      incr i
    done;
    !i
  in
  let skip_parens i =
    (* [i] points at '('; returns the offset after the matching ')' *)
    let depth = ref 0 and i = ref i in
    let continue = ref true in
    while !continue && !i < n do
      (match src.[!i] with
      | '(' -> incr depth
      | ')' -> decr depth; if !depth = 0 then continue := false
      | _ -> ());
      incr i
    done;
    !i
  in
  let read_literal i =
    (* [i] points at the opening quote; the probe names in this tree
       contain no escapes, but skip backslash pairs defensively *)
    let j = ref (i + 1) and b = Buffer.create 32 in
    let closed = ref false in
    while (not !closed) && !j < n do
      (match src.[!j] with
      | '"' -> closed := true
      | '\\' when !j + 1 < n ->
          Buffer.add_char b src.[!j];
          incr j;
          Buffer.add_char b src.[!j]
      | ch -> Buffer.add_char b ch);
      incr j
    done;
    if !closed then Some (Buffer.contents b) else None
  in
  let sites = ref [] in
  let add off kind name =
    sites := { s_file = file; s_line = line_at off; s_kind = kind; s_name = name } :: !sites
  in
  let try_at off kind token =
    let tl = String.length token in
    if off + tl <= n && String.sub src off tl = token then begin
      let i = skip_ws (off + tl) in
      let i =
        if i + 4 <= n && String.sub src i 4 = "~by:" then begin
          let j = skip_ws (i + 4) in
          let j =
            if j < n && src.[j] = '(' then skip_parens j
            else begin
              let j = ref j in
              while !j < n && is_ident src.[!j] do incr j done;
              !j
            end
          in
          skip_ws j
        end
        else i
      in
      if i < n && src.[i] = '"' then add off kind (read_literal i)
      else add off kind None;
      true
    end
    else false
  in
  (* the probe tokens are built by concatenation so that scanning this
     very file does not mistake them for emit sites *)
  let count_tok = "Telemetry" ^ ".count" in
  let observe_tok = "Telemetry" ^ ".observe" in
  let i = ref 0 in
  while !i < n do
    if
      try_at !i Counter (count_tok ^ " ")
      || try_at !i Counter (count_tok ^ "\n")
      || try_at !i Histogram (observe_tok ^ " ")
      || try_at !i Histogram (observe_tok ^ "\n")
    then i := !i + String.length count_tok
    else incr i
  done;
  List.rev !sites

type issue =
  | Undeclared of site * string
  | Orphaned of decl
  | Kind_mismatch of site * string * decl

let pp_issue ppf = function
  | Undeclared (s, name) ->
      Fmt.pf ppf "%s:%d: %s site emits undeclared metric %S" s.s_file s.s_line
        (kind_label s.s_kind) name
  | Orphaned d ->
      Fmt.pf ppf "catalog declares %s %S but no emit site remains"
        (kind_label d.kind) d.name
  | Kind_mismatch (s, name, d) ->
      Fmt.pf ppf "%s:%d: %s site emits %S, declared as a %s" s.s_file s.s_line
        (kind_label s.s_kind) name (kind_label d.kind)

let check files =
  let sites = List.concat_map (fun (file, src) -> scan ~file src) files in
  let emitted = Hashtbl.create 64 in
  let issues = ref [] in
  List.iter
    (fun s ->
      match s.s_name with
      | None -> ()
      | Some name -> (
          Hashtbl.replace emitted name ();
          match find name with
          | None -> issues := Undeclared (s, name) :: !issues
          | Some d ->
              if d.kind <> s.s_kind then
                issues := Kind_mismatch (s, name, d) :: !issues))
    sites;
  List.iter
    (fun d ->
      if (not d.dynamic) && not (Hashtbl.mem emitted d.name) then
        issues := Orphaned d :: !issues)
    all;
  List.rev !issues
