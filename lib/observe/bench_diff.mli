(** Bench-history regression detection.

    Compares the metric samples of a fresh bench run against a committed
    snapshot (BENCH_telemetry.json) and classifies every metric's drift
    against percentage thresholds.  Deterministic metrics (counters,
    span counts, histogram observation counts) are {e gated}: any drift
    beyond tolerance fails the CI bench-regression job, because on a
    fixed dataset they must reproduce exactly.  Wall-clock metrics
    (latency percentiles, experiment wall time) are reported but only
    gated when [gate_wall] is on — shared CI runners make small timing
    drift meaningless, while the default 75% threshold still lets a
    genuine 2x slowdown surface loudly in the report. *)

type kind =
  | Count  (** deterministic: counters, span counts, histogram [n] *)
  | Wall  (** timing: milliseconds, percentiles *)

type sample = {
  experiment : string;  (** e.g. ["E-T1"] *)
  metric : string;  (** e.g. ["spans"], ["repository.find_path"] *)
  value : float;
  kind : kind;
}

type verdict =
  | Steady
  | Improved
  | Regressed
  | New_metric  (** in current, absent from baseline *)
  | Missing_metric  (** in baseline, absent from current *)

type finding = {
  f_experiment : string;
  f_metric : string;
  f_kind : kind;
  f_baseline : float;  (** [nan] for {!New_metric} *)
  f_current : float;  (** [nan] for {!Missing_metric} *)
  f_change_pct : float;  (** signed; [nan] when not comparable *)
  f_verdict : verdict;
  f_gate : bool;  (** true when this finding fails the CI gate *)
}

type config = {
  count_pct : float;  (** drift tolerance for {!Count} metrics *)
  wall_pct : float;  (** drift tolerance for {!Wall} metrics *)
  gate_wall : bool;  (** gate {!Wall} regressions too (off by default) *)
}

val default_config : config
(** [{count_pct = 10.0; wall_pct = 75.0; gate_wall = false}]. *)

val diff : ?config:config -> baseline:sample list -> sample list -> finding list
(** [diff ~baseline current] pairs samples by [(experiment, metric)].  A sample missing from one
    side yields {!New_metric}/{!Missing_metric}; {!Missing_metric} on a
    {!Count} metric is gated (a probe silently vanished).  Findings are
    sorted: gated first, then by absolute drift, descending. *)

val gate_failures : finding list -> finding list

val to_text : finding list -> string
(** Human report: the gate summary line, then one row per non-[Steady]
    finding (and a count of steady metrics). *)
