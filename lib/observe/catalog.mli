(** The typed metrics catalog: single source of truth for every
    counter and histogram name a probe emits.

    Every [Telemetry.count]/[Telemetry.observe] site in the tree must
    use a name declared here — with its kind, unit and a one-line
    description — and every declared name must still have an emit site.
    The [automed metrics check] runtest rule enforces both directions by
    scanning the sources with {!scan} and {!check}, so a probe rename
    that forgets the catalog (or a catalog entry whose probe died) fails
    the build instead of silently orphaning dashboards built on the
    name.  [automed metrics catalog] dumps the table. *)

type kind = Counter | Histogram

type decl = {
  name : string;
  kind : kind;
  unit_ : string;  (** what one increment/observation measures *)
  description : string;
  dynamic : bool;
      (** emitted through a computed name (e.g. the per-prim counters of
          [Transform.apply_prim]), so no string literal appears at the
          emit site; exempt from the orphan check *)
}

val all : decl list
(** Sorted by name; no duplicates (enforced by a test). *)

val find : string -> decl option

val kind_label : kind -> string
(** ["counter"] or ["histogram"]. *)

val to_text : unit -> string
(** Human-readable table of {!all}. *)

val to_json : unit -> string
(** [{"metrics":[{"name":..,"kind":..,"unit":..,"description":..},..]}] *)

(** {1 Source scanning} *)

type site = {
  s_file : string;
  s_line : int;  (** 1-based line of the [Telemetry.] token *)
  s_kind : kind;  (** [count] sites are counters, [observe] histograms *)
  s_name : string option;  (** [None] when the name is computed *)
}

val scan : file:string -> string -> site list
(** Extracts every [Telemetry.count]/[Telemetry.observe] probe site from
    OCaml source text.  Tolerates an interleaved [~by:] argument
    (identifier or parenthesised expression, possibly spanning lines);
    a site whose name argument is not a string literal is returned with
    [s_name = None]. *)

type issue =
  | Undeclared of site * string  (** emit site uses an uncatalogued name *)
  | Orphaned of decl  (** catalogue entry with no remaining emit site *)
  | Kind_mismatch of site * string * decl
      (** a [count] site on a histogram name, or [observe] on a counter *)

val pp_issue : issue Fmt.t

val check : (string * string) list -> issue list
(** [check files] scans every [(path, contents)] pair and validates the
    sites against {!all} in both directions.  Empty means clean. *)
