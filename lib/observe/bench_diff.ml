type kind = Count | Wall

type sample = {
  experiment : string;
  metric : string;
  value : float;
  kind : kind;
}

type verdict = Steady | Improved | Regressed | New_metric | Missing_metric

type finding = {
  f_experiment : string;
  f_metric : string;
  f_kind : kind;
  f_baseline : float;
  f_current : float;
  f_change_pct : float;
  f_verdict : verdict;
  f_gate : bool;
}

type config = { count_pct : float; wall_pct : float; gate_wall : bool }

let default_config = { count_pct = 10.0; wall_pct = 75.0; gate_wall = false }

let change_pct ~baseline ~current =
  if baseline = 0.0 then if current = 0.0 then 0.0 else Float.infinity
  else (current -. baseline) /. Float.abs baseline *. 100.0

let compare_pair config (s : sample) ~baseline ~current =
  let pct = change_pct ~baseline ~current in
  let tol = match s.kind with Count -> config.count_pct | Wall -> config.wall_pct in
  let verdict =
    if Float.abs pct <= tol then Steady
    else if pct > 0.0 then Regressed
    else Improved
  in
  let gate =
    verdict = Regressed
    && (match s.kind with Count -> true | Wall -> config.gate_wall)
  in
  {
    f_experiment = s.experiment;
    f_metric = s.metric;
    f_kind = s.kind;
    f_baseline = baseline;
    f_current = current;
    f_change_pct = pct;
    f_verdict = verdict;
    f_gate = gate;
  }

let key s = (s.experiment, s.metric)

let diff ?(config = default_config) ~baseline current =
  let tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace tbl (key s) s) baseline;
  let seen = Hashtbl.create 64 in
  let paired =
    List.map
      (fun (c : sample) ->
        Hashtbl.replace seen (key c) ();
        match Hashtbl.find_opt tbl (key c) with
        | Some b -> compare_pair config c ~baseline:b.value ~current:c.value
        | None ->
            {
              f_experiment = c.experiment;
              f_metric = c.metric;
              f_kind = c.kind;
              f_baseline = Float.nan;
              f_current = c.value;
              f_change_pct = Float.nan;
              f_verdict = New_metric;
              f_gate = false;
            })
      current
  in
  let missing =
    List.filter_map
      (fun (b : sample) ->
        if Hashtbl.mem seen (key b) then None
        else
          Some
            {
              f_experiment = b.experiment;
              f_metric = b.metric;
              f_kind = b.kind;
              f_baseline = b.value;
              f_current = Float.nan;
              f_change_pct = Float.nan;
              f_verdict = Missing_metric;
              f_gate = b.kind = Count;
            })
      baseline
  in
  let magnitude f =
    if Float.is_nan f.f_change_pct then Float.infinity
    else Float.abs f.f_change_pct
  in
  List.stable_sort
    (fun a b ->
      match (b.f_gate, a.f_gate) with
      | true, false -> 1
      | false, true -> -1
      | _ -> compare (magnitude b) (magnitude a))
    (paired @ missing)

let gate_failures findings = List.filter (fun f -> f.f_gate) findings

let verdict_label = function
  | Steady -> "steady"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | New_metric -> "new"
  | Missing_metric -> "MISSING"

let kind_label = function Count -> "count" | Wall -> "wall"

let fmt_value v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let fmt_pct p =
  if Float.is_nan p then "-"
  else if Float.is_integer p && Float.abs p = Float.infinity then
    if p > 0.0 then "+inf%" else "-inf%"
  else Printf.sprintf "%+.1f%%" p

let to_text findings =
  let b = Buffer.create 1024 in
  let gates = gate_failures findings in
  let steady = List.filter (fun f -> f.f_verdict = Steady) findings in
  Buffer.add_string b
    (if gates = [] then
       Printf.sprintf "bench diff: ok (%d metrics compared, %d steady)\n"
         (List.length findings) (List.length steady)
     else
       Printf.sprintf "bench diff: %d GATE FAILURE(S) over %d metrics\n"
         (List.length gates) (List.length findings));
  List.iter
    (fun f ->
      if f.f_verdict <> Steady then
        Buffer.add_string b
          (Printf.sprintf "  %s %-6s %-8s %s/%s: %s -> %s (%s)\n"
             (if f.f_gate then "[gate]" else "      ")
             (kind_label f.f_kind)
             (verdict_label f.f_verdict)
             f.f_experiment f.f_metric (fmt_value f.f_baseline)
             (fmt_value f.f_current) (fmt_pct f.f_change_pct)))
    findings;
  Buffer.contents b
