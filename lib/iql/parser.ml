open Lexer

exception Parse_error of int * string

type state = { mutable toks : located list }

let peek st =
  match st.toks with [] -> { token = EOF; pos = 0 } | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  let t = peek st in
  if t.token = tok then advance st
  else
    raise
      (Parse_error
         (t.pos, Fmt.str "expected %s, found %a" what pp_token t.token))

let fail st msg = raise (Parse_error ((peek st).pos, msg))

(* Patterns ------------------------------------------------------------- *)

let rec parse_pattern st : Ast.pat =
  let t = peek st in
  match t.token with
  | UNDERSCORE -> advance st; PWild
  | IDENT x -> advance st; PVar x
  | INT i -> advance st; PConst (Value.Int i)
  | FLOAT f -> advance st; PConst (Value.Float f)
  | STRING s -> advance st; PConst (Value.Str s)
  | KW_TRUE -> advance st; PConst (Value.Bool true)
  | KW_FALSE -> advance st; PConst (Value.Bool false)
  | LBRACE ->
      advance st;
      let rec items acc =
        let p = parse_pattern st in
        match (peek st).token with
        | COMMA -> advance st; items (p :: acc)
        | RBRACE -> advance st; List.rev (p :: acc)
        | _ -> fail st "expected ',' or '}' in tuple pattern"
      in
      PTuple (items [])
  | tok -> raise (Parse_error (t.pos, Fmt.str "not a pattern: %a" pp_token tok))

(* Expressions ---------------------------------------------------------- *)

let negate_literal (e : Ast.expr) : Ast.expr =
  match e with
  | Const (Value.Int i) -> Const (Value.Int (-i))
  | Const (Value.Float f) -> Const (Value.Float (-.f))
  | e -> Unop (Neg, e)

let rec parse_expr st : Ast.expr =
  match (peek st).token with
  | KW_LET ->
      advance st;
      let x =
        match (peek st).token with
        | IDENT x -> advance st; x
        | _ -> fail st "expected identifier after 'let'"
      in
      expect st EQ "'='";
      let e = parse_expr st in
      expect st KW_IN "'in'";
      let body = parse_expr st in
      Let (x, e, body)
  | KW_IF ->
      advance st;
      let c = parse_expr st in
      expect st KW_THEN "'then'";
      let t = parse_expr st in
      expect st KW_ELSE "'else'";
      let e = parse_expr st in
      If (c, t, e)
  | _ -> parse_or st

and parse_or st =
  let rec go acc =
    match (peek st).token with
    | KW_OR ->
        advance st;
        go (Ast.Binop (Or, acc, parse_and st))
    | _ -> acc
  in
  go (parse_and st)

and parse_and st =
  let rec go acc =
    match (peek st).token with
    | KW_AND ->
        advance st;
        go (Ast.Binop (And, acc, parse_cmp st))
    | _ -> acc
  in
  go (parse_cmp st)

and parse_cmp st =
  let lhs = parse_bag st in
  let op =
    match (peek st).token with
    | EQ -> Some Ast.Eq
    | NEQ -> Some Ast.Neq
    | LT -> Some Ast.Lt
    | LE -> Some Ast.Le
    | GT -> Some Ast.Gt
    | GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Binop (op, lhs, parse_bag st)

and parse_bag st =
  let rec go acc =
    match (peek st).token with
    | PLUSPLUS ->
        advance st;
        go (Ast.Binop (Union, acc, parse_add st))
    | MINUSMINUS ->
        advance st;
        go (Ast.Binop (Monus, acc, parse_add st))
    | _ -> acc
  in
  go (parse_add st)

and parse_add st =
  let rec go acc =
    match (peek st).token with
    | PLUS ->
        advance st;
        go (Ast.Binop (Add, acc, parse_mul st))
    | MINUS ->
        advance st;
        go (Ast.Binop (Sub, acc, parse_mul st))
    | _ -> acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    match (peek st).token with
    | STAR ->
        advance st;
        go (Ast.Binop (Mul, acc, parse_unary st))
    | SLASH ->
        advance st;
        go (Ast.Binop (Div, acc, parse_unary st))
    | _ -> acc
  in
  go (parse_unary st)

and parse_unary st : Ast.expr =
  match (peek st).token with
  | MINUS ->
      advance st;
      negate_literal (parse_unary st)
  | KW_NOT ->
      advance st;
      Unop (Not, parse_unary st)
  | KW_RANGE ->
      advance st;
      let l = parse_atom st in
      let u = parse_atom st in
      Range (l, u)
  | _ -> parse_atom st

and parse_atom st : Ast.expr =
  let t = peek st in
  match t.token with
  | INT i -> advance st; Const (Value.Int i)
  | FLOAT f -> advance st; Const (Value.Float f)
  | STRING s -> advance st; Const (Value.Str s)
  | KW_TRUE -> advance st; Const (Value.Bool true)
  | KW_FALSE -> advance st; Const (Value.Bool false)
  | KW_VOID -> advance st; Void
  | KW_ANY -> advance st; Any
  | SCHEME s -> advance st; SchemeRef s
  | IDENT x ->
      advance st;
      if (peek st).token = LPAREN then begin
        advance st;
        if (peek st).token = RPAREN then begin
          advance st;
          App (x, [])
        end
        else
          let rec args acc =
            let e = parse_expr st in
            match (peek st).token with
            | COMMA -> advance st; args (e :: acc)
            | RPAREN -> advance st; List.rev (e :: acc)
            | _ -> fail st "expected ',' or ')' in application"
          in
          App (x, args [])
      end
      else Var x
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN "')'";
      e
  | LBRACE ->
      advance st;
      if (peek st).token = RBRACE then begin
        advance st;
        Tuple []
      end
      else
        let rec items acc =
          let e = parse_expr st in
          match (peek st).token with
          | COMMA -> advance st; items (e :: acc)
          | RBRACE -> advance st; List.rev (e :: acc)
          | _ -> fail st "expected ',' or '}' in tuple"
        in
        Tuple (items [])
  | LBRACKET ->
      advance st;
      if (peek st).token = RBRACKET then begin
        advance st;
        EBag []
      end
      else begin
        let first = parse_expr st in
        match (peek st).token with
        | BAR ->
            advance st;
            let quals = parse_quals st in
            expect st RBRACKET "']'";
            Comp (first, quals)
        | SEMI ->
            let rec items acc =
              match (peek st).token with
              | SEMI ->
                  advance st;
                  items (parse_expr st :: acc)
              | RBRACKET -> advance st; List.rev acc
              | _ -> fail st "expected ';' or ']' in bag literal"
            in
            EBag (items [ first ])
        | RBRACKET -> advance st; EBag [ first ]
        | _ -> fail st "expected '|', ';' or ']' after first bag element"
      end
  | tok ->
      raise (Parse_error (t.pos, Fmt.str "unexpected token %a" pp_token tok))

(* A qualifier is either [pat <- src] or a filter expression.  We detect a
   generator by attempting to parse a pattern and checking for '<-'; on
   failure we backtrack and parse a filter.  Patterns are tiny, so the
   backtracking is cheap. *)
and parse_quals st =
  let rec go acc =
    let saved = st.toks in
    let qual =
      match parse_pattern st with
      | pat when (peek st).token = ARROW ->
          advance st;
          Ast.Gen (pat, parse_bag st)
      | _ | (exception Parse_error _) ->
          st.toks <- saved;
          Ast.Filter (parse_cmp st)
    in
    match (peek st).token with
    | SEMI -> advance st; go (qual :: acc)
    | _ -> List.rev (qual :: acc)
  in
  go []

let run_parser f src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks } in
      match f st with
      | result ->
          let t = peek st in
          if t.token = EOF then Ok result
          else
            Error
              (Fmt.str "parse error at %d: trailing input starting with %a"
                 t.pos pp_token t.token)
      | exception Parse_error (pos, msg) ->
          Error (Printf.sprintf "parse error at %d: %s" pos msg)
      | exception Lex_error (pos, msg) ->
          Error (Printf.sprintf "lex error at %d: %s" pos msg))

let parse src = run_parser parse_expr src

let parse_exn src =
  match parse src with Ok e -> e | Error msg -> failwith msg

let parse_pat src = run_parser parse_pattern src
