(** Recursive-descent parser for IQL.

    Grammar sketch (loosest binding first):
    {v
    expr     ::= 'let' id '=' expr 'in' expr
               | 'if' expr 'then' expr 'else' expr
               | or-expr
    or-expr  ::= and-expr ('or' and-expr)*
    and-expr ::= cmp-expr ('and' cmp-expr)*
    cmp-expr ::= bag-expr (('='|'<>'|'<'|'<='|'>'|'>=') bag-expr)?
    bag-expr ::= add-expr (('++'|'--') add-expr)*
    add-expr ::= mul-expr (('+'|'-') mul-expr)*
    mul-expr ::= unary (('*'|'/') unary)*
    unary    ::= '-' unary | 'not' unary | 'Range' atom atom | atom
    atom     ::= literal | ident | ident '(' args ')' | scheme
               | '{' args '}' | '[' ... ']' | '(' expr ')'
               | 'Void' | 'Any'
    v}

    A bracketed form [\[e | quals\]] is a comprehension; [\[e1; e2; ...\]]
    and [\[\]] are bag literals.  Qualifiers are generators [pat <- expr]
    or filter expressions. *)

exception Parse_error of int * string

val parse : string -> (Ast.expr, string) result
val parse_exn : string -> Ast.expr
val parse_pat : string -> (Ast.pat, string) result
