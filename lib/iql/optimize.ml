module SS = Set.Make (String)

(* free variables of an expression under an outer binding set *)
let free_vars e = SS.of_list (Ast.vars e)

let rec optimize (e : Ast.expr) : Ast.expr =
  match e with
  | Comp (head, quals) ->
      let head, quals = optimize_comprehension head quals in
      Comp (head, quals)
  | Const _ | Var _ | SchemeRef _ | Void | Any -> e
  | Tuple es -> Tuple (List.map optimize es)
  | EBag es -> EBag (List.map optimize es)
  | App (f, es) -> App (f, List.map optimize es)
  | Binop (op, a, b) -> Binop (op, optimize a, optimize b)
  | Unop (op, a) -> Unop (op, optimize a)
  | If (c, t, f) -> If (optimize c, optimize t, optimize f)
  | Let (x, a, b) -> Let (x, optimize a, optimize b)
  | Range (l, u) -> Range (optimize l, optimize u)

and optimize_comprehension head quals =
  let head = optimize head in
  (* split into generators (with their binding sets and source
     dependencies) and filters (with their variable needs), keeping the
     original positions for stable tie-breaking *)
  let gens, filters =
    List.fold_left
      (fun (gens, filters) q ->
        match (q : Ast.qual) with
        | Gen (p, src) ->
            let src = optimize src in
            ((p, src, SS.of_list (Ast.pat_vars p), free_vars src) :: gens, filters)
        | Filter f ->
            let f = optimize f in
            (gens, (f, free_vars f) :: filters))
      ([], []) quals
  in
  let gens = List.rev gens and filters = List.rev filters in
  (* a generator is ready when its source's variables are bound; among
     ready generators pick the one enabling the most pending filters *)
  let rec schedule bound pending_gens pending_filters acc =
    (* emit every filter whose variables are all bound *)
    let applicable, pending_filters =
      List.partition (fun (_, needs) -> SS.subset needs bound) pending_filters
    in
    let acc =
      List.fold_left (fun acc (f, _) -> Ast.Filter f :: acc) acc applicable
    in
    match pending_gens with
    | [] ->
        (* any filters left reference unbound (outer) variables: keep them *)
        let acc =
          List.fold_left (fun acc (f, _) -> Ast.Filter f :: acc) acc
            pending_filters
        in
        List.rev acc
    | _ ->
        let ready =
          List.filter (fun (_, _, _, deps) -> SS.subset deps bound) pending_gens
        in
        let pick =
          match ready with
          | [] ->
              (* dependency on an outer/unbound variable: fall back to the
                 first pending generator to guarantee progress *)
              List.hd pending_gens
          | ready ->
              let enabled (_, _, binds, _) =
                let bound' = SS.union bound binds in
                List.length
                  (List.filter
                     (fun (_, needs) -> SS.subset needs bound')
                     pending_filters)
              in
              List.fold_left
                (fun best g -> if enabled g > enabled best then g else best)
                (List.hd ready) (List.tl ready)
        in
        let p, src, binds, _ = pick in
        let pending_gens =
          List.filter (fun g -> g != pick) pending_gens
        in
        schedule (SS.union bound binds) pending_gens pending_filters
          (Ast.Gen (p, src) :: acc)
  in
  (head, schedule SS.empty gens filters [])
