(** A rule-based optimiser for IQL comprehensions.

    Comprehension semantics over bags are insensitive to generator order
    (multiplicities multiply) and filters are pure, so qualifiers can be
    rescheduled freely as long as variable dependencies are respected.
    The optimiser:

    - evaluates each generator source and filter recursively (inner
      comprehensions are optimised too);
    - schedules generators greedily, preferring at each step the
      generator that makes the most pending filters applicable (a proxy
      for selectivity: filters prune the intermediate result earliest);
    - places every filter immediately after the first point where all its
      variables are bound (filter push-down).

    This turns the paper's query 5 shape - all join conditions trailing a
    chain of generators - into a filtered nested-loop join that prunes
    after every generator.

    The rewrite preserves the resulting bag for queries that evaluate
    without error; a query whose filters fail on some bindings (e.g. a
    type error guarded by an earlier filter) may surface the error
    earlier or later. *)

val optimize : Ast.expr -> Ast.expr

val optimize_comprehension : Ast.expr -> Ast.qual list -> Ast.expr * Ast.qual list
(** The core rescheduling on one comprehension's head and qualifiers
    (exposed for tests). *)
