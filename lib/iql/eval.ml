module Scheme = Automed_base.Scheme
module Telemetry = Automed_telemetry.Telemetry
module SM = Map.Make (String)

type env = {
  schemes : Scheme.t -> Value.Bag.t option;
  vars : Value.t SM.t;
}

let env ?(schemes = fun _ -> None) ?(vars = []) () =
  { schemes; vars = SM.of_seq (List.to_seq vars) }

let bind x v e = { e with vars = SM.add x v e.vars }

type error = { message : string; context : string list }

let pp_error ppf e =
  Fmt.pf ppf "%s%a" e.message
    Fmt.(list ~sep:nop (fun ppf c -> Fmt.pf ppf "@ while %s" c))
    e.context

exception Error of error

let err fmt = Format.kasprintf (fun message -> raise (Error { message; context = [] })) fmt

let in_context ctx f =
  try f ()
  with Error e -> raise (Error { e with context = e.context @ [ ctx ] })

let rec match_pat (p : Ast.pat) (v : Value.t) =
  match (p, v) with
  | PWild, _ -> Some []
  | PVar x, v -> Some [ (x, v) ]
  | PConst c, v -> if Value.equal c v then Some [] else None
  | PTuple ps, Tuple vs when List.length ps = List.length vs ->
      let rec go acc = function
        | [], [] -> Some acc
        | p :: ps, v :: vs -> (
            match match_pat p v with
            | None -> None
            | Some bs -> go (acc @ bs) (ps, vs))
        | _ -> None
      in
      go [] (ps, vs)
  | PTuple _, _ -> None

let as_bag what = function
  | Value.Bag b -> b
  | v -> err "%s: expected a collection, got %s" what (Value.to_string v)

let as_number what = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | v -> err "%s: expected a number, got %s" what (Value.to_string v)

let as_bool what = function
  | Value.Bool b -> b
  | v -> err "%s: expected a boolean, got %s" what (Value.to_string v)

let arith op a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> (
      match op with
      | Ast.Add -> Value.Int (x + y)
      | Sub -> Value.Int (x - y)
      | Mul -> Value.Int (x * y)
      | Div ->
          if y = 0 then err "division by zero" else Value.Int (x / y)
      | _ -> assert false)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) -> (
      let x = as_number "arith" a and y = as_number "arith" b in
      match op with
      | Ast.Add -> Value.Float (x +. y)
      | Sub -> Value.Float (x -. y)
      | Mul -> Value.Float (x *. y)
      | Div ->
          if y = 0.0 then err "division by zero" else Value.Float (x /. y)
      | _ -> assert false)
  | Value.Str x, Value.Str y when op = Ast.Add -> Value.Str (x ^ y)
  | a, b ->
      err "arithmetic on non-numbers: %s, %s" (Value.to_string a)
        (Value.to_string b)

let builtins =
  [ "count"; "sum"; "avg"; "max"; "min"; "distinct"; "member"; "flatten";
    "abs"; "group"; "contains"; "startswith"; "upper"; "lower"; "strlen";
    "mod" ]

(* value-level operator semantics, shared with the provenance-annotated
   evaluator (Automed_provenance.Peval) so the two cannot diverge *)
let apply_unop_exn op v =
  match (op, v) with
  | Ast.Neg, Value.Int i -> Value.Int (-i)
  | Ast.Neg, Value.Float f -> Value.Float (-.f)
  | Ast.Neg, v -> err "negation of non-number %s" (Value.to_string v)
  | Ast.Not, v -> Value.Bool (not (as_bool "not" v))

let apply_binop_exn op a b =
  match (op : Ast.binop) with
  | And -> Value.Bool (as_bool "and" a && as_bool "and" b)
  | Or -> Value.Bool (as_bool "or" a || as_bool "or" b)
  | (Add | Sub | Mul | Div) as op -> arith op a b
  | (Eq | Neq | Lt | Le | Gt | Ge) as op ->
      let c = Value.compare a b in
      Value.Bool
        (match op with
        | Eq -> c = 0
        | Neq -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | _ -> assert false)
  | Union ->
      Value.Bag (Value.Bag.union (as_bag "++" a) (as_bag "++" b))
  | Monus ->
      Value.Bag (Value.Bag.monus (as_bag "--" a) (as_bag "--" b))

let rec eval_expr env (e : Ast.expr) : Value.t =
  Telemetry.count "iql.eval.nodes";
  match e with
  | Const v -> v
  | Void -> Value.Bag Value.Bag.empty
  | Any -> err "cannot materialise Any (no upper bound information)"
  | Var x -> (
      match SM.find_opt x env.vars with
      | Some v -> v
      | None -> err "unbound variable %s" x)
  | SchemeRef s -> (
      match env.schemes s with
      | Some b -> Value.Bag b
      | None -> err "no extent for schema object %s" (Scheme.to_string s))
  | Tuple es -> Value.Tuple (List.map (eval_expr env) es)
  | EBag es -> Value.Bag (Value.Bag.of_list (List.map (eval_expr env) es))
  | Range (l, _) -> eval_expr env l
  | If (c, t, e) ->
      if as_bool "if condition" (eval_expr env c) then eval_expr env t
      else eval_expr env e
  | Let (x, e, body) -> eval_expr (bind x (eval_expr env e) env) body
  | Unop (op, e) -> apply_unop_exn op (eval_expr env e)
  | Binop (And, a, b) ->
      Value.Bool
        (as_bool "and" (eval_expr env a) && as_bool "and" (eval_expr env b))
  | Binop (Or, a, b) ->
      Value.Bool
        (as_bool "or" (eval_expr env a) || as_bool "or" (eval_expr env b))
  | Binop (op, a, b) ->
      (* right-to-left, matching OCaml's application order in the
         pre-refactor per-operator branches *)
      let vb = eval_expr env b in
      let va = eval_expr env a in
      apply_binop_exn op va vb
  | Comp (head, quals) ->
      (* accumulate weighted results and canonicalise once at the end:
         O(n log n) instead of per-element sorted insertion *)
      let acc = ref [] in
      let rec go env mult = function
        | [] ->
            let v = eval_expr env head in
            acc := (v, mult) :: !acc
        | Ast.Filter f :: rest ->
            if as_bool "filter" (eval_expr env f) then go env mult rest
        | Ast.Gen (p, src) :: rest ->
            let b = as_bag "generator source" (eval_expr env src) in
            Value.Bag.fold
              (fun v n () ->
                match match_pat p v with
                | None -> ()
                | Some bs ->
                    let env =
                      List.fold_left (fun e (x, v) -> bind x v e) env bs
                    in
                    go env (mult * n) rest)
              b ()
      in
      go env 1 quals;
      Value.Bag (Value.Bag.of_weighted_list !acc)
  | App (f, args) -> eval_app env f (List.map (eval_expr env) args)

and eval_app _env f (args : Value.t list) : Value.t =
  let one what =
    match args with
    | [ v ] -> v
    | _ -> err "%s expects one argument, got %d" what (List.length args)
  in
  match f with
  | "count" -> Value.Int (Value.Bag.cardinal (as_bag "count" (one "count")))
  | "distinct" ->
      Value.Bag (Value.Bag.distinct (as_bag "distinct" (one "distinct")))
  | "flatten" ->
      let outer = as_bag "flatten" (one "flatten") in
      let merged =
        Value.Bag.fold
          (fun v n acc ->
            let inner = as_bag "flatten element" v in
            let scaled = List.map (fun (w, m) -> (w, m * n)) inner in
            Value.Bag.union acc scaled)
          outer Value.Bag.empty
      in
      Value.Bag merged
  | "sum" ->
      let b = as_bag "sum" (one "sum") in
      let all_int =
        Value.Bag.fold
          (fun v _ ok -> ok && match v with Value.Int _ -> true | _ -> false)
          b true
      in
      if all_int then
        Value.Int
          (Value.Bag.fold
             (fun v n acc ->
               match v with Value.Int i -> acc + (i * n) | _ -> acc)
             b 0)
      else
        Value.Float
          (Value.Bag.fold
             (fun v n acc -> acc +. (as_number "sum" v *. float_of_int n))
             b 0.0)
  | "avg" ->
      let b = as_bag "avg" (one "avg") in
      let n = Value.Bag.cardinal b in
      if n = 0 then err "avg of empty collection"
      else
        Value.Float
          (Value.Bag.fold
             (fun v m acc -> acc +. (as_number "avg" v *. float_of_int m))
             b 0.0
          /. float_of_int n)
  | "max" | "min" -> (
      let b = as_bag f (one f) in
      match Value.Bag.to_list b with
      | [] -> err "%s of empty collection" f
      | v :: vs ->
          let pick =
            if f = "max" then fun a b -> if Value.compare a b >= 0 then a else b
            else fun a b -> if Value.compare a b <= 0 then a else b
          in
          List.fold_left pick v vs)
  | "member" -> (
      match args with
      | [ v; Value.Bag b ] -> Value.Bool (Value.Bag.mem v b)
      | [ Value.Bag b; v ] -> Value.Bool (Value.Bag.mem v b)
      | _ -> err "member expects a value and a collection")
  | "abs" -> (
      match one "abs" with
      | Value.Int i -> Value.Int (abs i)
      | Value.Float f -> Value.Float (Float.abs f)
      | v -> err "abs of non-number %s" (Value.to_string v))
  | "group" ->
      (* bag of {k, v} pairs -> bag of {k, bag of vs}; the standard IQL
         grouping operator, with multiplicities preserved inside groups *)
      let b = as_bag "group" (one "group") in
      let module VM = Map.Make (struct
        type t = Value.t

        let compare = Value.compare
      end) in
      let groups =
        Value.Bag.fold
          (fun v n acc ->
            match v with
            | Value.Tuple [ k; x ] ->
                let existing = Option.value ~default:Value.Bag.empty (VM.find_opt k acc) in
                VM.add k (Value.Bag.add ~count:n x existing) acc
            | v -> err "group expects {key, value} pairs, got %s" (Value.to_string v))
          b VM.empty
      in
      Value.Bag
        (VM.fold
           (fun k vs acc -> Value.Bag.add (Value.tuple2 k (Value.Bag vs)) acc)
           groups Value.Bag.empty)
  | "contains" -> (
      match args with
      | [ Value.Str s; Value.Str sub ] ->
          Value.Bool (Automed_base.Strutil.contains_sub ~sub s)
      | _ -> err "contains expects two strings")
  | "startswith" -> (
      match args with
      | [ Value.Str s; Value.Str prefix ] ->
          Value.Bool (Automed_base.Strutil.starts_with ~prefix s)
      | _ -> err "startswith expects two strings")
  | "upper" -> (
      match one "upper" with
      | Value.Str s -> Value.Str (String.uppercase_ascii s)
      | v -> err "upper of non-string %s" (Value.to_string v))
  | "lower" -> (
      match one "lower" with
      | Value.Str s -> Value.Str (String.lowercase_ascii s)
      | v -> err "lower of non-string %s" (Value.to_string v))
  | "strlen" -> (
      match one "strlen" with
      | Value.Str s -> Value.Int (String.length s)
      | v -> err "strlen of non-string %s" (Value.to_string v))
  | "mod" -> (
      match args with
      | [ Value.Int a; Value.Int b ] ->
          if b = 0 then err "mod by zero" else Value.Int (a mod b)
      | _ -> err "mod expects two ints")
  | f -> err "unknown function %s" f

let eval env e =
  Telemetry.with_span "iql.eval" @@ fun () ->
  match
    in_context (Fmt.str "evaluating %s" (Ast.to_string e)) (fun () ->
        eval_expr env e)
  with
  | v ->
      (if Telemetry.active () then begin
         Telemetry.annotate "expr_size" (string_of_int (Ast.size e));
         match v with
         | Value.Bag b ->
             let n = Value.Bag.cardinal b in
             Telemetry.observe "iql.eval.bag_size" (float_of_int n);
             Telemetry.annotate "bag_size" (string_of_int n)
         | _ -> ()
       end);
      Ok v
  | exception Error e -> Error e

let eval_exn env e =
  match eval env e with
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%a" pp_error e)

(* -- value-level entry points for the annotated evaluator ----------------- *)

let catching f = match f () with v -> Ok v | exception Error e -> Error e

let apply_unop op v = catching (fun () -> apply_unop_exn op v)
let apply_binop op a b = catching (fun () -> apply_binop_exn op a b)

let apply_builtin f args =
  catching (fun () -> eval_app (env ()) f args)
