(** IQL evaluator.

    Evaluation is defined against an environment that resolves schema
    object references to their extents (bags of values).  Comprehension
    semantics are the standard bag-monad semantics: generators iterate
    with multiplicity, refutable patterns filter, and the head is
    collected into a bag whose multiplicities multiply along the nesting.

    [Void] evaluates to the empty bag.  [Range l u] evaluates to its lower
    bound [l]: the {e certain} answers (the paper uses lower bounds when a
    contracted object's extent cannot be derived precisely).  [Any] cannot
    be materialised and evaluating it is an error. *)

type env
(** Immutable evaluation environment. *)

val env :
  ?schemes:(Automed_base.Scheme.t -> Value.Bag.t option) ->
  ?vars:(string * Value.t) list ->
  unit ->
  env

val bind : string -> Value.t -> env -> env

type error = { message : string; context : string list }

val pp_error : error Fmt.t

val eval : env -> Ast.expr -> (Value.t, error) result

val eval_exn : env -> Ast.expr -> Value.t
(** @raise Failure with the rendered error. *)

val match_pat : Ast.pat -> Value.t -> (string * Value.t) list option
(** [match_pat p v] is [Some bindings] when [v] matches [p]. *)

val builtins : string list
(** Names recognised in [App]: aggregation ([count], [sum], [avg], [max],
    [min]), collections ([distinct], [member], [flatten], [group]),
    strings ([contains], [startswith], [upper], [lower], [strlen]) and
    arithmetic ([abs], [mod]).  All pure. *)
