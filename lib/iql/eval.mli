(** IQL evaluator.

    Evaluation is defined against an environment that resolves schema
    object references to their extents (bags of values).  Comprehension
    semantics are the standard bag-monad semantics: generators iterate
    with multiplicity, refutable patterns filter, and the head is
    collected into a bag whose multiplicities multiply along the nesting.

    [Void] evaluates to the empty bag.  [Range l u] evaluates to its lower
    bound [l]: the {e certain} answers (the paper uses lower bounds when a
    contracted object's extent cannot be derived precisely).  [Any] cannot
    be materialised and evaluating it is an error. *)

type env
(** Immutable evaluation environment. *)

val env :
  ?schemes:(Automed_base.Scheme.t -> Value.Bag.t option) ->
  ?vars:(string * Value.t) list ->
  unit ->
  env

val bind : string -> Value.t -> env -> env

type error = { message : string; context : string list }

val pp_error : error Fmt.t

val eval : env -> Ast.expr -> (Value.t, error) result

val eval_exn : env -> Ast.expr -> Value.t
(** @raise Failure with the rendered error. *)

val match_pat : Ast.pat -> Value.t -> (string * Value.t) list option
(** [match_pat p v] is [Some bindings] when [v] matches [p]. *)

val builtins : string list
(** Names recognised in [App]: aggregation ([count], [sum], [avg], [max],
    [min]), collections ([distinct], [member], [flatten], [group]),
    strings ([contains], [startswith], [upper], [lower], [strlen]) and
    arithmetic ([abs], [mod]).  All pure. *)

(** {1 Value-level operator semantics}

    The exact semantics the evaluator applies once operands are values,
    exposed so the provenance-annotated evaluator
    ([Automed_provenance.Peval]) can delegate scalar computation here and
    provably cannot diverge from {!eval}.  All three are strict: for
    [And]/[Or] the annotated evaluator performs its own short-circuiting
    before calling {!apply_binop}. *)

val apply_unop : Ast.unop -> Value.t -> (Value.t, error) result
val apply_binop : Ast.binop -> Value.t -> Value.t -> (Value.t, error) result

val apply_builtin : string -> Value.t list -> (Value.t, error) result
(** Applies one of {!builtins} to evaluated arguments. *)
