module Scheme = Automed_base.Scheme

type binop =
  | Add | Sub | Mul | Div
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Union
  | Monus

type unop = Neg | Not

type expr =
  | Const of Value.t
  | Var of string
  | SchemeRef of Scheme.t
  | Tuple of expr list
  | EBag of expr list
  | Comp of expr * qual list
  | App of string * expr list
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | If of expr * expr * expr
  | Let of string * expr * expr
  | Range of expr * expr
  | Void
  | Any

and qual = Gen of pat * expr | Filter of expr

and pat =
  | PVar of string
  | PWild
  | PConst of Value.t
  | PTuple of pat list

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Value.equal x y
  | Var x, Var y -> String.equal x y
  | SchemeRef x, SchemeRef y -> Scheme.equal x y
  | Tuple xs, Tuple ys | EBag xs, EBag ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Comp (h1, q1), Comp (h2, q2) ->
      equal h1 h2 && List.length q1 = List.length q2
      && List.for_all2 equal_qual q1 q2
  | App (f, xs), App (g, ys) ->
      String.equal f g && List.length xs = List.length ys
      && List.for_all2 equal xs ys
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && equal e1 e2
  | If (c1, t1, e1), If (c2, t2, e2) -> equal c1 c2 && equal t1 t2 && equal e1 e2
  | Let (x, e1, b1), Let (y, e2, b2) -> String.equal x y && equal e1 e2 && equal b1 b2
  | Range (l1, u1), Range (l2, u2) -> equal l1 l2 && equal u1 u2
  | Void, Void | Any, Any -> true
  | ( ( Const _ | Var _ | SchemeRef _ | Tuple _ | EBag _ | Comp _ | App _
      | Binop _ | Unop _ | If _ | Let _ | Range _ | Void | Any ),
      _ ) ->
      false

and equal_qual q1 q2 =
  match (q1, q2) with
  | Gen (p1, e1), Gen (p2, e2) -> equal_pat p1 p2 && equal e1 e2
  | Filter e1, Filter e2 -> equal e1 e2
  | (Gen _ | Filter _), _ -> false

and equal_pat p1 p2 =
  match (p1, p2) with
  | PVar x, PVar y -> String.equal x y
  | PWild, PWild -> true
  | PConst x, PConst y -> Value.equal x y
  | PTuple xs, PTuple ys ->
      List.length xs = List.length ys && List.for_all2 equal_pat xs ys
  | (PVar _ | PWild | PConst _ | PTuple _), _ -> false

let rec fold_schemes acc = function
  | SchemeRef s -> Scheme.Set.add s acc
  | Const _ | Var _ | Void | Any -> acc
  | Tuple es | EBag es | App (_, es) -> List.fold_left fold_schemes acc es
  | Comp (h, qs) ->
      List.fold_left
        (fun acc -> function
          | Gen (_, e) | Filter e -> fold_schemes acc e)
        (fold_schemes acc h) qs
  | Binop (_, a, b) | Range (a, b) | Let (_, a, b) ->
      fold_schemes (fold_schemes acc a) b
  | Unop (_, e) -> fold_schemes acc e
  | If (c, t, e) -> fold_schemes (fold_schemes (fold_schemes acc c) t) e

let schemes e = fold_schemes Scheme.Set.empty e

let rec size = function
  | Const _ | Var _ | SchemeRef _ | Void | Any -> 1
  | Tuple es | EBag es | App (_, es) ->
      List.fold_left (fun acc e -> acc + size e) 1 es
  | Binop (_, a, b) | Range (a, b) | Let (_, a, b) -> 1 + size a + size b
  | Unop (_, e) -> 1 + size e
  | If (c, t, e) -> 1 + size c + size t + size e
  | Comp (h, qs) ->
      List.fold_left
        (fun acc -> function Gen (_, e) | Filter e -> acc + size e)
        (1 + size h) qs

let rec pat_vars = function
  | PVar x -> [ x ]
  | PWild | PConst _ -> []
  | PTuple ps -> List.concat_map pat_vars ps

module SS = Set.Make (String)

let vars e =
  (* first-occurrence order, excluding bound variables *)
  let seen = ref SS.empty in
  let out = ref [] in
  let rec go bound = function
    | Var x ->
        if (not (SS.mem x bound)) && not (SS.mem x !seen) then begin
          seen := SS.add x !seen;
          out := x :: !out
        end
    | Const _ | SchemeRef _ | Void | Any -> ()
    | Tuple es | EBag es | App (_, es) -> List.iter (go bound) es
    | Binop (_, a, b) | Range (a, b) -> go bound a; go bound b
    | Unop (_, e) -> go bound e
    | If (c, t, e) -> go bound c; go bound t; go bound e
    | Let (x, e, body) -> go bound e; go (SS.add x bound) body
    | Comp (h, qs) ->
        let bound =
          List.fold_left
            (fun bound q ->
              match q with
              | Gen (p, src) ->
                  go bound src;
                  List.fold_left (fun b v -> SS.add v b) bound (pat_vars p)
              | Filter f -> go bound f; bound)
            bound qs
        in
        go bound h
  in
  go SS.empty e;
  List.rev !out

let rec subst_schemes f = function
  | SchemeRef s as e -> ( match f s with Some e' -> e' | None -> e)
  | (Const _ | Var _ | Void | Any) as e -> e
  | Tuple es -> Tuple (List.map (subst_schemes f) es)
  | EBag es -> EBag (List.map (subst_schemes f) es)
  | App (g, es) -> App (g, List.map (subst_schemes f) es)
  | Comp (h, qs) ->
      let qs =
        List.map
          (function
            | Gen (p, e) -> Gen (p, subst_schemes f e)
            | Filter e -> Filter (subst_schemes f e))
          qs
      in
      Comp (subst_schemes f h, qs)
  | Binop (op, a, b) -> Binop (op, subst_schemes f a, subst_schemes f b)
  | Unop (op, e) -> Unop (op, subst_schemes f e)
  | If (c, t, e) -> If (subst_schemes f c, subst_schemes f t, subst_schemes f e)
  | Let (x, e, b) -> Let (x, subst_schemes f e, subst_schemes f b)
  | Range (l, u) -> Range (subst_schemes f l, subst_schemes f u)

let rename_scheme ~from_ ~to_ e =
  subst_schemes
    (fun s -> if Scheme.equal s from_ then Some (SchemeRef to_) else None)
    e

let is_range_void_any = function Range (Void, Any) -> true | _ -> false
let scheme_ref s = SchemeRef s
let str s = Const (Value.Str s)
let int i = Const (Value.Int i)

(* -- printing ---------------------------------------------------------- *)

(* Precedence levels, loosest first:
   0 let/if, 1 or, 2 and, 3 comparison, 4 ++/--, 5 +/-, 6 * / , 7 unary,
   8 atoms. *)

let binop_info = function
  | Or -> (1, "or")
  | And -> (2, "and")
  | Eq -> (3, "=")
  | Neq -> (3, "<>")
  | Lt -> (3, "<")
  | Le -> (3, "<=")
  | Gt -> (3, ">")
  | Ge -> (3, ">=")
  | Union -> (4, "++")
  | Monus -> (4, "--")
  | Add -> (5, "+")
  | Sub -> (5, "-")
  | Mul -> (6, "*")
  | Div -> (6, "/")

let rec pp_prec prec ppf e =
  match e with
  | Const v -> Value.pp ppf v
  | Var x -> Fmt.string ppf x
  | SchemeRef s -> Scheme.pp ppf s
  | Void -> Fmt.string ppf "Void"
  | Any -> Fmt.string ppf "Any"
  | Tuple es -> Fmt.pf ppf "{%a}" (pp_list 0) es
  | EBag es -> Fmt.pf ppf "[%a]" (pp_seq 0) es
  | Comp (h, qs) ->
      Fmt.pf ppf "[%a | %a]" (pp_prec 0) h
        Fmt.(list ~sep:(any "; ") pp_qual)
        qs
  | App (f, es) -> Fmt.pf ppf "%s(%a)" f (pp_list 0) es
  | Range (l, u) ->
      let body ppf () =
        Fmt.pf ppf "Range %a %a" (pp_prec 8) l (pp_prec 8) u
      in
      if prec > 7 then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Unop (op, e) ->
      let s = match op with Neg -> "-" | Not -> "not " in
      let body ppf () = Fmt.pf ppf "%s%a" s (pp_prec 7) e in
      if prec > 7 then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Binop (op, a, b) ->
      let p, s = binop_info op in
      (* comparisons are non-associative: both operands need a higher
         level so nested comparisons re-parse unambiguously *)
      let lhs_prec =
        match op with
        | Eq | Neq | Lt | Le | Gt | Ge -> p + 1
        | Add | Sub | Mul | Div | And | Or | Union | Monus -> p
      in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_prec lhs_prec) a s (pp_prec (p + 1)) b
      in
      if prec > p then Fmt.pf ppf "(%a)" body () else body ppf ()
  | If (c, t, e) ->
      let body ppf () =
        Fmt.pf ppf "if %a then %a else %a" (pp_prec 0) c (pp_prec 0) t
          (pp_prec 0) e
      in
      if prec > 0 then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Let (x, e, b) ->
      let body ppf () =
        Fmt.pf ppf "let %s = %a in %a" x (pp_prec 0) e (pp_prec 0) b
      in
      if prec > 0 then Fmt.pf ppf "(%a)" body () else body ppf ()

and pp_list prec ppf es = Fmt.(list ~sep:(any ", ") (pp_prec prec)) ppf es
and pp_seq prec ppf es = Fmt.(list ~sep:(any "; ") (pp_prec prec)) ppf es

and pp_qual ppf = function
  | Gen (p, e) -> Fmt.pf ppf "%a <- %a" pp_pat p (pp_prec 4) e
  | Filter e -> pp_prec 3 ppf e

and pp_pat ppf = function
  | PVar x -> Fmt.string ppf x
  | PWild -> Fmt.string ppf "_"
  | PConst v -> Value.pp ppf v
  | PTuple ps -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp_pat) ps

let pp = pp_prec 0
let to_string e = Fmt.to_to_string pp e
