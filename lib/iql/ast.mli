(** Abstract syntax of IQL, the functional query language of the AutoMed
    system.  The concrete syntax follows the paper: comprehensions
    [\[e | q1; ...; qn\]] whose qualifiers are generators [pat <- source]
    and boolean filters; tuple construction [{e1, ..., en}]; references to
    schema object extents [<<t>>] and [<<t,c>>]; and the bounding
    expressions [Range ql qu], [Void] and [Any] used by extend/contract
    transformations. *)

module Scheme = Automed_base.Scheme

type binop =
  | Add | Sub | Mul | Div
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Union  (** [++]: additive bag union *)
  | Monus  (** [--]: bag difference *)

type unop = Neg | Not

type expr =
  | Const of Value.t  (** scalar literals only; bags are built via [EBag] *)
  | Var of string
  | SchemeRef of Scheme.t
  | Tuple of expr list
  | EBag of expr list  (** bag literal [\[e1; e2; ...\]] *)
  | Comp of expr * qual list  (** [\[head | quals\]] *)
  | App of string * expr list  (** builtin application, e.g. [count(e)] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | If of expr * expr * expr
  | Let of string * expr * expr
  | Range of expr * expr  (** [Range lower upper] *)
  | Void  (** the empty collection: universal lower bound *)
  | Any  (** the largest collection of the type: universal upper bound *)

and qual = Gen of pat * expr | Filter of expr

and pat =
  | PVar of string
  | PWild
  | PConst of Value.t
  | PTuple of pat list

val equal : expr -> expr -> bool

val schemes : expr -> Scheme.Set.t
(** All schema objects whose extents the expression references. *)

val size : expr -> int
(** Number of AST nodes — the complexity measure reported by telemetry
    probes and query-processor errors. *)

val vars : expr -> string list
(** Free variables, each listed once, in first-occurrence order. *)

val subst_schemes : (Scheme.t -> expr option) -> expr -> expr
(** Replaces each [SchemeRef s] for which the function returns [Some e]
    by [e].  Substituted expressions are assumed closed (their only free
    references are schemes), which holds for transformation queries. *)

val rename_scheme : from_:Scheme.t -> to_:Scheme.t -> expr -> expr

val pat_vars : pat -> string list

val is_range_void_any : expr -> bool
(** True for the query [Range Void Any] - the "no information" bound whose
    transformations the paper counts as trivial. *)

val scheme_ref : Scheme.t -> expr
val str : string -> expr
val int : int -> expr

val pp : expr Fmt.t
(** Precedence-aware printer; output re-parses to an equal AST. *)

val pp_pat : pat Fmt.t
val pp_qual : qual Fmt.t
val to_string : expr -> string
