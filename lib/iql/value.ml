type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Tuple of t list
  | Bag of (t * int) list

let rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4
  | Tuple _ -> 5
  | Bag _ -> 6

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Tuple xs, Tuple ys -> List.compare compare xs ys
  | Bag xs, Bag ys ->
      List.compare
        (fun (v1, n1) (v2, n2) ->
          match compare v1 v2 with 0 -> Int.compare n1 n2 | c -> c)
        xs ys
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* Inner text of a string literal: escapes are rendered so that the
   lexer reads the exact string back (strings without quotes, backslashes
   or control characters render as themselves). *)
let escape_string s =
  let plain c = c <> '\'' && c <> '\\' && c <> '\n' && c <> '\r' && c <> '\t' in
  if String.for_all plain s then s
  else begin
    let buf = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        match c with
        | '\'' -> Buffer.add_string buf "\\'"
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.pf ppf "'%s'" (escape_string s)
  | Tuple vs -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp) vs
  | Bag b ->
      let item ppf (v, n) =
        if n = 1 then pp ppf v else Fmt.pf ppf "%a*%d" pp v n
      in
      Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") item) b

let to_string v = Fmt.to_to_string pp v

let rec is_canonical = function
  | Unit | Bool _ | Int _ | Float _ | Str _ -> true
  | Tuple vs -> List.for_all is_canonical vs
  | Bag b ->
      let rec sorted = function
        | [] | [ _ ] -> true
        | (v1, _) :: ((v2, _) :: _ as rest) -> compare v1 v2 < 0 && sorted rest
      in
      List.for_all (fun (v, n) -> n >= 1 && is_canonical v) b && sorted b

module Bag = struct
  type elt = t
  type nonrec t = (t * int) list

  let empty = []
  let is_empty b = b = []

  let rec add ?(count = 1) v = function
    | [] -> if count <= 0 then [] else [ (v, count) ]
    | (w, m) :: rest as b -> (
        match compare v w with
        | 0 ->
            let n = m + count in
            if n <= 0 then rest else (w, n) :: rest
        | c when c < 0 -> if count <= 0 then b else (v, count) :: b
        | _ -> (w, m) :: add ~count v rest)

  let of_weighted_list pairs =
    let sorted =
      List.stable_sort (fun (a, _) (b, _) -> compare a b) pairs
    in
    (* merge runs of equal elements, summing counts *)
    let rec merge = function
      | [] -> []
      | (v, n) :: rest ->
          let rec take n = function
            | (v', n') :: rest when compare v v' = 0 -> take (n + n') rest
            | rest -> (n, rest)
          in
          let total, rest = take n rest in
          if total <= 0 then merge rest else (v, total) :: merge rest
    in
    merge sorted

  let of_list xs = of_weighted_list (List.map (fun v -> (v, 1)) xs)

  let to_list b =
    List.concat_map (fun (v, n) -> List.init n (fun _ -> v)) b

  let singleton v = [ (v, 1) ]
  let cardinal b = List.fold_left (fun acc (_, n) -> acc + n) 0 b
  let distinct_cardinal = List.length

  let rec multiplicity v = function
    | [] -> 0
    | (w, n) :: rest -> (
        match compare v w with
        | 0 -> n
        | c when c < 0 -> 0
        | _ -> multiplicity v rest)

  let mem v b = multiplicity v b > 0

  let rec merge f a b =
    match (a, b) with
    | [], [] -> []
    | (v, n) :: ra, [] -> cons v (f n 0) (merge f ra [])
    | [], (v, n) :: rb -> cons v (f 0 n) (merge f [] rb)
    | (v1, n1) :: ra, (v2, n2) :: rb -> (
        match compare v1 v2 with
        | 0 -> cons v1 (f n1 n2) (merge f ra rb)
        | c when c < 0 -> cons v1 (f n1 0) (merge f ra b)
        | _ -> cons v2 (f 0 n2) (merge f a rb))

  and cons v n rest = if n <= 0 then rest else (v, n) :: rest

  let union a b = merge ( + ) a b
  let monus a b = merge (fun x y -> max 0 (x - y)) a b
  let inter a b = merge min a b
  let distinct b = List.map (fun (v, _) -> (v, 1)) b

  let sub_bag a b =
    List.for_all (fun (v, n) -> n <= multiplicity v b) a

  let map f b =
    List.fold_left (fun acc (v, n) -> add ~count:n (f v) acc) empty b

  let filter p b = List.filter (fun (v, _) -> p v) b
  let fold f b init = List.fold_left (fun acc (v, n) -> f v n acc) init b
  let equal a b = a = b
end

let bag_of_list xs = Bag (Bag.of_list xs)
let tuple2 a b = Tuple [ a; b ]
let tuple3 a b c = Tuple [ a; b; c ]
