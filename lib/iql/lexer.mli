(** Hand-written lexer for IQL concrete syntax. *)

type token =
  | LBRACKET | RBRACKET        (* [ ] *)
  | LBRACE | RBRACE            (* { } *)
  | LPAREN | RPAREN            (* ( ) *)
  | BAR | SEMI | COMMA         (* | ; , *)
  | ARROW                      (* <- *)
  | PLUS | MINUS | STAR | SLASH
  | PLUSPLUS | MINUSMINUS      (* ++ -- *)
  | EQ | NEQ | LT | LE | GT | GE
  | KW_RANGE | KW_VOID | KW_ANY
  | KW_IF | KW_THEN | KW_ELSE | KW_LET | KW_IN
  | KW_AND | KW_OR | KW_NOT
  | KW_TRUE | KW_FALSE
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string           (* '...' *)
  | SCHEME of Automed_base.Scheme.t  (* <<...>> *)
  | UNDERSCORE
  | EOF

type located = { token : token; pos : int }

exception Lex_error of int * string

val tokenize : string -> (located list, string) result
(** Tokenizes the whole input.  Errors report a character offset. *)

val pp_token : token Fmt.t
