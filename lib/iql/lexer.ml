module Scheme = Automed_base.Scheme

type token =
  | LBRACKET | RBRACKET
  | LBRACE | RBRACE
  | LPAREN | RPAREN
  | BAR | SEMI | COMMA
  | ARROW
  | PLUS | MINUS | STAR | SLASH
  | PLUSPLUS | MINUSMINUS
  | EQ | NEQ | LT | LE | GT | GE
  | KW_RANGE | KW_VOID | KW_ANY
  | KW_IF | KW_THEN | KW_ELSE | KW_LET | KW_IN
  | KW_AND | KW_OR | KW_NOT
  | KW_TRUE | KW_FALSE
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | SCHEME of Scheme.t
  | UNDERSCORE
  | EOF

type located = { token : token; pos : int }

exception Lex_error of int * string

let keyword = function
  | "Range" -> Some KW_RANGE
  | "Void" -> Some KW_VOID
  | "Any" -> Some KW_ANY
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "let" -> Some KW_LET
  | "in" -> Some KW_IN
  | "and" -> Some KW_AND
  | "or" -> Some KW_OR
  | "not" -> Some KW_NOT
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c || c = '.' || c = ':'

let tokenize_exn src =
  let n = String.length src in
  let toks = ref [] in
  let emit pos token = toks := { token; pos } :: !toks in
  let i = ref 0 in
  while !i < n do
    let p = !i in
    let c = src.[p] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let j = ref p in
      while !j < n && is_digit src.[!j] do incr j done;
      let is_float = ref false in
      if !j < n - 1 && src.[!j] = '.' && is_digit src.[!j + 1] then begin
        is_float := true;
        incr j;
        while !j < n && is_digit src.[!j] do incr j done
      end;
      (* exponent part: e or E, optional sign, digits *)
      if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
        let k = ref (!j + 1) in
        if !k < n && (src.[!k] = '+' || src.[!k] = '-') then incr k;
        if !k < n && is_digit src.[!k] then begin
          is_float := true;
          j := !k;
          while !j < n && is_digit src.[!j] do incr j done
        end
      end;
      if !is_float then
        emit p (FLOAT (float_of_string (String.sub src p (!j - p))))
      else emit p (INT (int_of_string (String.sub src p (!j - p))));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref p in
      while !j < n && is_ident_char src.[!j] do incr j done;
      (* identifiers may embed '.' or ':' (prefixed names) but not end
         with them, so that "x = y" style juxtaposition is unaffected *)
      while !j > p && (src.[!j - 1] = '.' || src.[!j - 1] = ':') do decr j done;
      let word = String.sub src p (!j - p) in
      (match keyword word with
      | Some k -> emit p k
      | None -> if word = "_" then emit p UNDERSCORE else emit p (IDENT word));
      i := !j
    end
    else
      match c with
      | '\'' ->
          let buf = Buffer.create 16 in
          let j = ref (p + 1) in
          let closed = ref false in
          while not !closed do
            if !j >= n then
              raise (Lex_error (p, "unterminated string literal"))
            else
              match src.[!j] with
              | '\'' ->
                  closed := true;
                  incr j
              | '\\' ->
                  if !j + 1 >= n then
                    raise (Lex_error (p, "unterminated string literal"));
                  (match src.[!j + 1] with
                  | '\'' -> Buffer.add_char buf '\''
                  | '\\' -> Buffer.add_char buf '\\'
                  | 'n' -> Buffer.add_char buf '\n'
                  | 'r' -> Buffer.add_char buf '\r'
                  | 't' -> Buffer.add_char buf '\t'
                  | c ->
                      raise
                        (Lex_error
                           ( !j,
                             Printf.sprintf
                               "unknown escape \\%c in string literal" c )));
                  j := !j + 2
              | c ->
                  Buffer.add_char buf c;
                  incr j
          done;
          emit p (STRING (Buffer.contents buf));
          i := !j
      | '[' -> emit p LBRACKET; incr i
      | ']' -> emit p RBRACKET; incr i
      | '{' -> emit p LBRACE; incr i
      | '}' -> emit p RBRACE; incr i
      | '(' -> emit p LPAREN; incr i
      | ')' -> emit p RPAREN; incr i
      | '|' -> emit p BAR; incr i
      | ';' -> emit p SEMI; incr i
      | ',' -> emit p COMMA; incr i
      | '*' -> emit p STAR; incr i
      | '/' -> emit p SLASH; incr i
      | '=' -> emit p EQ; incr i
      | '+' ->
          if p + 1 < n && src.[p + 1] = '+' then (emit p PLUSPLUS; i := p + 2)
          else (emit p PLUS; incr i)
      | '-' ->
          if p + 1 < n && src.[p + 1] = '-' then (emit p MINUSMINUS; i := p + 2)
          else (emit p MINUS; incr i)
      | '>' ->
          if p + 1 < n && src.[p + 1] = '=' then (emit p GE; i := p + 2)
          else (emit p GT; incr i)
      | '<' ->
          if p + 1 < n && src.[p + 1] = '<' then begin
            (* scheme literal: scan to the matching '>>' *)
            let j = ref (p + 2) in
            while !j + 1 < n && not (src.[!j] = '>' && src.[!j + 1] = '>') do
              incr j
            done;
            if !j + 1 >= n then
              raise (Lex_error (p, "unterminated scheme literal"));
            let text = String.sub src p (!j + 2 - p) in
            (match Scheme.of_string text with
            | Ok s -> emit p (SCHEME s)
            | Error e -> raise (Lex_error (p, e)));
            i := !j + 2
          end
          else if p + 1 < n && src.[p + 1] = '-' then (emit p ARROW; i := p + 2)
          else if p + 1 < n && src.[p + 1] = '=' then (emit p LE; i := p + 2)
          else if p + 1 < n && src.[p + 1] = '>' then (emit p NEQ; i := p + 2)
          else (emit p LT; incr i)
      | c ->
          raise (Lex_error (p, Printf.sprintf "unexpected character %C" c))
  done;
  emit n EOF;
  List.rev !toks

let tokenize src =
  match tokenize_exn src with
  | toks -> Ok toks
  | exception Lex_error (pos, msg) ->
      Error (Printf.sprintf "lex error at %d: %s" pos msg)

let pp_token ppf = function
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | BAR -> Fmt.string ppf "|"
  | SEMI -> Fmt.string ppf ";"
  | COMMA -> Fmt.string ppf ","
  | ARROW -> Fmt.string ppf "<-"
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | SLASH -> Fmt.string ppf "/"
  | PLUSPLUS -> Fmt.string ppf "++"
  | MINUSMINUS -> Fmt.string ppf "--"
  | EQ -> Fmt.string ppf "="
  | NEQ -> Fmt.string ppf "<>"
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | KW_RANGE -> Fmt.string ppf "Range"
  | KW_VOID -> Fmt.string ppf "Void"
  | KW_ANY -> Fmt.string ppf "Any"
  | KW_IF -> Fmt.string ppf "if"
  | KW_THEN -> Fmt.string ppf "then"
  | KW_ELSE -> Fmt.string ppf "else"
  | KW_LET -> Fmt.string ppf "let"
  | KW_IN -> Fmt.string ppf "in"
  | KW_AND -> Fmt.string ppf "and"
  | KW_OR -> Fmt.string ppf "or"
  | KW_NOT -> Fmt.string ppf "not"
  | KW_TRUE -> Fmt.string ppf "true"
  | KW_FALSE -> Fmt.string ppf "false"
  | IDENT s -> Fmt.pf ppf "ident:%s" s
  | INT i -> Fmt.int ppf i
  | FLOAT f -> Fmt.float ppf f
  | STRING s -> Fmt.pf ppf "'%s'" (Value.escape_string s)
  | SCHEME s -> Scheme.pp ppf s
  | UNDERSCORE -> Fmt.string ppf "_"
  | EOF -> Fmt.string ppf "<eof>"
