(** A lightweight structural type checker for IQL.

    Catches the common mapping mistakes before a query is ever attached to
    a transformation: arity mismatches between generator patterns and the
    extents they draw from, comparisons between incompatible types, and
    non-collection operands to [++]/[--].

    Types are first-order with unification variables; there is no
    polymorphism beyond the implicit generalisation of literals.  [Any]
    and [Void] have an unconstrained collection type. *)

type ty =
  | TUnit
  | TBool
  | TInt
  | TFloat
  | TStr
  | TTuple of ty list
  | TBag of ty
  | TVar of int  (** unification variable (only in inferred types) *)

val pp : ty Fmt.t
val to_string : ty -> string

val of_string : string -> (ty, string) result
(** Parses the printed form of variable-free types: [int], [float],
    [str], [bool], [unit], tuples [{t1,t2}] and bags [\[t\]]. *)

val tuple_row : ty list -> ty
(** [tuple_row tys] is [TBag (TTuple tys)]: the type of an extent whose
    elements are tuples of the given component types. *)

type scheme_typing = Automed_base.Scheme.t -> ty option
(** Maps schema objects to their extent types. *)

type error = { message : string; offender : Ast.expr }

val pp_error : error Fmt.t

val infer :
  ?schemes:scheme_typing ->
  ?vars:(string * ty) list ->
  Ast.expr ->
  (ty, error) result
(** Infers the type of an expression.  Unresolved unification variables
    may remain in the result (e.g. for the empty bag). *)

val check_extent_query :
  schemes:scheme_typing -> expected:ty -> Ast.expr -> (unit, error) result
(** Checks that a transformation query produces the [expected] extent
    type.  [Range l u] checks both bounds against [expected]. *)
