(** IQL runtime values.

    IQL is a functional query language over collections with {e bag}
    semantics: the extent of every schema object is a bag of tuples, and
    the default derivation of a global schema object's extent is the bag
    union of its contributing extents (paper, Section 2.1).

    Bags are kept in a canonical form - elements sorted by {!compare}, each
    with a strictly positive multiplicity - so that structural equality of
    values coincides with bag equality. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Tuple of t list
  | Bag of (t * int) list
      (** canonical: strictly ascending elements, multiplicities >= 1 *)

val compare : t -> t -> int
(** Total order: constructor rank first, then structural comparison.
    Used as the bag element order. *)

val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

val escape_string : string -> string
(** The inner text of an IQL string literal for the given string:
    quotes, backslashes and control characters are [\ ]-escaped so that
    the lexer reads the exact string back.  Strings that need no
    escaping render as themselves. *)

val is_canonical : t -> bool
(** Checks the bag invariant recursively (used by property tests). *)

(** Canonical bag operations.  All functions expect and preserve the
    canonical form. *)
module Bag : sig
  type elt = t
  type nonrec t = (t * int) list

  val empty : t
  val is_empty : t -> bool

  val of_list : elt list -> t
  (** O(n log n): sorts and merges duplicates. *)

  val of_weighted_list : (elt * int) list -> t
  (** Builds a canonical bag from arbitrary (element, count) pairs -
      unsorted, duplicated and non-positive counts allowed (entries whose
      total count is not positive are dropped).  O(n log n); this is what
      comprehension evaluation accumulates into. *)

  val to_list : t -> elt list
  (** Expands multiplicities; ascending order. *)

  val singleton : elt -> t
  val add : ?count:int -> elt -> t -> t
  val cardinal : t -> int
  (** Total number of elements, counting multiplicity. *)

  val distinct_cardinal : t -> int
  val multiplicity : elt -> t -> int
  val mem : elt -> t -> bool

  val union : t -> t -> t
  (** Additive bag union [++]: multiplicities add. *)

  val monus : t -> t -> t
  (** Bag difference [--]: multiplicities subtract, floored at zero. *)

  val inter : t -> t -> t
  (** Minimum of multiplicities. *)

  val distinct : t -> t
  (** All multiplicities set to 1. *)

  val sub_bag : t -> t -> bool
  (** [sub_bag a b] iff every element's multiplicity in [a] is at most its
      multiplicity in [b]. *)

  val map : (elt -> elt) -> t -> t
  val filter : (elt -> bool) -> t -> t
  val fold : (elt -> int -> 'a -> 'a) -> t -> 'a -> 'a
  (** Folds over distinct elements with their multiplicities. *)

  val equal : t -> t -> bool
end

val bag_of_list : t list -> t
(** Convenience: [Bag (Bag.of_list xs)]. *)

val tuple2 : t -> t -> t
val tuple3 : t -> t -> t -> t
