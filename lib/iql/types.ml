module Scheme = Automed_base.Scheme

type ty =
  | TUnit
  | TBool
  | TInt
  | TFloat
  | TStr
  | TTuple of ty list
  | TBag of ty
  | TVar of int

let rec pp ppf = function
  | TUnit -> Fmt.string ppf "unit"
  | TBool -> Fmt.string ppf "bool"
  | TInt -> Fmt.string ppf "int"
  | TFloat -> Fmt.string ppf "float"
  | TStr -> Fmt.string ppf "str"
  | TTuple ts -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") pp) ts
  | TBag t -> Fmt.pf ppf "[%a]" pp t
  | TVar n -> Fmt.pf ppf "'t%d" n

let to_string t = Fmt.to_to_string pp t
let tuple_row tys = TBag (TTuple tys)

exception Ty_parse of string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while !pos < n && (text.[!pos] = ' ' || text.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos
    else raise (Ty_parse (Printf.sprintf "expected %C at %d" c !pos))
  in
  let rec parse_ty () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        let rec items acc =
          let t = parse_ty () in
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; items (t :: acc)
          | Some '}' -> incr pos; List.rev (t :: acc)
          | _ -> raise (Ty_parse "expected ',' or '}'")
        in
        TTuple (items [])
    | Some '[' ->
        incr pos;
        let t = parse_ty () in
        expect ']';
        TBag t
    | Some c when c >= 'a' && c <= 'z' ->
        let start = !pos in
        while !pos < n && text.[!pos] >= 'a' && text.[!pos] <= 'z' do incr pos done;
        (match String.sub text start (!pos - start) with
        | "int" -> TInt
        | "float" -> TFloat
        | "str" -> TStr
        | "bool" -> TBool
        | "unit" -> TUnit
        | w -> raise (Ty_parse (Printf.sprintf "unknown type %S" w)))
    | _ -> raise (Ty_parse (Printf.sprintf "unexpected input at %d" !pos))
  in
  match
    let t = parse_ty () in
    skip_ws ();
    if !pos <> n then raise (Ty_parse "trailing input");
    t
  with
  | t -> Ok t
  | exception Ty_parse msg -> Error (Printf.sprintf "type parse error: %s" msg)

type scheme_typing = Scheme.t -> ty option
type error = { message : string; offender : Ast.expr }

let pp_error ppf e =
  Fmt.pf ppf "type error: %s in %s" e.message (Ast.to_string e.offender)

exception Err of error

let fail offender fmt =
  Format.kasprintf (fun message -> raise (Err { message; offender })) fmt

(* Unification over a mutable substitution table. *)

type state = { mutable next : int; subst : (int, ty) Hashtbl.t }

let fresh st =
  let n = st.next in
  st.next <- n + 1;
  TVar n

let rec repr st = function
  | TVar n as t -> (
      match Hashtbl.find_opt st.subst n with
      | Some t' ->
          let r = repr st t' in
          Hashtbl.replace st.subst n r;
          r
      | None -> t)
  | t -> t

let rec occurs st n = function
  | TVar m -> ( match repr st (TVar m) with TVar m' -> m' = n | t -> occurs st n t)
  | TTuple ts -> List.exists (occurs st n) ts
  | TBag t -> occurs st n t
  | TUnit | TBool | TInt | TFloat | TStr -> false

let rec unify st offender a b =
  let a = repr st a and b = repr st b in
  match (a, b) with
  | TVar n, TVar m when n = m -> ()
  | TVar n, t | t, TVar n ->
      if occurs st n t then fail offender "cyclic type"
      else Hashtbl.replace st.subst n t
  | TUnit, TUnit | TBool, TBool | TInt, TInt | TFloat, TFloat | TStr, TStr ->
      ()
  | TBag x, TBag y -> unify st offender x y
  | TTuple xs, TTuple ys when List.length xs = List.length ys ->
      List.iter2 (unify st offender) xs ys
  | TTuple xs, TTuple ys ->
      fail offender "tuple arity mismatch: %d vs %d" (List.length xs)
        (List.length ys)
  | a, b ->
      fail offender "cannot unify %s with %s" (to_string a) (to_string b)

let rec resolve st t =
  match repr st t with
  | TTuple ts -> TTuple (List.map (resolve st) ts)
  | TBag t -> TBag (resolve st t)
  | t -> t

let ty_of_value_shallow = function
  | Value.Unit -> Some TUnit
  | Value.Bool _ -> Some TBool
  | Value.Int _ -> Some TInt
  | Value.Float _ -> Some TFloat
  | Value.Str _ -> Some TStr
  | Value.Tuple _ | Value.Bag _ -> None

module SM = Map.Make (String)

let rec infer_expr st schemes vars (e : Ast.expr) : ty =
  match e with
  | Const v -> (
      match ty_of_value_shallow v with
      | Some t -> t
      | None -> fail e "non-scalar literal")
  | Var x -> (
      match SM.find_opt x vars with
      | Some t -> t
      | None -> fail e "unbound variable %s" x)
  | SchemeRef s -> (
      match schemes s with
      | Some t -> t
      | None ->
          (* unknown extent: any collection type *)
          TBag (fresh st))
  | Void | Any -> TBag (fresh st)
  | Tuple es -> TTuple (List.map (infer_expr st schemes vars) es)
  | EBag es ->
      let elt = fresh st in
      List.iter (fun e' -> unify st e elt (infer_expr st schemes vars e')) es;
      TBag elt
  | Range (l, u) ->
      let tl = infer_expr st schemes vars l in
      let tu = infer_expr st schemes vars u in
      let elt = fresh st in
      unify st e (TBag elt) tl;
      unify st e (TBag elt) tu;
      TBag elt
  | If (c, t, f) ->
      unify st e TBool (infer_expr st schemes vars c);
      let tt = infer_expr st schemes vars t in
      unify st e tt (infer_expr st schemes vars f);
      tt
  | Let (x, e1, body) ->
      let t1 = infer_expr st schemes vars e1 in
      infer_expr st schemes (SM.add x t1 vars) body
  | Unop (Neg, e1) ->
      let t = infer_expr st schemes vars e1 in
      (match repr st t with
      | TInt | TFloat | TVar _ -> ()
      | t -> fail e "cannot negate %s" (to_string t));
      t
  | Unop (Not, e1) ->
      unify st e TBool (infer_expr st schemes vars e1);
      TBool
  | Binop (((Ast.And | Ast.Or) as _op), a, b) ->
      unify st e TBool (infer_expr st schemes vars a);
      unify st e TBool (infer_expr st schemes vars b);
      TBool
  | Binop ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), a, b) ->
      let ta = infer_expr st schemes vars a in
      unify st e ta (infer_expr st schemes vars b);
      TBool
  | Binop ((Ast.Union | Ast.Monus), a, b) ->
      let elt = fresh st in
      unify st e (TBag elt) (infer_expr st schemes vars a);
      unify st e (TBag elt) (infer_expr st schemes vars b);
      TBag elt
  | Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), a, b) ->
      let ta = infer_expr st schemes vars a in
      unify st e ta (infer_expr st schemes vars b);
      (match repr st ta with
      | TInt | TFloat | TStr | TVar _ -> ()
      | t -> fail e "arithmetic on %s" (to_string t));
      ta
  | Comp (head, quals) ->
      let vars =
        List.fold_left
          (fun vars q ->
            match q with
            | Ast.Filter f ->
                unify st e TBool (infer_expr st schemes vars f);
                vars
            | Ast.Gen (p, src) ->
                let tsrc = infer_expr st schemes vars src in
                let elt = fresh st in
                unify st e (TBag elt) tsrc;
                bind_pat st schemes vars p elt)
          vars quals
      in
      TBag (infer_expr st schemes vars head)
  | App (f, args) -> infer_app st schemes vars e f args

and bind_pat st schemes vars p elt =
  match p with
  | Ast.PWild -> vars
  | Ast.PVar x -> SM.add x elt vars
  | Ast.PConst v -> (
      match ty_of_value_shallow v with
      | Some t ->
          unify st (Ast.Const v) t elt;
          vars
      | None -> vars)
  | Ast.PTuple ps ->
      let tys = List.map (fun _ -> fresh st) ps in
      unify st (Ast.Tuple []) (TTuple tys) elt;
      List.fold_left2 (fun vars p t -> bind_pat st schemes vars p t) vars ps tys

and infer_app st schemes vars e f args =
  let targs = List.map (infer_expr st schemes vars) args in
  let arg1 () =
    match targs with
    | [ t ] -> t
    | _ -> fail e "%s expects one argument" f
  in
  match f with
  | "count" ->
      unify st e (TBag (fresh st)) (arg1 ());
      TInt
  | "distinct" ->
      let t = arg1 () in
      unify st e (TBag (fresh st)) t;
      t
  | "flatten" ->
      let elt = fresh st in
      unify st e (TBag (TBag elt)) (arg1 ());
      TBag elt
  | "sum" | "avg" | "max" | "min" ->
      let elt = fresh st in
      unify st e (TBag elt) (arg1 ());
      if f = "avg" then TFloat else elt
  | "abs" -> arg1 ()
  | "member" -> (
      match targs with
      | [ tv; tb ] ->
          unify st e (TBag tv) tb;
          TBool
      | _ -> fail e "member expects two arguments")
  | "group" ->
      let k = fresh st and v = fresh st in
      unify st e (TBag (TTuple [ k; v ])) (arg1 ());
      TBag (TTuple [ k; TBag v ])
  | "contains" | "startswith" -> (
      match targs with
      | [ t1; t2 ] ->
          unify st e TStr t1;
          unify st e TStr t2;
          TBool
      | _ -> fail e "%s expects two arguments" f)
  | "upper" | "lower" ->
      unify st e TStr (arg1 ());
      TStr
  | "strlen" ->
      unify st e TStr (arg1 ());
      TInt
  | "mod" -> (
      match targs with
      | [ t1; t2 ] ->
          unify st e TInt t1;
          unify st e TInt t2;
          TInt
      | _ -> fail e "mod expects two arguments")
  | f -> fail e "unknown function %s" f

let infer ?(schemes = fun _ -> None) ?(vars = []) e =
  let st = { next = 0; subst = Hashtbl.create 16 } in
  match infer_expr st schemes (SM.of_seq (List.to_seq vars)) e with
  | t -> Ok (resolve st t)
  | exception Err err -> Error err

let check_extent_query ~schemes ~expected e =
  let st = { next = 0; subst = Hashtbl.create 16 } in
  match
    let t = infer_expr st schemes SM.empty e in
    unify st e expected t
  with
  | () -> Ok ()
  | exception Err err -> Error err
