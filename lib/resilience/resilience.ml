module Prng = Automed_base.Prng
module Telemetry = Automed_telemetry.Telemetry

module Policy = struct
  type t = {
    retries : int;
    backoff_base_ms : float;
    backoff_factor : float;
    backoff_jitter : float;
    timeout_ms : float option;
    breaker_threshold : int;
    breaker_cooldown_ms : float;
  }

  let default =
    {
      retries = 2;
      backoff_base_ms = 50.0;
      backoff_factor = 2.0;
      backoff_jitter = 0.2;
      timeout_ms = None;
      breaker_threshold = 5;
      breaker_cooldown_ms = 1000.0;
    }

  let none =
    {
      retries = 0;
      backoff_base_ms = 0.0;
      backoff_factor = 1.0;
      backoff_jitter = 0.0;
      timeout_ms = None;
      breaker_threshold = 0;
      breaker_cooldown_ms = 0.0;
    }

  let pp ppf p =
    Fmt.pf ppf
      "retries=%d backoff=%.0fms*%.1f jitter=%.0f%% timeout=%s breaker=%s" p.retries
      p.backoff_base_ms p.backoff_factor
      (100.0 *. p.backoff_jitter)
      (match p.timeout_ms with
      | None -> "none"
      | Some t -> Printf.sprintf "%.0fms" t)
      (if p.breaker_threshold = 0 then "off"
       else
         Printf.sprintf "%d failures/%.0fms cooldown" p.breaker_threshold
           p.breaker_cooldown_ms)
end

module Fault = struct
  type profile = {
    error_rate : float;
    latency_ms : float;
    latency_jitter_ms : float;
    flap_period : int;
    flap_down : int;
  }

  let none =
    {
      error_rate = 0.0;
      latency_ms = 0.0;
      latency_jitter_ms = 0.0;
      flap_period = 0;
      flap_down = 0;
    }

  let rate p = { none with error_rate = p }
  let flaky ~down ~period = { none with flap_period = period; flap_down = down }

  let is_none p =
    p.error_rate = 0.0 && p.latency_ms = 0.0 && p.latency_jitter_ms = 0.0
    && p.flap_period = 0
end

module Disk = struct
  type profile = {
    torn_write_at : int option;
    bit_flip_rate : float;
    short_read_rate : float;
    fail_rename : bool;
  }

  let none =
    {
      torn_write_at = None;
      bit_flip_rate = 0.0;
      short_read_rate = 0.0;
      fail_rename = false;
    }

  type stats = {
    mutable writes_torn : int;
    mutable bits_flipped : int;
    mutable reads_shortened : int;
    mutable renames_failed : int;
  }

  type t = { prng : Prng.t; mutable profile : profile; stats : stats }

  let create ?(seed = 0x5EEDL) profile =
    {
      prng = Prng.create seed;
      profile;
      stats =
        {
          writes_torn = 0;
          bits_flipped = 0;
          reads_shortened = 0;
          renames_failed = 0;
        };
    }

  let profile t = t.profile
  let set_profile t p = t.profile <- p
  let stats t = t.stats

  (* one-shot: the torn write models a single crash mid-append, so the
     trigger disarms after firing *)
  let torn_write t ~len =
    match t.profile.torn_write_at with
    | Some n when n < len ->
        t.profile <- { t.profile with torn_write_at = None };
        t.stats.writes_torn <- t.stats.writes_torn + 1;
        Telemetry.count "resilience.disk.torn_write";
        Some n
    | _ -> None

  let flip_bits t data =
    if
      t.profile.bit_flip_rate > 0.0
      && String.length data > 0
      && Prng.float t.prng 1.0 < t.profile.bit_flip_rate
    then begin
      let i = Prng.int t.prng (String.length data) in
      let b = Prng.int t.prng 8 in
      let bytes = Bytes.of_string data in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl b)));
      t.stats.bits_flipped <- t.stats.bits_flipped + 1;
      Telemetry.count "resilience.disk.bit_flip";
      Some (Bytes.to_string bytes)
    end
    else None

  let short_read t data =
    if
      t.profile.short_read_rate > 0.0
      && String.length data > 0
      && Prng.float t.prng 1.0 < t.profile.short_read_rate
    then begin
      t.stats.reads_shortened <- t.stats.reads_shortened + 1;
      Telemetry.count "resilience.disk.short_read";
      Some (String.sub data 0 (Prng.int t.prng (String.length data)))
    end
    else None

  let rename_fails t =
    if t.profile.fail_rename then begin
      t.stats.renames_failed <- t.stats.renames_failed + 1;
      Telemetry.count "resilience.disk.failed_rename";
      true
    end
    else false
end

type breaker_state = Closed | Open | Half_open

let pp_breaker_state ppf = function
  | Closed -> Fmt.string ppf "closed"
  | Open -> Fmt.string ppf "open"
  | Half_open -> Fmt.string ppf "half-open"

type stats = {
  attempts : int;
  successes : int;
  retries : int;
  failures : int;
  timeouts : int;
  faults_injected : int;
  breaker_opens : int;
  short_circuits : int;
}

let zero_stats =
  {
    attempts = 0;
    successes = 0;
    retries = 0;
    failures = 0;
    timeouts = 0;
    faults_injected = 0;
    breaker_opens = 0;
    short_circuits = 0;
  }

let add_stats a b =
  {
    attempts = a.attempts + b.attempts;
    successes = a.successes + b.successes;
    retries = a.retries + b.retries;
    failures = a.failures + b.failures;
    timeouts = a.timeouts + b.timeouts;
    faults_injected = a.faults_injected + b.faults_injected;
    breaker_opens = a.breaker_opens + b.breaker_opens;
    short_circuits = a.short_circuits + b.short_circuits;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "attempts=%d ok=%d retries=%d failed=%d timeouts=%d injected=%d \
     breaker_opens=%d short_circuits=%d"
    s.attempts s.successes s.retries s.failures s.timeouts s.faults_injected
    s.breaker_opens s.short_circuits

type failure = {
  source : string;
  attempts : int;
  last_error : string;
  circuit_open : bool;
  evolved : bool;
}

let pp_failure ppf f =
  if f.evolved then
    Fmt.pf ppf "source %s: evolved away (retired by schema evolution)" f.source
  else if f.circuit_open && f.attempts = 0 then
    Fmt.pf ppf "source %s: circuit breaker open" f.source
  else
    Fmt.pf ppf "source %s: gave up after %d attempt%s: %s%s" f.source f.attempts
      (if f.attempts = 1 then "" else "s")
      f.last_error
      (if f.circuit_open then " (circuit breaker opened)" else "")

type source_state = {
  name : string;
  prng : Prng.t;
  mutable profile : Fault.profile;
  mutable state : breaker_state;
  mutable evolved : bool;
  mutable consecutive_failures : int;
  mutable open_until : float;  (* virtual ms; meaningful while Open *)
  mutable injector_calls : int;  (* drives the flap schedule *)
  mutable stats : stats;
}

module SM = Map.Make (String)

type t = {
  mutable policy : Policy.t;
  seed : int64;
  mutable clock_ms : float;
  mutable srcs : source_state SM.t;
}

let create ?(seed = 0x5EEDL) ?(policy = Policy.default) () =
  { policy; seed; clock_ms = 0.0; srcs = SM.empty }

let policy t = t.policy
let set_policy t p = t.policy <- p

(* each source draws from its own stream so that the interleaving of
   calls across sources cannot perturb any one source's fault sequence *)
let source_seed t name = Int64.add t.seed (Int64.of_int (Hashtbl.hash name))

let state_of t name =
  match SM.find_opt name t.srcs with
  | Some s -> s
  | None ->
      let s =
        {
          name;
          prng = Prng.create (source_seed t name);
          profile = Fault.none;
          state = Closed;
          evolved = false;
          consecutive_failures = 0;
          open_until = 0.0;
          injector_calls = 0;
          stats = zero_stats;
        }
      in
      t.srcs <- SM.add name s t.srcs;
      s

let register t name = ignore (state_of t name)
let covers t name = SM.mem name t.srcs
let sources t = SM.bindings t.srcs |> List.map fst
let inject t ~source profile = (state_of t source).profile <- profile
let now_ms t = t.clock_ms
let advance t ms = if ms > 0.0 then t.clock_ms <- t.clock_ms +. ms

let stats t name =
  match SM.find_opt name t.srcs with Some s -> s.stats | None -> zero_stats

let totals t =
  SM.fold (fun _ s acc -> add_stats acc s.stats) t.srcs zero_stats

let breaker_state t name =
  match SM.find_opt name t.srcs with Some s -> s.state | None -> Closed

(* Retiring is not a fault: the breaker machinery must not confuse "the
   source evolved away" (permanent, no retries, no breaker trips) with
   "the source is faulty" (transient, retried, breaker-guarded). *)
let retire t ~source =
  let s = state_of t source in
  s.evolved <- true

let evolved t name =
  match SM.find_opt name t.srcs with Some s -> s.evolved | None -> false

let reset_breaker t name =
  match SM.find_opt name t.srcs with
  | None -> ()
  | Some s ->
      s.state <- Closed;
      s.consecutive_failures <- 0

let report t =
  SM.bindings t.srcs |> List.map (fun (n, s) -> (n, s.state, s.evolved, s.stats))

let pp_report ppf rows =
  match rows with
  | [] -> Fmt.string ppf "no sources registered"
  | rows ->
      List.iteri
        (fun i (name, state, evolved, stats) ->
          if i > 0 then Fmt.pf ppf "@\n";
          if evolved then
            Fmt.pf ppf "%s: evolved away (retired), %a" name pp_stats stats
          else
            Fmt.pf ppf "%s: breaker %a, %a" name pp_breaker_state state
              pp_stats stats)
        rows

(* -- one attempt through the injector ----------------------------------- *)

let attempt t s f =
  s.stats <- { s.stats with attempts = s.stats.attempts + 1 };
  let p = s.profile in
  if Fault.is_none p && t.policy.timeout_ms = None then
    (* fast path: no injector, no clock bookkeeping *)
    match f () with
    | v -> Ok v
    | exception Failure msg -> Error msg
    | exception e -> Error (Printexc.to_string e)
  else begin
    s.injector_calls <- s.injector_calls + 1;
    let latency =
      p.latency_ms
      +.
      if p.latency_jitter_ms > 0.0 then Prng.float s.prng p.latency_jitter_ms
      else 0.0
    in
    let timed_out =
      match t.policy.timeout_ms with
      | Some budget when latency > budget ->
          advance t budget;
          true
      | _ ->
          advance t latency;
          false
    in
    if timed_out then begin
      s.stats <- { s.stats with timeouts = s.stats.timeouts + 1 };
      Telemetry.count "resilience.timeout";
      Error
        (Printf.sprintf "timeout: %.0fms latency exceeds %.0fms budget" latency
           (Option.get t.policy.timeout_ms))
    end
    else
      let flap_fail =
        p.flap_period > 0 && (s.injector_calls - 1) mod p.flap_period < p.flap_down
      in
      let rate_fail =
        p.error_rate > 0.0 && Prng.float s.prng 1.0 < p.error_rate
      in
      if flap_fail || rate_fail then begin
        s.stats <- { s.stats with faults_injected = s.stats.faults_injected + 1 };
        Telemetry.count "resilience.fault_injected";
        Error
          (if flap_fail then "injected fault (source flapping)"
           else "injected fault")
      end
      else
        match f () with
        | v -> Ok v
        | exception Failure msg -> Error msg
        | exception e -> Error (Printexc.to_string e)
  end

(* -- breaker bookkeeping ------------------------------------------------- *)

let trip t s =
  s.state <- Open;
  s.open_until <- t.clock_ms +. t.policy.breaker_cooldown_ms;
  s.stats <- { s.stats with breaker_opens = s.stats.breaker_opens + 1 };
  Telemetry.count "resilience.breaker_open"

let note_success s =
  s.consecutive_failures <- 0;
  if s.state = Half_open then s.state <- Closed;
  s.stats <- { s.stats with successes = s.stats.successes + 1 }

(* returns true when the failure opened (or re-opened) the breaker *)
let note_failure t s =
  s.consecutive_failures <- s.consecutive_failures + 1;
  if s.state = Half_open then begin
    trip t s;
    true
  end
  else if
    t.policy.breaker_threshold > 0
    && s.state = Closed
    && s.consecutive_failures >= t.policy.breaker_threshold
  then begin
    trip t s;
    true
  end
  else false

let backoff t s ~retry_index =
  let base =
    t.policy.backoff_base_ms *. (t.policy.backoff_factor ** float_of_int retry_index)
  in
  let jitter =
    if t.policy.backoff_jitter > 0.0 then
      Prng.float s.prng (base *. t.policy.backoff_jitter)
    else 0.0
  in
  advance t (base +. jitter)

let call t ~source f =
  let s = state_of t source in
  if s.evolved then begin
    Telemetry.count "resilience.evolved_reject";
    Error
      {
        source;
        attempts = 0;
        last_error = "source evolved away";
        circuit_open = false;
        evolved = true;
      }
  end
  else
  (* breaker gate: open -> reject until the cooldown elapses, then let a
     single half-open probe (no retries) through *)
  let gate =
    match s.state with
    | Open when t.clock_ms < s.open_until -> `Reject
    | Open ->
        s.state <- Half_open;
        `Probe
    | Half_open -> `Probe
    | Closed -> `Pass
  in
  match gate with
  | `Reject ->
      s.stats <- { s.stats with short_circuits = s.stats.short_circuits + 1 };
      Telemetry.count "resilience.short_circuit";
      Error
        {
          source;
          attempts = 0;
          last_error = "circuit breaker open";
          circuit_open = true;
          evolved = false;
        }
  | `Probe | `Pass ->
      let max_attempts = match gate with `Probe -> 1 | _ -> 1 + t.policy.retries in
      let rec loop attempt_no =
        match attempt t s f with
        | Ok v ->
            note_success s;
            Ok v
        | Error msg ->
            let opened = note_failure t s in
            if attempt_no < max_attempts && not opened then begin
              s.stats <- { s.stats with retries = s.stats.retries + 1 };
              Telemetry.count "resilience.retry";
              backoff t s ~retry_index:(attempt_no - 1);
              loop (attempt_no + 1)
            end
            else begin
              s.stats <- { s.stats with failures = s.stats.failures + 1 };
              Error
                {
                  source;
                  attempts = attempt_no;
                  last_error = msg;
                  circuit_open = opened;
                  evolved = false;
                }
            end
      in
      loop 1
