(** Fault-tolerant source access.

    A dataspace must stay queryable at every iteration of integration —
    including when a data source is flaky.  This module is the reusable
    fault-handling kernel threaded through every extent fetch: a
    deterministic {e fault injector} (so that failure-handling code paths
    are exercised reproducibly), a retry {e policy} (bounded retries,
    exponential backoff with seeded jitter, a per-call timeout budget),
    and a per-source {e circuit breaker} (closed/open/half-open) that
    stops hammering a source that stays down.

    Everything is deterministic: randomness comes from a SplitMix64
    generator seeded at registry creation (each source derives its own
    stream, so call interleaving across sources does not perturb the
    sequences), and time is a {e virtual clock} that only advances when
    the kernel simulates latency or backoff sleeps — test suites and
    benchmarks never really sleep, and the same seed always produces the
    same failures, the same retries and the same breaker transitions.

    Telemetry: the kernel emits the counters [resilience.retry],
    [resilience.breaker_open], [resilience.timeout],
    [resilience.fault_injected] and [resilience.short_circuit] through
    {!Automed_telemetry.Telemetry} (single-branch cost when no sink is
    installed). *)

(** Retry/timeout/breaker knobs.  One policy applies to the whole
    registry (the unit of configuration is the dataspace, not the
    source; per-source variation comes from fault profiles). *)
module Policy : sig
  type t = {
    retries : int;  (** extra attempts after the first (0 = fail fast) *)
    backoff_base_ms : float;  (** virtual sleep before the first retry *)
    backoff_factor : float;  (** multiplier per further retry *)
    backoff_jitter : float;
        (** fraction of the backoff drawn uniformly (seeded) and added,
            in [\[0, 1\]]; decorrelates retry storms *)
    timeout_ms : float option;
        (** per-attempt budget: an attempt whose simulated latency
            exceeds it counts as a timeout failure *)
    breaker_threshold : int;
        (** consecutive failures that trip the breaker (0 = no breaker) *)
    breaker_cooldown_ms : float;
        (** how long an open breaker rejects calls before letting one
            half-open probe through *)
  }

  val default : t
  (** 2 retries, 50ms base backoff doubling with 20% jitter, no timeout,
      breaker trips after 5 consecutive failures and cools down 1s. *)

  val none : t
  (** No retries, no timeout, no breaker: with this policy (and no fault
      profile) {!call} behaves exactly like calling the function
      directly. *)

  val pp : t Fmt.t
end

(** Deterministic fault profiles, attached per source with {!inject}. *)
module Fault : sig
  type profile = {
    error_rate : float;  (** probability an attempt fails, in [\[0,1\]] *)
    latency_ms : float;  (** simulated latency added to every attempt *)
    latency_jitter_ms : float;  (** extra uniform latency, seeded *)
    flap_period : int;
        (** when positive, the source flaps: of every [flap_period]
            consecutive attempts, the first [flap_down] fail *)
    flap_down : int;
  }

  val none : profile
  (** No injected faults, no simulated latency. *)

  val rate : float -> profile
  (** [rate p] fails each attempt with probability [p], nothing else. *)

  val flaky : down:int -> period:int -> profile
  (** Deterministic flapping: first [down] of every [period] attempts
      fail. *)

  val is_none : profile -> bool
end

(** Deterministic {e disk}-fault injector, the storage-side counterpart
    of {!Fault}: where {!Fault} perturbs source fetches, [Disk] perturbs
    the virtual file system under the durable repository
    ([Automed_durable.Vfs.with_faults]).  Every decision draws from a
    seeded SplitMix64 stream, so crash scenarios replay exactly. *)
module Disk : sig
  type profile = {
    torn_write_at : int option;
        (** tear the next write that is longer than this many bytes:
            only the prefix reaches the file (models a crash mid-append;
            one-shot — the trigger disarms after firing) *)
    bit_flip_rate : float;
        (** probability a write has one uniformly-drawn bit flipped
            (models silent media corruption) *)
    short_read_rate : float;
        (** probability a read returns only a prefix *)
    fail_rename : bool;  (** every rename fails (atomic-commit fault) *)
  }

  val none : profile

  type stats = {
    mutable writes_torn : int;
    mutable bits_flipped : int;
    mutable reads_shortened : int;
    mutable renames_failed : int;
  }

  type t

  val create : ?seed:int64 -> profile -> t
  val profile : t -> profile
  val set_profile : t -> profile -> unit
  val stats : t -> stats

  val torn_write : t -> len:int -> int option
  (** Bytes of the write to keep, when the tear fires. *)

  val flip_bits : t -> string -> string option
  (** The corrupted copy of the data, when the flip fires. *)

  val short_read : t -> string -> string option
  (** The shortened copy of the data, when the short read fires. *)

  val rename_fails : t -> bool
end

type breaker_state = Closed | Open | Half_open

val pp_breaker_state : breaker_state Fmt.t

(** Per-source telemetry counters, all cumulative since registration. *)
type stats = {
  attempts : int;  (** individual attempts, including retries *)
  successes : int;  (** calls that returned a value *)
  retries : int;  (** attempts beyond the first of each call *)
  failures : int;  (** calls that exhausted their attempts *)
  timeouts : int;  (** attempts lost to the per-call timeout budget *)
  faults_injected : int;  (** attempts failed by the injector *)
  breaker_opens : int;  (** closed/half-open -> open transitions *)
  short_circuits : int;  (** calls rejected while the breaker was open *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : stats Fmt.t

(** Why a {!call} returned no value. *)
type failure = {
  source : string;
  attempts : int;  (** attempts actually made (0 when short-circuited) *)
  last_error : string;
  circuit_open : bool;  (** rejected or abandoned because the breaker opened *)
  evolved : bool;
      (** rejected because the source was retired by a schema evolution —
          a permanent condition, distinct from a faulty source *)
}

val pp_failure : failure Fmt.t

type t
(** A registry: one policy, one virtual clock, and per-source breaker +
    injector + stats state. *)

val create : ?seed:int64 -> ?policy:Policy.t -> unit -> t
(** [seed] defaults to [0x5EEDL]; [policy] to {!Policy.default}. *)

val policy : t -> Policy.t
val set_policy : t -> Policy.t -> unit

val register : t -> string -> unit
(** Declares a source as covered by the registry (idempotent).  Wrappers
    register every source they materialise; {!call} registers its source
    implicitly. *)

val covers : t -> string -> bool
val sources : t -> string list
(** Registered sources, sorted. *)

val inject : t -> source:string -> Fault.profile -> unit
(** Attaches (or, with {!Fault.none}, removes) a fault profile. *)

val now_ms : t -> float
(** The virtual clock. *)

val advance : t -> float -> unit
(** Moves the virtual clock forward (e.g. to let a breaker cool down in
    a test). *)

val call : t -> source:string -> (unit -> 'a) -> ('a, failure) result
(** Runs a fetch under the registry's policy: breaker gate, then up to
    [1 + retries] attempts, each through the source's fault injector,
    with backoff between attempts.  Exceptions raised by the fetch are
    treated as attempt failures ([Failure msg] contributes [msg]
    verbatim).  With {!Policy.none} and no fault
    profile this is exactly [Ok (f ())] for non-raising [f]. *)

val stats : t -> string -> stats
(** Zero for unknown sources. *)

val totals : t -> stats
(** Sum over all registered sources. *)

val breaker_state : t -> string -> breaker_state
val reset_breaker : t -> string -> unit
(** Closes the breaker and clears the consecutive-failure count (e.g.
    after an operator fixed the source). *)

val retire : t -> source:string -> unit
(** Marks the source as evolved away.  Subsequent {!call}s are rejected
    immediately with a failure carrying [evolved = true] — no retries,
    no backoff, and no breaker trips: retiring is not a fault, and the
    breaker machinery must not treat a permanent condition as a
    transient one.  Emits the [resilience.evolved_reject] counter per
    rejected call. *)

val evolved : t -> string -> bool
(** True once {!retire} has marked the source; false for unknown ones. *)

val report : t -> (string * breaker_state * bool * stats) list
(** One row per registered source, sorted by name: breaker state, the
    evolved-away flag, and cumulative stats. *)

val pp_report : (string * breaker_state * bool * stats) list Fmt.t
(** Human-readable rendering of {!report}, one line per source (the
    CLI's breaker/degraded status block in [automed explain]); evolved
    sources render as "evolved away (retired)" instead of a breaker
    state. *)
