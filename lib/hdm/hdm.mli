(** The Hypergraph Data Model (HDM): AutoMed's low-level common data model.

    An HDM schema is a triple [(Nodes, Edges, Constraints)].  Nodes are
    named; edges are named hyperedges whose participants are nodes or other
    edges; constraints restrict the permissible extents.  Higher-level
    modelling languages (relational, XML, RDF) are defined in terms of the
    HDM by the Model Definitions Repository ({!Automed_model.Model}). *)

type node = string
(** Nodes are identified by name. *)

type endpoint = Node_end of node | Edge_end of string
(** A hyperedge participant: either a node or another edge (by name). *)

type edge = { edge_name : string; participants : endpoint list }

type constr =
  | Unique of endpoint
      (** values at this endpoint appear at most once in the edge extent *)
  | Mandatory of node * string
      (** every value of the node participates in the named edge *)
  | Inclusion of { subset : string; superset : string }
      (** extent inclusion between two edges or two nodes *)
  | Cardinality of { edge : string; position : int; min : int; max : int option }
      (** each value at [position] of [edge] occurs between [min] and [max]
          times ([None] meaning unbounded) *)

type graph
(** An immutable HDM schema graph. *)

val empty : graph
val add_node : node -> graph -> (graph, string) result
val add_edge : edge -> graph -> (graph, string) result
(** Fails if a participant does not exist, or the edge name is taken. *)

val add_constraint : constr -> graph -> (graph, string) result
val remove_node : node -> graph -> (graph, string) result
(** Fails if any edge still references the node. *)

val remove_edge : string -> graph -> (graph, string) result
(** Fails if another edge or constraint still references the edge. *)

val rename_node : node -> node -> graph -> (graph, string) result
(** Renames the node and rewrites all edges and constraints mentioning it. *)

val rename_edge : string -> string -> graph -> (graph, string) result

val mem_node : node -> graph -> bool
val mem_edge : string -> graph -> bool
val find_edge : string -> graph -> edge option
val nodes : graph -> node list
(** In lexicographic order. *)

val edges : graph -> edge list
(** In lexicographic order of name. *)

val constraints : graph -> constr list
val size : graph -> int
(** Number of nodes plus edges. *)

val equal : graph -> graph -> bool
(** Structural equality (order-insensitive). *)

val union : graph -> graph -> (graph, string) result
(** Disjoint-name union; fails on a clash with differing definitions, and
    merges silently when definitions coincide. *)

val validate : graph -> (unit, string) result
(** Re-checks referential integrity of every edge and constraint. *)

val pp : graph Fmt.t
val pp_constr : constr Fmt.t
val pp_edge : edge Fmt.t
