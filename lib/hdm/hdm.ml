type node = string
type endpoint = Node_end of node | Edge_end of string
type edge = { edge_name : string; participants : endpoint list }

type constr =
  | Unique of endpoint
  | Mandatory of node * string
  | Inclusion of { subset : string; superset : string }
  | Cardinality of { edge : string; position : int; min : int; max : int option }

module SS = Set.Make (String)
module SM = Map.Make (String)

type graph = {
  g_nodes : SS.t;
  g_edges : edge SM.t;
  g_constraints : constr list; (* reverse insertion order *)
}

let empty = { g_nodes = SS.empty; g_edges = SM.empty; g_constraints = [] }

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let endpoint_exists g = function
  | Node_end n -> SS.mem n g.g_nodes
  | Edge_end e -> SM.mem e g.g_edges

let pp_endpoint ppf = function
  | Node_end n -> Fmt.pf ppf "node:%s" n
  | Edge_end e -> Fmt.pf ppf "edge:%s" e

let add_node n g =
  if SS.mem n g.g_nodes then err "HDM: node %s already exists" n
  else Ok { g with g_nodes = SS.add n g.g_nodes }

let add_edge e g =
  if SM.mem e.edge_name g.g_edges then
    err "HDM: edge %s already exists" e.edge_name
  else if e.participants = [] then
    err "HDM: edge %s has no participants" e.edge_name
  else
    match List.find_opt (fun p -> not (endpoint_exists g p)) e.participants with
    | Some p ->
        err "HDM: edge %s references missing %a" e.edge_name pp_endpoint p
    | None -> Ok { g with g_edges = SM.add e.edge_name e g.g_edges }

let constraint_endpoints = function
  | Unique ep -> [ ep ]
  | Mandatory (n, e) -> [ Node_end n; Edge_end e ]
  | Inclusion { subset; superset } -> [ Edge_end subset; Edge_end superset ]
  | Cardinality { edge; _ } -> [ Edge_end edge ]

let pp_constr ppf = function
  | Unique ep -> Fmt.pf ppf "unique(%a)" pp_endpoint ep
  | Mandatory (n, e) -> Fmt.pf ppf "mandatory(%s in %s)" n e
  | Inclusion { subset; superset } ->
      Fmt.pf ppf "inclusion(%s <= %s)" subset superset
  | Cardinality { edge; position; min; max } ->
      Fmt.pf ppf "card(%s[%d]: %d..%a)" edge position min
        Fmt.(option ~none:(any "*") int)
        max

let add_constraint c g =
  match
    List.find_opt (fun ep -> not (endpoint_exists g ep)) (constraint_endpoints c)
  with
  | Some ep -> err "HDM: constraint %a references missing %a" pp_constr c pp_endpoint ep
  | None -> Ok { g with g_constraints = c :: g.g_constraints }

let edges_referencing_node n g =
  SM.fold
    (fun name e acc ->
      if List.exists (function Node_end m -> m = n | Edge_end _ -> false) e.participants
      then name :: acc
      else acc)
    g.g_edges []

let edges_referencing_edge en g =
  SM.fold
    (fun name e acc ->
      if
        name <> en
        && List.exists (function Edge_end m -> m = en | Node_end _ -> false) e.participants
      then name :: acc
      else acc)
    g.g_edges []

let constraints_referencing ep g =
  List.filter (fun c -> List.mem ep (constraint_endpoints c)) g.g_constraints

let remove_node n g =
  if not (SS.mem n g.g_nodes) then err "HDM: no node %s" n
  else
    match edges_referencing_node n g with
    | e :: _ -> err "HDM: node %s still referenced by edge %s" n e
    | [] -> (
        match constraints_referencing (Node_end n) g with
        | c :: _ ->
            err "HDM: node %s still referenced by constraint %a" n pp_constr c
        | [] -> Ok { g with g_nodes = SS.remove n g.g_nodes })

let remove_edge en g =
  if not (SM.mem en g.g_edges) then err "HDM: no edge %s" en
  else
    match edges_referencing_edge en g with
    | e :: _ -> err "HDM: edge %s still referenced by edge %s" en e
    | [] -> (
        match constraints_referencing (Edge_end en) g with
        | c :: _ ->
            err "HDM: edge %s still referenced by constraint %a" en pp_constr c
        | [] -> Ok { g with g_edges = SM.remove en g.g_edges })

let rename_endpoint ~from_ ~to_ ep =
  if ep = from_ then to_ else ep

let map_constraint f = function
  | Unique ep -> Unique (f ep)
  | Mandatory (n, e) -> (
      match (f (Node_end n), f (Edge_end e)) with
      | Node_end n', Edge_end e' -> Mandatory (n', e')
      | _ -> assert false)
  | Inclusion { subset; superset } -> (
      match (f (Edge_end subset), f (Edge_end superset)) with
      | Edge_end s', Edge_end t' -> Inclusion { subset = s'; superset = t' }
      | _ -> assert false)
  | Cardinality c -> (
      match f (Edge_end c.edge) with
      | Edge_end e' -> Cardinality { c with edge = e' }
      | _ -> assert false)

let rename_node old_n new_n g =
  if not (SS.mem old_n g.g_nodes) then err "HDM: no node %s" old_n
  else if SS.mem new_n g.g_nodes then err "HDM: node %s already exists" new_n
  else
    let f = rename_endpoint ~from_:(Node_end old_n) ~to_:(Node_end new_n) in
    let g_edges =
      SM.map
        (fun e -> { e with participants = List.map f e.participants })
        g.g_edges
    in
    Ok
      {
        g_nodes = SS.add new_n (SS.remove old_n g.g_nodes);
        g_edges;
        g_constraints = List.map (map_constraint f) g.g_constraints;
      }

let rename_edge old_e new_e g =
  match SM.find_opt old_e g.g_edges with
  | None -> err "HDM: no edge %s" old_e
  | Some e ->
      if SM.mem new_e g.g_edges then err "HDM: edge %s already exists" new_e
      else
        let f = rename_endpoint ~from_:(Edge_end old_e) ~to_:(Edge_end new_e) in
        let g_edges =
          SM.remove old_e g.g_edges
          |> SM.add new_e { e with edge_name = new_e }
          |> SM.map (fun e -> { e with participants = List.map f e.participants })
        in
        Ok
          {
            g with
            g_edges;
            g_constraints = List.map (map_constraint f) g.g_constraints;
          }

let mem_node n g = SS.mem n g.g_nodes
let mem_edge e g = SM.mem e g.g_edges
let find_edge e g = SM.find_opt e g.g_edges
let nodes g = SS.elements g.g_nodes
let edges g = SM.bindings g.g_edges |> List.map snd
let constraints g = List.rev g.g_constraints
let size g = SS.cardinal g.g_nodes + SM.cardinal g.g_edges

let equal a b =
  SS.equal a.g_nodes b.g_nodes
  && SM.equal ( = ) a.g_edges b.g_edges
  && List.sort compare a.g_constraints = List.sort compare b.g_constraints

let union a b =
  let clash = ref None in
  let g_edges =
    SM.union
      (fun name ea eb ->
        if ea = eb then Some ea
        else begin
          clash := Some name;
          Some ea
        end)
      a.g_edges b.g_edges
  in
  match !clash with
  | Some name -> err "HDM: union clash on edge %s" name
  | None ->
      Ok
        {
          g_nodes = SS.union a.g_nodes b.g_nodes;
          g_edges;
          g_constraints =
            List.rev_append a.g_constraints (List.rev b.g_constraints)
            |> List.sort_uniq compare;
        }

let validate g =
  let check_edge _ e acc =
    match acc with
    | Error _ -> acc
    | Ok () -> (
        match
          List.find_opt (fun p -> not (endpoint_exists g p)) e.participants
        with
        | Some p ->
            err "HDM: edge %s references missing %a" e.edge_name pp_endpoint p
        | None -> Ok ())
  in
  let check_constr acc c =
    match acc with
    | Error _ -> acc
    | Ok () -> (
        match
          List.find_opt
            (fun ep -> not (endpoint_exists g ep))
            (constraint_endpoints c)
        with
        | Some ep ->
            err "HDM: constraint %a references missing %a" pp_constr c
              pp_endpoint ep
        | None -> Ok ())
  in
  let r = SM.fold check_edge g.g_edges (Ok ()) in
  List.fold_left check_constr r g.g_constraints

let pp_edge ppf e =
  Fmt.pf ppf "%s(%a)" e.edge_name
    Fmt.(list ~sep:(any ", ") pp_endpoint)
    e.participants

let pp ppf g =
  Fmt.pf ppf "@[<v>nodes: %a@,edges: %a@,constraints: %a@]"
    Fmt.(list ~sep:(any ", ") string)
    (nodes g)
    Fmt.(list ~sep:(any ", ") pp_edge)
    (edges g)
    Fmt.(list ~sep:(any ", ") pp_constr)
    (constraints g)
