module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Types = Automed_iql.Types
module Value = Automed_iql.Value
module Repository = Automed_repository.Repository

type node = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
  text : string;
}

let element ?(attrs = []) ?(text = "") tag children =
  { tag; attrs; children; text }

(* -- parsing ------------------------------------------------------------- *)

exception Doc_error of int * string

let fail pos fmt = Format.kasprintf (fun s -> raise (Doc_error (pos, s))) fmt

let decode_entities pos s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if s.[i] = '&' then begin
      match String.index_from_opt s i ';' with
      | None -> fail pos "unterminated entity"
      | Some j ->
          let name = String.sub s (i + 1) (j - i - 1) in
          let c =
            match name with
            | "amp" -> "&"
            | "lt" -> "<"
            | "gt" -> ">"
            | "quot" -> "\""
            | "apos" -> "'"
            | name -> fail pos "unknown entity &%s;" name
          in
          Buffer.add_string buf c;
          go (j + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let starts_with s =
    !pos + String.length s <= n && String.sub text !pos (String.length s) = s
  in
  let skip_ws () =
    while
      !pos < n
      && (text.[!pos] = ' ' || text.[!pos] = '\t' || text.[!pos] = '\n'
         || text.[!pos] = '\r')
    do
      incr pos
    done
  in
  let rec skip_misc () =
    skip_ws ();
    if starts_with "<!--" then begin
      match
        let rec find i =
          if i + 3 > n then None
          else if String.sub text i 3 = "-->" then Some i
          else find (i + 1)
        in
        find (!pos + 4)
      with
      | None -> fail !pos "unterminated comment"
      | Some i ->
          pos := i + 3;
          skip_misc ()
    end
    else if starts_with "<?" then begin
      match String.index_from_opt text !pos '>' with
      | None -> fail !pos "unterminated processing instruction"
      | Some i ->
          pos := i + 1;
          skip_misc ()
    end
  in
  let name () =
    let start = !pos in
    while !pos < n && is_name_char text.[!pos] do incr pos done;
    if !pos = start then fail !pos "expected a name";
    String.sub text start (!pos - start)
  in
  let attr_value () =
    match peek () with
    | Some (('"' | '\'') as q) ->
        incr pos;
        let start = !pos in
        (match String.index_from_opt text !pos q with
        | None -> fail start "unterminated attribute value"
        | Some i ->
            let v = String.sub text start (i - start) in
            pos := i + 1;
            decode_entities start v)
    | _ -> fail !pos "expected a quoted attribute value"
  in
  let rec attrs acc =
    skip_ws ();
    match peek () with
    | Some c when is_name_char c ->
        let a = name () in
        skip_ws ();
        if peek () <> Some '=' then fail !pos "expected '='";
        incr pos;
        skip_ws ();
        let v = attr_value () in
        attrs ((a, v) :: acc)
    | _ -> List.rev acc
  in
  let rec element_at () =
    if peek () <> Some '<' then fail !pos "expected '<'";
    incr pos;
    let tag = name () in
    let attributes = attrs [] in
    skip_ws ();
    if starts_with "/>" then begin
      pos := !pos + 2;
      { tag; attrs = attributes; children = []; text = "" }
    end
    else if peek () = Some '>' then begin
      incr pos;
      let children = ref [] in
      let texts = Buffer.create 16 in
      let rec content () =
        if !pos >= n then fail !pos "unterminated element <%s>" tag
        else if starts_with "<!--" || starts_with "<?" then begin
          skip_misc ();
          content ()
        end
        else if starts_with "</" then begin
          pos := !pos + 2;
          let closing = name () in
          if closing <> tag then
            fail !pos "mismatched closing tag </%s> for <%s>" closing tag;
          skip_ws ();
          if peek () <> Some '>' then fail !pos "expected '>'";
          incr pos
        end
        else if peek () = Some '<' then begin
          children := element_at () :: !children;
          content ()
        end
        else begin
          let start = !pos in
          while !pos < n && text.[!pos] <> '<' do incr pos done;
          Buffer.add_string texts
            (decode_entities start (String.sub text start (!pos - start)));
          content ()
        end
      in
      content ();
      {
        tag;
        attrs = attributes;
        children = List.rev !children;
        text = String.trim (Buffer.contents texts);
      }
    end
    else fail !pos "expected '>' or '/>'"
  in
  match
    skip_misc ();
    let root = element_at () in
    skip_misc ();
    if !pos <> n then fail !pos "content after the root element";
    root
  with
  | root -> Ok root
  | exception Doc_error (p, msg) ->
      Error (Printf.sprintf "XML parse error at %d: %s" p msg)

(* -- wrapping ------------------------------------------------------------ *)

module SM = Map.Make (String)

let xml_element tag = Scheme.make ~language:"xml" ~construct:"element" [ tag ]

let xml_attribute tag attr =
  Scheme.make ~language:"xml" ~construct:"attribute" [ tag; attr ]

let xml_nest parent child =
  Scheme.make ~language:"xml" ~construct:"nest" [ parent; child ]

let collect root =
  (* walks the tree assigning positional identifiers, accumulating the
     extent of every element / attribute / nest object *)
  let elements = ref Scheme.Map.empty in
  let add scheme v =
    let bag =
      Option.value ~default:Value.Bag.empty (Scheme.Map.find_opt scheme !elements)
    in
    elements := Scheme.Map.add scheme (Value.Bag.add v bag) !elements
  in
  let rec walk node node_id =
    add (xml_element node.tag) (Value.Str node_id);
    List.iter
      (fun (a, v) ->
        add (xml_attribute node.tag a)
          (Value.tuple2 (Value.Str node_id) (Value.Str v)))
      node.attrs;
    if node.text <> "" then
      add
        (xml_attribute node.tag "#text")
        (Value.tuple2 (Value.Str node_id) (Value.Str node.text));
    List.iteri
      (fun i child ->
        let child_id = Printf.sprintf "%s.%d" node_id i in
        add (xml_nest node.tag child.tag)
          (Value.tuple2 (Value.Str node_id) (Value.Str child_id));
        walk child child_id)
      node.children
  in
  walk root "0";
  !elements

let ( let* ) = Result.bind

let wrap repo ~name root =
  let extents = collect root in
  let* schema =
    Scheme.Map.fold
      (fun scheme _bag acc ->
        let* s = acc in
        let extent_ty =
          if Scheme.construct scheme = "element" then Types.TBag Types.TStr
          else Types.tuple_row [ Types.TStr; Types.TStr ]
        in
        Schema.add_object ~extent_ty scheme s)
      extents
      (Ok (Schema.create name))
  in
  let* () = Repository.add_schema repo schema in
  let* () =
    Scheme.Map.fold
      (fun scheme bag acc ->
        let* () = acc in
        Repository.set_extent repo ~schema:name scheme bag)
      extents (Ok ())
  in
  Ok schema
