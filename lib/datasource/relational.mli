(** A small in-memory relational engine.

    This stands in for the heterogeneous relational data sources of the
    paper (Pedro, gpmDB, PepSeeker were all relational).  Tables have a
    designated key column, typed columns, and rows whose cells may be
    NULL.  The engine enforces key presence and uniqueness and cell
    types on insertion. *)

module Value = Automed_iql.Value

type col_ty = CInt | CFloat | CStr | CBool

val pp_col_ty : col_ty Fmt.t
val iql_ty : col_ty -> Automed_iql.Types.ty

type cell = Value.t option
(** [None] is NULL.  A present value must be the scalar matching the
    column type. *)

type table
type db

val create_table :
  name:string -> key:string -> (string * col_ty) list -> (table, string) result
(** The key column must be among the columns. *)

val table_name : table -> string
val key_column : table -> string
val columns : table -> (string * col_ty) list
val row_count : table -> int

val insert : table -> cell list -> (table, string) result
(** Cells in column order.  Checks arity, types, key non-null and key
    uniqueness. *)

val insert_all : table -> cell list list -> (table, string) result

val rows : table -> cell list list
(** In insertion order. *)

val key_extent : table -> Value.Bag.t
(** The bag of key values: the extent of [<<t>>]. *)

val column_extent : table -> string -> (Value.Bag.t, string) result
(** The bag of [{key, value}] pairs, skipping NULLs: the extent of
    [<<t,c>>]. *)

val project : table -> string list -> (cell list list, string) result
val select : table -> (cell list -> bool) -> table
val lookup : table -> Value.t -> cell list option
(** Row with the given key. *)

val create_db : string -> db
val db_name : db -> string
val add_table : db -> table -> (db, string) result
val replace_table : db -> table -> db
val find_table : db -> string -> table option
val tables : db -> table list
(** Sorted by name. *)

val pp_table : table Fmt.t
val pp_db : db Fmt.t

(** Convenience constructors for cells. *)
val int_cell : int -> cell
val float_cell : float -> cell
val str_cell : string -> cell
val bool_cell : bool -> cell
val null : cell
