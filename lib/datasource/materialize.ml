module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

module VM = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

(* the common scalar type of a list of values, falling back to CStr with
   rendering for mixed or structured values *)
let common_type values =
  let all p = values <> [] && List.for_all p values in
  if all (function Value.Int _ -> true | _ -> false) then Relational.CInt
  else if all (function Value.Float _ -> true | _ -> false) then Relational.CFloat
  else if all (function Value.Bool _ -> true | _ -> false) then Relational.CBool
  else Relational.CStr

let to_cell ty v : Relational.cell =
  match ((ty : Relational.col_ty), (v : Value.t)) with
  | CInt, Value.Int _ | CFloat, Value.Float _ | CBool, Value.Bool _
  | CStr, Value.Str _ ->
      Some v
  | CStr, v -> Some (Value.Str (Value.to_string v))
  | _ -> Some (Value.Str (Value.to_string v))

let sanitise name =
  String.map (fun c -> if c = ':' then '_' else c) name

let table_of_object proc ~schema ~table =
  let repo = Processor.repository proc in
  let* sch =
    match Repository.schema repo schema with
    | Some s -> Ok s
    | None -> err "no schema %s" schema
  in
  let table_scheme =
    (* accept both plain and provenance-prefixed spellings *)
    if Schema.mem (Scheme.table table) sch then Ok (Scheme.table table)
    else err "schema %s has no table object <<%s>>" schema table
  in
  let* table_scheme = table_scheme in
  let columns =
    List.filter
      (fun o ->
        Scheme.language o = "sql"
        && Scheme.construct o = "column"
        && List.hd (Scheme.args o) = table)
      (Schema.objects sch)
  in
  let* keys =
    Result.map_error (Fmt.str "%a" Processor.pp_error)
      (Processor.extent_of proc ~schema table_scheme)
  in
  let* col_data =
    List.fold_left
      (fun acc col ->
        let* acc = acc in
        let* pairs =
          Result.map_error (Fmt.str "%a" Processor.pp_error)
            (Processor.extent_of proc ~schema col)
        in
        (* the last component is the value; everything before it is the
           key - a bare key for plain column extents ({k, v}), a tagged
           tuple for intersection concepts ({src, k, v}) *)
        let split = function
          | Value.Tuple [ k; x ] -> Some (k, x)
          | Value.Tuple comps when List.length comps > 2 ->
              let rec go acc = function
                | [ x ] -> (Value.Tuple (List.rev acc), x)
                | c :: rest -> go (c :: acc) rest
                | [] -> assert false
              in
              Some (go [] comps)
          | _ -> None
        in
        let by_key =
          Value.Bag.fold
            (fun v _ m ->
              match split v with
              | Some (k, x) when not (VM.mem k m) -> VM.add k x m
              | _ -> m)
            pairs VM.empty
        in
        Ok ((List.nth (Scheme.args col) 1, by_key) :: acc))
      (Ok []) columns
  in
  let col_data = List.rev col_data in
  let distinct_keys = List.map fst keys (* (value, count) pairs *) in
  let key_ty = common_type distinct_keys in
  let multiplicities_matter = List.exists (fun (_, n) -> n > 1) keys in
  let col_types =
    List.map
      (fun (c, by_key) ->
        (c, common_type (List.map snd (VM.bindings by_key))))
      col_data
  in
  let header =
    (("id", key_ty) :: col_types)
    @ if multiplicities_matter then [ ("__count", Relational.CInt) ] else []
  in
  let* t = Relational.create_table ~name:(sanitise table) ~key:"id" header in
  let rows =
    List.map
      (fun (k, n) ->
        let key_cell = to_cell key_ty k in
        let cells =
          List.map
            (fun ((_, by_key), (_, ty)) ->
              match VM.find_opt k by_key with
              | Some v -> to_cell ty v
              | None -> None)
            (List.combine col_data col_types)
        in
        (key_cell :: cells)
        @ if multiplicities_matter then [ Some (Value.Int n) ] else [])
      keys
  in
  Relational.insert_all t rows

let db_of_schema proc ~schema =
  let repo = Processor.repository proc in
  let* sch =
    match Repository.schema repo schema with
    | Some s -> Ok s
    | None -> err "no schema %s" schema
  in
  let tables =
    List.filter_map
      (fun o ->
        if Scheme.language o = "sql" && Scheme.construct o = "table" then
          Some (List.hd (Scheme.args o))
        else None)
      (Schema.objects sch)
  in
  List.fold_left
    (fun acc table ->
      let* db = acc in
      let* t = table_of_object proc ~schema ~table in
      Relational.add_table db t)
    (Ok (Relational.create_db (sanitise schema)))
    tables
