module Value = Automed_iql.Value
module Types = Automed_iql.Types
module SM = Map.Make (String)

type col_ty = CInt | CFloat | CStr | CBool

let pp_col_ty ppf = function
  | CInt -> Fmt.string ppf "int"
  | CFloat -> Fmt.string ppf "float"
  | CStr -> Fmt.string ppf "str"
  | CBool -> Fmt.string ppf "bool"

let iql_ty = function
  | CInt -> Types.TInt
  | CFloat -> Types.TFloat
  | CStr -> Types.TStr
  | CBool -> Types.TBool

type cell = Value.t option

type table = {
  t_name : string;
  t_key : string;
  t_key_index : int;
  t_columns : (string * col_ty) list;
  t_rows : cell list list; (* reverse insertion order *)
  t_keys : Value.Bag.t; (* key values seen, for uniqueness *)
}

type db = { d_name : string; d_tables : table SM.t }

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let create_table ~name ~key columns =
  if columns = [] then err "table %s has no columns" name
  else
    match List.find_index (fun (c, _) -> c = key) columns with
    | None -> err "table %s: key column %s not among columns" name key
    | Some i ->
        let dup =
          List.exists
            (fun (c, _) ->
              List.length (List.filter (fun (c', _) -> c' = c) columns) > 1)
            columns
        in
        if dup then err "table %s has duplicate column names" name
        else
          Ok
            {
              t_name = name;
              t_key = key;
              t_key_index = i;
              t_columns = columns;
              t_rows = [];
              t_keys = Value.Bag.empty;
            }

let table_name t = t.t_name
let key_column t = t.t_key
let columns t = t.t_columns
let row_count t = List.length t.t_rows

let cell_matches ty (c : cell) =
  match (c, ty) with
  | None, _ -> true
  | Some (Value.Int _), CInt
  | Some (Value.Float _), CFloat
  | Some (Value.Str _), CStr
  | Some (Value.Bool _), CBool ->
      true
  | Some _, _ -> false

let insert t cells =
  if List.length cells <> List.length t.t_columns then
    err "table %s: expected %d cells, got %d" t.t_name
      (List.length t.t_columns) (List.length cells)
  else
    match
      List.find_opt
        (fun ((_, ty), c) -> not (cell_matches ty c))
        (List.combine t.t_columns cells)
    with
    | Some ((name, ty), c) ->
        err "table %s: column %s expects %s, got %s" t.t_name name
          (Fmt.to_to_string pp_col_ty ty)
          (match c with None -> "NULL" | Some v -> Value.to_string v)
    | None -> (
        match List.nth cells t.t_key_index with
        | None -> err "table %s: NULL key" t.t_name
        | Some k ->
            if Value.Bag.mem k t.t_keys then
              err "table %s: duplicate key %s" t.t_name (Value.to_string k)
            else
              Ok
                {
                  t with
                  t_rows = cells :: t.t_rows;
                  t_keys = Value.Bag.add k t.t_keys;
                })

let insert_all t rows =
  List.fold_left (fun acc r -> Result.bind acc (fun t -> insert t r)) (Ok t) rows

let rows t = List.rev t.t_rows

let key_extent t = t.t_keys

let column_index t c =
  let rec go i = function
    | [] -> None
    | (name, _) :: _ when name = c -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.t_columns

let column_extent t c =
  match column_index t c with
  | None -> err "table %s has no column %s" t.t_name c
  | Some i ->
      let add acc row =
        match (List.nth row t.t_key_index, List.nth row i) with
        | Some k, Some v -> Value.Bag.add (Value.tuple2 k v) acc
        | _ -> acc
      in
      Ok (List.fold_left add Value.Bag.empty t.t_rows)

let project t cols =
  let idx =
    List.map
      (fun c ->
        match column_index t c with
        | Some i -> Ok i
        | None -> err "table %s has no column %s" t.t_name c)
      cols
  in
  match List.find_opt Result.is_error idx with
  | Some (Error e) -> Error e
  | Some (Ok _) -> assert false
  | None ->
      let idx = List.map Result.get_ok idx in
      Ok (List.map (fun row -> List.map (List.nth row) idx) (rows t))

let select t p =
  let kept = List.filter p t.t_rows in
  let keys =
    List.fold_left
      (fun acc row ->
        match List.nth row t.t_key_index with
        | Some k -> Value.Bag.add k acc
        | None -> acc)
      Value.Bag.empty kept
  in
  { t with t_rows = kept; t_keys = keys }

let lookup t k =
  List.find_opt
    (fun row ->
      match List.nth row t.t_key_index with
      | Some k' -> Value.equal k k'
      | None -> false)
    t.t_rows

let create_db name = { d_name = name; d_tables = SM.empty }
let db_name d = d.d_name

let add_table d t =
  if SM.mem t.t_name d.d_tables then
    err "db %s already has table %s" d.d_name t.t_name
  else Ok { d with d_tables = SM.add t.t_name t d.d_tables }

let replace_table d t = { d with d_tables = SM.add t.t_name t d.d_tables }
let find_table d name = SM.find_opt name d.d_tables
let tables d = SM.bindings d.d_tables |> List.map snd

let pp_cell ppf = function
  | None -> Fmt.string ppf "NULL"
  | Some v -> Value.pp ppf v

let pp_table ppf t =
  Fmt.pf ppf "@[<v2>table %s (key %s), %d rows:@,%a@]" t.t_name t.t_key
    (row_count t)
    Fmt.(
      list ~sep:cut (fun ppf row ->
          Fmt.pf ppf "%a" (list ~sep:(any " | ") pp_cell) row))
    (rows t)

let pp_db ppf d =
  Fmt.pf ppf "@[<v2>db %s:@,%a@]" d.d_name
    Fmt.(list ~sep:cut pp_table)
    (tables d)

let int_cell i = Some (Value.Int i)
let float_cell f = Some (Value.Float f)
let str_cell s = Some (Value.Str s)
let bool_cell b = Some (Value.Bool b)
let null = None
