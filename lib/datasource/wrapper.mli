(** Data source wrappers.

    A wrapper extracts the metadata of a data source into an AutoMed data
    source schema (the [DSi] of Figure 1), registers it in the repository,
    and materialises the extents of its objects: the extent of [<<t>>] is
    the bag of key values of table [t], and the extent of [<<t,c>>] is the
    bag of [{key, value}] pairs of column [c]. *)

module Schema = Automed_model.Schema
module Repository = Automed_repository.Repository
module Resilience = Automed_resilience.Resilience

val relational_schema : Relational.db -> (Schema.t, string) result
(** Schema extraction only: one [table] object per table, one [column]
    object per column, with extent types derived from the column types. *)

val wrap :
  ?resilience:Resilience.t ->
  Repository.t ->
  Relational.db ->
  (Schema.t, string) result
(** Extracts the schema, registers it under the database's name, and
    stores every object's extent.  With [resilience], the source is
    registered in the registry and every per-table extraction runs under
    its policy (retries, timeout, breaker); the error message of a failed
    wrap lists {e every} failing table, not just the first. *)

type table_error = { table : string; error : string }

val pp_table_error : table_error Fmt.t

val store_extents_partial :
  ?resilience:Resilience.t ->
  Repository.t ->
  Relational.db ->
  string list * table_error list
(** Materialises what it can, one table at a time: a failing table is
    recorded and skipped, the remaining tables are still attempted, so
    degradation granularity is per-table.  Returns the tables stored and
    the accumulated per-table errors. *)

val store_extents :
  ?resilience:Resilience.t ->
  Repository.t ->
  Relational.db ->
  (unit, string) result
(** {!store_extents_partial}, failing when any table failed; the error
    lists every failing table. *)

val refresh_extents :
  ?resilience:Resilience.t ->
  Repository.t ->
  Relational.db ->
  (unit, string) result
(** Re-materialises extents after the database content changed. *)
