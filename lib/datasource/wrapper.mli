(** Data source wrappers.

    A wrapper extracts the metadata of a data source into an AutoMed data
    source schema (the [DSi] of Figure 1), registers it in the repository,
    and materialises the extents of its objects: the extent of [<<t>>] is
    the bag of key values of table [t], and the extent of [<<t,c>>] is the
    bag of [{key, value}] pairs of column [c]. *)

module Schema = Automed_model.Schema
module Repository = Automed_repository.Repository

val relational_schema : Relational.db -> (Schema.t, string) result
(** Schema extraction only: one [table] object per table, one [column]
    object per column, with extent types derived from the column types. *)

val wrap : Repository.t -> Relational.db -> (Schema.t, string) result
(** Extracts the schema, registers it under the database's name, and
    stores every object's extent. *)

val refresh_extents : Repository.t -> Relational.db -> (unit, string) result
(** Re-materialises extents after the database content changed. *)
