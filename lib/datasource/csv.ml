module Value = Automed_iql.Value

type row = string list

let parse text =
  let n = String.length text in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let rec scan i in_quotes =
    if i >= n then begin
      if in_quotes then Error "unterminated quoted field"
      else begin
        (* final row only if there is pending content *)
        if Buffer.length buf > 0 || !fields <> [] then flush_row ();
        Ok (List.rev !rows)
      end
    end
    else
      let c = text.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && text.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            scan (i + 2) true
          end
          else scan (i + 1) false
        else begin
          Buffer.add_char buf c;
          scan (i + 1) true
        end
      else
        match c with
        | '"' -> scan (i + 1) true
        | ',' ->
            flush_field ();
            scan (i + 1) false
        | '\n' ->
            flush_row ();
            scan (i + 1) false
        | '\r' ->
            if i + 1 < n && text.[i + 1] = '\n' then begin
              flush_row ();
              scan (i + 2) false
            end
            else begin
              flush_row ();
              scan (i + 1) false
            end
        | c ->
            Buffer.add_char buf c;
            scan (i + 1) false
  in
  scan 0 false

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let render_field s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render rows =
  let buf = Buffer.create 256 in
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map render_field row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let convert_cell ty s : (Relational.cell, string) result =
  if s = "" then Ok None
  else
    match (ty : Relational.col_ty) with
    | CStr -> Ok (Some (Value.Str s))
    | CInt -> (
        match int_of_string_opt s with
        | Some i -> Ok (Some (Value.Int i))
        | None -> Error (Printf.sprintf "not an int: %S" s))
    | CFloat -> (
        match float_of_string_opt s with
        | Some f -> Ok (Some (Value.Float f))
        | None -> Error (Printf.sprintf "not a float: %S" s))
    | CBool -> (
        match String.lowercase_ascii s with
        | "true" | "1" | "yes" -> Ok (Some (Value.Bool true))
        | "false" | "0" | "no" -> Ok (Some (Value.Bool false))
        | _ -> Error (Printf.sprintf "not a bool: %S" s))

let ( let* ) = Result.bind

let infer_columns header rows =
  let column_cells i = List.filter_map (fun row -> List.nth_opt row i) rows in
  let nonempty cells = List.filter (fun c -> c <> "") cells in
  let all p cells = cells <> [] && List.for_all p cells in
  List.mapi
    (fun i col ->
      let cells = nonempty (column_cells i) in
      let ty : Relational.col_ty =
        if all (fun c -> int_of_string_opt c <> None) cells then CInt
        else if all (fun c -> float_of_string_opt c <> None) cells then CFloat
        else if
          all
            (fun c ->
              match String.lowercase_ascii c with
              | "true" | "false" -> true
              | _ -> false)
            cells
        then CBool
        else CStr
      in
      (col, ty))
    header

let load_table ~name ~key ~columns text =
  let* rows = parse text in
  match rows with
  | [] -> Error (Printf.sprintf "table %s: empty CSV" name)
  | header :: data ->
      let* indices =
        List.fold_left
          (fun acc (col, _) ->
            let* acc = acc in
            match List.find_index (( = ) col) header with
            | Some i -> Ok (i :: acc)
            | None ->
                Error (Printf.sprintf "table %s: CSV lacks column %s" name col))
          (Ok []) columns
      in
      let indices = List.rev indices in
      let* table = Relational.create_table ~name ~key columns in
      let width = List.length header in
      let* cells_rows =
        List.fold_left
          (fun acc row ->
            let* acc = acc in
            if List.length row <> width then
              Error
                (Printf.sprintf "table %s: row width %d, header width %d" name
                   (List.length row) width)
            else
              let* cells =
                List.fold_left2
                  (fun acc i (_, ty) ->
                    let* acc = acc in
                    let* c = convert_cell ty (List.nth row i) in
                    Ok (c :: acc))
                  (Ok []) indices columns
              in
              Ok (List.rev cells :: acc))
          (Ok []) data
      in
      Relational.insert_all table (List.rev cells_rows)

let load_table_auto ~name ?key text =
  let* rows = parse text in
  match rows with
  | [] -> Error (Printf.sprintf "table %s: empty CSV" name)
  | header :: data ->
      let columns = infer_columns header data in
      let key = match key with Some k -> k | None -> List.hd header in
      load_table ~name ~key ~columns text
