(** A small CSV reader/writer (RFC 4180 subset: quoted fields, embedded
    commas, doubled quotes, CRLF or LF line endings).

    Used to load external table dumps into the relational engine, so that
    the examples can ship realistic data as plain text. *)

type row = string list

val parse : string -> (row list, string) result
(** Parses a whole document.  Rows may have differing widths; callers
    validate.  A trailing newline does not produce an empty row. *)

val render : row list -> string
(** Quotes fields when needed; terminates every row with ['\n']. *)

val load_table :
  name:string ->
  key:string ->
  columns:(string * Relational.col_ty) list ->
  string ->
  (Relational.table, string) result
(** Parses CSV text whose first row is a header naming every declared
    column (order may differ), converts cells to the declared types
    (empty string is NULL), and inserts all rows. *)

val infer_columns : string list -> string list list -> (string * Relational.col_ty) list
(** [infer_columns header rows] guesses a column type for each header
    field: [CInt] if every non-empty cell parses as an int, else [CFloat]
    if every non-empty cell parses as a float, else [CBool] for
    true/false columns, else [CStr]. *)

val load_table_auto :
  name:string -> ?key:string -> string -> (Relational.table, string) result
(** Like {!load_table} but infers the column types from the data.  The
    key column defaults to the first header field. *)
