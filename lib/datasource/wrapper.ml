module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Types = Automed_iql.Types
module Repository = Automed_repository.Repository
module Telemetry = Automed_telemetry.Telemetry
module Value = Automed_iql.Value
module Resilience = Automed_resilience.Resilience

let ( let* ) = Result.bind

let key_ty table =
  let key = Relational.key_column table in
  match List.assoc_opt key (Relational.columns table) with
  | Some ty -> Relational.iql_ty ty
  | None -> Types.TStr

let relational_schema db =
  let add_table schema table =
    let* schema = schema in
    let tname = Relational.table_name table in
    let kty = key_ty table in
    let* schema =
      Schema.add_object ~extent_ty:(Types.TBag kty) (Scheme.table tname) schema
    in
    (* the key column is not emitted as a separate object: the table
       object's extent already is the bag of keys *)
    List.fold_left
      (fun schema (col, ty) ->
        let* schema = schema in
        if col = Relational.key_column table then Ok schema
        else
          Schema.add_object
            ~extent_ty:(Types.tuple_row [ kty; Relational.iql_ty ty ])
            (Scheme.column tname col) schema)
      (Ok schema) (Relational.columns table)
  in
  List.fold_left add_table
    (Ok (Schema.create (Relational.db_name db)))
    (Relational.tables db)

type table_error = { table : string; error : string }

let pp_table_error ppf te = Fmt.pf ppf "table %s: %s" te.table te.error

let store_extents_partial ?resilience repo db =
  let name = Relational.db_name db in
  (match resilience with Some r -> Resilience.register r name | None -> ());
  let tally bag =
    if Telemetry.active () then
      Telemetry.count ~by:(Value.Bag.cardinal bag) "wrapper.rows_materialized";
    bag
  in
  let store_table table =
    let tname = Relational.table_name table in
    Telemetry.with_span "wrapper.extent"
      ~attrs:(fun () -> [ ("source", name); ("table", tname) ])
      (fun () ->
        let compute () =
          let key_bag = tally (Relational.key_extent table) in
          let* () =
            Repository.set_extent repo ~schema:name (Scheme.table tname) key_bag
          in
          let* () =
            List.fold_left
              (fun acc (col, _) ->
                let* () = acc in
                if col = Relational.key_column table then Ok ()
                else
                  let* extent = Relational.column_extent table col in
                  Repository.set_extent repo ~schema:name
                    (Scheme.column tname col) (tally extent))
              (Ok ()) (Relational.columns table)
          in
          if Telemetry.active () then
            Telemetry.annotate "rows"
              (string_of_int (Value.Bag.cardinal key_bag));
          Ok ()
        in
        match resilience with
        | None -> compute ()
        | Some r -> (
            match
              Resilience.call r ~source:name (fun () ->
                  match compute () with Ok () -> () | Error e -> failwith e)
            with
            | Ok () -> Ok ()
            | Error f -> Error (Fmt.str "%a" Resilience.pp_failure f)))
  in
  (* every table is attempted: one failing table degrades that table
     only, and the caller gets the full error list *)
  let stored, failed =
    List.fold_left
      (fun (stored, failed) table ->
        let tname = Relational.table_name table in
        match store_table table with
        | Ok () -> (tname :: stored, failed)
        | Error error -> (stored, { table = tname; error } :: failed))
      ([], []) (Relational.tables db)
  in
  (List.rev stored, List.rev failed)

let store_extents ?resilience repo db =
  match store_extents_partial ?resilience repo db with
  | _, [] -> Ok ()
  | _, failed ->
      Error
        (Printf.sprintf "source %s: %d of its tables failed: %s"
           (Relational.db_name db) (List.length failed)
           (String.concat "; "
              (List.map (Fmt.str "%a" pp_table_error) failed)))

let wrap ?resilience repo db =
  Telemetry.with_span "wrapper.wrap"
    ~attrs:(fun () -> [ ("source", Relational.db_name db) ])
    (fun () ->
      let* schema = relational_schema db in
      let* () = Repository.add_schema repo schema in
      let* () = store_extents ?resilience repo db in
      Ok schema)

let refresh_extents ?resilience repo db =
  match Repository.schema repo (Relational.db_name db) with
  | None ->
      Error (Printf.sprintf "schema %s is not registered" (Relational.db_name db))
  | Some _ -> store_extents ?resilience repo db
