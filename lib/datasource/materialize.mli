(** Materialising an integrated schema back into a relational database.

    The inverse of {!Wrapper}: for every relational [table] object of a
    schema, derive its extent (through the query processor, so pathways
    are followed and contributions bag-unioned) and rebuild a table whose
    rows join the table's key extent with its columns' [{key, value}]
    pair extents.  Useful for exporting a global schema snapshot - the
    warehouse-style endpoint of an integration - or for feeding the
    integrated data to tools that only read relations.

    Non-scalar keys and values (e.g. the provenance-tagged [{source, key}]
    keys of intersection concepts) are rendered to strings, since
    relational cells are scalars.  A key with several values for the same
    column keeps the first (bag order) and the multiplicity is recorded
    in the generated [__count] column when it exceeds one anywhere. *)

module Processor = Automed_query.Processor

val table_of_object :
  Processor.t -> schema:string -> table:string -> (Relational.table, string) result
(** Materialises one relational table object (and its column objects)
    of the schema. *)

val db_of_schema :
  Processor.t -> schema:string -> (Relational.db, string) result
(** Materialises every relational [table] object of the schema.
    Prefixed provenance names ([lib1:book]) become valid table names by
    replacing [':'] with ['_'] . *)
