(** XML-like document sources.

    The paper's setting includes XML data sources; AutoMed models them
    with an XML modelling language defined over the HDM.  This module
    provides the substrate: a small XML subset parser (elements,
    attributes, text, comments, entities) and a wrapper that extracts an
    [xml]-language schema and materialises extents:

    - element [<<xml,element,tag>>]: the bag of node identifiers;
    - attribute [<<xml,attribute,tag,attr>>]: [{node, value}] pairs
      (text content appears as the pseudo-attribute [#text]);
    - nesting [<<xml,nest,parent,child>>]: [{parent-node, child-node}]
      pairs per distinct parent/child tag pair.

    Node identifiers are stable document positions ("0", "0.1", ...), so
    wrapping is deterministic. *)

module Schema = Automed_model.Schema
module Repository = Automed_repository.Repository

type node = {
  tag : string;
  attrs : (string * string) list;  (** in document order *)
  children : node list;
  text : string;  (** concatenated character data, trimmed *)
}

val parse : string -> (node, string) result
(** Parses a document with a single root element.  Supported: nested
    elements, attributes with double- or single-quoted values,
    self-closing tags, character data, [<!-- comments -->], and the five
    predefined entities. *)

val element : ?attrs:(string * string) list -> ?text:string -> string ->
  node list -> node
(** Convenience constructor. *)

val wrap : Repository.t -> name:string -> node -> (Schema.t, string) result
(** Extracts the schema of the document (one object per distinct tag,
    tag/attribute pair and parent/child tag pair), registers it, and
    materialises the extents. *)
