module Repository = Automed_repository.Repository
module Serialize = Automed_repository.Serialize
module Telemetry = Automed_telemetry.Telemetry

let ( let* ) = Result.bind

exception Journal_error of string

let journal_file = "journal.wal"
let checkpoint_file = "checkpoint.str"
let checkpoint_tmp = "checkpoint.tmp"

type t = {
  repo : Repository.t;
  vfs : Vfs.t;
  mutable appended : int;
}

let repository t = t.repo
let vfs t = t.vfs
let appended t = t.appended

(* Bytes accumulated in the journal since the last checkpoint — the
   repair-debt input of the health observatory.  Read from the store
   rather than tracked in memory so it is also right after [recover]. *)
let journal_bytes t =
  if not (t.vfs.exists journal_file) then 0
  else
    match Journal.read t.vfs ~file:journal_file with
    | Ok scan -> scan.Journal.total_bytes
    | Error _ -> 0

(* -- checkpoint format --------------------------------------------------- *)

let render_checkpoint repo =
  let body = Serialize.save ~extents:true repo in
  Printf.sprintf "checkpoint v1 len=%d crc32=%s\n%s" (String.length body)
    (Crc32.to_hex (Crc32.digest body))
    body

let parse_checkpoint contents =
  match String.index_opt contents '\n' with
  | None -> Error "checkpoint: missing header line"
  | Some nl -> (
      let header = String.sub contents 0 nl in
      let body_off = nl + 1 in
      match
        Scanf.sscanf_opt header "checkpoint v1 len=%d crc32=%lx"
          (fun len crc -> (len, crc))
      with
      | None -> Error (Printf.sprintf "checkpoint: bad header %S" header)
      | Some (len, crc) ->
          if String.length contents - body_off <> len then
            Error
              (Printf.sprintf
                 "checkpoint: header declares %d body bytes, file has %d" len
                 (String.length contents - body_off))
          else
            let body = String.sub contents body_off len in
            let actual = Crc32.digest body in
            if actual <> crc then
              Error
                (Printf.sprintf
                   "checkpoint: checksum mismatch (header %s, body %s)"
                   (Crc32.to_hex crc) (Crc32.to_hex actual))
            else Ok body)

(* -- journaling observer ------------------------------------------------- *)

let observer t op =
  let payload = Serialize.save_op op in
  match Journal.append t.vfs ~file:journal_file payload with
  | Ok () ->
      t.appended <- t.appended + 1;
      Telemetry.count "durable.append"
  | Error e ->
      raise (Journal_error (Printf.sprintf "journal append failed: %s" e))

let install t = Repository.set_observer t.repo (Some (observer t))
let detach t = Repository.set_observer t.repo None

let snapshot t =
  detach t;
  Fun.protect ~finally:(fun () -> install t) @@ fun () ->
  let rendered = render_checkpoint t.repo in
  let* () = t.vfs.write checkpoint_tmp rendered in
  let* () = t.vfs.sync checkpoint_tmp in
  let* () = t.vfs.rename ~old_name:checkpoint_tmp ~new_name:checkpoint_file in
  (* the checkpoint is committed; the journal is now redundant *)
  let* () = t.vfs.write journal_file "" in
  let* () = t.vfs.sync journal_file in
  t.appended <- 0;
  Telemetry.count "durable.snapshot";
  Ok ()

let sync t =
  if t.vfs.exists journal_file then t.vfs.sync journal_file else Ok ()

let attach vfs repo =
  if Repository.observed repo then
    Error "repository already has an observer (attached twice?)"
  else begin
    let t = { repo; vfs; appended = 0 } in
    install t;
    if (not (vfs.exists checkpoint_file)) && Repository.schemas repo <> []
    then
      let* () = snapshot t in
      Ok t
    else Ok t
  end

(* -- recovery ------------------------------------------------------------ *)

type report = {
  checkpoint_loaded : bool;
  replayed : int;
  truncated_bytes : int;
  warnings : string list;
}

let pp_report ppf r =
  Fmt.pf ppf "checkpoint %s, %d record%s replayed"
    (if r.checkpoint_loaded then "loaded" else "absent")
    r.replayed
    (if r.replayed = 1 then "" else "s");
  if r.truncated_bytes > 0 then
    Fmt.pf ppf ", %d byte%s truncated" r.truncated_bytes
      (if r.truncated_bytes = 1 then "" else "s");
  List.iter (fun w -> Fmt.pf ppf "@.warning: %s" w) r.warnings

let recover vfs =
  let* repo, checkpoint_loaded =
    if Vfs.(vfs.exists) checkpoint_file then
      let* contents = vfs.read checkpoint_file in
      let* body = parse_checkpoint contents in
      let* repo = Serialize.load body in
      Ok (repo, true)
    else Ok (Repository.create (), false)
  in
  let* scan = Journal.read vfs ~file:journal_file in
  (* Replay intact records until one fails to parse or apply; everything
     from the first bad record on is dropped, exactly like a torn tail. *)
  let rec replay n warnings = function
    | [] -> (n, warnings, None)
    | (off, payload) :: rest -> (
        match
          let* op = Serialize.load_op payload in
          Serialize.apply_op repo op
        with
        | Ok () ->
            Telemetry.count "durable.replay";
            replay (n + 1) warnings rest
        | Error e ->
            Telemetry.count "durable.scrub_bad_record";
            ( n,
              Printf.sprintf "record %d (byte %d) dropped: %s" n off e
              :: warnings,
              Some off ))
  in
  let replayed, warnings, bad_at = replay 0 [] scan.records in
  let tail_warnings, keep =
    match (scan.tail, bad_at) with
    | _, Some off ->
        (* an unreplayable record invalidates its suffix too *)
        Telemetry.count ~by:(List.length scan.records - replayed - 1)
          "durable.scrub_bad_record";
        ([], Some off)
    | Journal.Clean, None -> ([], None)
    | (Journal.Torn _ | Journal.Corrupt _), None ->
        Telemetry.count "durable.scrub_bad_record";
        ( [ Fmt.str "journal tail: %a" Journal.pp_tail scan.tail ],
          Some scan.valid_bytes )
  in
  let* truncated_bytes =
    match keep with
    | None -> Ok 0
    | Some keep ->
        let* () = Journal.truncate vfs ~file:journal_file ~keep in
        Ok (scan.total_bytes - keep)
  in
  let t = { repo; vfs; appended = replayed } in
  install t;
  Ok
    ( t,
      {
        checkpoint_loaded;
        replayed;
        truncated_bytes;
        warnings = List.rev warnings @ tail_warnings;
      } )

(* -- scrub --------------------------------------------------------------- *)

type scrub = {
  checkpoint_status : string;
  journal_records : int;
  journal_bytes : int;
  journal_tail : Journal.tail;
  bad_payloads : (int * string) list;
}

let pp_scrub ppf s =
  Fmt.pf ppf "checkpoint: %s@.journal: %d record%s, %d bytes, tail %a"
    s.checkpoint_status s.journal_records
    (if s.journal_records = 1 then "" else "s")
    s.journal_bytes Journal.pp_tail s.journal_tail;
  List.iter
    (fun (i, reason) -> Fmt.pf ppf "@.record %d: %s" i reason)
    s.bad_payloads

let scrub vfs =
  let checkpoint_status =
    if not (Vfs.(vfs.exists) checkpoint_file) then "absent"
    else
      match vfs.read checkpoint_file with
      | Error e -> Printf.sprintf "unreadable (%s)" e
      | Ok contents -> (
          match parse_checkpoint contents with
          | Error e ->
              Telemetry.count "durable.scrub_bad_record";
              e
          | Ok body ->
              Printf.sprintf "ok (%d bytes, crc32 %s)" (String.length body)
                (Crc32.to_hex (Crc32.digest body)))
  in
  let* scan = Journal.read vfs ~file:journal_file in
  (match scan.tail with
  | Journal.Clean -> ()
  | Journal.Torn _ | Journal.Corrupt _ ->
      Telemetry.count "durable.scrub_bad_record");
  let bad_payloads =
    scan.records
    |> List.mapi (fun i (_, payload) ->
           match Serialize.load_op payload with
           | Ok _ -> None
           | Error e ->
               Telemetry.count "durable.scrub_bad_record";
               Some (i, e))
    |> List.filter_map Fun.id
  in
  Ok
    {
      checkpoint_status;
      journal_records = List.length scan.records;
      journal_bytes = scan.total_bytes;
      journal_tail = scan.tail;
      bad_payloads;
    }

let describe_op payload =
  match Serialize.load_op payload with
  | Error e -> Printf.sprintf "unparseable (%s)" e
  | Ok op -> (
      match op with
      | Repository.Op_add_schema s ->
          Printf.sprintf "add schema %s" (Automed_model.Schema.name s)
      | Repository.Op_add_pathway p ->
          Printf.sprintf "add pathway %s -> %s"
            Automed_transform.Transform.(p.from_schema)
            Automed_transform.Transform.(p.to_schema)
      | Repository.Op_replace_pathway (p_old, p_new) ->
          Printf.sprintf "replace pathway %s -> %s (%d -> %d steps)"
            Automed_transform.Transform.(p_old.from_schema)
            Automed_transform.Transform.(p_old.to_schema)
            (List.length Automed_transform.Transform.(p_old.steps))
            (List.length Automed_transform.Transform.(p_new.steps))
      | Repository.Op_set_extent (schema, scheme, bag) ->
          Printf.sprintf "set extent %s %s (%d values)" schema
            (Fmt.str "%a" Automed_base.Scheme.pp scheme)
            (Automed_iql.Value.Bag.cardinal bag)
      | Repository.Op_remove_schema name ->
          Printf.sprintf "remove schema %s" name
      | Repository.Op_rename_schema (old_name, new_name) ->
          Printf.sprintf "rename schema %s -> %s" old_name new_name
      | Repository.Op_add_contribution p ->
          Printf.sprintf "evolve: contribute %s -> %s (%d steps)"
            Automed_transform.Transform.(p.from_schema)
            Automed_transform.Transform.(p.to_schema)
            (List.length Automed_transform.Transform.(p.steps))
      | Repository.Op_alter_schema (name, alter) -> (
          let scheme = Fmt.str "%a" Automed_base.Scheme.pp in
          match alter with
          | Repository.Alter_add_object (o, _) ->
              Printf.sprintf "evolve: alter %s, add object %s" name (scheme o)
          | Repository.Alter_drop_object o ->
              Printf.sprintf "evolve: alter %s, drop object %s" name (scheme o)
          | Repository.Alter_rename_object (a, b) ->
              Printf.sprintf "evolve: alter %s, rename object %s -> %s" name
                (scheme a) (scheme b))
      | Repository.Op_retire_source name ->
          Printf.sprintf "evolve: retire source %s (evolved away)" name
      | Repository.Op_remove_pathway p ->
          Printf.sprintf "maintain: drop inert pathway %s -> %s"
            Automed_transform.Transform.(p.from_schema)
            Automed_transform.Transform.(p.to_schema)
      | Repository.Op_compact_pathway (retired, shortcut, reroutes) ->
          Printf.sprintf
            "maintain: compact chain %s -> %s into %s -> %s (%d -> %d \
             steps, %d contributions rerouted)"
            Automed_transform.Transform.(retired.from_schema)
            Automed_transform.Transform.(retired.to_schema)
            Automed_transform.Transform.(shortcut.from_schema)
            Automed_transform.Transform.(shortcut.to_schema)
            (List.length Automed_transform.Transform.(retired.steps))
            (List.length Automed_transform.Transform.(shortcut.steps))
            (List.length reroutes))
