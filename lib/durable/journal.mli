(** Length-prefixed, checksummed record framing for the write-ahead
    journal.

    Each record is [4-byte big-endian payload length | 4-byte big-endian
    CRC-32 of the payload | payload].  A {!scan} walks the file from the
    start and stops at the first record that is incomplete (torn — the
    file ends inside a header or payload) or fails its checksum
    (corrupt); everything before the stop point is trusted, everything
    from it on is not. *)

val header_bytes : int
(** 8: the framing overhead per record. *)

val frame : string -> string
(** The full on-disk encoding of one payload. *)

type tail =
  | Clean  (** the file ends exactly on a record boundary *)
  | Torn of { offset : int; reason : string }
      (** the file ends inside a record (crash mid-append) *)
  | Corrupt of { offset : int; reason : string }
      (** a record's checksum does not match its payload (bit rot) *)

type scan = {
  records : (int * string) list;  (** (byte offset, payload), in order *)
  valid_bytes : int;  (** prefix length covered by intact records *)
  total_bytes : int;
  tail : tail;
}

val scan : string -> scan
(** Pure scan of a journal's contents. *)

val append : Vfs.t -> file:string -> string -> (unit, string) result
(** Appends one framed record. *)

val read : Vfs.t -> file:string -> (scan, string) result
(** Reads and scans; a missing file is an empty clean journal. *)

val truncate : Vfs.t -> file:string -> keep:int -> (unit, string) result
(** Rewrites the journal keeping only the first [keep] bytes (recovery
    uses this to drop a torn/corrupt tail). *)

val pp_tail : tail Fmt.t
