let ( let* ) = Result.bind

let header_bytes = 8

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int v land 0xff))

let get_u32 s off =
  let b i = Int32.of_int (Char.code s.[off + i]) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor
       (Int32.shift_left (b 1) 16)
       (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

let frame payload =
  let buf = Buffer.create (String.length payload + header_bytes) in
  put_u32 buf (Int32.of_int (String.length payload));
  put_u32 buf (Crc32.digest payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

type tail =
  | Clean
  | Torn of { offset : int; reason : string }
  | Corrupt of { offset : int; reason : string }

type scan = {
  records : (int * string) list;
  valid_bytes : int;
  total_bytes : int;
  tail : tail;
}

let pp_tail ppf = function
  | Clean -> Fmt.string ppf "clean"
  | Torn { offset; reason } -> Fmt.pf ppf "torn record at byte %d (%s)" offset reason
  | Corrupt { offset; reason } ->
      Fmt.pf ppf "corrupt record at byte %d (%s)" offset reason

let scan contents =
  let n = String.length contents in
  let rec go acc off =
    if off = n then { records = List.rev acc; valid_bytes = off; total_bytes = n; tail = Clean }
    else if n - off < header_bytes then
      {
        records = List.rev acc;
        valid_bytes = off;
        total_bytes = n;
        tail =
          Torn
            { offset = off;
              reason = Printf.sprintf "%d trailing bytes, header needs %d" (n - off) header_bytes };
      }
    else
      let len = Int32.to_int (get_u32 contents off) in
      let crc = get_u32 contents (off + 4) in
      if len < 0 || len > Sys.max_string_length then
        {
          records = List.rev acc;
          valid_bytes = off;
          total_bytes = n;
          tail =
            Corrupt
              { offset = off;
                reason = Printf.sprintf "implausible payload length %d" len };
        }
      else if n - off - header_bytes < len then
        {
          records = List.rev acc;
          valid_bytes = off;
          total_bytes = n;
          tail =
            Torn
              { offset = off;
                reason =
                  Printf.sprintf "payload declares %d bytes, only %d present"
                    len (n - off - header_bytes) };
        }
      else
        let payload = String.sub contents (off + header_bytes) len in
        let actual = Crc32.digest payload in
        if actual <> crc then
          {
            records = List.rev acc;
            valid_bytes = off;
            total_bytes = n;
            tail =
              Corrupt
                { offset = off;
                  reason =
                    Printf.sprintf "checksum mismatch: header %s, payload %s"
                      (Crc32.to_hex crc) (Crc32.to_hex actual) };
          }
        else go ((off, payload) :: acc) (off + header_bytes + len)
  in
  go [] 0

let append (vfs : Vfs.t) ~file payload = vfs.append file (frame payload)

let read (vfs : Vfs.t) ~file =
  if not (vfs.exists file) then
    Ok { records = []; valid_bytes = 0; total_bytes = 0; tail = Clean }
  else
    let* contents = vfs.read file in
    Ok (scan contents)

let truncate (vfs : Vfs.t) ~file ~keep =
  let* contents = vfs.read file in
  if keep >= String.length contents then Ok ()
  else
    let* () = vfs.write file (String.sub contents 0 keep) in
    vfs.sync file
