module Disk = Automed_resilience.Resilience.Disk

exception Crash of string

type t = {
  label : string;
  read : string -> (string, string) result;
  write : string -> string -> (unit, string) result;
  append : string -> string -> (unit, string) result;
  rename : old_name:string -> new_name:string -> (unit, string) result;
  exists : string -> bool;
  remove : string -> (unit, string) result;
  sync : string -> (unit, string) result;
}

let err fmt = Format.kasprintf (fun s -> Error s) fmt

(* -- in-memory ----------------------------------------------------------- *)

let memory () =
  let files : (string, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let buffer name =
    match Hashtbl.find_opt files name with
    | Some b -> b
    | None ->
        let b = Buffer.create 256 in
        Hashtbl.replace files name b;
        b
  in
  {
    label = "memory";
    read =
      (fun name ->
        match Hashtbl.find_opt files name with
        | Some b -> Ok (Buffer.contents b)
        | None -> err "%s: no such file" name);
    write =
      (fun name data ->
        let b = buffer name in
        Buffer.clear b;
        Buffer.add_string b data;
        Ok ());
    append =
      (fun name data ->
        Buffer.add_string (buffer name) data;
        Ok ());
    rename =
      (fun ~old_name ~new_name ->
        match Hashtbl.find_opt files old_name with
        | None -> err "%s: no such file" old_name
        | Some b ->
            Hashtbl.remove files old_name;
            Hashtbl.replace files new_name b;
            Ok ());
    exists = Hashtbl.mem files;
    remove =
      (fun name ->
        Hashtbl.remove files name;
        Ok ());
    sync = (fun _ -> Ok ());
  }

(* -- real files ---------------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let os root =
  let path name = Filename.concat root name in
  let guard name f =
    try f ()
    with
    | Sys_error e -> Error e
    | Unix.Unix_error (e, fn, _) ->
        err "%s: %s: %s" name fn (Unix.error_message e)
  in
  let ensure_root () = mkdir_p root in
  {
    label = root;
    read =
      (fun name ->
        guard name @@ fun () ->
        let ic = open_in_bin (path name) in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Ok (really_input_string ic (in_channel_length ic))));
    write =
      (fun name data ->
        guard name @@ fun () ->
        ensure_root ();
        let oc = open_out_bin (path name) in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc data;
            Ok ()));
    append =
      (fun name data ->
        guard name @@ fun () ->
        ensure_root ();
        let oc =
          open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ]
            0o644 (path name)
        in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc data;
            Ok ()));
    rename =
      (fun ~old_name ~new_name ->
        guard old_name @@ fun () ->
        Sys.rename (path old_name) (path new_name);
        (* fsync the directory so the commit itself is durable *)
        (try
           let fd = Unix.openfile root [ Unix.O_RDONLY ] 0 in
           Fun.protect
             ~finally:(fun () -> try Unix.close fd with _ -> ())
             (fun () -> Unix.fsync fd)
         with Unix.Unix_error _ -> ());
        Ok ());
    exists = (fun name -> Sys.file_exists (path name));
    remove =
      (fun name ->
        guard name @@ fun () ->
        if Sys.file_exists (path name) then Sys.remove (path name);
        Ok ());
    sync =
      (fun name ->
        guard name @@ fun () ->
        let fd = Unix.openfile (path name) [ Unix.O_RDWR ] 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with _ -> ())
          (fun () ->
            Unix.fsync fd;
            Ok ()));
  }

(* -- disk-fault injection ------------------------------------------------ *)

let with_faults disk inner =
  let inject_write name data k =
    match Disk.torn_write disk ~len:(String.length data) with
    | Some keep ->
        let prefix = String.sub data 0 keep in
        let prefix =
          match Disk.flip_bits disk prefix with Some d -> d | None -> prefix
        in
        (match k prefix with _ -> ());
        raise
          (Crash
             (Printf.sprintf "torn write: %d of %d bytes of %s reached disk"
                keep (String.length data) name))
    | None -> (
        match Disk.flip_bits disk data with
        | Some corrupted -> k corrupted
        | None -> k data)
  in
  {
    inner with
    label = inner.label ^ "+faults";
    read =
      (fun name ->
        match inner.read name with
        | Error _ as e -> e
        | Ok data -> (
            match Disk.short_read disk data with
            | Some short -> Ok short
            | None -> Ok data));
    write = (fun name data -> inject_write name data (inner.write name));
    append = (fun name data -> inject_write name data (inner.append name));
    rename =
      (fun ~old_name ~new_name ->
        if Disk.rename_fails disk then
          err "%s -> %s: injected rename failure" old_name new_name
        else inner.rename ~old_name ~new_name);
  }

(* -- kill-point harness -------------------------------------------------- *)

let crashable inner =
  let budget = ref None in
  let arm b = budget := b in
  let spend name data k =
    match !budget with
    | None -> k data
    | Some remaining ->
        let n = String.length data in
        if n <= remaining then begin
          budget := Some (remaining - n);
          k data
        end
        else begin
          budget := Some 0;
          (match k (String.sub data 0 remaining) with _ -> ());
          raise
            (Crash
               (Printf.sprintf
                  "write budget exhausted: %d of %d bytes of %s reached disk"
                  remaining n name))
        end
  in
  ( {
      inner with
      label = inner.label ^ "+killpoints";
      write = (fun name data -> spend name data (inner.write name));
      append = (fun name data -> spend name data (inner.append name));
    },
    arm )
