(** Virtual file abstraction under the durable repository.

    The journal and checkpoint machinery only ever touch storage through
    this record of operations, so the same code runs against real files
    ({!os}), an in-memory store ({!memory}, used by tests and benches),
    a deterministic disk-fault injector ({!with_faults}) and a
    kill-point harness ({!crashable}) — crash scenarios replay exactly.

    File names are flat (no directories); the {!os} implementation maps
    them into its root directory. *)

exception Crash of string
(** Raised by the kill-point harness ({!crashable}) and by injected torn
    writes to simulate the process dying mid-operation: the bytes
    written so far stay in the file, the rest never happen. *)

type t = {
  label : string;  (** for error messages: ["memory"], the os root, ... *)
  read : string -> (string, string) result;  (** whole-file read *)
  write : string -> string -> (unit, string) result;
      (** create or replace with exactly these bytes *)
  append : string -> string -> (unit, string) result;
      (** create if missing, extend otherwise *)
  rename : old_name:string -> new_name:string -> (unit, string) result;
      (** atomic replace of [new_name] *)
  exists : string -> bool;
  remove : string -> (unit, string) result;
  sync : string -> (unit, string) result;
      (** fsync ({!os}); no-op in memory *)
}

val memory : unit -> t
(** Fresh in-memory store. *)

val os : string -> t
(** Files inside the given directory (created, with parents, on first
    use).  [sync] fsyncs the file; [rename] also fsyncs the directory so
    the commit itself is durable. *)

val with_faults : Automed_resilience.Resilience.Disk.t -> t -> t
(** Routes every operation through the seeded disk-fault injector: torn
    writes keep only a prefix and raise {!Crash}, bit flips corrupt
    written data silently, short reads drop a read's tail silently, and
    [fail_rename] makes renames return [Error]. *)

val crashable : t -> t * (int option -> unit)
(** [crashable inner] is a kill-point harness: the second component arms
    a write budget.  With [Some n] armed, the next writes/appends consume
    the budget; the write that would exceed it stores only the prefix
    that fits and raises {!Crash} (as does everything after it).  [None]
    disarms.  Reads are unaffected, so recovery can run on the same
    handle after a simulated death. *)
