(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    Every journal record and every checkpoint body is checksummed with
    this so that torn writes and bit flips are detected at recovery time
    instead of being loaded as garbage. *)

val digest : ?crc:int32 -> string -> int32
(** [digest s] is the CRC-32 of [s].  [crc] continues a running digest
    (so [digest ~crc:(digest a) b = digest (a ^ b)]). *)

val to_hex : int32 -> string
(** Eight lowercase hex digits. *)
