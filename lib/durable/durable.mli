(** Crash-safe repository: write-ahead journal + checksummed checkpoints.

    A durable handle observes a {!Automed_repository.Repository.t}: every
    committed mutation is rendered with
    {!Automed_repository.Serialize.save_op} and appended to
    [journal.wal] as a length-prefixed, CRC-32-checksummed record
    ({!Journal}).  {!snapshot} compacts the journal into an atomic
    checkpoint (write temp → fsync → rename → empty the journal) whose
    header carries the body's length and checksum.  {!recover} loads the
    checkpoint, replays the journal, and — when the journal's tail is
    torn or corrupt — truncates it to the last intact record and reports
    what was dropped.  A corrupt {e checkpoint} is a hard error: the
    repository is never silently loaded wrong.

    Telemetry counters: [durable.append], [durable.snapshot],
    [durable.replay] (records replayed during recovery) and
    [durable.scrub_bad_record] (torn/corrupt/unreplayable records
    dropped or flagged). *)

exception Journal_error of string
(** Raised out of a mutating repository call when its journal append
    fails: the in-memory mutation is applied, but it is NOT durable. *)

val journal_file : string
val checkpoint_file : string
val checkpoint_tmp : string

type t

val repository : t -> Automed_repository.Repository.t
val vfs : t -> Vfs.t

val appended : t -> int
(** Journal records appended through this handle (resets on snapshot). *)

val journal_bytes : t -> int
(** Bytes sitting in the journal since the last checkpoint, read from
    the store itself (so it is also right after {!recover}); 0 when the
    journal is absent or unreadable.  One of the repair-debt indicators
    of the health observatory: growth here is replay work the next
    recovery must pay until a {!snapshot} retires it. *)

val attach :
  Vfs.t -> Automed_repository.Repository.t -> (t, string) result
(** Starts journaling the repository's mutations.  Fails if the
    repository already has an observer.  A non-empty repository with no
    checkpoint on disk is snapshotted immediately, so the store is
    self-contained from the first attach. *)

val detach : t -> unit
(** Stops journaling (removes the observer). *)

val snapshot : t -> (unit, string) result
(** Atomic checkpoint: serialise (with extents), write to
    [checkpoint.tmp], fsync, rename over [checkpoint.str], then empty
    the journal.  A failure before the rename leaves the previous
    checkpoint and the journal untouched, so recovery still works. *)

val sync : t -> (unit, string) result
(** Fsyncs the journal (used after a batch of appends, e.g. per
    workflow iteration). *)

(** Outcome of {!recover}. *)
type report = {
  checkpoint_loaded : bool;  (** false when starting from an empty store *)
  replayed : int;  (** journal records applied *)
  truncated_bytes : int;  (** torn/corrupt tail bytes dropped *)
  warnings : string list;
}

val recover : Vfs.t -> (t * report, string) result
(** Rebuilds the repository from checkpoint + journal and attaches a
    fresh handle.  Journal replay stops at the first torn, corrupt or
    unreplayable record; everything from there on is truncated away and
    reported in [warnings].  An unreadable or checksum-failing
    checkpoint is [Error] — never a silently wrong repository. *)

(** Read-only integrity report, per file. *)
type scrub = {
  checkpoint_status : string;
  journal_records : int;
  journal_bytes : int;
  journal_tail : Journal.tail;
  bad_payloads : (int * string) list;
      (** (record index, reason) for intact records whose payload does
          not parse as an operation *)
}

val scrub : Vfs.t -> (scrub, string) result
(** Verifies checkpoint checksum and scans the journal without
    modifying anything or building a repository. *)

val describe_op : string -> string
(** One-line human summary of a journal payload (for [repo log]). *)

val pp_report : report Fmt.t
val pp_scrub : scrub Fmt.t
