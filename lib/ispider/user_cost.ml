module Scheme = Automed_base.Scheme
module Ast = Automed_iql.Ast
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Workflow = Automed_integration.Workflow
module Intersection = Automed_integration.Intersection

type model = {
  clicks_per_manual : int;
  clicks_per_auto : int;
  seconds_per_click : float;
  seconds_per_keystroke : float;
}

let default_model =
  {
    clicks_per_manual = 6;
    clicks_per_auto = 1;
    seconds_per_click = 1.5;
    seconds_per_keystroke = 0.28;
  }

type cost = {
  transformations : int;
  clicks : int;
  keystrokes : int;
  minutes : float;
}

let zero = { transformations = 0; clicks = 0; keystrokes = 0; minutes = 0.0 }

let add a b =
  {
    transformations = a.transformations + b.transformations;
    clicks = a.clicks + b.clicks;
    keystrokes = a.keystrokes + b.keystrokes;
    minutes = a.minutes +. b.minutes;
  }

let pp ppf c =
  Fmt.pf ppf "%d transformations, %d clicks, %d keystrokes, ~%.1f min"
    c.transformations c.clicks c.keystrokes c.minutes

let finish model c =
  {
    c with
    minutes =
      (float_of_int c.clicks *. model.seconds_per_click
      +. float_of_int c.keystrokes *. model.seconds_per_keystroke)
      /. 60.0;
  }

let step_cost model acc (step : Transform.prim) =
  match step with
  | Transform.Add (_, q) | Transform.Delete (_, q)
    when not (Ast.is_range_void_any q) ->
      (* typed by the integrator (automatically inverted deletes are
         indistinguishable here; treating them as typed makes the model
         conservative for the intersection methodology) *)
      {
        acc with
        transformations = acc.transformations + 1;
        clicks = acc.clicks + model.clicks_per_manual;
        keystrokes = acc.keystrokes + String.length (Ast.to_string q);
      }
  | Transform.Add _ | Transform.Delete _ | Transform.Extend _
  | Transform.Contract _ | Transform.Rename _ | Transform.Id _ ->
      { acc with clicks = acc.clicks + model.clicks_per_auto }

let pathway_cost ?(model = default_model) (p : Transform.pathway) =
  finish model (List.fold_left (step_cost model) zero p.Transform.steps)

(* For effort accounting we distinguish user-typed adds from tool-derived
   deletes: only the add of each (target) is typed; its inverted delete
   is accepted with a click. *)
let side_pathway_cost model (p : Transform.pathway) =
  let acc =
    List.fold_left
      (fun acc (step : Transform.prim) ->
        match step with
        | Transform.Add (_, q) when not (Ast.is_range_void_any q) ->
            {
              acc with
              transformations = acc.transformations + 1;
              clicks = acc.clicks + model.clicks_per_manual;
              keystrokes = acc.keystrokes + String.length (Ast.to_string q);
            }
        | _ -> { acc with clicks = acc.clicks + model.clicks_per_auto })
      zero p.Transform.steps
  in
  finish model acc

let intersection_cost ?(model = default_model) (run : Intersection_run.run) =
  List.fold_left
    (fun acc (it : Workflow.iteration) ->
      List.fold_left
        (fun acc (_, p) -> add acc (side_pathway_cost model p))
        acc it.Workflow.outcome.Intersection.side_pathways)
    zero
    (Workflow.iterations run.Intersection_run.workflow)

let classical_cost ?(model = default_model) repo =
  let stage_targets = [ "GS1"; "GS2"; "GS3" ] in
  let us_of stage =
    (* the designated schema plus its union-compatible counterparts *)
    stage
    :: List.filter_map
         (fun (p : Transform.pathway) ->
           if
             Automed_base.Strutil.starts_with ~prefix:(stage ^ "~")
               p.Transform.to_schema
           then Some p.Transform.to_schema
           else None)
         (Repository.pathways repo)
    |> List.sort_uniq String.compare
  in
  let seen : (string * Scheme.t, unit) Hashtbl.t = Hashtbl.create 128 in
  List.fold_left
    (fun acc stage ->
      let targets = us_of stage in
      List.fold_left
        (fun acc (p : Transform.pathway) ->
          if not (List.mem p.Transform.to_schema targets) then acc
          else
            let fresh_steps =
              List.filter
                (fun (step : Transform.prim) ->
                  match step with
                  | Transform.Add (o, q) when not (Ast.is_range_void_any q) ->
                      let key = (p.Transform.from_schema, o) in
                      if Hashtbl.mem seen key then false
                      else begin
                        Hashtbl.replace seen key ();
                        true
                      end
                  | _ -> true)
                p.Transform.steps
            in
            add acc
              (side_pathway_cost model { p with Transform.steps = fresh_steps }))
        acc (Repository.pathways repo))
    zero stage_targets
