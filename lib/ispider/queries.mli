(** The seven priority queries of the iSpider case study (paper Section 3
    and Table 1), in two forms:

    - {e global form}: over the intersection-methodology global schema
      (concepts [UProtein], [UProteinHit], [UPeptideHit], ...), with the
      provenance-tagged keys of the paper's transformations;
    - {e classical form}: over the classical union-compatible global
      schema GS1/GS2/GS3 (Pedro-shaped concepts, untagged merged extents).

    Each query also carries a ground-truth function computing the expected
    answer {e directly} from the generated relational data, bypassing the
    whole integration machinery: the integration is correct when running
    the query through the query processor returns exactly the ground
    truth. *)

module Value = Automed_iql.Value

type query = {
  number : int;  (** 1-7, the paper's priority order *)
  title : string;  (** the paper's description *)
  global_text : string;  (** IQL over the intersection-based global schema *)
  classical_text : string;  (** IQL over the classical GS3 *)
  needs_iteration : int;
      (** first intersection-workflow iteration after which the global
          form is answerable (0 = answerable on the initial federated
          schema) *)
  ground_truth : Sources.dataset -> Value.Bag.t;
      (** expected answer of the global form *)
}

val all : query list
(** The seven queries, in priority order. *)

val find : int -> query
(** @raise Not_found for numbers outside 1-7. *)
