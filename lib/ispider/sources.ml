module Relational = Automed_datasource.Relational
module Wrapper = Automed_datasource.Wrapper
module Prng = Automed_base.Prng
module Repository = Automed_repository.Repository

let pedro_name = "pedro"
let gpmdb_name = "gpmdb"
let pepseeker_name = "pepseeker"

module Known = struct
  let accession = "P68871"
  let family_description = "kinase family"
  let organism = "Homo sapiens"
  let peptide_sequence = "MVHLTPEEK"
  let pedro_tag = "PEDRO"
  let gpmdb_tag = "gpmDB"
  let pepseeker_tag = "pepSeeker"
end

type dataset = {
  pedro : Relational.db;
  gpmdb : Relational.db;
  pepseeker : Relational.db;
}

(* -- schema definitions ------------------------------------------------ *)

let s = Relational.CStr
let f = Relational.CFloat
let i = Relational.CInt

let table name cols =
  match Relational.create_table ~name ~key:"id" (("id", s) :: cols) with
  | Ok t -> t
  | Error e -> invalid_arg e

(* Pedro: 9 tables, 34 non-key columns -> 43 schema objects. *)
let pedro_tables () =
  [
    table "protein"
      [ ("accession_num", s); ("description", s); ("organism", s);
        ("predicted_mass", f); ("sequence", s) ];
    table "proteinhit"
      [ ("protein", s); ("db_search", s); ("score", f);
        ("all_peptides_matched", i) ];
    table "peptidehit"
      [ ("db_search", s); ("sequence", s); ("score", f); ("probability", f);
        ("mass_error", f) ];
    table "db_search"
      [ ("experiment", s); ("username", s); ("id_date", s); ("database", s);
        ("db_version", s) ];
    table "experiment"
      [ ("hypothesis", s); ("method_citation", s); ("result_citation", s) ];
    table "sample" [ ("experiment", s); ("sample_date", s); ("description", s) ];
    table "analyte_processing_step"
      [ ("sample", s); ("description", s); ("step_type", s) ];
    table "gel_1d"
      [ ("analyte_processing_step", s); ("description", s); ("pixel_size_x", f) ];
    table "ion_source" [ ("db_search", s); ("source_type", s); ("voltage", f) ];
  ]

(* gpmDB: 14 tables, 46 non-key columns -> 60 schema objects. *)
let gpmdb_tables () =
  [
    table "proseq" [ ("label", s); ("seq", s); ("rf", i) ];
    table "protein" [ ("proseqid", s); ("pathid", s); ("expect", f); ("uid", i) ];
    table "peptide"
      [ ("proid", s); ("seq", s); ("start_pos", i); ("end_pos", i); ("expect", f) ];
    table "path" [ ("file", s); ("title", s); ("client", s) ];
    table "aa" [ ("pepid", s); ("type_", s); ("at_pos", i); ("modified", s) ];
    table "result" [ ("pathid", s); ("proseqid", s); ("note", s) ];
    table "histogram" [ ("pathid", s); ("htype", s); ("values_", s) ];
    table "distribution" [ ("pathid", s); ("dtype", s); ("values_", s) ];
    table "peptide_count" [ ("proseqid", s); ("cnt", i) ];
    table "sample_info" [ ("pathid", s); ("description", s); ("taxonomy", s) ];
    table "modification" [ ("aaid", s); ("mtype", s); ("mass_delta", f) ];
    table "spectrum"
      [ ("pathid", s); ("precursor_mz", f); ("charge", i); ("intensity", f) ];
    table "protein_keywords" [ ("proseqid", s); ("keyword", s); ("source_db", s) ];
    table "peptide_histogram" [ ("pepid", s); ("htype", s); ("values_", s) ];
  ]

(* PepSeeker: 12 tables, 50 non-key columns -> 62 schema objects. *)
let pepseeker_tables () =
  [
    table "protein"
      [ ("accession", s); ("description", s); ("mass", f); ("taxon", s);
        ("sequence", s) ];
    table "proteinhit"
      [ ("proteinid", s); ("fileparameters", s); ("score", f);
        ("hitnumber", i); ("masses", s) ];
    table "peptidehit"
      [ ("pepseq", s); ("score", f); ("expect", f); ("masserror", f);
        ("charge", i); ("fileparameters", s) ];
    table "fileparameters"
      [ ("filename", s); ("database", s); ("taxonomy", s); ("enzyme", s);
        ("username", s); ("search_date", s); ("db_version", s) ];
    table "iontable"
      [ ("peptidehit_id", s); ("immon", f); ("a_ion", f); ("b_ion", f);
        ("y_ion", f) ];
    table "querydata"
      [ ("fileparameters_id", s); ("querynumber", i); ("precursor_mass", f) ];
    table "proteindata"
      [ ("proteinhit_id", s); ("start_pos", i); ("end_pos", i);
        ("multiplicity", i) ];
    table "phosphorylation" [ ("peptidehit_id", s); ("site", i); ("residue", s) ];
    table "instrument"
      [ ("fileparameters_id", s); ("name_", s); ("source", s); ("detector", s);
        ("voltage", f) ];
    table "modifications" [ ("peptidehit_id", s); ("mod_name", s); ("mod_mass", f) ];
    table "errortolerant" [ ("peptidehit_id", s); ("err_type", s); ("delta", f) ];
    table "searchsession"
      [ ("fileparameters_id", s); ("hypothesis", s); ("session_date", s);
        ("operator_", s) ];
  ]

(* -- synthetic data ----------------------------------------------------- *)

type protein_info = {
  p_index : int;
  acc : string;
  descr : string;
  org : string;
  seq : string;
  mass : float;
  peptides : string list;
}

let descriptions =
  [| "kinase family"; "transport protein"; "membrane receptor";
     "structural protein"; "transcription factor"; "heat shock protein" |]

let organisms = [| "Homo sapiens"; "Mus musculus"; "Escherichia coli" |]
let residues = "ACDEFGHIKLMNPQRSTVWY"

let random_peptide rng len =
  String.init len (fun _ -> residues.[Prng.int rng (String.length residues)])

let make_universe rng scale =
  List.init scale (fun idx ->
      let planted = idx = 0 in
      let acc =
        if planted then Known.accession else Printf.sprintf "P%05d" (10000 + idx)
      in
      let descr =
        if planted || idx mod 5 = 1 then Known.family_description
        else Prng.choose rng descriptions
      in
      let org =
        if planted || idx mod 3 = 1 then Known.organism
        else Prng.choose rng organisms
      in
      let n_peps = 2 + Prng.int rng 3 in
      let peptides =
        List.init n_peps (fun p ->
            if planted && p = 0 then Known.peptide_sequence
            else random_peptide rng (6 + Prng.int rng 6))
      in
      let seq = String.concat "" peptides in
      {
        p_index = idx;
        acc;
        descr;
        org;
        seq;
        mass = 10000.0 +. Prng.float rng 90000.0;
        peptides;
      })

let sc = Relational.str_cell
let fc = Relational.float_cell
let ic = Relational.int_cell

let get_table db name =
  match Relational.find_table db name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "no table %s" name)

let with_rows db name rows =
  let t = get_table db name in
  match Relational.insert_all t rows with
  | Ok t -> Relational.replace_table db t
  | Error e -> invalid_arg e

let db_of_tables name tables =
  List.fold_left
    (fun db t ->
      match Relational.add_table db t with
      | Ok db -> db
      | Error e -> invalid_arg e)
    (Relational.create_db name) tables

(* Pedro holds every protein of the universe. *)
let populate_pedro rng universe db =
  let searches = max 2 (List.length universe / 8) in
  let db =
    with_rows db "experiment"
      (List.init 2 (fun e ->
           [ sc (Printf.sprintf "PED-E%d" e); sc "differential expression";
             sc "doi:10.1000/pedro"; sc "doi:10.1000/results" ]))
  in
  let db =
    with_rows db "db_search"
      (List.init searches (fun j ->
           [ sc (Printf.sprintf "PED-S%d" j);
             sc (Printf.sprintf "PED-E%d" (j mod 2));
             sc (Printf.sprintf "analyst%d" (j mod 3));
             sc (Printf.sprintf "2006-0%d-01" (1 + (j mod 9)));
             sc "SwissProt"; sc (Printf.sprintf "v%d" (40 + j)) ]))
  in
  let db =
    with_rows db "protein"
      (List.map
         (fun p ->
           [ sc (Printf.sprintf "PED-P%d" p.p_index); sc p.acc; sc p.descr;
             sc p.org; fc p.mass; sc p.seq ])
         universe)
  in
  let hit_rows, pep_rows =
    List.fold_left
      (fun (hits, peps) p ->
        let search = p.p_index mod searches in
        let hit =
          [ sc (Printf.sprintf "PED-PH%d" p.p_index);
            sc (Printf.sprintf "PED-P%d" p.p_index);
            sc (Printf.sprintf "PED-S%d" search);
            fc (30.0 +. Prng.float rng 70.0);
            ic (List.length p.peptides) ]
        in
        let peps' =
          List.mapi
            (fun j pep ->
              [ sc (Printf.sprintf "PED-PEP%d-%d" p.p_index j);
                sc (Printf.sprintf "PED-S%d" search); sc pep;
                fc (10.0 +. Prng.float rng 40.0);
                fc (Prng.float rng 1.0); fc (Prng.float rng 0.01) ])
            p.peptides
        in
        (hit :: hits, List.rev_append peps' peps))
      ([], []) universe
  in
  let db = with_rows db "proteinhit" (List.rev hit_rows) in
  let db = with_rows db "peptidehit" (List.rev pep_rows) in
  let db =
    with_rows db "sample"
      (List.init 3 (fun k ->
           [ sc (Printf.sprintf "PED-SA%d" k); sc (Printf.sprintf "PED-E%d" (k mod 2));
             sc "2006-01-15"; sc (Printf.sprintf "serum sample %d" k) ]))
  in
  let db =
    with_rows db "analyte_processing_step"
      (List.init 3 (fun k ->
           [ sc (Printf.sprintf "PED-APS%d" k); sc (Printf.sprintf "PED-SA%d" k);
             sc "tryptic digest"; sc "digestion" ]))
  in
  let db =
    with_rows db "gel_1d"
      (List.init 2 (fun k ->
           [ sc (Printf.sprintf "PED-GEL%d" k); sc (Printf.sprintf "PED-APS%d" k);
             sc "12% acrylamide"; fc 0.5 ]))
  in
  with_rows db "ion_source"
    (List.init searches (fun j ->
         [ sc (Printf.sprintf "PED-ION%d" j); sc (Printf.sprintf "PED-S%d" j);
           sc "ESI"; fc (2.0 +. Prng.float rng 3.0) ]))

(* gpmDB holds every second protein (so it overlaps Pedro but not fully). *)
let populate_gpmdb rng universe db =
  let mine = List.filter (fun p -> p.p_index mod 2 = 0) universe in
  let paths = max 2 (List.length mine / 6) in
  let db =
    with_rows db "path"
      (List.init paths (fun j ->
           [ sc (Printf.sprintf "GPM-PA%d" j);
             sc (Printf.sprintf "run%03d.xml" j);
             sc (Printf.sprintf "GPM run %d" j);
             sc (Printf.sprintf "client%d" (j mod 4)) ]))
  in
  let db =
    with_rows db "proseq"
      (List.map
         (fun p ->
           [ sc (Printf.sprintf "GPM-PS%d" p.p_index); sc p.acc; sc p.seq;
             ic (p.p_index mod 3) ])
         mine)
  in
  let db =
    with_rows db "protein"
      (List.map
         (fun p ->
           [ sc (Printf.sprintf "GPM-PR%d" p.p_index);
             sc (Printf.sprintf "GPM-PS%d" p.p_index);
             sc (Printf.sprintf "GPM-PA%d" (p.p_index mod paths));
             fc (Prng.float rng 0.1); ic (100000 + p.p_index) ])
         mine)
  in
  let pep_rows =
    List.concat_map
      (fun p ->
        List.mapi
          (fun j pep ->
            [ sc (Printf.sprintf "GPM-PE%d-%d" p.p_index j);
              sc (Printf.sprintf "GPM-PR%d" p.p_index); sc pep;
              ic (j * 10); ic ((j * 10) + String.length pep);
              fc (Prng.float rng 0.2) ])
          p.peptides)
      mine
  in
  let db = with_rows db "peptide" pep_rows in
  let first_peps =
    List.filteri (fun idx _ -> idx < 10) pep_rows
    |> List.map (fun row -> match row with
        | Some (Automed_iql.Value.Str id) :: _ -> id
        | _ -> "GPM-PE0-0")
  in
  let db =
    with_rows db "aa"
      (List.mapi
         (fun k pid ->
           [ sc (Printf.sprintf "GPM-AA%d" k); sc pid; sc "S"; ic (k mod 7);
             sc (if k mod 2 = 0 then "phospho" else "none") ])
         first_peps)
  in
  let db =
    with_rows db "result"
      (List.mapi
         (fun k p ->
           [ sc (Printf.sprintf "GPM-RES%d" k);
             sc (Printf.sprintf "GPM-PA%d" (k mod paths));
             sc (Printf.sprintf "GPM-PS%d" p.p_index);
             sc "expression study" ])
         (List.filteri (fun idx _ -> idx < 8) mine))
  in
  let db =
    with_rows db "histogram"
      (List.init paths (fun j ->
           [ sc (Printf.sprintf "GPM-H%d" j); sc (Printf.sprintf "GPM-PA%d" j);
             sc "expect"; sc "1,4,9,2" ]))
  in
  let db =
    with_rows db "distribution"
      (List.init paths (fun j ->
           [ sc (Printf.sprintf "GPM-D%d" j); sc (Printf.sprintf "GPM-PA%d" j);
             sc "charge"; sc "2:40,3:20" ]))
  in
  let db =
    with_rows db "peptide_count"
      (List.map
         (fun p ->
           [ sc (Printf.sprintf "GPM-PC%d" p.p_index);
             sc (Printf.sprintf "GPM-PS%d" p.p_index);
             ic (List.length p.peptides) ])
         mine)
  in
  let db =
    with_rows db "sample_info"
      (List.init paths (fun j ->
           [ sc (Printf.sprintf "GPM-SI%d" j); sc (Printf.sprintf "GPM-PA%d" j);
             sc (Printf.sprintf "plasma sample %d" j); sc "Homo sapiens" ]))
  in
  let db =
    with_rows db "modification"
      (List.init (min 6 (List.length first_peps)) (fun k ->
           [ sc (Printf.sprintf "GPM-MO%d" k); sc (Printf.sprintf "GPM-AA%d" k);
             sc "phosphorylation"; fc 79.97 ]))
  in
  let db =
    with_rows db "spectrum"
      (List.init (paths * 2) (fun k ->
           [ sc (Printf.sprintf "GPM-SP%d" k);
             sc (Printf.sprintf "GPM-PA%d" (k mod paths));
             fc (400.0 +. Prng.float rng 1200.0); ic (2 + (k mod 2));
             fc (Prng.float rng 1e6) ]))
  in
  let db =
    with_rows db "protein_keywords"
      (List.mapi
         (fun k p ->
           [ sc (Printf.sprintf "GPM-KW%d" k);
             sc (Printf.sprintf "GPM-PS%d" p.p_index); sc "enzyme";
             sc "SwissProt" ])
         (List.filteri (fun idx _ -> idx < 10) mine))
  in
  with_rows db "peptide_histogram"
    (List.mapi
       (fun k pid ->
         [ sc (Printf.sprintf "GPM-PH%d" k); sc pid; sc "ion"; sc "3,1,4" ])
       first_peps)

(* PepSeeker holds every third protein. *)
let populate_pepseeker rng universe db =
  let mine = List.filter (fun p -> p.p_index mod 3 = 0) universe in
  let files = max 2 (List.length mine / 5) in
  let db =
    with_rows db "fileparameters"
      (List.init files (fun j ->
           [ sc (Printf.sprintf "SEEK-F%d" j);
             sc (Printf.sprintf "spectra%03d.mgf" j); sc "NCBInr";
             sc "Homo sapiens"; sc "Trypsin";
             sc (Printf.sprintf "operator%d" (j mod 2));
             sc (Printf.sprintf "2006-1%d-05" (j mod 2));
             sc (Printf.sprintf "nr%d" (20 + j)) ]))
  in
  let db =
    with_rows db "protein"
      (List.map
         (fun p ->
           [ sc (Printf.sprintf "SEEK-P%d" p.p_index); sc p.acc; sc p.descr;
             fc p.mass; sc p.org; sc p.seq ])
         mine)
  in
  let db =
    with_rows db "proteinhit"
      (List.map
         (fun p ->
           [ sc (Printf.sprintf "SEEK-PH%d" p.p_index);
             sc (Printf.sprintf "SEEK-P%d" p.p_index);
             sc (Printf.sprintf "SEEK-F%d" (p.p_index mod files));
             fc (20.0 +. Prng.float rng 80.0); ic (1 + (p.p_index mod 5));
             sc "1203.5,890.2" ])
         mine)
  in
  let pep_rows =
    List.concat_map
      (fun p ->
        List.mapi
          (fun j pep ->
            [ sc (Printf.sprintf "SEEK-PEP%d-%d" p.p_index j); sc pep;
              fc (15.0 +. Prng.float rng 60.0); fc (Prng.float rng 0.5);
              fc (Prng.float rng 0.02); ic (2 + (j mod 2));
              sc (Printf.sprintf "SEEK-F%d" (p.p_index mod files)) ])
          p.peptides)
      mine
  in
  let db = with_rows db "peptidehit" pep_rows in
  let pep_ids =
    List.map
      (fun row -> match row with
        | Some (Automed_iql.Value.Str id) :: _ -> id
        | _ -> "SEEK-PEP0-0")
      pep_rows
  in
  let db =
    with_rows db "iontable"
      (List.mapi
         (fun k pid ->
           [ sc (Printf.sprintf "SEEK-ION%d" k); sc pid;
             fc (60.0 +. Prng.float rng 100.0); fc (Prng.float rng 500.0);
             fc (Prng.float rng 800.0); fc (Prng.float rng 900.0) ])
         (List.filteri (fun idx _ -> idx < 12) pep_ids))
  in
  let db =
    with_rows db "querydata"
      (List.init files (fun j ->
           [ sc (Printf.sprintf "SEEK-Q%d" j); sc (Printf.sprintf "SEEK-F%d" j);
             ic (j + 1); fc (800.0 +. Prng.float rng 2000.0) ]))
  in
  let db =
    with_rows db "proteindata"
      (List.mapi
         (fun k p ->
           [ sc (Printf.sprintf "SEEK-PD%d" k);
             sc (Printf.sprintf "SEEK-PH%d" p.p_index); ic 1;
             ic (String.length p.seq); ic (1 + (k mod 3)) ])
         (List.filteri (fun idx _ -> idx < 8) mine))
  in
  let db =
    with_rows db "phosphorylation"
      (List.mapi
         (fun k pid ->
           [ sc (Printf.sprintf "SEEK-PHOS%d" k); sc pid; ic (k mod 9); sc "S" ])
         (List.filteri (fun idx _ -> idx < 6) pep_ids))
  in
  let db =
    with_rows db "instrument"
      (List.init files (fun j ->
           [ sc (Printf.sprintf "SEEK-I%d" j); sc (Printf.sprintf "SEEK-F%d" j);
             sc "QTOF-2"; sc "ESI"; sc "MCP"; fc (2.5 +. Prng.float rng 2.0) ]))
  in
  let db =
    with_rows db "modifications"
      (List.mapi
         (fun k pid ->
           [ sc (Printf.sprintf "SEEK-MOD%d" k); sc pid; sc "Oxidation (M)";
             fc 15.99 ])
         (List.filteri (fun idx _ -> idx < 6) pep_ids))
  in
  let db =
    with_rows db "errortolerant"
      (List.mapi
         (fun k pid ->
           [ sc (Printf.sprintf "SEEK-ET%d" k); sc pid; sc "substitution";
             fc (Prng.float rng 1.0) ])
         (List.filteri (fun idx _ -> idx < 4) pep_ids))
  in
  with_rows db "searchsession"
    (List.init files (fun j ->
         [ sc (Printf.sprintf "SEEK-SS%d" j); sc (Printf.sprintf "SEEK-F%d" j);
           sc "protein identification"; sc "2006-11-05";
           sc (Printf.sprintf "operator%d" (j mod 2)) ]))

let generate ?(seed = 42L) ?(scale = 30) () =
  let rng = Prng.create seed in
  let universe = make_universe rng scale in
  let pedro =
    populate_pedro rng universe (db_of_tables pedro_name (pedro_tables ()))
  in
  let gpmdb =
    populate_gpmdb rng universe (db_of_tables gpmdb_name (gpmdb_tables ()))
  in
  let pepseeker =
    populate_pepseeker rng universe
      (db_of_tables pepseeker_name (pepseeker_tables ()))
  in
  { pedro; gpmdb; pepseeker }

let ( let* ) = Result.bind

let wrap_all ?resilience repo ds =
  let* _ = Wrapper.wrap ?resilience repo ds.pedro in
  let* _ = Wrapper.wrap ?resilience repo ds.gpmdb in
  let* _ = Wrapper.wrap ?resilience repo ds.pepseeker in
  Ok ()
