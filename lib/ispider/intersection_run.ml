module Scheme = Automed_base.Scheme
module Parser = Automed_iql.Parser
module Repository = Automed_repository.Repository
module Intersection = Automed_integration.Intersection
module Workflow = Automed_integration.Workflow

type step = { label : string; enables : int list; manual : int }
type run = { workflow : Workflow.t; steps : step list; total_manual : int }

let ( let* ) = Result.bind

let intersection_names =
  [ "i_protein"; "x_protein_description"; "x_protein_organism"; "i_hits";
    "x_hit_join"; "i_probability" ]

let q = Parser.parse_exn
let t = Scheme.table
let c = Scheme.column

let mapping target forward = { Intersection.target; forward; restore = None }

(* Iteration 1 (query 1): UProtein and its accession number, integrated
   across all three sources - the paper's 6 transformations. *)
let iteration_1 =
  {
    Intersection.name = "i_protein";
    sides =
      [
        {
          schema = Sources.pedro_name;
          mappings =
            [
              mapping (t "UProtein") (q "[{'PEDRO', k} | k <- <<protein>>]");
              mapping
                (c "UProtein" "accession_num")
                (q "[{'PEDRO', k, x} | {k,x} <- <<protein,accession_num>>]");
            ];
        };
        {
          schema = Sources.gpmdb_name;
          mappings =
            [
              mapping (t "UProtein") (q "[{'gpmDB', k} | k <- <<proseq>>]");
              mapping
                (c "UProtein" "accession_num")
                (q "[{'gpmDB', k, x} | {k,x} <- <<proseq,label>>]");
            ];
        };
        {
          schema = Sources.pepseeker_name;
          mappings =
            [
              (* the paper keys PepSeeker's UProtein contribution by the
                 protein id referenced from proteinhit *)
              mapping (t "UProtein")
                (q "[{'pepSeeker', x} | {k, x} <- <<proteinhit,proteinid>>]");
              mapping
                (c "UProtein" "accession_num")
                (q "[{'pepSeeker', k, x} | {k,x} <- <<protein,accession>>]");
            ];
        };
      ];
  }

(* Iterations 2 and 3 (queries 2, 3): ad-hoc single-schema extensions. *)
let iteration_2 =
  {
    Intersection.schema = Sources.pedro_name;
    mappings =
      [
        mapping
          (c "UProtein" "description")
          (q "[{'PEDRO', k, x} | {k,x} <- <<protein,description>>]");
      ];
  }

let iteration_3 =
  {
    Intersection.schema = Sources.pedro_name;
    mappings =
      [
        mapping
          (c "UProtein" "organism")
          (q "[{'PEDRO', k, x} | {k,x} <- <<protein,organism>>]");
      ];
  }

(* Iteration 4 (queries 4-5): protein hits, peptide hits and their
   db-search links - 14 transformations here plus the join entity below. *)
let iteration_4 =
  {
    Intersection.name = "i_hits";
    sides =
      [
        {
          schema = Sources.pedro_name;
          mappings =
            [
              mapping
                (c "UProteinHit" "protein")
                (q "[{'PEDRO', k, x} | {k,x} <- <<proteinhit,protein>>]");
              mapping (t "UPeptideHit") (q "[{'PEDRO', k} | k <- <<peptidehit>>]");
              mapping
                (c "UPeptideHit" "sequence")
                (q "[{'PEDRO', k, x} | {k,x} <- <<peptidehit,sequence>>]");
              mapping
                (c "UPeptideHit" "score")
                (q "[{'PEDRO', k, x} | {k,x} <- <<peptidehit,score>>]");
              mapping
                (c "UProteinHit" "dbsearch")
                (q "[{'PEDRO', k, x} | {k,x} <- <<proteinhit,db_search>>]");
              mapping
                (c "UPeptideHit" "dbsearch")
                (q "[{'PEDRO', k, x} | {k,x} <- <<peptidehit,db_search>>]");
            ];
        };
        {
          schema = Sources.gpmdb_name;
          mappings =
            [
              mapping
                (c "UProteinHit" "protein")
                (q "[{'gpmDB', k, x} | {k,x} <- <<protein,proseqid>>]");
              mapping (t "UPeptideHit") (q "[{'gpmDB', k} | k <- <<peptide>>]");
              mapping
                (c "UPeptideHit" "sequence")
                (q "[{'gpmDB', k, x} | {k,x} <- <<peptide,seq>>]");
            ];
        };
        {
          schema = Sources.pepseeker_name;
          mappings =
            [
              mapping
                (c "UProteinHit" "protein")
                (q "[{'pepSeeker', k, x} | {k,x} <- <<proteinhit,proteinid>>]");
              mapping (t "UPeptideHit")
                (q "[{'pepSeeker', k} | k <- <<peptidehit>>]");
              mapping
                (c "UPeptideHit" "sequence")
                (q "[{'pepSeeker', k, x} | {k,x} <- <<peptidehit,pepseq>>]");
              mapping
                (c "UPeptideHit" "score")
                (q "[{'pepSeeker', k, x} | {k,x} <- <<peptidehit,score>>]");
              mapping
                (c "UProteinHit" "dbsearch")
                (q "[{'pepSeeker', k, x} | {k,x} <- <<proteinhit,fileparameters>>]");
            ];
        };
      ];
  }

(* The join entity between peptide hits and protein hits sharing a db
   search, defined over concepts already in the global schema. *)
let iteration_4b =
  {
    Intersection.schema = "i_hits";
    mappings =
      [
        mapping
          (t "uPeptideHitToProteinHitmm")
          (q
             "[{{s1,k1},{s2,k2}} | {s1,k1,x} <- <<UPeptideHit,dbsearch>>; \
              {s2,k2,y} <- <<UProteinHit,dbsearch>>; s1 = s2; x = y]");
      ];
  }

(* Iteration 5 (query 6): peptide hit probabilities. *)
let iteration_5 =
  {
    Intersection.name = "i_probability";
    sides =
      [
        {
          schema = Sources.pedro_name;
          mappings =
            [
              mapping
                (c "UPeptideHit" "probability")
                (q "[{'PEDRO', k, x} | {k,x} <- <<peptidehit,probability>>]");
            ];
        };
        {
          schema = Sources.gpmdb_name;
          mappings =
            [
              mapping
                (c "UPeptideHit" "probability")
                (q "[{'gpmDB', k, x} | {k,x} <- <<peptide,expect>>]");
            ];
        };
        {
          schema = Sources.pepseeker_name;
          mappings =
            [
              mapping
                (c "UPeptideHit" "probability")
                (q "[{'pepSeeker', k, x} | {k,x} <- <<peptidehit,expect>>]");
            ];
        };
      ];
  }

let execute ?resilience ?simplify repo =
  let* wf =
    Workflow.start ?resilience ?simplify repo ~name:"ispider"
      ~sources:[ Sources.pedro_name; Sources.gpmdb_name; Sources.pepseeker_name ]
  in
  let steps = ref [] in
  let push label enables (it : Workflow.iteration) =
    steps :=
      { label; enables; manual = it.outcome.Intersection.manual_steps } :: !steps
  in
  let* it1 =
    Workflow.integrate ~description:"query 1: UProtein + accession_num" wf
      iteration_1
  in
  push "query 1: UProtein + accession_num" [ 1 ] it1;
  let* it2 =
    Workflow.integrate_adhoc ~description:"query 2: UProtein description" wf
      ~name:"x_protein_description" iteration_2
  in
  push "query 2: UProtein description" [ 2 ] it2;
  let* it3 =
    Workflow.integrate_adhoc ~description:"query 3: UProtein organism" wf
      ~name:"x_protein_organism" iteration_3
  in
  push "query 3: UProtein organism" [ 3 ] it3;
  let* it4 =
    Workflow.integrate ~description:"queries 4-5: hits and sequences" wf
      iteration_4
  in
  push "queries 4-5: hits and sequences" [] it4;
  let* it4b =
    Workflow.integrate_adhoc
      ~description:"queries 4-5: peptide-hit/protein-hit join" wf
      ~name:"x_hit_join" iteration_4b
  in
  push "queries 4-5: peptide-hit/protein-hit join" [ 4; 5 ] it4b;
  let* it5 =
    Workflow.integrate ~description:"query 6: UPeptideHit probability" wf
      iteration_5
  in
  push "query 6: UPeptideHit probability" [ 6 ] it5;
  let steps = List.rev !steps in
  Ok
    {
      workflow = wf;
      steps;
      total_manual = List.fold_left (fun acc s -> acc + s.manual) 0 steps;
    }
