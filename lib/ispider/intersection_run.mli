(** The paper's Section 3 case study, intersection-schema methodology.

    Replays the query-driven incremental integration: 26 user-defined
    transformations across the iterations that make queries 1-7 answerable
    (6 for query 1, +1 for query 2, +1 for query 3, +15 for queries 4-5,
    +3 for query 6; queries 5 and 7 need no new concepts). *)

module Repository = Automed_repository.Repository
module Workflow = Automed_integration.Workflow

type step = {
  label : string;  (** e.g. ["query 1: UProtein + accession_num"] *)
  enables : int list;  (** the case-study queries this step unlocks *)
  manual : int;  (** user-defined transformations in this step *)
}

type run = {
  workflow : Workflow.t;
  steps : step list;  (** in execution order *)
  total_manual : int;  (** 26 *)
}

val execute :
  ?resilience:Automed_resilience.Resilience.t ->
  ?simplify:bool ->
  Repository.t ->
  (run, string) result
(** Expects the three source schemas to be wrapped already (see
    {!Sources.wrap_all}).  Builds the initial federated schema and runs
    all iterations.  [resilience] and [simplify] are handed to the
    workflow's query processor (see {!Workflow.start}). *)

val intersection_names : string list
(** The intersection/extension schema names created, in order. *)
