(** The iSpider case-study data sources: Pedro, gpmDB and PepSeeker.

    The real services are long offline and their full schemas are not in
    the paper, so this module reconstructs representative fragments: every
    table and column the paper mentions is present under its paper name,
    and each schema is padded with further realistic proteomics tables so
    that the transformation counts of the paper's Section 3 case study
    (19, 35 and 41 non-trivial classical transformations; see
    {!Classical_run}) are reproducible.  Data is synthetic, produced by a
    deterministic generator, with a protein/peptide universe shared across
    the three sources so that their semantic intersections are non-empty.

    All tables use a surrogate string key column [id]; wrappers do not
    emit a schema object for the key column (the table object's extent
    already carries the keys). *)

module Relational = Automed_datasource.Relational

(** Well-known values planted by the generator, used as query parameters
    and in ground-truth checks. *)
module Known : sig
  (** An accession present in all three sources. *)
  val accession : string

  (** A description shared by several Pedro proteins (query 2's "group of
      proteins"). *)
  val family_description : string

  (** An organism used by several Pedro proteins. *)
  val organism : string

  (** A peptide sequence with hits. *)
  val peptide_sequence : string

  (** ['PEDRO'], the provenance tag. *)
  val pedro_tag : string

  (** ['gpmDB']. *)
  val gpmdb_tag : string

  (** ['pepSeeker']. *)
  val pepseeker_tag : string
end

type dataset = {
  pedro : Relational.db;
  gpmdb : Relational.db;
  pepseeker : Relational.db;
}

val generate : ?seed:int64 -> ?scale:int -> unit -> dataset
(** [scale] (default 30) is the number of proteins in the shared
    universe; row counts grow linearly with it.  The same seed and scale
    always produce identical databases. *)

val wrap_all :
  ?resilience:Automed_resilience.Resilience.t ->
  Automed_repository.Repository.t -> dataset ->
  (unit, string) result
(** Registers the three source schemas ([pedro], [gpmdb], [pepseeker])
    and materialises their extents.  With [resilience], the sources are
    registered in the registry and wrapped under its policy. *)

val pedro_name : string
val gpmdb_name : string
val pepseeker_name : string
