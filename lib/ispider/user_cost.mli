(** A projected user-effort model for the paper's proposed evaluation.

    Section 4 of the paper plans a user study measuring "the time taken
    to complete the integration and the number of key clicks required
    within the toolset" for the intersection-schema methodology versus a
    traditional one.  The study itself needs humans; this module projects
    the two metrics from the integration scripts under a simple,
    documented interaction model:

    - every manually-defined transformation costs a fixed number of
      clicks (selecting source objects, naming the target, confirming)
      plus one keystroke per character of its IQL query;
    - automatically generated steps (extends, inverted deletes,
      contracts, idents) cost one click each to accept;
    - classical mappings restated at a later ladder stage cost nothing
      again (as in the paper's counting).

    The absolute numbers are calibration assumptions; the {e ratio}
    between methodologies is the quantity of interest, mirroring the
    paper's 26-vs-95 comparison at a finer grain. *)

module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository

type model = {
  clicks_per_manual : int;  (** default 6 *)
  clicks_per_auto : int;  (** default 1 *)
  seconds_per_click : float;  (** default 1.5 *)
  seconds_per_keystroke : float;  (** default 0.28 *)
}

val default_model : model

type cost = {
  transformations : int;  (** manual transformations *)
  clicks : int;
  keystrokes : int;
  minutes : float;  (** projected completion time *)
}

val zero : cost
val add : cost -> cost -> cost
val pp : cost Fmt.t

val pathway_cost : ?model:model -> Transform.pathway -> cost
(** Cost of one pathway: manual adds/deletes typed, automatic steps
    accepted. *)

val intersection_cost : ?model:model -> Intersection_run.run -> cost
(** Total projected effort of the intersection-methodology case study. *)

val classical_cost : ?model:model -> Repository.t -> cost
(** Total projected effort of the classical ladder registered in the
    repository (stages GS1..GS3): manual adds deduplicated by
    (source schema, target object) across stages. *)
