module Value = Automed_iql.Value
module Relational = Automed_datasource.Relational

type query = {
  number : int;
  title : string;
  global_text : string;
  classical_text : string;
  needs_iteration : int;
  ground_truth : Sources.dataset -> Value.Bag.t;
}

(* -- helpers over the raw relational data ------------------------------- *)

let get_table db name =
  match Relational.find_table db name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "ground truth: no table %s" name)

(* (key, value) pairs of a column, skipping NULLs *)
let pairs db tname col =
  match Relational.column_extent (get_table db tname) col with
  | Ok bag ->
      Value.Bag.fold
        (fun v n acc ->
          match v with
          | Value.Tuple [ k; x ] -> List.init n (fun _ -> (k, x)) @ acc
          | _ -> acc)
        bag []
  | Error e -> invalid_arg e

let str_of = function Value.Str s -> s | v -> Value.to_string v

let tagged tag k = Value.tuple2 (Value.Str tag) k

(* Pedro peptide hits with their search and sequence, and protein hits
   with their search: the joins behind queries 4-6. *)
let pedro_pephits ds =
  let seqs = pairs ds.Sources.pedro "peptidehit" "sequence" in
  let searches = pairs ds.Sources.pedro "peptidehit" "db_search" in
  List.filter_map
    (fun (k, sq) ->
      match List.assoc_opt k searches with
      | Some search -> Some (k, str_of sq, search)
      | None -> None)
    seqs

let pedro_prothits ds = pairs ds.Sources.pedro "proteinhit" "db_search"

(* -- ground truths ------------------------------------------------------ *)

let gt_accession ds =
  let hit tag tname col db =
    pairs db tname col
    |> List.filter_map (fun (k, v) ->
           if str_of v = Sources.Known.accession then Some (tagged tag k)
           else None)
  in
  Value.Bag.of_list
    (hit Sources.Known.pedro_tag "protein" "accession_num" ds.Sources.pedro
    @ hit Sources.Known.gpmdb_tag "proseq" "label" ds.Sources.gpmdb
    @ hit Sources.Known.pepseeker_tag "protein" "accession" ds.Sources.pepseeker)

let gt_pedro_column_match column wanted ds =
  pairs ds.Sources.pedro "protein" column
  |> List.filter_map (fun (k, v) ->
         if str_of v = wanted then Some (tagged Sources.Known.pedro_tag k)
         else None)
  |> Value.Bag.of_list

(* Query 4: protein hits sharing a db search with a peptide hit whose
   sequence is the given peptide (all contributions are Pedro's, since
   only Pedro populates <<UPeptideHit,dbsearch>>). *)
let gt_peptide_hits ds =
  let peps = pedro_pephits ds in
  let hits = pedro_prothits ds in
  List.concat_map
    (fun (_, sq, search) ->
      if sq = Sources.Known.peptide_sequence then
        List.filter_map
          (fun (h, s) ->
            if Value.equal s search then
              Some (tagged Sources.Known.pedro_tag h)
            else None)
          hits
      else [])
    peps
  |> Value.Bag.of_list

(* Query 5: as query 4, restricted to hits of the protein with the given
   accession. *)
let gt_peptide_hits_of_protein ds =
  let protein_of = pairs ds.Sources.pedro "proteinhit" "protein" in
  let accession_of = pairs ds.Sources.pedro "protein" "accession_num" in
  let wanted h =
    match List.assoc_opt h protein_of with
    | None -> false
    | Some p -> (
        match List.assoc_opt p accession_of with
        | Some a -> str_of a = Sources.Known.accession
        | None -> false)
  in
  Value.Bag.fold
    (fun v n acc ->
      match v with
      | Value.Tuple [ _; h ] when wanted h -> Value.Bag.add ~count:n v acc
      | _ -> acc)
    (gt_peptide_hits ds) Value.Bag.empty

let given_hit = "PED-PH0"

(* Query 6: sequences and probabilities of the peptide hits sharing the
   given protein hit's db search. *)
let gt_peptide_info ds =
  let hits = pedro_prothits ds in
  match List.assoc_opt (Value.Str given_hit) hits with
  | None -> Value.Bag.empty
  | Some search ->
      let probs = pairs ds.Sources.pedro "peptidehit" "probability" in
      pedro_pephits ds
      |> List.filter_map (fun (k, sq, s) ->
             if Value.equal s search then
               match List.assoc_opt k probs with
               | Some pb -> Some (Value.tuple2 (Value.Str sq) pb)
               | None -> None
             else None)
      |> Value.Bag.of_list

(* Query 7: all ion information - untouched PepSeeker content, available
   through the federated part of the global schema. *)
let gt_ions ds =
  match
    Relational.column_extent (get_table ds.Sources.pepseeker "iontable") "immon"
  with
  | Ok bag -> bag
  | Error e -> invalid_arg e

(* -- the seven queries --------------------------------------------------- *)

let all =
  [
    {
      number = 1;
      title = "all protein identifications for a given protein accession number";
      global_text =
        Printf.sprintf
          "[{s,k} | {s,k,a} <- <<UProtein,accession_num>>; a = '%s']"
          Sources.Known.accession;
      classical_text =
        Printf.sprintf "[k | {k,a} <- <<protein,accession_num>>; a = '%s']"
          Sources.Known.accession;
      needs_iteration = 1;
      ground_truth = gt_accession;
    };
    {
      number = 2;
      title = "all protein identifications for a given group of proteins";
      global_text =
        Printf.sprintf "[{s,k} | {s,k,d} <- <<UProtein,description>>; d = '%s']"
          Sources.Known.family_description;
      classical_text =
        Printf.sprintf "[k | {k,d} <- <<protein,description>>; d = '%s']"
          Sources.Known.family_description;
      needs_iteration = 2;
      ground_truth =
        gt_pedro_column_match "description" Sources.Known.family_description;
    };
    {
      number = 3;
      title = "all protein identifications for a given organism";
      global_text =
        Printf.sprintf "[{s,k} | {s,k,o} <- <<UProtein,organism>>; o = '%s']"
          Sources.Known.organism;
      classical_text =
        Printf.sprintf "[k | {k,o} <- <<protein,organism>>; o = '%s']"
          Sources.Known.organism;
      needs_iteration = 3;
      ground_truth = gt_pedro_column_match "organism" Sources.Known.organism;
    };
    {
      number = 4;
      title =
        "all protein identifications given a certain peptide and related \
         amino acid information";
      global_text =
        Printf.sprintf
          "[h | {p,h} <- <<uPeptideHitToProteinHitmm>>; {s,k,sq} <- \
           <<UPeptideHit,sequence>>; p = {s,k}; sq = '%s']"
          Sources.Known.peptide_sequence;
      classical_text =
        Printf.sprintf
          "[h | {p,ds} <- <<peptidehit,db_search>>; {p2,sq} <- \
           <<peptidehit,sequence>>; p2 = p; sq = '%s'; {h,ds2} <- \
           <<proteinhit,db_search>>; ds2 = ds]"
          Sources.Known.peptide_sequence;
      needs_iteration = 5;
      ground_truth = gt_peptide_hits;
    };
    {
      number = 5;
      title = "all identifications of a given protein given a certain peptide";
      global_text =
        Printf.sprintf
          "[h | {p,h} <- <<uPeptideHitToProteinHitmm>>; {s,k,sq} <- \
           <<UPeptideHit,sequence>>; p = {s,k}; sq = '%s'; {s2,h2,pr} <- \
           <<UProteinHit,protein>>; h = {s2,h2}; {s3,k3,a} <- \
           <<UProtein,accession_num>>; s3 = s2; k3 = pr; a = '%s']"
          Sources.Known.peptide_sequence Sources.Known.accession;
      classical_text =
        Printf.sprintf
          "[h | {p,ds} <- <<peptidehit,db_search>>; {p2,sq} <- \
           <<peptidehit,sequence>>; p2 = p; sq = '%s'; {h,ds2} <- \
           <<proteinhit,db_search>>; ds2 = ds; {h2,pr} <- \
           <<proteinhit,protein>>; h2 = h; {k3,a} <- \
           <<protein,accession_num>>; k3 = pr; a = '%s']"
          Sources.Known.peptide_sequence Sources.Known.accession;
      needs_iteration = 5;
      ground_truth = gt_peptide_hits_of_protein;
    };
    {
      number = 6;
      title =
        "all peptide-related information for a given protein identification";
      global_text =
        Printf.sprintf
          "[{sq,pb} | {p,h} <- <<uPeptideHitToProteinHitmm>>; h = \
           {'PEDRO','%s'}; {s,k,sq} <- <<UPeptideHit,sequence>>; p = {s,k}; \
           {s2,k2,pb} <- <<UPeptideHit,probability>>; s2 = s; k2 = k]"
          given_hit;
      classical_text =
        Printf.sprintf
          "[{sq,pb} | {h,ds} <- <<proteinhit,db_search>>; h = '%s'; {p,ds2} \
           <- <<peptidehit,db_search>>; ds2 = ds; {p2,sq} <- \
           <<peptidehit,sequence>>; p2 = p; {p3,pb} <- \
           <<peptidehit,probability>>; p3 = p]"
          given_hit;
      needs_iteration = 6;
      ground_truth = gt_peptide_info;
    };
    {
      number = 7;
      title = "all ion related information";
      global_text =
        Printf.sprintf "[{k,v} | {k,v} <- <<%s:iontable,immon>>]"
          Sources.pepseeker_name;
      classical_text = "[{k,v} | {k,v} <- <<iontable,immon>>]";
      needs_iteration = 0;
      ground_truth = gt_ions;
    };
  ]

let find n = List.find (fun q -> q.number = n) all
