module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Repository = Automed_repository.Repository
module Intersection = Automed_integration.Intersection
module Classical = Automed_integration.Classical

type run = {
  ladder : Classical.ladder_outcome;
  gs1_gpm : int;
  gs1_pep : int;
  gs2_pep : int;
  total_manual : int;
}

let stage_names = [ "GS1"; "GS2"; "GS3" ]

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

(* "t" denotes a table scheme, "t.c" a column scheme *)
let scheme_of_dotted s =
  match String.split_on_char '.' s with
  | [ t ] -> Scheme.table t
  | [ t; c ] -> Scheme.column t c
  | _ -> invalid_arg (Printf.sprintf "bad dotted name %s" s)

let cross (src, dst) =
  {
    Intersection.target = scheme_of_dotted dst;
    forward = Ast.SchemeRef (scheme_of_dotted src);
    restore = None;
  }

let identity obj =
  { Intersection.target = obj; forward = Ast.SchemeRef obj; restore = None }

(* The semantic core: gpmDB concepts corresponding to Pedro-shaped GS1
   concepts - 19 non-trivial transformations, the paper's count. *)
let gpm_to_gs1 =
  [
    ("proseq", "protein");
    ("protein", "proteinhit");
    ("peptide", "peptidehit");
    ("path", "db_search");
    ("sample_info", "sample");
    ("result", "experiment");
    ("proseq.label", "protein.accession_num");
    ("proseq.seq", "protein.sequence");
    ("protein.proseqid", "proteinhit.protein");
    ("protein.expect", "proteinhit.score");
    ("protein.pathid", "proteinhit.db_search");
    ("peptide.seq", "peptidehit.sequence");
    ("peptide.expect", "peptidehit.probability");
    ("peptide.proid", "peptidehit.db_search");
    ("path.file", "db_search.database");
    ("path.title", "db_search.username");
    ("path.client", "db_search.id_date");
    ("sample_info.description", "sample.description");
    ("result.note", "experiment.hypothesis");
  ]

(* PepSeeker concepts identical (in name and meaning) to Pedro's: carried
   through without counting, like GS1's identity derivation from Pedro. *)
let pep_identity_gs1 =
  [ "protein"; "protein.description"; "protein.sequence"; "proteinhit";
    "proteinhit.score"; "peptidehit"; "peptidehit.score" ]

(* The semantic core of PepSeeker-to-GS1: 19 of the 35 non-trivial
   transformations; the remaining 16 are padded deterministically below. *)
let pep_to_gs1_core =
  [
    ("fileparameters", "db_search");
    ("instrument", "ion_source");
    ("protein.accession", "protein.accession_num");
    ("protein.taxon", "protein.organism");
    ("protein.mass", "protein.predicted_mass");
    ("proteinhit.proteinid", "proteinhit.protein");
    ("proteinhit.fileparameters", "proteinhit.db_search");
    ("proteinhit.hitnumber", "proteinhit.all_peptides_matched");
    ("peptidehit.pepseq", "peptidehit.sequence");
    ("peptidehit.expect", "peptidehit.probability");
    ("peptidehit.masserror", "peptidehit.mass_error");
    ("peptidehit.fileparameters", "peptidehit.db_search");
    ("fileparameters.database", "db_search.database");
    ("fileparameters.username", "db_search.username");
    ("fileparameters.search_date", "db_search.id_date");
    ("fileparameters.db_version", "db_search.db_version");
    ("instrument.fileparameters_id", "ion_source.db_search");
    ("instrument.source", "ion_source.source_type");
    ("instrument.voltage", "ion_source.voltage");
  ]

let is_table s = Scheme.construct s = "table"

(* Deterministic padding: assign further cross mappings from a source
   object pool onto the remaining targets until [need] more are defined.
   Tables pair with tables, columns with columns; identity pairs are
   skipped (they would not be counted). *)
let pad ~need ~remaining_targets ~pool =
  let tables_pool = List.filter is_table pool in
  let cols_pool = List.filter (fun s -> not (is_table s)) pool in
  let cycle pool i = List.nth pool (i mod List.length pool) in
  let rec go acc n ti ci = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | target :: rest ->
        if is_table target then
          if tables_pool = [] then List.rev acc
          else
            let src = cycle tables_pool ti in
            if Scheme.equal src target then go acc n (ti + 1) ci (target :: rest)
            else
              go
                ({ Intersection.target; forward = Ast.SchemeRef src;
                   restore = None } :: acc)
                (n - 1) (ti + 1) ci rest
        else if cols_pool = [] then List.rev acc
        else
          let src = cycle cols_pool ci in
          if Scheme.equal src target then go acc n ti (ci + 1) (target :: rest)
          else
            go
              ({ Intersection.target; forward = Ast.SchemeRef src;
                 restore = None } :: acc)
              (n - 1) ti (ci + 1) rest
  in
  go [] need 0 0 remaining_targets

let objects_of repo name =
  match Repository.schema repo name with
  | Some s -> Ok (Schema.objects s)
  | None -> err "schema %s is not registered" name

let targets_of mappings =
  List.map (fun m -> m.Intersection.target) mappings

let sources_of mappings =
  List.filter_map
    (fun m ->
      match m.Intersection.forward with
      | Ast.SchemeRef s -> Some s
      | _ -> None)
    mappings

let diff a b = List.filter (fun o -> not (List.exists (Scheme.equal o) b)) a

(* The ion tables stay out of every mapping pool: query 7's ion
   information is a PepSeeker-only concept in the original project (it
   reaches GS3 by identity, never by a mapping). *)
let paddable pool =
  List.filter (fun o -> not (List.mem "iontable" (Scheme.args o))) pool

let execute repo =
  let* pedro_objs = objects_of repo Sources.pedro_name in
  let* gpm_objs = objects_of repo Sources.gpmdb_name in
  let* pep_objs = objects_of repo Sources.pepseeker_name in
  (* GS1: Pedro's shape *)
  let pedro_maps = List.map identity pedro_objs in
  let gpm_maps_gs1 = List.map cross gpm_to_gs1 in
  let pep_core =
    List.map (fun o -> identity (scheme_of_dotted o)) pep_identity_gs1
    @ List.map cross pep_to_gs1_core
  in
  let pep_used_targets = targets_of pep_core in
  let remaining_gs1 = diff pedro_objs pep_used_targets in
  let pep_pad_pool = paddable (diff pep_objs (sources_of pep_core)) in
  let core_counted =
    List.length
      (List.filter
         (fun m -> not (Intersection.is_identity_mapping m))
         pep_core)
  in
  let pep_maps_gs1 =
    pep_core
    @ pad ~need:(35 - core_counted) ~remaining_targets:remaining_gs1
        ~pool:pep_pad_pool
  in
  let stage1 =
    {
      Classical.stage_name = "GS1";
      sources =
        [
          { Classical.schema = Sources.pedro_name; mappings = pedro_maps };
          { Classical.schema = Sources.gpmdb_name; mappings = gpm_maps_gs1 };
          { Classical.schema = Sources.pepseeker_name; mappings = pep_maps_gs1 };
        ];
    }
  in
  (* GS2: add the gpmDB-only concepts (identity from gpmDB), which
     PepSeeker also supports - 41 further non-trivial transformations *)
  let gpm_only = diff gpm_objs (sources_of gpm_maps_gs1) in
  let gpm_maps_gs2 = gpm_maps_gs1 @ List.map identity gpm_only in
  let pep_pool_gs2 = paddable (diff pep_objs (sources_of pep_maps_gs1)) in
  let pep_new_gs2 =
    pad ~need:(List.length gpm_only) ~remaining_targets:gpm_only
      ~pool:
        (if pep_pool_gs2 = [] then paddable pep_objs
         else pep_pool_gs2 @ paddable pep_objs)
  in
  let pep_maps_gs2 = pep_maps_gs1 @ pep_new_gs2 in
  let stage2 =
    {
      Classical.stage_name = "GS2";
      sources =
        [
          { Classical.schema = Sources.pedro_name; mappings = pedro_maps };
          { Classical.schema = Sources.gpmdb_name; mappings = gpm_maps_gs2 };
          { Classical.schema = Sources.pepseeker_name; mappings = pep_maps_gs2 };
        ];
    }
  in
  (* GS3: add the PepSeeker-only concepts (identity from PepSeeker);
     no further non-trivial transformations, as in the paper *)
  let gs2_targets =
    targets_of pedro_maps @ targets_of gpm_maps_gs2 @ targets_of pep_maps_gs2
  in
  let pep_only =
    diff (diff pep_objs (sources_of pep_maps_gs2)) gs2_targets
  in
  let pep_maps_gs3 = pep_maps_gs2 @ List.map identity pep_only in
  let stage3 =
    {
      Classical.stage_name = "GS3";
      sources =
        [
          { Classical.schema = Sources.pedro_name; mappings = pedro_maps };
          { Classical.schema = Sources.gpmdb_name; mappings = gpm_maps_gs2 };
          { Classical.schema = Sources.pepseeker_name; mappings = pep_maps_gs3 };
        ];
    }
  in
  let* ladder = Classical.ladder repo [ stage1; stage2; stage3 ] in
  let manual stage source =
    match List.nth_opt ladder.Classical.stages stage with
    | Some o -> (
        match List.assoc_opt source o.Classical.per_source_manual with
        | Some n -> n
        | None -> 0)
    | None -> 0
  in
  let gs2_pep =
    match ladder.Classical.new_manual_per_stage with
    | _ :: ("GS2", n) :: _ -> n
    | _ -> 0
  in
  Ok
    {
      ladder;
      gs1_gpm = manual 0 Sources.gpmdb_name;
      gs1_pep = manual 0 Sources.pepseeker_name;
      gs2_pep;
      total_manual = ladder.Classical.total_manual;
    }
