(** The classical up-front integration of the iSpider project, replayed as
    the paper's Section 3 baseline.

    Three successive global schema versions are produced, as in the
    original project: GS1 is shaped after Pedro (all its constructs have a
    trivial identity derivation from Pedro), GS2 adds the gpmDB-only
    concepts, GS3 adds the PepSeeker-only concepts.  The paper reports the
    non-trivial transformation counts 19 (gpmDB to GS1), 35 (PepSeeker to
    GS1) and 41 (PepSeeker to GS2), totalling 95; the full per-mapping
    breakdown (Appendix E of the iSpider thesis) is not available, so this
    module reconstructs mapping tables with exactly those counts: a
    hand-written semantic core plus deterministic padding, documented in
    EXPERIMENTS.md. *)

module Repository = Automed_repository.Repository
module Classical = Automed_integration.Classical

type run = {
  ladder : Classical.ladder_outcome;
  gs1_gpm : int;  (** 19 *)
  gs1_pep : int;  (** 35 *)
  gs2_pep : int;  (** 41 *)
  total_manual : int;  (** 95 *)
}

val stage_names : string list
(** [\["GS1"; "GS2"; "GS3"\]]. *)

val execute : Repository.t -> (run, string) result
(** Expects the three source schemas to be wrapped already. *)
