(** Autonomic maintenance: paying the pay-as-you-go debt back down.

    The evolution layer keeps every global schema version answerable by
    never deleting anything: each churn cycle chains another version,
    dropped sources leave quarantined pathways behind, and the journal
    grows without bound.  {!Automed_observe.Health} prices that debt;
    this module pays it:

    {ul
    {- {!compact} composes the whole global version chain into one
       certified shortcut pathway ({!Automed_analysis.Rewrite.simplify}
       proof-checked by {!Automed_analysis.Equiv.check} — an
       uncertifiable composition is {e refused}, leaving the repository
       untouched), reroutes the contributions feeding interior versions
       onto the current version (each rerouting certified by symbolic
       definition comparison), and commits the whole rewiring as one
       atomic journaled transaction
       ({!Automed_repository.Repository.compact_chain}).  Every old
       version keeps its original pathways and stays answerable
       bit-identically; the {e current} version stops routing through
       the interiors, so its active-surface debt falls.}
    {- {!reclaim} retires dead weight: removes quarantined pathways
       proven inert ({!Automed_analysis.Quarantine.is_inert}) whose
       source has evolved away, prunes the now-unreferenced retired
       schemas, and re-integrates a fresh global version directly from
       the live sources (a new chain anchor: depth and accumulated
       [Void] degradation reset to the structural baseline).}
    {- {!Scheduler} closes the loop: it consumes
       {!Automed_observe.Health.assess} reports and fires
       compaction / reclamation / checkpoint with hysteresis, keeping
       every core debt indicator below its warn threshold (the E-M1
       bench drives 200 churn cycles this way).}} *)

module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Workflow = Automed_integration.Workflow
module Equiv = Automed_analysis.Equiv
module Health = Automed_observe.Health
module Durable = Automed_durable.Durable
module Resilience = Automed_resilience.Resilience
module Telemetry = Automed_telemetry.Telemetry

(** {1 Chain compaction} *)

type compaction = {
  c_anchor : string;  (** chain anchor the shortcut starts from *)
  c_retired : string;  (** label of the link the shortcut replaced *)
  c_links : int;  (** chain links composed into the shortcut *)
  c_steps_before : int;  (** steps in the raw composition *)
  c_steps_after : int;  (** steps in the certified shortcut *)
  c_rerouted : int;  (** interior contributions rerouted onto the current version *)
  c_dropped_contributions : int;
      (** interior contributions proven dead (all definitions [Void] or
          contracted away downstream) and therefore not rerouted *)
  c_certificate : Equiv.certificate;  (** the shortcut's equivalence proof *)
}

type compact_result =
  | Compacted of compaction
  | Nothing_to_do of string  (** chain already at (or one link from) its anchor *)
  | Refused of string
      (** a certificate could not be produced — the repository is
          untouched, queries keep routing through the full chain *)

val compact : ?dry_run:bool -> Workflow.t -> (compact_result, string) result
(** Walks the version chain from the workflow's current global version
    back to its anchor, composes the links, simplifies, certifies, and
    commits — or refuses.  [dry_run] performs every check and
    certification but skips the commit (the returned {!compaction}
    describes what would have happened).  [Error] is reserved for a
    malformed repository (e.g. a version with two incoming chain
    links); certification failures come back as [Refused]. *)

(** {1 Quarantine / Void reclamation} *)

type reclamation = {
  rc_pathways_removed : int;
      (** inert quarantined pathways of evolved-away sources removed *)
  rc_schemas_pruned : string list;
      (** retired source schemas left unreferenced by the removal *)
  rc_new_version : string option;
      (** the re-integrated global version ([None] on dry-run) *)
}

val reclaim :
  ?dry_run:bool -> ?drop_redundant:bool -> Workflow.t ->
  (reclamation, string) result
(** Targeted re-integration instead of a from-scratch rebuild: drops
    provably-inert quarantines of retired sources
    ({!Repository.remove_pathway}, journaled one op each), prunes the
    retired schemas those removals disconnect, then re-derives a fresh
    global version over the {e live} sources by re-running the stored
    integration outcomes ({!Workflow.evolve_version} +
    [Global.create]).  The new version is a chain {e anchor} — no
    incoming chain link — so effective chain depth resets to 0 and the
    accumulated [Void] degradation leaves the active surface.  All
    previous versions keep answering bit-identically.  [drop_redundant]
    (default [true]) is passed to the federation builder, matching the
    original integration. *)

(** {1 The debt-driven scheduler} *)

type action = Compact | Reclaim | Checkpoint

val action_label : action -> string
(** ["compact"], ["reclaim"] or ["checkpoint"]. *)

type policy = {
  fire_fraction : float;
      (** fire when an indicator reaches this fraction of its warn
          threshold — below 1.0 the scheduler acts {e before} the
          indicator ever degrades to warn *)
  clear_fraction : float;
      (** hysteresis: a fired action re-arms only once its driving
          indicator has fallen back below [clear_fraction * warn] *)
  reclaim_cooldown : int;
      (** minimum scheduler ticks between reclamations (each one
          appends a full re-integration to the journal) *)
  health : Health.config;  (** thresholds the indicators are read against *)
}

val default_policy : policy
(** [fire_fraction = 0.85], [clear_fraction = 0.5],
    [reclaim_cooldown = 10], {!Health.default_config}. *)

type event = {
  e_tick : int;  (** 1-based tick the action fired on *)
  e_action : action;
  e_trigger : string;  (** indicator and value that pulled the trigger *)
  e_outcome : string;  (** what the action reported back *)
}

module Scheduler : sig
  type t

  val create : ?policy:policy -> unit -> t

  val tick :
    ?durable:Durable.t ->
    ?resilience:Resilience.t ->
    ?metrics:Telemetry.Metrics.t ->
    t ->
    Workflow.t ->
    (event list, string) result
  (** One maintenance heartbeat: assess health under the policy's
      thresholds, then fire (in order) compaction when chain depth is
      near warn, reclamation when quarantine/[Void]/retired-source debt
      is near warn {e or} a compaction was refused or left the chain
      long, and a journal checkpoint ({!Durable.snapshot}) when journal
      debt is near warn.  Hysteresis: compaction re-arms only after
      its driving indicator clears, and reclamation respects the
      cooldown; checkpoints need neither — {!Durable.snapshot} resets
      journal debt to zero, so firing on the live journal size is
      self-hysteretic.  Returns the events fired this tick
      (often none — the whole point is that ticks are cheap). *)

  val events : t -> event list
  (** Every event fired over the scheduler's lifetime, oldest first. *)

  val ticks : t -> int

  val report_to_text : event list -> string
  (** One line per event, for the CLI and bench logs. *)
end
