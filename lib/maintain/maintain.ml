module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Quarantine = Automed_analysis.Quarantine
module Rewrite = Automed_analysis.Rewrite
module Equiv = Automed_analysis.Equiv
module Processor = Automed_query.Processor
module Workflow = Automed_integration.Workflow
module Global = Automed_integration.Global
module Health = Automed_observe.Health
module Durable = Automed_durable.Durable
module Resilience = Automed_resilience.Resilience
module Telemetry = Automed_telemetry.Telemetry

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

let label (p : Transform.pathway) =
  Printf.sprintf "%s -> %s" p.from_schema p.to_schema

(* -- chain topology ------------------------------------------------------- *)

(* Same version-name convention as the health observatory: chain links
   are recognised structurally, the repository knows nothing about
   versions. *)
let split_version name =
  match String.rindex_opt name '_' with
  | None -> None
  | Some i ->
      let base = String.sub name 0 i in
      let suffix = String.sub name (i + 1) (String.length name - i - 1) in
      if String.length suffix >= 2 && suffix.[0] = 'v' then
        match
          int_of_string_opt (String.sub suffix 1 (String.length suffix - 1))
        with
        | Some j when j >= 0 -> Some (base, j)
        | _ -> None
      else None

let chain_links repo name =
  match split_version name with
  | None -> []
  | Some (base, _) ->
      List.filter
        (fun (p : Transform.pathway) ->
          (not (Repository.is_contribution repo p))
          &&
          match split_version p.Transform.from_schema with
          | Some (b, _) -> b = base
          | None -> false)
        (Repository.pathways_into repo name)

(* Links from the current version back to its anchor, oldest first.
   An anchor (integration or reclaimed version) has no incoming link;
   anything other than a linear chain is a malformed repository. *)
let chain_to_anchor repo current =
  let rec go acc name visited =
    if List.mem name visited then
      err "version chain contains a cycle at %s" name
    else
      match chain_links repo name with
      | [] -> Ok (acc, name)
      | [ (link : Transform.pathway) ] ->
          go (link :: acc) link.Transform.from_schema (name :: visited)
      | _ :: _ :: _ ->
          err "version %s has more than one incoming chain link" name
  in
  go [] current []

(* -- chain compaction ----------------------------------------------------- *)

type compaction = {
  c_anchor : string;
  c_retired : string;
  c_links : int;
  c_steps_before : int;
  c_steps_after : int;
  c_rerouted : int;
  c_dropped_contributions : int;
  c_certificate : Equiv.certificate;
}

type compact_result =
  | Compacted of compaction
  | Nothing_to_do of string
  | Refused of string

(* Chain links written by the evolution repairs only ever carry
   [Void]-bounded extends/contracts and renames.  That shape is what
   makes contribution rerouting certifiable: no link step's query can
   read an object a rerouted contribution feeds, so pushing the
   contribution past the link cannot change what the query sees.  A
   link outside the shape is refused wholesale. *)
let safe_link_step = function
  | Transform.Extend (_, Ast.Void, Ast.Any)
  | Transform.Contract (_, Ast.Void, Ast.Any)
  | Transform.Rename _ | Transform.Id _ ->
      true
  | _ -> false

(* Where suffix steps send a target-side object name: renamed along,
   or dropped (contracted/deleted downstream — the object contributes
   nothing to the version the suffix ends at). *)
let translate suffix o =
  List.fold_left
    (fun acc (st : Transform.prim) ->
      match (acc, st) with
      | None, _ -> None
      | Some o, Transform.Rename (a, b) when Scheme.equal a o -> Some b
      | Some o, (Transform.Contract (a, _, _) | Transform.Delete (a, _))
        when Scheme.equal a o ->
          None
      | acc, _ -> acc)
    (Some o) suffix

(* Push a contribution feeding an interior version forward onto the
   current one: rewrite each target-side name through the suffix of
   chain links between them, then certify that the rebuilt pathway
   derives exactly the definitions the chain would have carried
   (symbolic comparison via [Equiv.defs]).  [Ok None] means the
   contribution is dead on the current version — everything it feeds is
   [Void] or contracted away downstream — and can simply be left
   behind. *)
let push_contribution repo ~suffix ~current (c : Transform.pathway) =
  let* src =
    match Repository.schema repo c.Transform.from_schema with
    | Some s -> Ok s
    | None ->
        err "contribution source schema %s is not registered"
          c.Transform.from_schema
  in
  let* defs = Equiv.defs src c in
  let expected =
    Scheme.Map.fold
      (fun o e acc ->
        if e = Ast.Void then acc
        else
          match translate suffix o with
          | None -> acc
          | Some o' -> Scheme.Map.add o' e acc)
      defs Scheme.Map.empty
  in
  if Scheme.Map.is_empty expected then Ok None
  else
    let steps =
      List.concat_map
        (fun (st : Transform.prim) ->
          match st with
          | Transform.Contract _ | Transform.Delete _ -> [ st ]
          | Transform.Rename (x, o) -> (
              match translate suffix o with
              | Some o' -> [ Transform.Rename (x, o') ]
              | None -> [ Transform.Contract (x, Ast.Void, Ast.Any) ])
          | Transform.Extend (o, ql, qu) -> (
              match translate suffix o with
              | Some o' -> [ Transform.Extend (o', ql, qu) ]
              | None -> [])
          | Transform.Add (o, q) -> (
              match translate suffix o with
              | Some o' -> [ Transform.Add (o', q) ]
              | None -> [])
          | Transform.Id (x, y) -> (
              match translate suffix y with
              | Some y' -> [ Transform.Id (x, y') ]
              | None -> []))
        c.Transform.steps
    in
    let c' =
      { Transform.from_schema = c.Transform.from_schema;
        to_schema = current; steps }
    in
    let* defs' = Equiv.defs src c' in
    let got = Scheme.Map.filter (fun _ e -> e <> Ast.Void) defs' in
    if Scheme.Map.equal Ast.equal expected got then Ok (Some c')
    else
      err
        "rerouting contribution %s changes its derived definitions; \
         compaction refused"
        (label c)

exception Refuse of string
exception Hard of string

let compact ?(dry_run = false) wf =
  let repo = Workflow.repository wf in
  let current = Workflow.global_name wf in
  let refuse fmt = Format.kasprintf (fun s -> raise (Refuse s)) fmt in
  let hard e = raise (Hard e) in
  try
    let links, anchor =
      match chain_to_anchor repo current with
      | Ok v -> v
      | Error e -> hard e
    in
    match links with
    | [] ->
        Ok
          (Nothing_to_do
             (Printf.sprintf "%s is already a chain anchor" current))
    | [ _ ] ->
        Ok
          (Nothing_to_do
             (Printf.sprintf "chain %s -> %s is a single link" anchor current))
    | first :: rest ->
        List.iter
          (fun (l : Transform.pathway) ->
            if not (List.for_all safe_link_step l.Transform.steps) then
              refuse
                "chain link %s carries a non-evolution step; its feeds \
                 cannot be certifiably rerouted"
                (label l))
          links;
        let composed =
          List.fold_left
            (fun p l ->
              match Transform.compose p l with
              | Ok c -> c
              | Error e -> hard e)
            first rest
        in
        let anchor_schema =
          match Repository.schema repo anchor with
          | Some s -> s
          | None ->
              hard (Printf.sprintf "anchor schema %s is not registered" anchor)
        in
        let simplified =
          (Rewrite.simplify anchor_schema composed).Rewrite.pathway
        in
        let cert =
          (* always proof-check, even when the simplifier found nothing
             to do: the composition itself is only trusted certified *)
          match
            Equiv.check anchor_schema ~original:composed ~candidate:simplified
          with
          | Ok c -> c
          | Error reason ->
              Telemetry.count "maintain.compactions_refused";
              raise (Refuse ("shortcut certification failed: " ^ reason))
        in
        let retired_link = List.nth links (List.length links - 1) in
        (* interior feeds: everything into a non-current link target must
           be the chain link itself or a contribution we can push *)
        let rec collect acc = function
          | [] | [ _ ] -> List.rev acc
          | (l : Transform.pathway) :: tail ->
              let v = l.Transform.to_schema in
              let suffix =
                List.concat_map
                  (fun (t : Transform.pathway) -> t.Transform.steps)
                  tail
              in
              let entries =
                List.filter_map
                  (fun (p : Transform.pathway) ->
                    if p = l then None
                    else if Repository.is_contribution repo p then
                      Some (p, suffix)
                    else
                      refuse
                        "interior version %s is fed by non-contribution \
                         pathway %s"
                        v (label p))
                  (Repository.pathways_into repo v)
              in
              collect (List.rev_append entries acc) tail
        in
        let entries = collect [] links in
        let pushed, dropped =
          List.fold_left
            (fun (ok, dead) (c, suffix) ->
              match push_contribution repo ~suffix ~current c with
              | Ok None -> (ok, dead + 1)
              | Ok (Some c') -> (c' :: ok, dead)
              | Error e -> refuse "%s" e)
            ([], 0) entries
        in
        let reroutes = List.rev pushed in
        let report =
          {
            c_anchor = anchor;
            c_retired = label retired_link;
            c_links = List.length links;
            c_steps_before = List.length composed.Transform.steps;
            c_steps_after = List.length simplified.Transform.steps;
            c_rerouted = List.length reroutes;
            c_dropped_contributions = dropped;
            c_certificate = cert;
          }
        in
        if dry_run then Ok (Compacted report)
        else begin
          match
            Repository.compact_chain repo ~retired:retired_link
              ~shortcut:simplified ~reroutes
          with
          | Error e -> hard e
          | Ok () ->
              (* answer-preserving by the certificates, but cached plans
                 may reference the rewired network: start clean *)
              Processor.invalidate (Workflow.processor wf);
              Telemetry.count "maintain.compactions";
              Ok (Compacted report)
        end
  with
  | Refuse r -> Ok (Refused r)
  | Hard e -> Error e

(* -- quarantine / Void reclamation ---------------------------------------- *)

type reclamation = {
  rc_pathways_removed : int;
  rc_schemas_pruned : string list;
  rc_new_version : string option;
}

let reclaim ?(dry_run = false) ?(drop_redundant = true) wf =
  let repo = Workflow.repository wf in
  (* certified removals: provably-inert quarantines of evolved-away
     sources — every definition they derive is the empty [Void]
     contribution, so no answer on any version changes *)
  let victims =
    List.filter
      (fun (p : Transform.pathway) ->
        Repository.retired repo p.Transform.from_schema
        && Quarantine.is_inert repo p)
      (Repository.pathways repo)
  in
  let prunable =
    let removed p = List.exists (fun q -> q = p) victims in
    List.filter
      (fun s ->
        List.for_all
          (fun (p : Transform.pathway) ->
            removed p
            || (p.Transform.from_schema <> s && p.Transform.to_schema <> s))
          (Repository.pathways repo))
      (Repository.retired_sources repo)
  in
  if dry_run then
    Ok
      {
        rc_pathways_removed = List.length victims;
        rc_schemas_pruned = prunable;
        rc_new_version = None;
      }
  else
    let* () =
      List.fold_left
        (fun acc p ->
          let* () = acc in
          let* () = Repository.remove_pathway repo p in
          Telemetry.count "maintain.pathways_reclaimed";
          Ok ())
        (Ok ()) victims
    in
    let* pruned =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let* () = Repository.remove_schema repo s in
          Ok (s :: acc))
        (Ok []) prunable
    in
    (* targeted re-integration: re-run the stored integration outcomes
       over the live sources.  The new version has no incoming chain
       link — a fresh anchor — so effective chain depth and the
       accumulated surface debt reset without a from-scratch rebuild. *)
    let intersections =
      List.map
        (fun (it : Workflow.iteration) -> it.Workflow.outcome)
        (Workflow.iterations wf)
    in
    let* ev =
      Workflow.evolve_version ~description:"maintenance re-integration" wf
        ~sources_touched:[]
        ~repair:(fun ~prev:_ ~next ->
          let* (_ : Schema.t) =
            Global.create ~drop_redundant repo ~name:next ~intersections
              ~extensionals:(Workflow.sources wf)
          in
          Ok ())
    in
    Processor.invalidate (Workflow.processor wf);
    Telemetry.count "maintain.reclamations";
    Ok
      {
        rc_pathways_removed = List.length victims;
        rc_schemas_pruned = List.rev pruned;
        rc_new_version = Some ev.Workflow.ev_next;
      }

(* -- the debt-driven scheduler -------------------------------------------- *)

type action = Compact | Reclaim | Checkpoint

let action_label = function
  | Compact -> "compact"
  | Reclaim -> "reclaim"
  | Checkpoint -> "checkpoint"

type policy = {
  fire_fraction : float;
  clear_fraction : float;
  reclaim_cooldown : int;
  health : Health.config;
}

let default_policy =
  {
    fire_fraction = 0.85;
    clear_fraction = 0.5;
    reclaim_cooldown = 10;
    health = Health.default_config;
  }

type event = {
  e_tick : int;
  e_action : action;
  e_trigger : string;
  e_outcome : string;
}

module Scheduler = struct
  type t = {
    policy : policy;
    mutable tick_count : int;
    mutable last_reclaim : int;  (* 0 = never *)
    mutable compact_armed : bool;
    mutable history : event list;  (* newest first *)
  }

  let create ?(policy = default_policy) () =
    {
      policy;
      tick_count = 0;
      last_reclaim = 0;
      compact_armed = true;
      history = [];
    }

  let indicator (report : Health.report) name =
    List.find_opt
      (fun (i : Health.indicator) -> i.Health.i_name = name)
      report.Health.r_indicators

  let value report name =
    match indicator report name with
    | Some i -> i.Health.i_value
    | None -> 0.0

  let warn_of report name =
    match indicator report name with
    | Some i -> i.Health.i_thresholds.Health.warn
    | None -> infinity

  let fires t report name =
    value report name >= t.policy.fire_fraction *. warn_of report name

  let cleared t report name =
    value report name <= t.policy.clear_fraction *. warn_of report name

  let trigger report name =
    Printf.sprintf "%s=%.0f (warn %.0f)" name (value report name)
      (warn_of report name)

  let record t action trig outcome =
    let e =
      { e_tick = t.tick_count; e_action = action; e_trigger = trig;
        e_outcome = outcome }
    in
    t.history <- e :: t.history;
    e

  let tick ?durable ?resilience ?metrics t wf =
    t.tick_count <- t.tick_count + 1;
    Telemetry.count "maintain.scheduler_ticks";
    let report =
      Health.assess ~config:t.policy.health ?resilience ?durable ?metrics wf
    in
    if (not t.compact_armed) && cleared t report "chain-depth" then
      t.compact_armed <- true;
    let fired = ref [] in
    let note e = fired := e :: !fired in
    (* compaction first: it is the cheap action, it pays both the
       chain-depth debt and the [Void]-step debt the links carry (the
       interior links leave the active surface), and a refusal escalates
       straight to reclamation below *)
    let compact_trigger =
      List.find_opt
        (fun name -> fires t report name)
        [ "chain-depth"; "void-degraded-steps" ]
    in
    let* escalate =
      match compact_trigger with
      | Some ind when t.compact_armed -> (
        t.compact_armed <- false;
        let trig = trigger report ind in
        let* result = compact wf in
        match result with
        | Compacted c ->
            note
              (record t Compact trig
                 (Printf.sprintf
                    "composed %d links into %d certified steps (%d \
                     contributions rerouted, %d dead)"
                    c.c_links c.c_steps_after c.c_rerouted
                    c.c_dropped_contributions));
            Ok false
        | Refused reason ->
            note (record t Compact trig ("refused: " ^ reason));
            Ok true
        | Nothing_to_do msg ->
            note (record t Compact trig msg);
            Ok false)
      | _ -> Ok false
    in
    let reclaim_trigger =
      if escalate then Some "escalated from refused/ineffective compaction"
      else
        List.find_map
          (fun name ->
            if fires t report name then Some (trigger report name) else None)
          [ "quarantined-pathways"; "retired-sources" ]
    in
    let cooldown_ok =
      t.last_reclaim = 0
      || t.tick_count - t.last_reclaim >= t.policy.reclaim_cooldown
    in
    let* () =
      match reclaim_trigger with
      | Some trig when cooldown_ok ->
          t.last_reclaim <- t.tick_count;
          let* r = reclaim wf in
          note
            (record t Reclaim trig
               (Printf.sprintf
                  "removed %d inert pathways, pruned %d retired schemas, \
                   re-integrated as %s"
                  r.rc_pathways_removed
                  (List.length r.rc_schemas_pruned)
                  (Option.value r.rc_new_version ~default:"(dry-run)")));
          Ok ()
      | _ -> Ok ()
    in
    (* checkpoint last, against the *live* journal size: a compaction or
       reclamation above has already appended its transaction, which the
       report assessed at the top of the tick cannot know about.  No
       armed/cleared hysteresis here — a snapshot resets journal debt to
       zero, so firing on the live value is self-hysteretic, whereas a
       stale-report re-arm check deadlocks once a single cycle appends
       more than [clear_fraction * warn] bytes *)
    let* () =
      match durable with
      | Some d
        when float_of_int (Durable.journal_bytes d)
             >= t.policy.fire_fraction
                *. t.policy.health.Health.journal_bytes.Health.warn ->
          let trig =
            Printf.sprintf "journal-debt=%d (warn %.0f)"
              (Durable.journal_bytes d)
              t.policy.health.Health.journal_bytes.Health.warn
          in
          let* () = Durable.snapshot d in
          Telemetry.count "maintain.checkpoints";
          note (record t Checkpoint trig "journal compacted into checkpoint");
          Ok ()
      | _ -> Ok ()
    in
    Ok (List.rev !fired)

  let events t = List.rev t.history
  let ticks t = t.tick_count

  let report_to_text events =
    String.concat ""
      (List.map
         (fun e ->
           Printf.sprintf "[tick %3d] %-10s %-34s %s\n" e.e_tick
             (action_label e.e_action)
             e.e_trigger e.e_outcome)
         events)
end
