type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* SplitMix64: fast, high-quality, trivially reproducible. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's native int without wrapping *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  if k >= n then xs
  else begin
    shuffle t a;
    Array.to_list (Array.sub a 0 k)
  end
