(** Deterministic pseudo-random number generator (SplitMix64).

    Used by the synthetic workload generators so that every run of the test
    suite and benchmark harness sees exactly the same data, independent of
    the OCaml runtime's [Random] state. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator.  Generators are mutable. *)

val copy : t -> t

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [k] elements without replacement (all of [xs] if
    [k >= List.length xs]), preserving no particular order. *)
