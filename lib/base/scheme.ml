type t = { language : string; construct : string; args : string list }

let make ?(language = "sql") ?construct args =
  if args = [] then invalid_arg "Scheme.make: empty argument list";
  let construct =
    match construct with
    | Some c -> c
    | None -> ( match args with [ _ ] -> "table" | _ -> "column")
  in
  { language; construct; args }

let table t = make ~construct:"table" [ t ]
let column t c = make ~construct:"column" [ t; c ]
let language s = s.language
let construct s = s.construct
let args s = s.args

let compare a b =
  match String.compare a.language b.language with
  | 0 -> (
      match String.compare a.construct b.construct with
      | 0 -> List.compare String.compare a.args b.args
      | n -> n)
  | n -> n

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let pp_args ppf args = Fmt.(list ~sep:(any ",") string) ppf args

let pp_full ppf s =
  Fmt.pf ppf "<<%s,%s,%a>>" s.language s.construct pp_args s.args

let pp ppf s =
  if s.language = "sql" && (s.construct = "table" || s.construct = "column")
  then Fmt.pf ppf "<<%a>>" pp_args s.args
  else pp_full ppf s

let to_string s = Fmt.to_to_string pp s

let of_string str =
  let str = String.trim str in
  let n = String.length str in
  if n < 5 || String.sub str 0 2 <> "<<" || String.sub str (n - 2) 2 <> ">>"
  then Error (Printf.sprintf "not a scheme: %S" str)
  else
    let inner = String.sub str 2 (n - 4) in
    let parts = String.split_on_char ',' inner |> List.map String.trim in
    match parts with
    | [] | [ "" ] -> Error (Printf.sprintf "empty scheme: %S" str)
    | parts when List.exists (fun p -> p = "") parts ->
        Error (Printf.sprintf "blank component in scheme: %S" str)
    | [ t ] -> Ok (table t)
    | [ t; c ] -> Ok (column t c)
    | lang :: construct :: args when args <> [] ->
        Ok { language = lang; construct; args }
    | _ -> Error (Printf.sprintf "malformed scheme: %S" str)

let rename n s =
  match List.rev s.args with
  | [] -> s
  | _ :: rest -> { s with args = List.rev (n :: rest) }

let prefix p s =
  match s.args with
  | [] -> s
  | a :: rest -> { s with args = (p ^ ":" ^ a) :: rest }

let unprefix s =
  match s.args with
  | [] -> None
  | a :: rest -> (
      match String.index_opt a ':' with
      | None -> None
      | Some i ->
          let p = String.sub a 0 i in
          let base = String.sub a (i + 1) (String.length a - i - 1) in
          Some (p, { s with args = base :: rest }))

let is_prefixed s = unprefix s <> None

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
