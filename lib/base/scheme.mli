(** Schemes identify schema objects, following AutoMed's
    [<< M, m, s1, ..., sn >>] convention: a modelling language [M], a
    construct kind [m] of that language, and a list of textual arguments.

    For the relational language used throughout the paper, a table [t] is
    identified by [<< sql, table, t >>] and a column [c] of [t] by
    [<< sql, column, t, c >>].  As in the paper, the language and construct
    may be elided when printing if the context is unambiguous. *)

type t = private {
  language : string;  (** modelling language, e.g. ["sql"] *)
  construct : string; (** construct kind, e.g. ["table"] or ["column"] *)
  args : string list; (** identifying arguments, e.g. [["protein"; "organism"]] *)
}

val make : ?language:string -> ?construct:string -> string list -> t
(** [make args] builds a scheme.  [language] defaults to ["sql"].
    [construct] defaults to ["table"] for one argument and ["column"] for
    two; pass it explicitly for any other arity.
    @raise Invalid_argument if [args] is empty. *)

val table : string -> t
(** [table t] is [<< sql, table, t >>]. *)

val column : string -> string -> t
(** [column t c] is [<< sql, column, t, c >>]. *)

val language : t -> string
val construct : t -> string
val args : t -> string list

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : t Fmt.t
(** Prints in elided form [<<protein,organism>>] when the scheme belongs to
    the relational language, and in full form [<<xml,element,...>>]
    otherwise. *)

val pp_full : t Fmt.t
(** Always prints language and construct. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses both the elided and the full printed forms. *)

val rename : string -> t -> t
(** [rename n s] replaces the last argument of [s] with [n] (renaming a
    table renames the table name, renaming a column the column name). *)

val prefix : string -> t -> t
(** [prefix p s] prefixes the first argument with [p ^ ":"]: used when
    forming federated schemas so that object provenance is visible and
    same-named objects from different schemas do not clash. *)

val unprefix : t -> (string * t) option
(** Inverse of {!prefix}: [unprefix (prefix p s) = Some (p, s)]. *)

val is_prefixed : t -> bool

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
