let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let similarity a b =
  let a = String.lowercase_ascii a and b = String.lowercase_ascii b in
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.0
  else
    let d = levenshtein a b in
    1.0 -. (float_of_int d /. float_of_int (max la lb))

let is_sep c = c = '_' || c = '-' || c = ' ' || c = '.' || c = ':'
let is_upper c = c >= 'A' && c <= 'Z'

let tokens s =
  let buf = Buffer.create 8 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := String.lowercase_ascii (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  String.iteri
    (fun i c ->
      if is_sep c then flush ()
      else begin
        if is_upper c && i > 0 && not (is_upper s.[i - 1]) then flush ();
        Buffer.add_char buf c
      end)
    s;
  flush ();
  List.rev !out

module SS = Set.Make (String)

let token_overlap a b =
  let sa = SS.of_list (tokens a) and sb = SS.of_list (tokens b) in
  let inter = SS.cardinal (SS.inter sa sb) in
  let union = SS.cardinal (SS.union sa sb) in
  if union = 0 then 0.0 else float_of_int inter /. float_of_int union

let pad w s =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains_sub ~sub s =
  let ls = String.length s and lsub = String.length sub in
  if lsub = 0 then true
  else
    let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
    go 0
