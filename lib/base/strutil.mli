(** Small string utilities shared across the libraries. *)

val levenshtein : string -> string -> int
(** Edit distance with unit costs. *)

val similarity : string -> string -> float
(** Normalised similarity in [\[0, 1\]]: [1.0] for equal strings (after
    case-folding), decreasing with edit distance. *)

val tokens : string -> string list
(** Splits an identifier into lowercase word tokens at [_], [-], spaces and
    lower/upper camel-case boundaries: ["dbSearch_id"] is
    [["db"; "search"; "id"]]. *)

val token_overlap : string -> string -> float
(** Jaccard coefficient of the two identifiers' token sets. *)

val pad : int -> string -> string
(** [pad w s] right-pads [s] with spaces to width [w] (no truncation). *)

val starts_with : prefix:string -> string -> bool
val contains_sub : sub:string -> string -> bool
