(** High-level schemas: named sets of schema objects (schemes), each with
    an optional extent type.

    A schema is the unit that transformations and pathways operate on.
    Its HDM representation is derived on demand through the Model
    Definitions Repository.  Two schemas are {e union-compatible}
    (and can be connected by an [ident] transformation) when they contain
    syntactically identical object sets. *)

module Scheme = Automed_base.Scheme

type info = { extent_ty : Automed_iql.Types.ty option }

type t
(** Immutable. *)

val create : string -> t
val name : t -> string
val rename : string -> t -> t

val add_object :
  ?extent_ty:Automed_iql.Types.ty -> Scheme.t -> t -> (t, string) result
(** Validates the scheme against the MDR; fails if the object exists. *)

val remove_object : Scheme.t -> t -> (t, string) result

val rename_object : Scheme.t -> Scheme.t -> t -> (t, string) result
(** Fails unless both schemes denote the same construct kind, the source
    exists and the target does not. *)

val mem : Scheme.t -> t -> bool
val find : Scheme.t -> t -> info option
val extent_ty : Scheme.t -> t -> Automed_iql.Types.ty option
val objects : t -> Scheme.t list
(** Sorted. *)

val object_count : t -> int
val fold : (Scheme.t -> info -> 'a -> 'a) -> t -> 'a -> 'a

val typing : t -> Automed_iql.Types.scheme_typing
(** Scheme-typing function for the IQL type checker. *)

val hdm : t -> (Automed_hdm.Hdm.graph, string) result

val same_objects : t -> t -> bool
(** Syntactic identity of the object sets: the precondition of [ident]. *)

val of_objects :
  string -> (Scheme.t * Automed_iql.Types.ty option) list -> (t, string) result

val pp : t Fmt.t
val pp_brief : t Fmt.t
