module Scheme = Automed_base.Scheme
module Hdm = Automed_hdm.Hdm
module Types = Automed_iql.Types

type construct = {
  construct_name : string;
  arity : int;
  has_textual_name : bool;
  default_extent_ty : Types.ty;
  hdm_add : Scheme.t -> Hdm.graph -> (Hdm.graph, string) result;
  hdm_remove : Scheme.t -> Hdm.graph -> (Hdm.graph, string) result;
}

type t = { model_name : string; constructs : construct list }

let find_construct m name =
  List.find_opt (fun c -> c.construct_name = name) m.constructs

let ( let* ) = Result.bind

let arg s i = List.nth (Scheme.args s) i

(* -- relational -------------------------------------------------------- *)

let table_node s = "sql:" ^ arg s 0
let column_node s = Printf.sprintf "sql:%s:%s" (arg s 0) (arg s 1)
let column_edge s = Printf.sprintf "sql:%s:%s!" (arg s 0) (arg s 1)

let table_construct =
  {
    construct_name = "table";
    arity = 1;
    has_textual_name = true;
    default_extent_ty = Types.TBag (Types.TVar 0);
    hdm_add = (fun s g -> Hdm.add_node (table_node s) g);
    hdm_remove = (fun s g -> Hdm.remove_node (table_node s) g);
  }

let column_construct =
  {
    construct_name = "column";
    arity = 2;
    has_textual_name = true;
    default_extent_ty = Types.TBag (Types.TTuple [ Types.TVar 0; Types.TVar 1 ]);
    hdm_add =
      (fun s g ->
        let* g =
          if Hdm.mem_node (table_node s) g then Ok g
          else Hdm.add_node (table_node s) g
        in
        let* g = Hdm.add_node (column_node s) g in
        Hdm.add_edge
          {
            edge_name = column_edge s;
            participants =
              [ Hdm.Node_end (table_node s); Hdm.Node_end (column_node s) ];
          }
          g);
    hdm_remove =
      (fun s g ->
        let* g = Hdm.remove_edge (column_edge s) g in
        Hdm.remove_node (column_node s) g);
  }

let relational =
  { model_name = "sql"; constructs = [ table_construct; column_construct ] }

(* -- xml --------------------------------------------------------------- *)

let xml_elem_node s = "xml:" ^ arg s 0
let xml_attr_node s = Printf.sprintf "xml:%s@%s" (arg s 0) (arg s 1)
let xml_attr_edge s = Printf.sprintf "xml:%s@%s!" (arg s 0) (arg s 1)
let xml_nest_edge s = Printf.sprintf "xml:%s/%s" (arg s 0) (arg s 1)

let xml =
  {
    model_name = "xml";
    constructs =
      [
        {
          construct_name = "element";
          arity = 1;
          has_textual_name = true;
          default_extent_ty = Types.TBag (Types.TVar 0);
          hdm_add = (fun s g -> Hdm.add_node (xml_elem_node s) g);
          hdm_remove = (fun s g -> Hdm.remove_node (xml_elem_node s) g);
        };
        {
          construct_name = "attribute";
          arity = 2;
          has_textual_name = true;
          default_extent_ty =
            Types.TBag (Types.TTuple [ Types.TVar 0; Types.TVar 1 ]);
          hdm_add =
            (fun s g ->
              let* g =
                if Hdm.mem_node (xml_elem_node s) g then Ok g
                else Hdm.add_node (xml_elem_node s) g
              in
              let* g = Hdm.add_node (xml_attr_node s) g in
              Hdm.add_edge
                {
                  edge_name = xml_attr_edge s;
                  participants =
                    [
                      Hdm.Node_end (xml_elem_node s);
                      Hdm.Node_end (xml_attr_node s);
                    ];
                }
                g);
          hdm_remove =
            (fun s g ->
              let* g = Hdm.remove_edge (xml_attr_edge s) g in
              Hdm.remove_node (xml_attr_node s) g);
        };
        {
          construct_name = "nest";
          arity = 2;
          has_textual_name = false;
          default_extent_ty =
            Types.TBag (Types.TTuple [ Types.TVar 0; Types.TVar 1 ]);
          hdm_add =
            (fun s g ->
              let parent = "xml:" ^ arg s 0 and child = "xml:" ^ arg s 1 in
              let* g =
                if Hdm.mem_node parent g then Ok g else Hdm.add_node parent g
              in
              let* g =
                if Hdm.mem_node child g then Ok g else Hdm.add_node child g
              in
              Hdm.add_edge
                {
                  edge_name = xml_nest_edge s;
                  participants = [ Hdm.Node_end parent; Hdm.Node_end child ];
                }
                g);
          hdm_remove = (fun s g -> Hdm.remove_edge (xml_nest_edge s) g);
        };
      ];
  }

(* -- rdf --------------------------------------------------------------- *)

let rdf_class_node s = "rdf:" ^ arg s 0
let rdf_prop_edge s = "rdf:prop:" ^ arg s 0

let rdf =
  {
    model_name = "rdf";
    constructs =
      [
        {
          construct_name = "class";
          arity = 1;
          has_textual_name = true;
          default_extent_ty = Types.TBag (Types.TVar 0);
          hdm_add = (fun s g -> Hdm.add_node (rdf_class_node s) g);
          hdm_remove = (fun s g -> Hdm.remove_node (rdf_class_node s) g);
        };
        {
          construct_name = "property";
          arity = 1;
          has_textual_name = true;
          default_extent_ty =
            Types.TBag (Types.TTuple [ Types.TStr; Types.TStr ]);
          hdm_add =
            (fun s g ->
              let res = "rdf:resource" in
              let* g =
                if Hdm.mem_node res g then Ok g else Hdm.add_node res g
              in
              Hdm.add_edge
                {
                  edge_name = rdf_prop_edge s;
                  participants = [ Hdm.Node_end res; Hdm.Node_end res ];
                }
                g);
          hdm_remove = (fun s g -> Hdm.remove_edge (rdf_prop_edge s) g);
        };
      ];
  }

(* -- registry ---------------------------------------------------------- *)

let registered : (string, t) Hashtbl.t = Hashtbl.create 8

let register m = Hashtbl.replace registered m.model_name m

let lookup = function
  | "sql" -> Some relational
  | "xml" -> Some xml
  | "rdf" -> Some rdf
  | name -> Hashtbl.find_opt registered name

let validate_scheme s =
  match lookup (Scheme.language s) with
  | None -> Error (Printf.sprintf "unknown modelling language %s" (Scheme.language s))
  | Some m -> (
      match find_construct m (Scheme.construct s) with
      | None ->
          Error
            (Printf.sprintf "language %s has no construct %s" m.model_name
               (Scheme.construct s))
      | Some c ->
          if List.length (Scheme.args s) <> c.arity then
            Error
              (Printf.sprintf "construct %s.%s expects %d argument(s), got %d"
                 m.model_name c.construct_name c.arity
                 (List.length (Scheme.args s)))
          else Ok c)

let hdm_of_schemes schemes =
  (* add lower-arity constructs (tables, elements, classes) first so that
     columns and attributes find their parents *)
  let ordered =
    List.stable_sort
      (fun a b ->
        Int.compare (List.length (Scheme.args a)) (List.length (Scheme.args b)))
      schemes
  in
  List.fold_left
    (fun acc s ->
      let* g = acc in
      let* c = validate_scheme s in
      c.hdm_add s g)
    (Ok Hdm.empty) ordered
