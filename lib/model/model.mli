(** The Model Definitions Repository (MDR).

    A modelling language [M] is defined in terms of the HDM by giving, for
    each construct kind of [M], the HDM nodes/edges that represent an
    instance of the construct.  AutoMed ships definitions for relational,
    XML and RDF-style languages; we provide the same three, and new
    languages can be registered at runtime. *)

module Scheme = Automed_base.Scheme

type construct = {
  construct_name : string;  (** e.g. ["table"], ["column"] *)
  arity : int;  (** number of scheme arguments *)
  has_textual_name : bool;
      (** whether [rename] applies to this construct (paper Section 2.1) *)
  default_extent_ty : Automed_iql.Types.ty;
      (** extent type before any data source refines it *)
  hdm_add : Scheme.t -> Automed_hdm.Hdm.graph -> (Automed_hdm.Hdm.graph, string) result;
  hdm_remove : Scheme.t -> Automed_hdm.Hdm.graph -> (Automed_hdm.Hdm.graph, string) result;
}

type t = { model_name : string; constructs : construct list }

val find_construct : t -> string -> construct option

val relational : t
(** Constructs [table t] (extent: bag of keys) and [column t c]
    (extent: bag of [{key, value}] pairs), as configured in the paper's
    examples. *)

val xml : t
(** Constructs [element tag], [attribute tag attr] and [nest parent child]. *)

val rdf : t
(** Constructs [class c] and [property p] (extents: resources and
    [{subject, object}] pairs). *)

val register : t -> unit
(** Adds a language to the repository.  Replaces any previous definition
    with the same name. *)

val lookup : string -> t option
(** Looks up built-ins ([sql], [xml], [rdf]) and registered languages. *)

val validate_scheme : Scheme.t -> (construct, string) result
(** Checks that the scheme's language and construct exist and the argument
    count matches the construct's arity. *)

val hdm_of_schemes : Scheme.t list -> (Automed_hdm.Hdm.graph, string) result
(** Builds the HDM graph representing a set of schema objects.  Objects
    must be given in dependency order or not at all dependent; relational
    tables are added before their columns automatically. *)
