module Scheme = Automed_base.Scheme
module Types = Automed_iql.Types

type info = { extent_ty : Types.ty option }
type t = { schema_name : string; objects : info Scheme.Map.t }

let create schema_name = { schema_name; objects = Scheme.Map.empty }
let name s = s.schema_name
let rename n s = { s with schema_name = n }

let add_object ?extent_ty scheme s =
  match Model.validate_scheme scheme with
  | Error e -> Error e
  | Ok _ ->
      if Scheme.Map.mem scheme s.objects then
        Error
          (Printf.sprintf "schema %s already contains %s" s.schema_name
             (Scheme.to_string scheme))
      else
        Ok
          {
            s with
            objects = Scheme.Map.add scheme { extent_ty } s.objects;
          }

let remove_object scheme s =
  if Scheme.Map.mem scheme s.objects then
    Ok { s with objects = Scheme.Map.remove scheme s.objects }
  else
    Error
      (Printf.sprintf "schema %s has no object %s" s.schema_name
         (Scheme.to_string scheme))

let rename_object from_ to_ s =
  if Scheme.language from_ <> Scheme.language to_
     || Scheme.construct from_ <> Scheme.construct to_
  then
    Error
      (Printf.sprintf "rename cannot change construct kind: %s -> %s"
         (Scheme.to_string from_) (Scheme.to_string to_))
  else
    match Scheme.Map.find_opt from_ s.objects with
    | None ->
        Error
          (Printf.sprintf "schema %s has no object %s" s.schema_name
             (Scheme.to_string from_))
    | Some info ->
        if Scheme.Map.mem to_ s.objects then
          Error
            (Printf.sprintf "schema %s already contains %s" s.schema_name
               (Scheme.to_string to_))
        else
          Ok
            {
              s with
              objects =
                Scheme.Map.add to_ info (Scheme.Map.remove from_ s.objects);
            }

let mem scheme s = Scheme.Map.mem scheme s.objects
let find scheme s = Scheme.Map.find_opt scheme s.objects

let extent_ty scheme s =
  match find scheme s with Some { extent_ty } -> extent_ty | None -> None

let objects s = Scheme.Map.bindings s.objects |> List.map fst
let object_count s = Scheme.Map.cardinal s.objects
let fold f s init = Scheme.Map.fold f s.objects init
let typing s scheme = extent_ty scheme s
let hdm s = Model.hdm_of_schemes (objects s)

let same_objects a b =
  Scheme.Map.equal (fun _ _ -> true) a.objects b.objects

let of_objects name objs =
  List.fold_left
    (fun acc (scheme, extent_ty) ->
      Result.bind acc (fun s -> add_object ?extent_ty scheme s))
    (Ok (create name)) objs

let pp_brief ppf s =
  Fmt.pf ppf "%s (%d objects)" s.schema_name (object_count s)

let pp ppf s =
  Fmt.pf ppf "@[<v2>schema %s:@,%a@]" s.schema_name
    Fmt.(
      list ~sep:cut (fun ppf (scheme, { extent_ty }) ->
          Fmt.pf ppf "%a%a" Scheme.pp scheme
            (option (fun ppf t -> Fmt.pf ppf " : %a" Types.pp t))
            extent_ty))
    (Scheme.Map.bindings s.objects)
