(** The Schemas & Transformations Repository (STR).

    Stores all source, intermediate and integrated schemas together with
    the pathways between them, and the materialised extents of data source
    schema objects (put there by wrappers).  The pathway network is the
    backbone of query reformulation: every registered pathway is usable in
    both directions because pathways reverse automatically. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Value = Automed_iql.Value

type t
(** Mutable repository. *)

type validator = Schema.t -> Transform.pathway -> (unit, string) result
(** An extra admission check run by {!add_pathway} after the built-in
    well-formedness test: the pathway and its registered source schema.
    Returning [Error] rejects the registration. *)

val create : unit -> t

val set_validator : t -> validator option -> unit
(** Installs (or, with [None], removes) the opt-in validation gate.  The
    static analyser provides one — see
    [Automed_analysis.Analysis.install_gate]. *)

val validator : t -> validator option

type schema_alter =
  | Alter_add_object of Scheme.t * Automed_iql.Types.ty option
  | Alter_drop_object of Scheme.t
  | Alter_rename_object of Scheme.t * Scheme.t
      (** One shape change to a registered schema: the repository-level
          vocabulary of live source evolution (a table or attribute
          added, dropped, or renamed mid-lifetime). *)

type op =
  | Op_add_schema of Schema.t
  | Op_add_pathway of Transform.pathway
  | Op_add_contribution of Transform.pathway
      (** like [Op_add_pathway] but admitted with subset target agreement *)
  | Op_replace_pathway of Transform.pathway * Transform.pathway
      (** old pathway, new pathway (same endpoints, same position) *)
  | Op_set_extent of string * Scheme.t * Value.Bag.t
  | Op_remove_schema of string
  | Op_rename_schema of string * string
  | Op_alter_schema of string * schema_alter
  | Op_retire_source of string
  | Op_remove_pathway of Transform.pathway
      (** certified removal of a pathway that contributes nothing (see
          {!remove_pathway}) *)
  | Op_compact_pathway of
      Transform.pathway * Transform.pathway * Transform.pathway list
      (** retired chain link, shortcut replacing it, rerouted
          contributions — one atomic maintenance transaction (see
          {!compact_chain}) *)
      (** A committed repository mutation, in the vocabulary of the
          public API.  [Op_add_pathway] implies the derived target schema
          (replaying {!add_pathway} re-derives it), so the op stream is a
          complete redo log of the repository state. *)

val set_observer : t -> (op -> unit) option -> unit
(** Installs (or removes) the mutation observer.  It runs immediately
    after each successful mutation, before the mutating call returns —
    the write-ahead journal of [Automed_durable.Durable] attaches here.
    An observer that raises aborts the caller (the mutation itself has
    already been applied in memory). *)

val observed : t -> bool
(** True while a mutation observer (e.g. a durable journal) is
    attached.  The static analyser's [unjournaled-repository] rule keys
    off this. *)

val add_schema : t -> Schema.t -> (unit, string) result
(** Fails if a schema with the same name is registered. *)

val schema : t -> string -> Schema.t option
val schema_exn : t -> string -> Schema.t
val mem_schema : t -> string -> bool
val schemas : t -> Schema.t list
(** Sorted by name. *)

val remove_schema : t -> string -> (unit, string) result
(** Fails while pathways still reference the schema. *)

val rename_schema : t -> string -> string -> (unit, string) result
(** [rename_schema t old new] renames a schema (and the keys of its
    stored extents).  Fails if [old] is unknown, [new] is taken, or a
    pathway still references [old]. *)

val add_pathway : t -> Transform.pathway -> (unit, string) result
(** The source schema must be registered and the pathway must be
    well-formed over it.  If the target schema is not yet registered, the
    result of applying the pathway is registered under the target name;
    if it is registered, its object set must agree with the application
    result. *)

val add_contribution : t -> Transform.pathway -> (unit, string) result
(** Registers a pathway that {e feeds} an existing target schema rather
    than defining it: both endpoint schemas must already be registered,
    and the object set derived by applying the pathway must be a subset
    of the target's (instead of {!add_pathway}'s exact agreement).  This
    is the delta-sized building block of schema evolution — wiring a new
    or grown source into an already-built global schema without
    enumerating a trivial extend for every other object.  Contributions
    participate in reformulation and network search exactly like
    ordinary pathways. *)

val is_contribution : t -> Transform.pathway -> bool
val contributions : t -> Transform.pathway list
(** Contributions in insertion order. *)

val replace_pathway :
  t -> old:Transform.pathway -> Transform.pathway -> (unit, string) result
(** [replace_pathway t ~old p] swaps a stored pathway (matched
    structurally) for a replacement with the same endpoints, keeping its
    position in the network-search order.  The replacement runs the same
    admission checks as {!add_pathway} (well-formedness, validation gate,
    target-schema agreement — or subset agreement when [old] is a
    contribution, in which case the replacement stays a contribution)
    and notifies the observer with [Op_replace_pathway], so a
    write-ahead journal records the change — this is how the lint
    autofixer commits certified simplifications and how evolution
    quarantines stranded pathways. *)

val remove_pathway : t -> Transform.pathway -> (unit, string) result
(** Removes a stored pathway (matched structurally; contribution status
    is cleared along with it) and notifies the observer with
    [Op_remove_pathway].  The repository checks only that the pathway is
    registered — {e answer preservation is the caller's certificate}:
    maintenance reclamation only removes pathways proven inert
    ({!Automed_analysis.Quarantine.is_inert}: every definition is the
    empty [Void] contribution), so every query on every schema version
    stays bit-identical.  Target schemas are never unregistered by this
    call. *)

val compact_chain :
  t ->
  retired:Transform.pathway ->
  shortcut:Transform.pathway ->
  reroutes:Transform.pathway list ->
  (unit, string) result
(** One atomic chain-compaction transaction: swaps the stored
    non-contribution pathway [retired] (matched structurally, keeping
    its network-search position) for [shortcut] — same target schema,
    any registered source schema — and registers each of [reroutes] as a
    contribution into that same target.  The shortcut runs
    {!add_pathway}'s admission checks (well-formedness, validation gate,
    exact target agreement), each reroute runs
    {!add_contribution}'s (subset agreement).  All-or-nothing: any
    failing check leaves the repository untouched.  The observer is
    notified once, with [Op_compact_pathway], so the whole maintenance
    transaction is a single journal record and a crash can only land
    before or after it — never between the swap and the reroutes, where
    the target's derivation would be transiently wrong (bag union is
    additive, so a half-applied rewiring double- or under-counts
    multiplicities). *)

val restore_pathway :
  t -> contribution:bool -> Transform.pathway -> (unit, string) result
(** Trusted registration used by state loading ({!Serialize.load}) when
    the checked {!add_pathway}/{!add_contribution} admission fails: a
    saved state records pathways that were live when written, including
    ones a raw {!alter_schema} had already stranded, and re-validation
    must not turn such a state into an unrecoverable load error.  Only
    the endpoint schemas are required to exist; the [stranded-pathway]
    lint flags (and [lint --fix] quarantines) anything that no longer
    replays. *)

val alter_schema : t -> string -> schema_alter -> (unit, string) result
(** Applies one shape change to a registered schema in place, re-keying
    or dropping stored extents as needed.  Deliberately permitted while
    pathways reference the schema (that is the live-evolution scenario);
    pathways stranded by the change are repaired by the evolution layer
    or flagged by the linter's [stranded-pathway] rule. *)

val retire_source : t -> string -> (unit, string) result
(** Tombstones an evolved-away source: keeps the schema and its pathways
    (old global-schema versions stay well-defined) but drops its stored
    extents and marks it so the processor reports "source evolved away"
    instead of fetching.  Fails if the schema is unknown or already
    retired. *)

val retired : t -> string -> bool
val retired_sources : t -> string list
(** Sorted. *)

val derive_schema : t -> Transform.pathway -> (Schema.t, string) result
(** [add_pathway] followed by looking up the target. *)

val pathways : t -> Transform.pathway list
val pathways_from : t -> string -> Transform.pathway list
(** Pathways stored with the given source, in insertion order. *)

val pathways_into : t -> string -> Transform.pathway list
(** Pathways stored with the given target, in insertion order. *)

val find_path : t -> src:string -> dst:string -> (Transform.pathway, string) result
(** Shortest composite pathway (BFS over the network, using stored
    pathways and their automatic reverses). *)

val set_extent : t -> schema:string -> Scheme.t -> Value.Bag.t -> (unit, string) result
(** Materialises the extent of a data source schema object.  The schema
    and object must exist. *)

val stored_extent : t -> schema:string -> Scheme.t -> Value.Bag.t option
(** Only consults materialised extents; no derivation. *)

val has_stored_extents : t -> string -> bool
(** True when at least one object of the schema has a stored extent. *)

val stored_extent_count : t -> int
(** Materialised extents across all schemas (the status dashboard's
    inventory line). *)

val stored_row_count : t -> int
(** Total rows across all materialised extents. *)

val pp_summary : t Fmt.t
