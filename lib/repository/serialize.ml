module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Parser = Automed_iql.Parser
module Types = Automed_iql.Types
module Value = Automed_iql.Value
module Transform = Automed_transform.Transform

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

(* -- rendering ----------------------------------------------------------- *)

let quote name =
  let buf = Buffer.create (String.length name + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    name;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Values rendered for exact round-tripping: floats get 17 significant
   digits (Value.pp's %g display format would lose precision), and
   integral floats keep an explicit ".0" so they re-parse as floats
   rather than collapsing into ints. *)
let rec render_value = function
  | Value.Float f ->
      let s = Printf.sprintf "%.17g" f in
      let integral =
        String.for_all (fun c -> c = '-' || (c >= '0' && c <= '9')) s
      in
      if integral then s ^ ".0" else s
  | Value.Tuple vs ->
      "{" ^ String.concat "," (List.map render_value vs) ^ "}"
  | v -> Value.to_string v

let render_value_expr bag =
  (* a bag extent as an IQL bag literal with expanded multiplicities *)
  let items = Value.Bag.to_list bag in
  "[" ^ String.concat "; " (List.map render_value items) ^ "]"

let render_schema buf s =
  Buffer.add_string buf (Printf.sprintf "schema %s\n" (quote (Schema.name s)));
  Schema.fold
    (fun o { Schema.extent_ty } () ->
      match extent_ty with
      | Some ty ->
          Buffer.add_string buf
            (Printf.sprintf "object %s : %s\n" (Scheme.to_string o)
               (Types.to_string ty))
      | None ->
          Buffer.add_string buf (Printf.sprintf "object %s\n" (Scheme.to_string o)))
    s ()

let render_step buf (step : Transform.prim) =
  let line = function
    | Transform.Add (o, q) ->
        Printf.sprintf "step add %s := %s" (Scheme.to_string o) (Ast.to_string q)
    | Transform.Delete (o, q) ->
        Printf.sprintf "step delete %s := %s" (Scheme.to_string o)
          (Ast.to_string q)
    | Transform.Extend (o, ql, qu) ->
        Printf.sprintf "step extend %s := %s" (Scheme.to_string o)
          (Ast.to_string (Ast.Range (ql, qu)))
    | Transform.Contract (o, ql, qu) ->
        Printf.sprintf "step contract %s := %s" (Scheme.to_string o)
          (Ast.to_string (Ast.Range (ql, qu)))
    | Transform.Rename (a, b) ->
        Printf.sprintf "step rename %s := %s" (Scheme.to_string a)
          (Scheme.to_string b)
    | Transform.Id (a, b) ->
        Printf.sprintf "step id %s := %s" (Scheme.to_string a)
          (Scheme.to_string b)
  in
  Buffer.add_string buf (line step);
  Buffer.add_char buf '\n'

let render_pathway ?(head = "pathway") buf (p : Transform.pathway) =
  Buffer.add_string buf
    (Printf.sprintf "%s %s -> %s\n" head (quote p.Transform.from_schema)
       (quote p.Transform.to_schema));
  List.iter (render_step buf) p.Transform.steps;
  Buffer.add_string buf "end\n"

let render_alter buf name (alter : Repository.schema_alter) =
  let line =
    match alter with
    | Repository.Alter_add_object (o, Some ty) ->
        Printf.sprintf "alter %s add %s : %s" (quote name) (Scheme.to_string o)
          (Types.to_string ty)
    | Repository.Alter_add_object (o, None) ->
        Printf.sprintf "alter %s add %s" (quote name) (Scheme.to_string o)
    | Repository.Alter_drop_object o ->
        Printf.sprintf "alter %s drop %s" (quote name) (Scheme.to_string o)
    | Repository.Alter_rename_object (a, b) ->
        Printf.sprintf "alter %s rename %s := %s" (quote name)
          (Scheme.to_string a) (Scheme.to_string b)
  in
  Buffer.add_string buf line;
  Buffer.add_char buf '\n'

let save ?(extents = false) repo =
  let buf = Buffer.create 4096 in
  List.iter (render_schema buf) (Repository.schemas repo);
  List.iter
    (fun p ->
      if not (Repository.is_contribution repo p) then render_pathway buf p)
    (Repository.pathways repo);
  List.iter
    (render_pathway ~head:"contribution" buf)
    (Repository.contributions repo);
  List.iter
    (fun name ->
      Buffer.add_string buf (Printf.sprintf "retire %s\n" (quote name)))
    (Repository.retired_sources repo);
  if extents then
    List.iter
      (fun s ->
        let name = Schema.name s in
        List.iter
          (fun o ->
            match Repository.stored_extent repo ~schema:name o with
            | Some bag ->
                Buffer.add_string buf
                  (Printf.sprintf "extent %s %s := %s\n" (quote name)
                     (Scheme.to_string o) (render_value_expr bag))
            | None -> ())
          (Schema.objects s))
      (Repository.schemas repo);
  Buffer.contents buf

(* -- parsing ------------------------------------------------------------- *)

(* parses a leading quoted (escape-aware) name, returning it together
   with the unconsumed remainder of the line *)
let scan_quoted s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  if !i >= n || s.[!i] <> '"' then err "expected a quoted name, got %S" s
  else begin
    let buf = Buffer.create 16 in
    let j = ref (!i + 1) in
    let closed = ref false in
    let error = ref None in
    while (not !closed) && !error = None do
      if !j >= n then error := Some (Printf.sprintf "unterminated quoted name in %S" s)
      else
        match s.[!j] with
        | '"' ->
            closed := true;
            incr j
        | '\\' ->
            if !j + 1 >= n then
              error := Some (Printf.sprintf "unterminated quoted name in %S" s)
            else begin
              (match s.[!j + 1] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | c ->
                  error :=
                    Some (Printf.sprintf "unknown escape \\%c in quoted name" c));
              j := !j + 2
            end
        | c ->
            Buffer.add_char buf c;
            incr j
    done;
    match !error with
    | Some e -> Error e
    | None -> Ok (Buffer.contents buf, String.sub s !j (n - !j))
  end

let unquote s =
  let* name, rest = scan_quoted s in
  if String.trim rest = "" then Ok name
  else err "trailing input after quoted name: %S" rest

let split_on_first sep line =
  let ls = String.length sep in
  let n = String.length line in
  let rec go i =
    if i + ls > n then None
    else if String.sub line i ls = sep then
      Some (String.sub line 0 i, String.sub line (i + ls) (n - i - ls))
    else go (i + 1)
  in
  go 0

let parse_object_line rest =
  (* <<scheme>> [: ty] *)
  match split_on_first " : " rest with
  | Some (scheme_text, ty_text) ->
      let* scheme = Scheme.of_string scheme_text in
      let* ty = Types.of_string (String.trim ty_text) in
      Ok (scheme, Some ty)
  | None ->
      let* scheme = Scheme.of_string rest in
      Ok (scheme, None)

let parse_range_query kind q =
  match (q : Ast.expr) with
  | Ast.Range (ql, qu) -> Ok (ql, qu)
  | _ -> err "%s step expects a Range query" kind

let parse_step line =
  match split_on_first " := " line with
  | None -> err "malformed step: %S" line
  | Some (head, payload) -> (
      match String.split_on_char ' ' (String.trim head) with
      | [ kind; scheme_text ] -> (
          let* scheme = Scheme.of_string scheme_text in
          match kind with
          | "add" ->
              let* q = Parser.parse payload in
              Ok (Transform.Add (scheme, q))
          | "delete" ->
              let* q = Parser.parse payload in
              Ok (Transform.Delete (scheme, q))
          | "extend" ->
              let* q = Parser.parse payload in
              let* ql, qu = parse_range_query "extend" q in
              Ok (Transform.Extend (scheme, ql, qu))
          | "contract" ->
              let* q = Parser.parse payload in
              let* ql, qu = parse_range_query "contract" q in
              Ok (Transform.Contract (scheme, ql, qu))
          | "rename" ->
              let* target = Scheme.of_string (String.trim payload) in
              Ok (Transform.Rename (scheme, target))
          | "id" ->
              let* target = Scheme.of_string (String.trim payload) in
              Ok (Transform.Id (scheme, target))
          | kind -> err "unknown step kind %S" kind)
      | _ -> err "malformed step head: %S" head)

let parse_extent_payload payload =
  let* q = Parser.parse payload in
  match q with
  | Ast.EBag items ->
      let* values =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match (item : Ast.expr) with
            | Ast.Const v -> Ok (v :: acc)
            | Ast.Tuple _ -> (
                (* constant tuples evaluate without an environment *)
                match Automed_iql.Eval.eval (Automed_iql.Eval.env ()) item with
                | Ok v -> Ok (v :: acc)
                | Error _ -> err "non-constant extent element")
            | _ -> err "non-constant extent element")
          (Ok []) items
      in
      Ok (Value.Bag.of_list (List.rev values))
  | _ -> err "extent payload must be a bag literal"

let parse_alter_payload rest =
  let* name, rest = scan_quoted rest in
  match split_on_first " " (String.trim rest) with
  | Some ("add", obj_text) ->
      let* scheme, extent_ty = parse_object_line obj_text in
      Ok (name, Repository.Alter_add_object (scheme, extent_ty))
  | Some ("drop", obj_text) ->
      let* scheme = Scheme.of_string (String.trim obj_text) in
      Ok (name, Repository.Alter_drop_object scheme)
  | Some ("rename", obj_text) -> (
      match split_on_first " := " obj_text with
      | None -> err "malformed alter rename record"
      | Some (a_text, b_text) ->
          let* a = Scheme.of_string (String.trim a_text) in
          let* b = Scheme.of_string (String.trim b_text) in
          Ok (name, Repository.Alter_rename_object (a, b)))
  | _ -> err "malformed alter record: %S" rest

type parse_state = {
  repo : Repository.t;
  mutable current_schema : Schema.t option;
  mutable current_pathway :
    (string * string * Transform.prim list * bool) option;
      (* from, to, reversed steps, is-contribution *)
}

let flush_schema st =
  match st.current_schema with
  | None -> Ok ()
  | Some s ->
      st.current_schema <- None;
      Repository.add_schema st.repo s

let load text =
  let st =
    { repo = Repository.create (); current_schema = None; current_pathway = None }
  in
  let lines = String.split_on_char '\n' text in
  let process line_no line =
    let line = String.trim line in
    if line = "" then Ok ()
    else
      match (st.current_pathway, split_on_first " " line) with
      | Some (from_s, to_s, steps, contrib), _ when line = "end" ->
          st.current_pathway <- None;
          let p =
            {
              Transform.from_schema = from_s;
              to_schema = to_s;
              steps = List.rev steps;
            }
          in
          (* a stranded-but-live pathway (raw alter under it) must not
             make the whole state unloadable: fall back to the trusted
             restore and let the stranded-pathway lint repair it *)
          let checked =
            if contrib then Repository.add_contribution st.repo p
            else Repository.add_pathway st.repo p
          in
          (match checked with
          | Ok () -> Ok ()
          | Error _ ->
              Repository.restore_pathway st.repo ~contribution:contrib p)
      | Some (from_s, to_s, steps, contrib), Some ("step", rest) ->
          let* step = parse_step rest in
          st.current_pathway <- Some (from_s, to_s, step :: steps, contrib);
          Ok ()
      | Some _, _ -> err "line %d: expected a step or 'end'" line_no
      | None, Some ("schema", rest) ->
          let* () = flush_schema st in
          let* name = unquote rest in
          st.current_schema <- Some (Schema.create name);
          Ok ()
      | None, Some ("object", rest) -> (
          match st.current_schema with
          | None -> err "line %d: object outside a schema block" line_no
          | Some s ->
              let* scheme, extent_ty = parse_object_line rest in
              let* s' = Schema.add_object ?extent_ty scheme s in
              st.current_schema <- Some s';
              Ok ())
      | None, Some (("pathway" | "contribution") as head, rest) ->
          let* () = flush_schema st in
          let* from_s, rest = scan_quoted rest in
          let rest = String.trim rest in
          if not (String.length rest >= 2 && String.sub rest 0 2 = "->") then
            err "line %d: malformed %s header" line_no head
          else
            let* to_s = unquote (String.sub rest 2 (String.length rest - 2)) in
            st.current_pathway <-
              Some (from_s, to_s, [], head = "contribution");
            Ok ()
      | None, Some ("retire", rest) ->
          let* () = flush_schema st in
          let* name = unquote rest in
          Repository.retire_source st.repo name
      | None, Some ("alter", rest) ->
          let* () = flush_schema st in
          let* name, alter = parse_alter_payload rest in
          Repository.alter_schema st.repo name alter
      | None, Some ("extent", rest) -> (
          let* () = flush_schema st in
          match split_on_first " := " rest with
          | None -> err "line %d: malformed extent line" line_no
          | Some (head, payload) ->
              let* name, scheme_text = scan_quoted head in
              let* scheme = Scheme.of_string scheme_text in
              let* bag = parse_extent_payload payload in
              Repository.set_extent st.repo ~schema:name scheme bag)
      | None, _ -> err "line %d: unrecognised line %S" line_no line
  in
  let* () =
    List.fold_left
      (fun acc (line_no, line) ->
        let* () = acc in
        process line_no line)
      (Ok ())
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let* () = flush_schema st in
  match st.current_pathway with
  | Some _ -> err "unterminated pathway block"
  | None -> Ok st.repo

(* -- single-operation codec (write-ahead journal payloads) --------------- *)

let save_op (op : Repository.op) =
  let buf = Buffer.create 256 in
  (match op with
  | Repository.Op_add_schema s -> render_schema buf s
  | Repository.Op_add_pathway p -> render_pathway buf p
  | Repository.Op_add_contribution p ->
      render_pathway ~head:"contribution" buf p
  | Repository.Op_alter_schema (name, alter) -> render_alter buf name alter
  | Repository.Op_retire_source name ->
      Buffer.add_string buf (Printf.sprintf "retire %s\n" (quote name))
  | Repository.Op_replace_pathway (p_old, p_new) ->
      Buffer.add_string buf
        (Printf.sprintf "replace pathway %s -> %s\n"
           (quote p_old.Transform.from_schema)
           (quote p_old.Transform.to_schema));
      List.iter (render_step buf) p_old.Transform.steps;
      Buffer.add_string buf "with\n";
      List.iter (render_step buf) p_new.Transform.steps;
      Buffer.add_string buf "end\n"
  | Repository.Op_set_extent (name, o, bag) ->
      Buffer.add_string buf
        (Printf.sprintf "extent %s %s := %s\n" (quote name) (Scheme.to_string o)
           (render_value_expr bag))
  | Repository.Op_remove_schema name ->
      Buffer.add_string buf (Printf.sprintf "remove %s\n" (quote name))
  | Repository.Op_rename_schema (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "rename %s -> %s\n" (quote a) (quote b))
  | Repository.Op_remove_pathway p -> render_pathway ~head:"drop pathway" buf p
  | Repository.Op_compact_pathway (retired, shortcut, reroutes) ->
      Buffer.add_string buf
        (Printf.sprintf "compact pathway %s -> %s\n"
           (quote retired.Transform.from_schema)
           (quote retired.Transform.to_schema));
      List.iter (render_step buf) retired.Transform.steps;
      Buffer.add_string buf
        (Printf.sprintf "with %s -> %s\n"
           (quote shortcut.Transform.from_schema)
           (quote shortcut.Transform.to_schema));
      List.iter (render_step buf) shortcut.Transform.steps;
      List.iter
        (fun (r : Transform.pathway) ->
          Buffer.add_string buf
            (Printf.sprintf "contribution %s -> %s\n"
               (quote r.Transform.from_schema)
               (quote r.Transform.to_schema));
          List.iter (render_step buf) r.Transform.steps)
        reroutes;
      Buffer.add_string buf "end\n");
  Buffer.contents buf

let parse_schema_block name lines =
  List.fold_left
    (fun acc line ->
      let* s = acc in
      match split_on_first " " (String.trim line) with
      | Some ("object", rest) ->
          let* scheme, extent_ty = parse_object_line rest in
          Schema.add_object ?extent_ty scheme s
      | _ -> err "unexpected line in schema block: %S" line)
    (Ok (Schema.create name)) lines

let expect_arrow ctx rest k =
  let rest = String.trim rest in
  if String.length rest >= 2 && String.sub rest 0 2 = "->" then
    k (String.sub rest 2 (String.length rest - 2))
  else err "malformed %s record" ctx

let parse_pathway_block hdr lines =
  let* from_s, rest = scan_quoted hdr in
  expect_arrow "pathway" rest @@ fun to_text ->
  let* to_s = unquote to_text in
  let rec steps acc = function
    | [] -> err "unterminated pathway block in journal record"
    | [ last ] when String.trim last = "end" -> Ok (List.rev acc)
    | line :: rest -> (
        match split_on_first " " (String.trim line) with
        | Some ("step", s) ->
            let* step = parse_step s in
            steps (step :: acc) rest
        | _ -> err "unexpected line in pathway block: %S" line)
  in
  let* steps = steps [] lines in
  Ok { Transform.from_schema = from_s; to_schema = to_s; steps }

let load_op text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> err "empty journal record"
  | first :: rest -> (
      match split_on_first " " (String.trim first) with
      | Some ("schema", name_text) ->
          let* name = unquote name_text in
          let* s = parse_schema_block name rest in
          Ok (Repository.Op_add_schema s)
      | Some ("pathway", hdr) ->
          let* p = parse_pathway_block hdr rest in
          Ok (Repository.Op_add_pathway p)
      | Some ("contribution", hdr) ->
          let* p = parse_pathway_block hdr rest in
          Ok (Repository.Op_add_contribution p)
      | Some ("alter", rest_line) when rest = [] ->
          let* name, alter = parse_alter_payload rest_line in
          Ok (Repository.Op_alter_schema (name, alter))
      | Some ("retire", rest_line) when rest = [] ->
          let* name = unquote rest_line in
          Ok (Repository.Op_retire_source name)
      | Some ("replace", rest_line) -> (
          match split_on_first " " (String.trim rest_line) with
          | Some ("pathway", hdr) ->
              let* from_s, r = scan_quoted hdr in
              expect_arrow "replace" r @@ fun to_text ->
              let* to_s = unquote to_text in
              let rec split_at_with acc = function
                | [] -> err "replace record has no 'with' separator"
                | l :: tail when String.trim l = "with" -> Ok (List.rev acc, tail)
                | l :: tail -> split_at_with (l :: acc) tail
              in
              let* old_lines, new_lines = split_at_with [] rest in
              let parse_steps lines =
                let* rev =
                  List.fold_left
                    (fun acc line ->
                      let* acc = acc in
                      match split_on_first " " (String.trim line) with
                      | Some ("step", s) ->
                          let* st = parse_step s in
                          Ok (st :: acc)
                      | _ -> err "unexpected line in replace block: %S" line)
                    (Ok []) lines
                in
                Ok (List.rev rev)
              in
              let* new_lines =
                match List.rev new_lines with
                | last :: before when String.trim last = "end" ->
                    Ok (List.rev before)
                | _ -> err "unterminated replace record"
              in
              let* old_steps = parse_steps old_lines in
              let* new_steps = parse_steps new_lines in
              let pathway steps =
                { Transform.from_schema = from_s; to_schema = to_s; steps }
              in
              Ok
                (Repository.Op_replace_pathway
                   (pathway old_steps, pathway new_steps))
          | _ -> err "malformed replace record")
      | Some ("extent", rest_line) when rest = [] -> (
          match split_on_first " := " rest_line with
          | None -> err "malformed extent record"
          | Some (head, payload) ->
              let* name, scheme_text = scan_quoted head in
              let* scheme = Scheme.of_string scheme_text in
              let* bag = parse_extent_payload payload in
              Ok (Repository.Op_set_extent (name, scheme, bag)))
      | Some ("remove", rest_line) when rest = [] ->
          let* name = unquote rest_line in
          Ok (Repository.Op_remove_schema name)
      | Some ("rename", rest_line) when rest = [] ->
          let* a, r = scan_quoted rest_line in
          expect_arrow "rename" r @@ fun b_text ->
          let* b = unquote b_text in
          Ok (Repository.Op_rename_schema (a, b))
      | Some ("drop", rest_line) -> (
          match split_on_first " " (String.trim rest_line) with
          | Some ("pathway", hdr) ->
              let* p = parse_pathway_block hdr rest in
              Ok (Repository.Op_remove_pathway p)
          | _ -> err "malformed drop record")
      | Some ("compact", rest_line) -> (
          match split_on_first " " (String.trim rest_line) with
          | Some ("pathway", hdr) ->
              let* rf, r = scan_quoted hdr in
              expect_arrow "compact" r @@ fun to_text ->
              let* rt = unquote to_text in
              let* body =
                match List.rev rest with
                | last :: before when String.trim last = "end" ->
                    Ok (List.rev before)
                | _ -> err "unterminated compact record"
              in
              let parse_hdr hdr =
                let* f, r = scan_quoted hdr in
                expect_arrow "compact" r @@ fun to_text ->
                let* t = unquote to_text in
                Ok (f, t)
              in
              let finish (kind, f, t, rev_steps) =
                ( kind,
                  {
                    Transform.from_schema = f;
                    to_schema = t;
                    steps = List.rev rev_steps;
                  } )
              in
              let* sections_rev, current =
                List.fold_left
                  (fun acc line ->
                    let* done_, cur = acc in
                    match split_on_first " " (String.trim line) with
                    | Some ("step", s) ->
                        let* st = parse_step s in
                        let k, f, t, steps = cur in
                        Ok (done_, (k, f, t, st :: steps))
                    | Some ("with", hdr) ->
                        let* f, t = parse_hdr hdr in
                        Ok (finish cur :: done_, (`Shortcut, f, t, []))
                    | Some ("contribution", hdr) ->
                        let* f, t = parse_hdr hdr in
                        Ok (finish cur :: done_, (`Contribution, f, t, []))
                    | _ -> err "unexpected line in compact record: %S" line)
                  (Ok ([], (`Retired, rf, rt, [])))
                  body
              in
              let sections = List.rev (finish current :: sections_rev) in
              (match sections with
              | (`Retired, retired) :: (`Shortcut, shortcut) :: tail ->
                  let* reroutes =
                    List.fold_left
                      (fun acc sec ->
                        let* acc = acc in
                        match sec with
                        | `Contribution, p -> Ok (p :: acc)
                        | _ -> err "malformed compact record")
                      (Ok []) tail
                  in
                  Ok
                    (Repository.Op_compact_pathway
                       (retired, shortcut, List.rev reroutes))
              | _ -> err "compact record missing 'with' shortcut section")
          | _ -> err "malformed compact record")
      | _ -> err "unrecognised journal record %S" first)

let apply_op repo (op : Repository.op) =
  match op with
  | Repository.Op_add_schema s -> Repository.add_schema repo s
  | Repository.Op_add_pathway p -> Repository.add_pathway repo p
  | Repository.Op_replace_pathway (p_old, p_new) ->
      Repository.replace_pathway repo ~old:p_old p_new
  | Repository.Op_set_extent (name, o, bag) ->
      Repository.set_extent repo ~schema:name o bag
  | Repository.Op_remove_schema name -> Repository.remove_schema repo name
  | Repository.Op_rename_schema (a, b) -> Repository.rename_schema repo a b
  | Repository.Op_add_contribution p -> Repository.add_contribution repo p
  | Repository.Op_alter_schema (name, alter) ->
      Repository.alter_schema repo name alter
  | Repository.Op_retire_source name -> Repository.retire_source repo name
  | Repository.Op_remove_pathway p -> Repository.remove_pathway repo p
  | Repository.Op_compact_pathway (retired, shortcut, reroutes) ->
      Repository.compact_chain repo ~retired ~shortcut ~reroutes
