module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Value = Automed_iql.Value
module Telemetry = Automed_telemetry.Telemetry
module SM = Map.Make (String)

type extent_key = string * Scheme.t

module EK = struct
  type t = extent_key

  let compare (s1, o1) (s2, o2) =
    match String.compare s1 s2 with 0 -> Scheme.compare o1 o2 | c -> c
end

module EM = Map.Make (EK)

type validator = Schema.t -> Transform.pathway -> (unit, string) result

type op =
  | Op_add_schema of Schema.t
  | Op_add_pathway of Transform.pathway
  | Op_replace_pathway of Transform.pathway * Transform.pathway
  | Op_set_extent of string * Scheme.t * Value.Bag.t
  | Op_remove_schema of string
  | Op_rename_schema of string * string

type t = {
  mutable schemas : Schema.t SM.t;
  mutable pathways : Transform.pathway list; (* reverse insertion order *)
  mutable extents : Value.Bag.t EM.t;
  mutable validator : validator option;
  mutable observer : (op -> unit) option;
}

let create () =
  {
    schemas = SM.empty;
    pathways = [];
    extents = EM.empty;
    validator = None;
    observer = None;
  }

let set_validator t v = t.validator <- v
let validator t = t.validator
let set_observer t f = t.observer <- f
let observed t = Option.is_some t.observer
let notify t op = match t.observer with Some f -> f op | None -> ()

let err fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) = Result.bind

let add_schema t s =
  let name = Schema.name s in
  if SM.mem name t.schemas then err "repository already has schema %s" name
  else begin
    t.schemas <- SM.add name s t.schemas;
    notify t (Op_add_schema s);
    Ok ()
  end

let schema t name = SM.find_opt name t.schemas

let schema_exn t name =
  match schema t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "no schema %s in repository" name)

let mem_schema t name = SM.mem name t.schemas
let schemas t = SM.bindings t.schemas |> List.map snd

let remove_schema t name =
  if not (SM.mem name t.schemas) then err "no schema %s" name
  else if
    List.exists
      (fun (p : Transform.pathway) ->
        p.from_schema = name || p.to_schema = name)
      t.pathways
  then err "schema %s is still referenced by a pathway" name
  else begin
    t.schemas <- SM.remove name t.schemas;
    t.extents <- EM.filter (fun (s, _) _ -> s <> name) t.extents;
    notify t (Op_remove_schema name);
    Ok ()
  end

let rename_schema t name new_name =
  match SM.find_opt name t.schemas with
  | None -> err "no schema %s" name
  | Some _ when name = new_name -> Ok ()
  | Some s ->
      if SM.mem new_name t.schemas then
        err "repository already has schema %s" new_name
      else if
        List.exists
          (fun (p : Transform.pathway) ->
            p.from_schema = name || p.to_schema = name)
          t.pathways
      then err "schema %s is still referenced by a pathway" name
      else begin
        t.schemas <- SM.add new_name (Schema.rename new_name s) (SM.remove name t.schemas);
        t.extents <-
          EM.fold
            (fun (s', o) bag acc ->
              EM.add ((if s' = name then new_name else s'), o) bag acc)
            t.extents EM.empty;
        notify t (Op_rename_schema (name, new_name));
        Ok ()
      end

let add_pathway t (p : Transform.pathway) =
  match schema t p.from_schema with
  | None -> err "pathway source schema %s is not registered" p.from_schema
  | Some src ->
      let* () = Transform.well_formed src p in
      let* () =
        match t.validator with None -> Ok () | Some f -> f src p
      in
      let* derived = Transform.apply src p in
      let* () =
        match schema t p.to_schema with
        | None ->
            t.schemas <- SM.add p.to_schema derived t.schemas;
            Ok ()
        | Some existing ->
            if Schema.same_objects existing derived then Ok ()
            else
              err
                "pathway into %s produces a schema that disagrees with the \
                 registered one"
                p.to_schema
      in
      t.pathways <- p :: t.pathways;
      Telemetry.count "repository.pathways_registered";
      notify t (Op_add_pathway p);
      Ok ()

let replace_pathway t ~old:(p_old : Transform.pathway) (p_new : Transform.pathway) =
  if
    p_old.from_schema <> p_new.from_schema || p_old.to_schema <> p_new.to_schema
  then
    err "replacement pathway must keep the endpoints %s -> %s"
      p_old.from_schema p_old.to_schema
  else if not (List.exists (fun q -> q = p_old) t.pathways) then
    err "no pathway %s -> %s with these steps is registered" p_old.from_schema
      p_old.to_schema
  else
    match schema t p_new.from_schema with
    | None -> err "pathway source schema %s is not registered" p_new.from_schema
    | Some src ->
        let* () = Transform.well_formed src p_new in
        let* () =
          match t.validator with None -> Ok () | Some f -> f src p_new
        in
        let* derived = Transform.apply src p_new in
        let* () =
          match schema t p_new.to_schema with
          | None -> err "pathway target schema %s vanished" p_new.to_schema
          | Some existing ->
              if Schema.same_objects existing derived then Ok ()
              else
                err
                  "replacement pathway into %s produces a schema that \
                   disagrees with the registered one"
                  p_new.to_schema
        in
        (* swap in place so network-search order is unchanged *)
        let replaced = ref false in
        t.pathways <-
          List.map
            (fun q ->
              if (not !replaced) && q = p_old then begin
                replaced := true;
                p_new
              end
              else q)
            t.pathways;
        Telemetry.count "repository.pathways_replaced";
        notify t (Op_replace_pathway (p_old, p_new));
        Ok ()

let derive_schema t p =
  let* () = add_pathway t p in
  match schema t p.to_schema with
  | Some s -> Ok s
  | None -> err "internal: schema %s vanished" p.to_schema

let pathways t = List.rev t.pathways

let pathways_from t name =
  List.rev
    (List.filter (fun (p : Transform.pathway) -> p.from_schema = name) t.pathways)

let pathways_into t name =
  List.rev
    (List.filter (fun (p : Transform.pathway) -> p.to_schema = name) t.pathways)

let find_path t ~src ~dst =
  Telemetry.with_span "repository.find_path"
    ~attrs:(fun () -> [ ("src", src); ("dst", dst) ])
  @@ fun () ->
  if not (mem_schema t src) then err "no schema %s" src
  else if not (mem_schema t dst) then err "no schema %s" dst
  else if src = dst then
    Ok { Transform.from_schema = src; to_schema = dst; steps = [] }
  else begin
    (* BFS over schemas; each stored pathway is an edge in both directions *)
    let edges = pathways t in
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited src ();
    let queue = Queue.create () in
    Queue.push (src, []) queue;
    let result = ref None in
    while !result = None && not (Queue.is_empty queue) do
      let here, acc = Queue.pop queue in
      Telemetry.count "repository.find_path.nodes_expanded";
      let step (p : Transform.pathway) =
        if !result = None && not (Hashtbl.mem visited p.to_schema) then begin
          let acc = p :: acc in
          if p.to_schema = dst then result := Some (List.rev acc)
          else begin
            Hashtbl.replace visited p.to_schema ();
            Queue.push (p.to_schema, acc) queue
          end
        end
      in
      List.iter
        (fun (p : Transform.pathway) ->
          if p.from_schema = here then step p
          else if p.to_schema = here then step (Transform.reverse p))
        edges
    done;
    match !result with
    | None -> err "no pathway from %s to %s" src dst
    | Some [] -> assert false
    | Some (first :: rest) ->
        let composed =
          List.fold_left
            (fun acc p ->
              let* acc = acc in
              Transform.compose acc p)
            (Ok first) rest
        in
        (if Telemetry.active () then
           match composed with
           | Ok (p : Transform.pathway) ->
               let len = List.length p.steps in
               Telemetry.observe "repository.find_path.path_length"
                 (float_of_int len);
               Telemetry.annotate "path_length" (string_of_int len);
               Telemetry.annotate "hops" (string_of_int (1 + List.length rest))
           | Error _ -> ());
        composed
  end

let set_extent t ~schema:name obj bag =
  match schema t name with
  | None -> err "no schema %s" name
  | Some s ->
      if not (Schema.mem obj s) then
        err "schema %s has no object %s" name (Scheme.to_string obj)
      else begin
        t.extents <- EM.add (name, obj) bag t.extents;
        notify t (Op_set_extent (name, obj, bag));
        Ok ()
      end

let stored_extent t ~schema:name obj = EM.find_opt (name, obj) t.extents

let has_stored_extents t name =
  EM.exists (fun (s, _) _ -> s = name) t.extents

let pp_summary ppf t =
  Fmt.pf ppf "@[<v>schemas: %a@,pathways: %a@,stored extents: %d@]"
    Fmt.(list ~sep:(any ", ") string)
    (List.map Schema.name (schemas t))
    Fmt.(
      list ~sep:(any ", ") (fun ppf (p : Transform.pathway) ->
          Fmt.pf ppf "%s->%s" p.from_schema p.to_schema))
    (pathways t) (EM.cardinal t.extents)
