module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Types = Automed_iql.Types
module Value = Automed_iql.Value
module Telemetry = Automed_telemetry.Telemetry
module SM = Map.Make (String)
module SSet = Set.Make (String)

type extent_key = string * Scheme.t

module EK = struct
  type t = extent_key

  let compare (s1, o1) (s2, o2) =
    match String.compare s1 s2 with 0 -> Scheme.compare o1 o2 | c -> c
end

module EM = Map.Make (EK)

type validator = Schema.t -> Transform.pathway -> (unit, string) result

type schema_alter =
  | Alter_add_object of Scheme.t * Types.ty option
  | Alter_drop_object of Scheme.t
  | Alter_rename_object of Scheme.t * Scheme.t

type op =
  | Op_add_schema of Schema.t
  | Op_add_pathway of Transform.pathway
  | Op_add_contribution of Transform.pathway
  | Op_replace_pathway of Transform.pathway * Transform.pathway
  | Op_set_extent of string * Scheme.t * Value.Bag.t
  | Op_remove_schema of string
  | Op_rename_schema of string * string
  | Op_alter_schema of string * schema_alter
  | Op_retire_source of string
  | Op_remove_pathway of Transform.pathway
  | Op_compact_pathway of
      Transform.pathway * Transform.pathway * Transform.pathway list

type t = {
  mutable schemas : Schema.t SM.t;
  mutable pathways : Transform.pathway list; (* reverse insertion order *)
  mutable contribs : Transform.pathway list; (* subset of pathways *)
  mutable retired : SSet.t;
  mutable extents : Value.Bag.t EM.t;
  mutable validator : validator option;
  mutable observer : (op -> unit) option;
}

let create () =
  {
    schemas = SM.empty;
    pathways = [];
    contribs = [];
    retired = SSet.empty;
    extents = EM.empty;
    validator = None;
    observer = None;
  }

let set_validator t v = t.validator <- v
let validator t = t.validator
let set_observer t f = t.observer <- f
let observed t = Option.is_some t.observer
let notify t op = match t.observer with Some f -> f op | None -> ()

let err fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) = Result.bind

let add_schema t s =
  let name = Schema.name s in
  if SM.mem name t.schemas then err "repository already has schema %s" name
  else begin
    t.schemas <- SM.add name s t.schemas;
    notify t (Op_add_schema s);
    Ok ()
  end

let schema t name = SM.find_opt name t.schemas

let schema_exn t name =
  match schema t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "no schema %s in repository" name)

let mem_schema t name = SM.mem name t.schemas
let schemas t = SM.bindings t.schemas |> List.map snd

let remove_schema t name =
  if not (SM.mem name t.schemas) then err "no schema %s" name
  else if
    List.exists
      (fun (p : Transform.pathway) ->
        p.from_schema = name || p.to_schema = name)
      t.pathways
  then err "schema %s is still referenced by a pathway" name
  else begin
    t.schemas <- SM.remove name t.schemas;
    t.extents <- EM.filter (fun (s, _) _ -> s <> name) t.extents;
    t.retired <- SSet.remove name t.retired;
    notify t (Op_remove_schema name);
    Ok ()
  end

let rename_schema t name new_name =
  match SM.find_opt name t.schemas with
  | None -> err "no schema %s" name
  | Some _ when name = new_name -> Ok ()
  | Some s ->
      if SM.mem new_name t.schemas then
        err "repository already has schema %s" new_name
      else if
        List.exists
          (fun (p : Transform.pathway) ->
            p.from_schema = name || p.to_schema = name)
          t.pathways
      then err "schema %s is still referenced by a pathway" name
      else begin
        t.schemas <- SM.add new_name (Schema.rename new_name s) (SM.remove name t.schemas);
        t.extents <-
          EM.fold
            (fun (s', o) bag acc ->
              EM.add ((if s' = name then new_name else s'), o) bag acc)
            t.extents EM.empty;
        if SSet.mem name t.retired then
          t.retired <- SSet.add new_name (SSet.remove name t.retired);
        notify t (Op_rename_schema (name, new_name));
        Ok ()
      end

let add_pathway t (p : Transform.pathway) =
  match schema t p.from_schema with
  | None -> err "pathway source schema %s is not registered" p.from_schema
  | Some src ->
      let* () = Transform.well_formed src p in
      let* () =
        match t.validator with None -> Ok () | Some f -> f src p
      in
      let* derived = Transform.apply src p in
      let* () =
        match schema t p.to_schema with
        | None ->
            t.schemas <- SM.add p.to_schema derived t.schemas;
            Ok ()
        | Some existing ->
            if Schema.same_objects existing derived then Ok ()
            else
              err
                "pathway into %s produces a schema that disagrees with the \
                 registered one"
                p.to_schema
      in
      t.pathways <- p :: t.pathways;
      Telemetry.count "repository.pathways_registered";
      notify t (Op_add_pathway p);
      Ok ()

let is_contribution t p = List.exists (fun q -> q = p) t.contribs
let contributions t = List.rev t.contribs

(* A contribution feeds a subset of an existing schema's objects: the
   derived object set must be contained in the registered target rather
   than equal to it.  This is the delta-sized way to wire an evolved-in
   source into an already-built global schema — the alternative, a full
   pathway, must enumerate a trivial extend for every other object of
   the target, which is proportional to repository size. *)
let add_contribution t (p : Transform.pathway) =
  match schema t p.from_schema with
  | None -> err "contribution source schema %s is not registered" p.from_schema
  | Some src -> (
      match schema t p.to_schema with
      | None ->
          err "contribution target schema %s is not registered" p.to_schema
      | Some target ->
          let* () = Transform.well_formed src p in
          let* () =
            match t.validator with None -> Ok () | Some f -> f src p
          in
          let* derived = Transform.apply src p in
          let stray =
            List.filter
              (fun o -> not (Schema.mem o target))
              (Schema.objects derived)
          in
          let* () =
            match stray with
            | [] -> Ok ()
            | o :: _ ->
                err
                  "contribution into %s derives %s, which the registered \
                   schema does not contain"
                  p.to_schema (Scheme.to_string o)
          in
          t.pathways <- p :: t.pathways;
          t.contribs <- p :: t.contribs;
          Telemetry.count "repository.contributions_registered";
          notify t (Op_add_contribution p);
          Ok ())

let replace_pathway t ~old:(p_old : Transform.pathway) (p_new : Transform.pathway) =
  if
    p_old.from_schema <> p_new.from_schema || p_old.to_schema <> p_new.to_schema
  then
    err "replacement pathway must keep the endpoints %s -> %s"
      p_old.from_schema p_old.to_schema
  else if not (List.exists (fun q -> q = p_old) t.pathways) then
    err "no pathway %s -> %s with these steps is registered" p_old.from_schema
      p_old.to_schema
  else
    match schema t p_new.from_schema with
    | None -> err "pathway source schema %s is not registered" p_new.from_schema
    | Some src ->
        let* () = Transform.well_formed src p_new in
        let* () =
          match t.validator with None -> Ok () | Some f -> f src p_new
        in
        let* derived = Transform.apply src p_new in
        let contribution = is_contribution t p_old in
        let* () =
          match schema t p_new.to_schema with
          | None -> err "pathway target schema %s vanished" p_new.to_schema
          | Some existing ->
              let agrees =
                if contribution then
                  (* contributions keep the weaker subset agreement *)
                  List.for_all
                    (fun o -> Schema.mem o existing)
                    (Schema.objects derived)
                else Schema.same_objects existing derived
              in
              if agrees then Ok ()
              else
                err
                  "replacement pathway into %s produces a schema that \
                   disagrees with the registered one"
                  p_new.to_schema
        in
        (* swap in place so network-search order is unchanged *)
        let replaced = ref false in
        t.pathways <-
          List.map
            (fun q ->
              if (not !replaced) && q = p_old then begin
                replaced := true;
                p_new
              end
              else q)
            t.pathways;
        if contribution then begin
          let swapped = ref false in
          t.contribs <-
            List.map
              (fun q ->
                if (not !swapped) && q = p_old then begin
                  swapped := true;
                  p_new
                end
                else q)
              t.contribs
        end;
        Telemetry.count "repository.pathways_replaced";
        notify t (Op_replace_pathway (p_old, p_new));
        Ok ()

(* Certified removal: the repository only checks registration — the
   caller (maintenance reclamation) holds the semantic certificate that
   the pathway contributes nothing (Quarantine.is_inert), so removal
   preserves every answer.  The first structural match goes, mirroring
   replace_pathway. *)
let remove_pathway t (p : Transform.pathway) =
  if not (List.exists (fun q -> q = p) t.pathways) then
    err "no pathway %s -> %s with these steps is registered" p.from_schema
      p.to_schema
  else begin
    let removed = ref false in
    t.pathways <-
      List.filter
        (fun q ->
          if (not !removed) && q = p then begin
            removed := true;
            false
          end
          else true)
        t.pathways;
    (let dropped = ref false in
     t.contribs <-
       List.filter
         (fun q ->
           if (not !dropped) && q = p then begin
             dropped := true;
             false
           end
           else true)
         t.contribs);
    Telemetry.count "repository.pathways_removed";
    notify t (Op_remove_pathway p);
    Ok ()
  end

(* One atomic chain-compaction transaction: swap [retired] for
   [shortcut] in place and append the rerouted contributions, all under
   a single observer notification.  Atomicity matters because bag union
   is additive: applying the swap and the reroutes as separate journaled
   ops would leave boundaries where the target schema's derivation
   under- or double-counts multiplicities.  All admission checks run
   before any mutation, so a failing check leaves the state untouched. *)
let compact_chain t ~retired:(p_ret : Transform.pathway)
    ~shortcut:(p_new : Transform.pathway) ~reroutes =
  if p_ret.to_schema <> p_new.to_schema then
    err "compaction shortcut must keep the target %s" p_ret.to_schema
  else if not (List.exists (fun q -> q = p_ret) t.pathways) then
    err "no pathway %s -> %s with these steps is registered" p_ret.from_schema
      p_ret.to_schema
  else if is_contribution t p_ret then
    err "pathway %s -> %s is a contribution, not a chain link"
      p_ret.from_schema p_ret.to_schema
  else
    let* target =
      match schema t p_new.to_schema with
      | Some s -> Ok s
      | None -> err "compaction target schema %s vanished" p_new.to_schema
    in
    let admit_shortcut () =
      match schema t p_new.from_schema with
      | None ->
          err "shortcut source schema %s is not registered" p_new.from_schema
      | Some src ->
          let* () = Transform.well_formed src p_new in
          let* () =
            match t.validator with None -> Ok () | Some f -> f src p_new
          in
          let* derived = Transform.apply src p_new in
          if Schema.same_objects target derived then Ok ()
          else
            err
              "compaction shortcut into %s produces a schema that disagrees \
               with the registered one"
              p_new.to_schema
    in
    let admit_reroute (r : Transform.pathway) =
      if r.to_schema <> p_new.to_schema then
        err "rerouted contribution %s -> %s does not feed the compacted \
             version %s"
          r.from_schema r.to_schema p_new.to_schema
      else
        match schema t r.from_schema with
        | None ->
            err "rerouted contribution source schema %s is not registered"
              r.from_schema
        | Some src ->
            let* () = Transform.well_formed src r in
            let* () =
              match t.validator with None -> Ok () | Some f -> f src r
            in
            let* derived = Transform.apply src r in
            let stray =
              List.filter
                (fun o -> not (Schema.mem o target))
                (Schema.objects derived)
            in
            (match stray with
            | [] -> Ok ()
            | o :: _ ->
                err
                  "rerouted contribution into %s derives %s, which the \
                   registered schema does not contain"
                  r.to_schema (Scheme.to_string o))
    in
    let* () = admit_shortcut () in
    let* () =
      List.fold_left
        (fun acc r ->
          let* () = acc in
          admit_reroute r)
        (Ok ()) reroutes
    in
    let replaced = ref false in
    t.pathways <-
      List.map
        (fun q ->
          if (not !replaced) && q = p_ret then begin
            replaced := true;
            p_new
          end
          else q)
        t.pathways;
    (* pathways are held newest-first *)
    t.pathways <- List.rev_append reroutes t.pathways;
    t.contribs <- List.rev_append reroutes t.contribs;
    Telemetry.count "repository.chains_compacted";
    notify t (Op_compact_pathway (p_ret, p_new, reroutes));
    Ok ()

(* Trusted registration for state loading.  A saved state records
   pathways that were live when it was written — including ones a raw
   {!alter_schema} had already stranded (the [stranded-pathway] lint
   repairs those after recovery).  Re-running replay validation here
   would turn such a checkpoint into a hard load error, losing the whole
   store, so only the endpoints are required to exist. *)
let restore_pathway t ~contribution (p : Transform.pathway) =
  match (schema t p.from_schema, schema t p.to_schema) with
  | None, _ -> err "pathway source schema %s is not registered" p.from_schema
  | _, None -> err "pathway target schema %s is not registered" p.to_schema
  | Some _, Some _ ->
      t.pathways <- p :: t.pathways;
      if contribution then t.contribs <- p :: t.contribs;
      Telemetry.count "repository.pathways_restored";
      notify t
        (if contribution then Op_add_contribution p else Op_add_pathway p);
      Ok ()

let derive_schema t p =
  let* () = add_pathway t p in
  match schema t p.to_schema with
  | Some s -> Ok s
  | None -> err "internal: schema %s vanished" p.to_schema

let pathways t = List.rev t.pathways

let pathways_from t name =
  List.rev
    (List.filter (fun (p : Transform.pathway) -> p.from_schema = name) t.pathways)

let pathways_into t name =
  List.rev
    (List.filter (fun (p : Transform.pathway) -> p.to_schema = name) t.pathways)

let find_path t ~src ~dst =
  Telemetry.with_span "repository.find_path"
    ~attrs:(fun () -> [ ("src", src); ("dst", dst) ])
  @@ fun () ->
  if not (mem_schema t src) then err "no schema %s" src
  else if not (mem_schema t dst) then err "no schema %s" dst
  else if src = dst then
    Ok { Transform.from_schema = src; to_schema = dst; steps = [] }
  else begin
    (* BFS over schemas; each stored pathway is an edge in both directions *)
    let edges = pathways t in
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited src ();
    let queue = Queue.create () in
    Queue.push (src, []) queue;
    let result = ref None in
    while !result = None && not (Queue.is_empty queue) do
      let here, acc = Queue.pop queue in
      Telemetry.count "repository.find_path.nodes_expanded";
      let step (p : Transform.pathway) =
        if !result = None && not (Hashtbl.mem visited p.to_schema) then begin
          let acc = p :: acc in
          if p.to_schema = dst then result := Some (List.rev acc)
          else begin
            Hashtbl.replace visited p.to_schema ();
            Queue.push (p.to_schema, acc) queue
          end
        end
      in
      List.iter
        (fun (p : Transform.pathway) ->
          if p.from_schema = here then step p
          else if p.to_schema = here then step (Transform.reverse p))
        edges
    done;
    match !result with
    | None -> err "no pathway from %s to %s" src dst
    | Some [] -> assert false
    | Some (first :: rest) ->
        let composed =
          List.fold_left
            (fun acc p ->
              let* acc = acc in
              Transform.compose acc p)
            (Ok first) rest
        in
        (if Telemetry.active () then
           match composed with
           | Ok (p : Transform.pathway) ->
               let len = List.length p.steps in
               Telemetry.observe "repository.find_path.path_length"
                 (float_of_int len);
               Telemetry.annotate "path_length" (string_of_int len);
               Telemetry.annotate "hops" (string_of_int (1 + List.length rest))
           | Error _ -> ());
        composed
  end

let set_extent t ~schema:name obj bag =
  match schema t name with
  | None -> err "no schema %s" name
  | Some s ->
      if not (Schema.mem obj s) then
        err "schema %s has no object %s" name (Scheme.to_string obj)
      else begin
        t.extents <- EM.add (name, obj) bag t.extents;
        notify t (Op_set_extent (name, obj, bag));
        Ok ()
      end

(* Unlike [remove_schema]/[rename_schema], altering is allowed while
   pathways still reference the schema: that is exactly the live-evolution
   scenario.  Pathways stranded by the change are the evolution layer's
   (and the linter's stranded-pathway rule's) responsibility to repair. *)
let alter_schema t name alter =
  match schema t name with
  | None -> err "no schema %s" name
  | Some s ->
      let* s' =
        match alter with
        | Alter_add_object (o, extent_ty) -> Schema.add_object ?extent_ty o s
        | Alter_drop_object o -> Schema.remove_object o s
        | Alter_rename_object (a, b) -> Schema.rename_object a b s
      in
      t.schemas <- SM.add name s' t.schemas;
      (match alter with
      | Alter_add_object _ -> ()
      | Alter_drop_object o -> t.extents <- EM.remove (name, o) t.extents
      | Alter_rename_object (a, b) -> (
          match EM.find_opt (name, a) t.extents with
          | None -> ()
          | Some bag ->
              t.extents <- EM.add (name, b) bag (EM.remove (name, a) t.extents)));
      Telemetry.count "repository.schemas_altered";
      notify t (Op_alter_schema (name, alter));
      Ok ()

(* Retiring tombstones an evolved-away source: the schema and its
   pathways stay (so old global-schema versions remain well-defined and
   the network keeps its shape) but the stored extents are dropped and
   the processor refuses to fetch from it — in degraded mode the refusal
   becomes an "evolved away" skip marker rather than a fault. *)
let retire_source t name =
  if not (SM.mem name t.schemas) then err "no schema %s" name
  else if SSet.mem name t.retired then err "schema %s is already retired" name
  else begin
    t.retired <- SSet.add name t.retired;
    t.extents <- EM.filter (fun (s, _) _ -> s <> name) t.extents;
    Telemetry.count "repository.sources_retired";
    notify t (Op_retire_source name);
    Ok ()
  end

let retired t name = SSet.mem name t.retired
let retired_sources t = SSet.elements t.retired

let stored_extent t ~schema:name obj = EM.find_opt (name, obj) t.extents

let has_stored_extents t name =
  EM.exists (fun (s, _) _ -> s = name) t.extents

let stored_extent_count t = EM.cardinal t.extents

let stored_row_count t =
  EM.fold (fun _ bag acc -> acc + Value.Bag.cardinal bag) t.extents 0

let pp_summary ppf t =
  Fmt.pf ppf "@[<v>schemas: %a@,pathways: %a@,stored extents: %d@]"
    Fmt.(list ~sep:(any ", ") string)
    (List.map Schema.name (schemas t))
    Fmt.(
      list ~sep:(any ", ") (fun ppf (p : Transform.pathway) ->
          Fmt.pf ppf "%s->%s" p.from_schema p.to_schema))
    (pathways t) (EM.cardinal t.extents)
