(** Textual serialisation of a repository: schemas, pathways and
    (optionally) materialised extents.

    The format is line-oriented and human-diffable; IQL queries and
    schemes use their concrete syntax, so a saved repository doubles as a
    readable integration log:

    {v
    schema "pedro"
    object <<protein>> : [str]
    object <<protein,organism>> : [{str,str}]
    ...
    pathway "pedro" -> "i_protein"
    step add <<UProtein>> := [{'PEDRO', k} | k <- <<protein>>]
    step contract <<experiment>> := Range Void Any
    end
    extent "pedro" <<protein>> := ['PED-P0'; 'PED-P1']
    v}

    Restrictions: schema names must not contain double quotes or
    newlines, and string values in serialised extents must not contain
    single quotes (IQL string literals have no escape syntax). *)

val save : ?extents:bool -> Repository.t -> string
(** Renders the repository.  [extents] (default [false]) also writes the
    materialised extents. *)

val load : string -> (Repository.t, string) result
(** Rebuilds a repository from {!save}'s output.  Pathways are re-checked
    (well-formedness, target agreement) on the way in. *)
