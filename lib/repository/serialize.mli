(** Textual serialisation of a repository: schemas, pathways and
    (optionally) materialised extents.

    The format is line-oriented and human-diffable; IQL queries and
    schemes use their concrete syntax, so a saved repository doubles as a
    readable integration log:

    {v
    schema "pedro"
    object <<protein>> : [str]
    object <<protein,organism>> : [{str,str}]
    ...
    pathway "pedro" -> "i_protein"
    step add <<UProtein>> := [{'PEDRO', k} | k <- <<protein>>]
    step contract <<experiment>> := Range Void Any
    end
    extent "pedro" <<protein>> := ['PED-P0'; 'PED-P1']
    v}

    Schema names and string values round-trip exactly: quotes,
    backslashes and newlines in names are [\ ]-escaped inside the double
    quotes, and string values use IQL string-literal escapes
    ({!Automed_iql.Value.escape_string}). *)

val save : ?extents:bool -> Repository.t -> string
(** Renders the repository.  [extents] (default [false]) also writes the
    materialised extents. *)

val load : string -> (Repository.t, string) result
(** Rebuilds a repository from {!save}'s output.  Pathways are re-checked
    (well-formedness, target agreement) on the way in. *)

(** {2 Single-operation codec}

    One committed repository mutation rendered as a self-contained text
    fragment in the same concrete syntax as {!save}.  This is the payload
    format of the write-ahead journal ([Automed_durable.Journal]): the
    journal frames each fragment with a length prefix and checksum, and
    recovery replays fragments through {!apply_op}. *)

val save_op : Repository.op -> string
val load_op : string -> (Repository.op, string) result

val apply_op : Repository.t -> Repository.op -> (unit, string) result
(** Replays one operation through the public repository API (so pathway
    replay re-derives target schemas exactly as the original call did). *)
