(** A second, smaller integration setting (the paper's Section 4 calls
    for evaluating the methodology on "further real-world large-scale
    data integration settings"): a bibliographic dataspace whose three
    sources use three different representations -

    - [dblp]: a relational database (publications, authors, authorship);
    - [arxiv]: an XML document of papers, wrapped through the XML
      modelling language;
    - [library]: CSV holdings, loaded with type inference.

    Unlike the iSpider workload the data here is tiny and hand-written,
    so it doubles as documentation: every expected answer is visible in
    the source text.  Two publications ("A Relational Model..." appears
    in all three sources; "Dataspaces..." in two) provide the semantic
    overlap. *)

module Repository = Automed_repository.Repository
module Workflow = Automed_integration.Workflow

val shared_title : string
(** A title present in all three sources. *)

val partial_title : string
(** A title present in dblp and arxiv only. *)

val setup : Repository.t -> (unit, string) result
(** Builds and wraps the three sources ([dblp], [arxiv], [library]). *)

val integrate : Repository.t -> (Workflow.t, string) result
(** Runs the incremental integration: a federated schema, then a
    three-way intersection [UPublication]/[UPublication,title], then a
    two-way intersection adding [UPublication,year] (the library holdings
    have no year).  4 + 2 = 6 user-defined transformations. *)

type check = { label : string; query : string; expected : string }
(** A query over the current global schema with its expected rendering. *)

val checks : check list
(** Hand-verifiable answers used by the tests, the example and the
    bench. *)
