module Scheme = Automed_base.Scheme
module Parser = Automed_iql.Parser
module Relational = Automed_datasource.Relational
module Csv = Automed_datasource.Csv
module Document = Automed_datasource.Document
module Wrapper = Automed_datasource.Wrapper
module Repository = Automed_repository.Repository
module Intersection = Automed_integration.Intersection
module Workflow = Automed_integration.Workflow

let shared_title = "A Relational Model of Data for Large Shared Data Banks"
let partial_title = "Dataspaces: a new abstraction for information management"

let ( let* ) = Result.bind

(* -- dblp: relational ----------------------------------------------------- *)

let dblp_db () =
  let publication =
    Relational.create_table ~name:"publication" ~key:"id"
      [ ("id", Relational.CStr); ("title", Relational.CStr);
        ("year", Relational.CInt); ("venue", Relational.CStr) ]
  in
  let author =
    Relational.create_table ~name:"author" ~key:"id"
      [ ("id", Relational.CStr); ("name", Relational.CStr) ]
  in
  let authored =
    Relational.create_table ~name:"authored" ~key:"id"
      [ ("id", Relational.CStr); ("author", Relational.CStr);
        ("publication", Relational.CStr) ]
  in
  let s = Relational.str_cell and i = Relational.int_cell in
  let* publication = publication in
  let* publication =
    Relational.insert_all publication
      [
        [ s "d1"; s shared_title; i 1970; s "CACM" ];
        [ s "d2"; s partial_title; i 2005; s "SIGMOD Record" ];
        [ s "d3"; s "Data integration: a theoretical perspective"; i 2002;
          s "PODS" ];
      ]
  in
  let* author = author in
  let* author =
    Relational.insert_all author
      [ [ s "a1"; s "E. F. Codd" ]; [ s "a2"; s "A. Halevy" ];
        [ s "a3"; s "M. Lenzerini" ] ]
  in
  let* authored = authored in
  let* authored =
    Relational.insert_all authored
      [
        [ s "w1"; s "a1"; s "d1" ]; [ s "w2"; s "a2"; s "d2" ];
        [ s "w3"; s "a3"; s "d3" ];
      ]
  in
  let db = Relational.create_db "dblp" in
  let* db = Relational.add_table db publication in
  let* db = Relational.add_table db author in
  Relational.add_table db authored

(* -- arxiv: XML ------------------------------------------------------------ *)

let arxiv_xml =
  Printf.sprintf
    {|<arxiv>
  <paper title="%s" year="1970" area="cs.DB"/>
  <paper title="%s" year="2005" area="cs.DB"/>
  <paper title="From databases to dataspaces" year="2005" area="cs.DB"/>
</arxiv>|}
    shared_title partial_title

(* -- library: CSV ----------------------------------------------------------- *)

let holdings_csv =
  Printf.sprintf "id,title,copies,shelf\nh1,%s,3,DB-1\nh2,Readings in Database Systems,1,DB-2\n"
    shared_title

(* -- setup ------------------------------------------------------------------ *)

let setup repo =
  let* db = dblp_db () in
  let* _ = Wrapper.wrap repo db in
  let* doc = Document.parse arxiv_xml in
  let* _ = Document.wrap repo ~name:"arxiv" doc in
  let* holdings = Csv.load_table_auto ~name:"holdings" holdings_csv in
  let* library = Relational.add_table (Relational.create_db "library") holdings in
  let* _ = Wrapper.wrap repo library in
  Ok ()

(* -- integration ------------------------------------------------------------ *)

let q = Parser.parse_exn

let integrate repo =
  let* wf =
    Workflow.start repo ~name:"biblio" ~sources:[ "dblp"; "arxiv"; "library" ]
  in
  (* iteration 1: the publication concept and its title, across all
     three representations *)
  let* _ =
    Workflow.integrate ~description:"UPublication across three models" wf
      {
        Intersection.name = "i_publication";
        sides =
          [
            {
              Intersection.schema = "dblp";
              mappings =
                [
                  { Intersection.target = Scheme.table "UPublication";
                    forward = q "[{'dblp', k} | k <- <<publication>>]";
                    restore = None };
                  { Intersection.target = Scheme.column "UPublication" "title";
                    forward =
                      q "[{'dblp', k, x} | {k,x} <- <<publication,title>>]";
                    restore = None };
                ];
            };
            {
              Intersection.schema = "arxiv";
              mappings =
                [
                  { Intersection.target = Scheme.table "UPublication";
                    forward = q "[{'arxiv', k} | k <- <<xml,element,paper>>]";
                    restore = None };
                  { Intersection.target = Scheme.column "UPublication" "title";
                    forward =
                      q
                        "[{'arxiv', k, x} | {k,x} <- \
                         <<xml,attribute,paper,title>>]";
                    restore = None };
                ];
            };
            {
              Intersection.schema = "library";
              mappings =
                [
                  { Intersection.target = Scheme.table "UPublication";
                    forward = q "[{'library', k} | k <- <<holdings>>]";
                    restore = None };
                  { Intersection.target = Scheme.column "UPublication" "title";
                    forward =
                      q "[{'library', k, x} | {k,x} <- <<holdings,title>>]";
                    restore = None };
                ];
            };
          ];
      }
  in
  (* iteration 2: the year, known to dblp and arxiv only; the XML source
     stores it as a string attribute, so the mapping casts nothing - the
     tagged values keep their source types, as in the paper's bag-union
     semantics *)
  let* _ =
    Workflow.integrate ~description:"UPublication year (dblp + arxiv)" wf
      {
        Intersection.name = "i_pub_year";
        sides =
          [
            {
              Intersection.schema = "dblp";
              mappings =
                [
                  { Intersection.target = Scheme.column "UPublication" "year";
                    forward =
                      q "[{'dblp', k, x} | {k,x} <- <<publication,year>>]";
                    restore = None };
                ];
            };
            {
              Intersection.schema = "arxiv";
              mappings =
                [
                  { Intersection.target = Scheme.column "UPublication" "year";
                    forward =
                      q
                        "[{'arxiv', k, x} | {k,x} <- \
                         <<xml,attribute,paper,year>>]";
                    restore = None };
                ];
            };
          ];
      }
  in
  Ok wf

(* -- verifiable answers ------------------------------------------------------ *)

type check = { label : string; query : string; expected : string }

let checks =
  [
    {
      label = "the shared publication is found in all three sources";
      query =
        Printf.sprintf "[s | {s, k, t} <- <<UPublication,title>>; t = '%s']"
          shared_title;
      expected = "['arxiv'; 'dblp'; 'library']";
    };
    {
      label = "the partially-shared publication is in two";
      query =
        Printf.sprintf "[s | {s, k, t} <- <<UPublication,title>>; t = '%s']"
          partial_title;
      expected = "['arxiv'; 'dblp']";
    };
    {
      label = "publications per source";
      query =
        "[{s, count(g)} | {s, g} <- group([{s, k} | {s, k} <- \
         <<UPublication>>])]";
      expected = "[{'arxiv',3}; {'dblp',3}; {'library',2}]";
    };
    {
      label = "total publication entries (bag union)";
      query = "count(<<UPublication>>)";
      expected = "8";
    };
    {
      label = "un-integrated library detail stays queryable (federated)";
      query = "[{k, c} | {k, c} <- <<library:holdings,copies>>; c > 1]";
      expected = "[{'h1',3}]";
    };
    {
      label = "author join across the remainder and the intersection";
      query =
        Printf.sprintf
          "[n | {w, a} <- <<dblp:authored,author>>; {w2, p} <- \
           <<dblp:authored,publication>>; w = w2; {s, k, t} <- \
           <<UPublication,title>>; s = 'dblp'; k = p; t = '%s'; {a2, n} <- \
           <<dblp:author,name>>; a2 = a]"
          shared_title;
      expected = "['E. F. Codd']";
    };
  ]
