module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Strutil = Automed_base.Strutil
module Repository = Automed_repository.Repository

type evidence = { name_score : float; instance_score : float option }
type suggestion = { left : Scheme.t; right : Scheme.t; score : float; evidence : evidence }

let identifier_score a b =
  max (Strutil.similarity a b) (Strutil.token_overlap a b)

let name_score l r =
  (* compare argument lists pairwise from the end: the most specific part
     of the identifier (column name) carries the most weight *)
  let la = List.rev (Scheme.args l) and lb = List.rev (Scheme.args r) in
  let rec go w acc total la lb =
    match (la, lb) with
    | [], [] -> if total = 0.0 then 0.0 else acc /. total
    | a :: la, b :: lb ->
        go (w /. 2.0) (acc +. (w *. identifier_score a b)) (total +. w) la lb
    | _ :: la, [] -> go (w /. 2.0) acc (total +. w) la []
    | [], _ :: lb -> go (w /. 2.0) acc (total +. w) [] lb
  in
  go 1.0 0.0 0.0 la lb

(* The comparable content of a value: for {key, v} column-extent pairs we
   compare the value component, for bare keys the key itself. *)
let atomic_of = function
  | Value.Tuple [ _; v ] -> v
  | Value.Tuple (_ :: rest) -> Value.Tuple rest
  | v -> v

module VS = Set.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

let instance_score a b =
  let distinct bag =
    Value.Bag.fold (fun v _ acc -> VS.add (atomic_of v) acc) bag VS.empty
  in
  let sa = distinct a and sb = distinct b in
  let union = VS.cardinal (VS.union sa sb) in
  if union = 0 then 0.0
  else float_of_int (VS.cardinal (VS.inter sa sb)) /. float_of_int union

let combine e =
  match e.instance_score with
  | None -> e.name_score
  | Some i -> (0.5 *. e.name_score) +. (0.5 *. i)

let suggest ?(threshold = 0.35) ?(limit = 50) repo ~left ~right =
  match (Repository.schema repo left, Repository.schema repo right) with
  | None, _ -> Error (Printf.sprintf "no schema %s" left)
  | _, None -> Error (Printf.sprintf "no schema %s" right)
  | Some sl, Some sr ->
      let pairs =
        List.concat_map
          (fun ol ->
            List.filter_map
              (fun or_ ->
                if
                  Scheme.language ol = Scheme.language or_
                  && Scheme.construct ol = Scheme.construct or_
                then Some (ol, or_)
                else None)
              (Schema.objects sr))
          (Schema.objects sl)
      in
      let score (ol, or_) =
        let name_score = name_score ol or_ in
        let instance_score =
          match
            ( Repository.stored_extent repo ~schema:left ol,
              Repository.stored_extent repo ~schema:right or_ )
          with
          | Some ba, Some bb -> Some (instance_score ba bb)
          | _ -> None
        in
        let evidence = { name_score; instance_score } in
        { left = ol; right = or_; score = combine evidence; evidence }
      in
      let suggestions =
        List.map score pairs
        |> List.filter (fun s -> s.score >= threshold)
        |> List.stable_sort (fun a b -> Float.compare b.score a.score)
      in
      Ok (List.filteri (fun i _ -> i < limit) suggestions)

let pp_suggestion ppf s =
  Fmt.pf ppf "%a ~ %a  score %.2f (name %.2f%a)" Scheme.pp s.left Scheme.pp
    s.right s.score s.evidence.name_score
    Fmt.(
      option (fun ppf i -> Fmt.pf ppf ", instance %.2f" i))
    s.evidence.instance_score
