(** The Schema Matching tool: ranked suggestions of semantic
    correspondences between the objects of two schemas, combining
    name-based evidence (edit distance and token overlap on identifiers)
    with instance-based evidence (value overlap between extents).

    This reimplements the role of AutoMed's Schema Matching Tool [16] in
    the workflow: step 4 of the paper's integration workflow consults it
    for suggested mappings, which the integrator reviews and edits. *)

module Scheme = Automed_base.Scheme
module Value = Automed_iql.Value
module Repository = Automed_repository.Repository

type evidence = {
  name_score : float;  (** in [\[0,1\]]: identifier similarity *)
  instance_score : float option;
      (** in [\[0,1\]]: Jaccard overlap of distinct extent values, when both
          extents are available *)
}

type suggestion = {
  left : Scheme.t;
  right : Scheme.t;
  score : float;  (** combined, in [\[0,1\]] *)
  evidence : evidence;
}

val name_score : Scheme.t -> Scheme.t -> float
(** Similarity of the identifying arguments (last argument weighted
    highest, e.g. column name over table name). *)

val instance_score : Value.Bag.t -> Value.Bag.t -> float
(** Jaccard coefficient over distinct atomic values.  Column extents
    compare their value components (not keys). *)

val combine : evidence -> float
(** [0.5 * name + 0.5 * instance] when instance evidence exists, otherwise
    the name score alone. *)

val suggest :
  ?threshold:float ->
  ?limit:int ->
  Repository.t ->
  left:string ->
  right:string ->
  (suggestion list, string) result
(** All cross-pairs of same-construct objects between the two registered
    schemas, scored and sorted descending; pairs below [threshold]
    (default 0.35) are dropped; at most [limit] (default 50) returned.
    Uses stored extents when present. *)

val pp_suggestion : suggestion Fmt.t
