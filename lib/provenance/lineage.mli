(** Tuple-level lineage annotations (why-provenance at extent
    granularity).

    Every value flowing through the provenance-annotated answer path
    carries a lineage: the set of stored source extents it was derived
    from ({!atom}s), the pathway crossings the derivation went through
    ({!hop}s, including which original steps survived certified
    simplification and under which audit certificate), the telemetry
    span ids of the fetches that produced the underlying rows (so a
    tuple links into the exported Chrome trace), and the sources whose
    skip — in a degraded run — may have deprived the tuple of further
    support.

    The granularity is the {e extent}: an atom cites a whole stored
    extent [(source schema, schema object)], not an individual row.
    This is the right grain for the paper's pay-as-you-go argument
    ("which sources does this answer rest on?") and gives the
    sufficiency property tested by the suite: re-evaluating a query
    with the environment restricted to exactly the extents cited by a
    tuple's lineage reproduces that tuple with its multiplicity
    (for queries in the positive fragment: comprehensions, filters,
    unions, aggregation over cited extents).

    Lineages form a join-semilattice under {!union}; all operations are
    pure and the internal sets are canonical, so {!equal} lineages
    render and sign identically. *)

module Scheme = Automed_base.Scheme
module Value = Automed_iql.Value

type atom = { source : string; extent : Scheme.t }
(** One stored extent: the [extent] object of source schema [source]. *)

type hop = {
  pathway : string;  (** pathway id, ["from->to"] *)
  steps : int;  (** step count of the stored (unsimplified) pathway *)
  surviving : int list;
      (** 1-based indices of the original steps that survive verbatim in
          the certified simplification (all of them when simplification
          is off or was refused) *)
  cert : string option;
      (** rewrite-audit certificate id (e.g. ["eq-12o-64t-r"]) when a
          certified simplification was applied; [None] otherwise *)
}
(** One pathway crossing of the derivation. *)

type t

val empty : t
val is_empty : t -> bool

val atom : ?span:int -> source:string -> Scheme.t -> t
(** A lineage citing one stored extent, optionally tagged with the
    telemetry span id of the fetch that read it. *)

val skip : string -> t
(** A lineage recording that the named source was skipped by a degraded
    run (faulty or breaker-open) and could have contributed. *)

val skip_evolved : string -> t
(** The second skip-marker kind: the named source {e evolved away} (was
    dropped by a live schema evolution).  Unlike a faulty skip, the
    missing support is permanent — the source will not come back. *)

val union : t -> t -> t
val add_hop : hop -> t -> t
val add_span : int -> t -> t

val only_skips : t -> t
(** The lineage restricted to its skip markers — what comprehension
    evaluation propagates from a generator's ambient lineage onto each
    generated tuple ("this tuple might have had more support"). *)

val atoms : t -> atom list
(** Sorted, distinct. *)

val hops : t -> hop list

val skipped : t -> string list
(** All skipped sources, of either kind. *)

val skipped_faulty : t -> string list
val skipped_evolved : t -> string list
val spans : t -> int list

val sources : t -> string list
(** Distinct source schemas cited by the atoms, sorted. *)

val cites_source : string -> t -> bool

val cites_skip : string -> t -> bool
(** True for a skip marker of either kind. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : t Fmt.t
(** Compact one-line rendering, e.g.
    [{Pedro:<<protein>>, UniProt:<<protein>>} via Pedro->g_v2[2/9|eq-3o-64t-r]]. *)

val to_json : t -> string
(** Canonical JSON object:
    [{"atoms":[{"source":..,"extent":..}..],"pathways":[..],"spans":[..],"skipped":[..],"evolved":[..]}]. *)

(** {1 Tamper evidence}

    A keyed MAC over the (value, lineage) pair — a 64-bit FNV-1a digest
    of the canonical rendering, keyed fore and aft.  This is tamper
    {e evidence} for audit trails (a forged or transplanted lineage no
    longer matches its tuple), not a cryptographic guarantee. *)

val sign : key:string -> Value.t -> t -> string
(** 16 hex digits. *)

val verify : key:string -> Value.t -> t -> string -> bool
