module Scheme = Automed_base.Scheme
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value
module Eval = Automed_iql.Eval
module SM = Map.Make (String)

module VM = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type entry = { v : Value.t; n : int; lin : Lineage.t }

type av = Scalar of Value.t * Lineage.t | ABag of entry list * Lineage.t

type env = { schemes : Scheme.t -> av option; vars : av SM.t }

let env ?(schemes = fun _ -> None) ?(vars = []) () =
  { schemes; vars = SM.of_seq (List.to_seq vars) }

let bind x v e = { e with vars = SM.add x v e.vars }

type error = Automed_iql.Eval.error = {
  message : string;
  context : string list;
}

let pp_error = Eval.pp_error

exception Error of error

let err fmt =
  Format.kasprintf
    (fun message -> raise (Error { message; context = [] }))
    fmt

let lift = function Ok v -> v | Error e -> raise (Error e)

let value_of = function
  | Scalar (v, _) -> v
  | ABag (es, _) -> Value.Bag (List.map (fun e -> (e.v, e.n)) es)

let lineage_of = function
  | Scalar (_, l) -> l
  | ABag (es, amb) ->
      List.fold_left (fun acc e -> Lineage.union acc e.lin) amb es

let abag es amb = ABag (es, amb)

let av_of_value l (v : Value.t) =
  match v with
  | Value.Bag b -> ABag (List.map (fun (v, n) -> { v; n; lin = l }) b, l)
  | v -> Scalar (v, l)

let add_lineage l av =
  if Lineage.is_empty l then av
  else
    match av with
    | Scalar (v, l') -> Scalar (v, Lineage.union l l')
    | ABag (es, amb) ->
        ABag
          ( List.map (fun e -> { e with lin = Lineage.union l e.lin }) es,
            Lineage.union l amb )

let canon (raw : entry list) : entry list =
  let sorted = List.stable_sort (fun a b -> Value.compare a.v b.v) raw in
  let rec go acc = function
    | a :: b :: rest when Value.compare a.v b.v = 0 ->
        go acc ({ v = a.v; n = a.n + b.n; lin = Lineage.union a.lin b.lin } :: rest)
    | a :: rest -> go (if a.n > 0 then a :: acc else acc) rest
    | [] -> List.rev acc
  in
  go [] sorted

let merge_entries a b = canon (List.rev_append a b)

let as_abag what = function
  | ABag (es, amb) -> (es, amb)
  | Scalar (v, _) ->
      err "%s: expected a collection, got %s" what (Value.to_string v)

let as_bool what = function
  | Value.Bool b -> b
  | v -> err "%s: expected a boolean, got %s" what (Value.to_string v)

let joined_lineage avs =
  List.fold_left (fun acc a -> Lineage.union acc (lineage_of a)) Lineage.empty avs

let rec eval_expr env (e : Ast.expr) : av =
  match e with
  | Const v -> av_of_value Lineage.empty v
  | Void -> ABag ([], Lineage.empty)
  | Any -> err "cannot materialise Any (no upper bound information)"
  | Var x -> (
      match SM.find_opt x env.vars with
      | Some v -> v
      | None -> err "unbound variable %s" x)
  | SchemeRef s -> (
      match env.schemes s with
      | Some av -> av
      | None -> err "no extent for schema object %s" (Scheme.to_string s))
  | Tuple es ->
      let avs = List.map (eval_expr env) es in
      Scalar (Value.Tuple (List.map value_of avs), joined_lineage avs)
  | EBag es ->
      let avs = List.map (eval_expr env) es in
      ABag
        ( canon
            (List.map (fun a -> { v = value_of a; n = 1; lin = lineage_of a }) avs),
          Lineage.empty )
  | Range (l, _) -> eval_expr env l
  | If (c, t, e) ->
      let cav = eval_expr env c in
      let branch =
        if as_bool "if condition" (value_of cav) then t else e
      in
      add_lineage (lineage_of cav) (eval_expr env branch)
  | Let (x, e, body) -> eval_expr (bind x (eval_expr env e) env) body
  | Unop (op, e) ->
      let a = eval_expr env e in
      av_of_value (lineage_of a) (lift (Eval.apply_unop op (value_of a)))
  | Binop (And, a, b) ->
      let av = eval_expr env a in
      if not (as_bool "and" (value_of av)) then
        Scalar (Value.Bool false, lineage_of av)
      else
        let bv = eval_expr env b in
        Scalar
          ( Value.Bool (as_bool "and" (value_of bv)),
            Lineage.union (lineage_of av) (lineage_of bv) )
  | Binop (Or, a, b) ->
      let av = eval_expr env a in
      if as_bool "or" (value_of av) then Scalar (Value.Bool true, lineage_of av)
      else
        let bv = eval_expr env b in
        Scalar
          ( Value.Bool (as_bool "or" (value_of bv)),
            Lineage.union (lineage_of av) (lineage_of bv) )
  | Binop (Union, a, b) ->
      let ea, la = as_abag "++" (eval_expr env a) in
      let eb, lb = as_abag "++" (eval_expr env b) in
      ABag (merge_entries ea eb, Lineage.union la lb)
  | Binop (Monus, a, b) ->
      let ea, la = as_abag "--" (eval_expr env a) in
      let bav = eval_expr env b in
      let eb, _ = as_abag "--" bav in
      let by_value =
        List.fold_left (fun m e -> VM.add e.v e m) VM.empty eb
      in
      let entries =
        List.filter_map
          (fun e ->
            match VM.find_opt e.v by_value with
            | None -> Some e
            | Some x ->
                let n = e.n - x.n in
                if n > 0 then
                  Some { e with n; lin = Lineage.union e.lin x.lin }
                else None)
          ea
      in
      (* the whole subtrahend shaped the answer: keep its lineage ambient *)
      ABag (entries, Lineage.union la (lineage_of bav))
  | Binop (op, a, b) ->
      let av = eval_expr env a in
      let bv = eval_expr env b in
      av_of_value
        (Lineage.union (lineage_of av) (lineage_of bv))
        (lift (Eval.apply_binop op (value_of av) (value_of bv)))
  | Comp (head, quals) ->
      let acc = ref [] in
      let ambient = ref Lineage.empty in
      let rec go env mult lin = function
        | [] ->
            let hv = eval_expr env head in
            acc :=
              {
                v = value_of hv;
                n = mult;
                lin = Lineage.union lin (lineage_of hv);
              }
              :: !acc
        | Ast.Filter f :: rest ->
            let fav = eval_expr env f in
            if as_bool "filter" (value_of fav) then
              go env mult (Lineage.union lin (lineage_of fav)) rest
            else ambient := Lineage.union !ambient (lineage_of fav)
        | Ast.Gen (p, src) :: rest ->
            let entries, amb = as_abag "generator source" (eval_expr env src) in
            ambient := Lineage.union !ambient amb;
            let amb_skips = Lineage.only_skips amb in
            List.iter
              (fun (en : entry) ->
                match Eval.match_pat p en.v with
                | None -> ()
                | Some bs ->
                    let env =
                      List.fold_left
                        (fun e (x, v) -> bind x (av_of_value en.lin v) e)
                        env bs
                    in
                    go env (mult * en.n)
                      (Lineage.union lin (Lineage.union en.lin amb_skips))
                      rest)
              entries
      in
      go env 1 Lineage.empty quals;
      ABag (canon !acc, !ambient)
  | App (f, args) -> eval_app env f (List.map (eval_expr env) args)

and eval_app _env f (args : av list) : av =
  let one what =
    match args with
    | [ a ] -> a
    | _ -> err "%s expects one argument, got %d" what (List.length args)
  in
  match f with
  | "distinct" ->
      let es, amb = as_abag "distinct" (one "distinct") in
      ABag (List.map (fun e -> { e with n = 1 }) es, amb)
  | "flatten" ->
      let es, amb = as_abag "flatten" (one "flatten") in
      let inner =
        List.concat_map
          (fun e ->
            match e.v with
            | Value.Bag b ->
                List.map (fun (v, m) -> { v; n = m * e.n; lin = e.lin }) b
            | v ->
                err "flatten element: expected a collection, got %s"
                  (Value.to_string v))
          es
      in
      ABag (canon inner, amb)
  | "group" ->
      let es, amb = as_abag "group" (one "group") in
      let groups =
        List.fold_left
          (fun acc e ->
            match e.v with
            | Value.Tuple [ k; x ] ->
                let b, l =
                  Option.value
                    ~default:(Value.Bag.empty, Lineage.empty)
                    (VM.find_opt k acc)
                in
                VM.add k
                  (Value.Bag.add ~count:e.n x b, Lineage.union l e.lin)
                  acc
            | v ->
                err "group expects {key, value} pairs, got %s"
                  (Value.to_string v))
          VM.empty es
      in
      ABag
        ( canon
            (VM.fold
               (fun k (b, l) acc ->
                 { v = Value.tuple2 k (Value.Bag b); n = 1; lin = l } :: acc)
               groups []),
          amb )
  | f ->
      (* scalar-returning builtins: the value comes from the reference
         evaluator; the lineage joins everything the arguments read *)
      av_of_value (joined_lineage args)
        (lift (Eval.apply_builtin f (List.map value_of args)))

let eval env e =
  match eval_expr env e with
  | av -> Ok av
  | exception Error e -> Error e

let eval_exn env e =
  match eval env e with
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%a" pp_error e)
