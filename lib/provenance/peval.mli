(** Provenance-annotated IQL evaluation.

    A shadow interpreter over values paired with {!Lineage.t}
    annotations.  It mirrors [Automed_iql.Eval]'s bag-monad semantics
    exactly — scalar operators and builtins are {e delegated} to
    {!Automed_iql.Eval.apply_unop}/[apply_binop]/[apply_builtin], so the
    value component is the reference evaluator's answer by construction
    — while additionally propagating, for every element of every bag,
    the set of stored extents, pathway hops, telemetry spans and
    degraded-mode skips it was derived from.

    Lineage propagation rules (union-based why-provenance at extent
    granularity):

    - a generator binding inherits the matched element's lineage; the
      tuple produced by a comprehension joins the lineages of every
      generator element and every (satisfied) filter on its derivation
      path, plus the head's own reads;
    - aggregates ([count], [sum], …) join the lineage of everything in
      the bag they consume — including the bag's {e ambient} lineage, so
      an aggregate over an empty-but-cited extent still cites it;
    - [a -- b] (monus) joins, per surviving element, the lineages of
      both sides' occurrences and carries the whole right-hand lineage
      in the result's ambient (the subtrahend was read and shaped the
      answer);
    - skip markers in a generator's ambient lineage are copied onto each
      generated tuple: a skipped source "could have affected" every
      tuple that flowed through a bag it should have fed.

    Each bag value is an {!av} holding per-element lineages plus an
    {e ambient} lineage for bag-level facts that survive even when the
    bag is empty (cited-but-empty extents, hops, skips). *)

module Scheme = Automed_base.Scheme
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value

type entry = { v : Value.t; n : int; lin : Lineage.t }
(** One distinct bag element with its multiplicity and lineage.  Entry
    lists are canonical: strictly ascending in [Value.compare], with
    positive multiplicities (same invariant as [Value.Bag.t]). *)

type av =
  | Scalar of Value.t * Lineage.t
  | ABag of entry list * Lineage.t  (** elements, ambient lineage *)

val value_of : av -> Value.t
(** Drops annotations; for an [ABag] this is the canonical [Value.Bag]. *)

val lineage_of : av -> Lineage.t
(** Everything the value was derived from: for a bag, the ambient
    lineage joined with every element's. *)

val abag : entry list -> Lineage.t -> av
val av_of_value : Lineage.t -> Value.t -> av
(** Wraps a raw value, spreading the lineage over bag elements. *)

val canon : entry list -> entry list
(** Canonicalises an arbitrary entry list: sorts, merges equal values
    (adding multiplicities, joining lineages), drops non-positive
    multiplicities. *)

val merge_entries : entry list -> entry list -> entry list
(** Additive bag union of two canonical entry lists. *)

type env

val env :
  ?schemes:(Scheme.t -> av option) -> ?vars:(string * av) list -> unit -> env

val bind : string -> av -> env -> env

type error = Automed_iql.Eval.error = {
  message : string;
  context : string list;
}

val pp_error : error Fmt.t

val eval : env -> Ast.expr -> (av, error) result
(** [value_of] of the result equals what [Automed_iql.Eval.eval] returns
    for the same expression under the value-projected environment (the
    suite checks this by property). *)

val eval_exn : env -> Ast.expr -> av
(** @raise Failure with the rendered error. *)
