module Scheme = Automed_base.Scheme
module Value = Automed_iql.Value

type atom = { source : string; extent : Scheme.t }

type hop = {
  pathway : string;
  steps : int;
  surviving : int list;
  cert : string option;
}

module ASet = Set.Make (struct
  type t = atom

  let compare a b =
    match String.compare a.source b.source with
    | 0 -> Scheme.compare a.extent b.extent
    | c -> c
end)

module HSet = Set.Make (struct
  type t = hop

  (* strings, ints and int lists: structural comparison is total *)
  let compare = (Stdlib.compare : hop -> hop -> int)
end)

module SS = Set.Make (String)
module IS = Set.Make (Int)

(* [lsk] records sources skipped because they were faulty or breaker-open;
   [lev] records sources skipped because they evolved away (dropped by a
   live schema evolution).  The two are distinct skip-marker kinds: a
   faulty source may come back and the answer may then grow, an
   evolved-away source will not. *)
type t = { la : ASet.t; lh : HSet.t; lsk : SS.t; lev : SS.t; lsp : IS.t }

let empty =
  {
    la = ASet.empty;
    lh = HSet.empty;
    lsk = SS.empty;
    lev = SS.empty;
    lsp = IS.empty;
  }

let is_empty t =
  ASet.is_empty t.la && HSet.is_empty t.lh && SS.is_empty t.lsk
  && SS.is_empty t.lev && IS.is_empty t.lsp

let atom ?span ~source extent =
  {
    empty with
    la = ASet.singleton { source; extent };
    lsp = (match span with None -> IS.empty | Some id -> IS.singleton id);
  }

let skip source = { empty with lsk = SS.singleton source }
let skip_evolved source = { empty with lev = SS.singleton source }

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else
    {
      la = ASet.union a.la b.la;
      lh = HSet.union a.lh b.lh;
      lsk = SS.union a.lsk b.lsk;
      lev = SS.union a.lev b.lev;
      lsp = IS.union a.lsp b.lsp;
    }

let add_hop h t = { t with lh = HSet.add h t.lh }
let add_span id t = { t with lsp = IS.add id t.lsp }
let only_skips t = { empty with lsk = t.lsk; lev = t.lev }
let atoms t = ASet.elements t.la
let hops t = HSet.elements t.lh
let skipped t = SS.elements (SS.union t.lsk t.lev)
let skipped_faulty t = SS.elements t.lsk
let skipped_evolved t = SS.elements t.lev
let spans t = IS.elements t.lsp

let sources t =
  SS.elements (ASet.fold (fun a acc -> SS.add a.source acc) t.la SS.empty)

let cites_source s t = ASet.exists (fun a -> String.equal a.source s) t.la
let cites_skip s t = SS.mem s t.lsk || SS.mem s t.lev

let equal a b =
  ASet.equal a.la b.la && HSet.equal a.lh b.lh && SS.equal a.lsk b.lsk
  && SS.equal a.lev b.lev && IS.equal a.lsp b.lsp

let compare a b =
  match ASet.compare a.la b.la with
  | 0 -> (
      match HSet.compare a.lh b.lh with
      | 0 -> (
          match SS.compare a.lsk b.lsk with
          | 0 -> (
              match SS.compare a.lev b.lev with
              | 0 -> IS.compare a.lsp b.lsp
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let pp_atom ppf a = Fmt.pf ppf "%s:%s" a.source (Scheme.to_string a.extent)

let pp_hop ppf h =
  Fmt.pf ppf "%s[%d/%d%a]" h.pathway (List.length h.surviving) h.steps
    Fmt.(option (fun ppf c -> Fmt.pf ppf "|%s" c))
    h.cert

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp_atom) (atoms t);
  (match hops t with
  | [] -> ()
  | hs -> Fmt.pf ppf " via %a" Fmt.(list ~sep:comma pp_hop) hs);
  (match spans t with
  | [] -> ()
  | ids -> Fmt.pf ppf " spans %a" Fmt.(list ~sep:comma int) ids);
  (match skipped_faulty t with
  | [] -> ()
  | ss -> Fmt.pf ppf " (skipped: %a)" Fmt.(list ~sep:comma string) ss);
  match skipped_evolved t with
  | [] -> ()
  | ss -> Fmt.pf ppf " (evolved away: %a)" Fmt.(list ~sep:comma string) ss

(* -- canonical JSON ------------------------------------------------------- *)

module J = Automed_telemetry.Microjson

let to_json t =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"atoms\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"source\":%s,\"extent\":%s}" (J.escape a.source)
           (J.escape (Scheme.to_string a.extent))))
    (atoms t);
  Buffer.add_string b "],\"pathways\":[";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"pathway\":%s,\"steps\":%d,\"surviving\":[%s],\"cert\":%s}"
           (J.escape h.pathway) h.steps
           (String.concat "," (List.map string_of_int h.surviving))
           (match h.cert with Some c -> J.escape c | None -> "null")))
    (hops t);
  Buffer.add_string b "],\"spans\":[";
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int id))
    (spans t);
  Buffer.add_string b "],\"skipped\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (J.escape s))
    (skipped_faulty t);
  Buffer.add_string b "],\"evolved\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (J.escape s))
    (skipped_evolved t);
  Buffer.add_string b "]}";
  Buffer.contents b

(* -- keyed MAC ------------------------------------------------------------ *)

let fnv64 init s =
  let h = ref init in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let sign ~key value t =
  let h = fnv64 0xCBF29CE484222325L key in
  let h = fnv64 h "\x00" in
  let h = fnv64 h (Value.to_string value) in
  let h = fnv64 h "\x00" in
  let h = fnv64 h (to_json t) in
  let h = fnv64 h "\x00" in
  let h = fnv64 h key in
  Printf.sprintf "%016Lx" h

let verify ~key value t mac = String.equal (sign ~key value t) mac
