let escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let number f =
  if Float.is_finite f then
    (* %.17g round-trips; strip to a compact form that is still JSON *)
    let s = Printf.sprintf "%.6f" f in
    (* trim trailing zeros but keep one digit after the point *)
    let len = String.length s in
    let rec last i = if i > 0 && s.[i] = '0' then last (i - 1) else i in
    let i = last (len - 1) in
    let i = if s.[i] = '.' then i + 1 else i in
    String.sub s 0 (i + 1)
  else "0"

let obj_suffix key kvs =
  match kvs with
  | [] -> ""
  | kvs ->
      let fields =
        List.map (fun (k, v) -> Printf.sprintf "%s:%s" (escape k) (escape v)) kvs
      in
      Printf.sprintf ",%s:{%s}" (escape key) (String.concat "," fields)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let parse (s : string) : (t, string) result =
  let len = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Fail (!pos, m))) fmt in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "expected %c, got %c" c d
    | None -> fail "expected %c, got end of input" c
  in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > len then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "invalid \\u escape %s" hex
                   in
                   pos := !pos + 4;
                   (* encode the code point as UTF-8 (surrogates kept raw) *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char b
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail "invalid escape \\%c" c);
            go ()
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < len && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin advance (); digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail "unexpected character %c" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing content after JSON value";
    v
  with
  | v -> Ok v
  | exception Fail (p, m) -> Error (Printf.sprintf "at offset %d: %s" p m)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
