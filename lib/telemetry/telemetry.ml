type event =
  | Span_begin of {
      id : int;
      parent : int option;
      name : string;
      ts : float;
      attrs : (string * string) list;
    }
  | Span_end of {
      id : int;
      name : string;
      ts : float;
      attrs : (string * string) list;
    }
  | Count of { name : string; delta : int }
  | Observe of { name : string; value : float }

type sink = { emit : event -> unit; flush : unit -> unit }

let null_sink = { emit = ignore; flush = ignore }

let wall_clock = Unix.gettimeofday
let clock = ref wall_clock
let set_clock f = clock := f

type frame = { fid : int; fname : string; mutable fattrs : (string * string) list }

type state = {
  sink : sink;
  mutable next_id : int;
  mutable stack : frame list;
  mutable last_ts : float;
}

let current : state option ref = ref None

(* clamped-monotonic clock reading *)
let now st =
  let t = !clock () in
  let t = if t >= st.last_ts then t else st.last_ts in
  st.last_ts <- t;
  t

let install sink =
  (* flush the sink being replaced so its buffered events are not lost *)
  (match !current with None -> () | Some st -> st.sink.flush ());
  current := Some { sink; next_id = 0; stack = []; last_ts = !clock () }

let uninstall () =
  match !current with
  | None -> ()
  | Some st ->
      current := None;
      st.sink.flush ()

let active () = !current <> None

let installed () =
  match !current with None -> None | Some st -> Some st.sink

let tee a b =
  {
    emit = (fun e -> a.emit e; b.emit e);
    flush = (fun () -> a.flush (); b.flush ());
  }

let with_sink sink f =
  let previous = !current in
  install sink;
  let restore () =
    uninstall ();
    current := previous
  in
  match f () with
  | v -> restore (); v
  | exception e -> restore (); raise e

let count ?(by = 1) name =
  match !current with
  | None -> ()
  | Some st -> st.sink.emit (Count { name; delta = by })

let observe name value =
  match !current with
  | None -> ()
  | Some st -> st.sink.emit (Observe { name; value })

let current_span_id () =
  match !current with
  | None -> None
  | Some st -> ( match st.stack with [] -> None | f :: _ -> Some f.fid)

let annotate key value =
  match !current with
  | None -> ()
  | Some st -> (
      match st.stack with
      | [] -> ()
      | f :: _ -> f.fattrs <- (key, value) :: f.fattrs)

let with_span ?attrs name f =
  match !current with
  | None -> f ()
  | Some st ->
      let id = st.next_id in
      st.next_id <- id + 1;
      let parent = match st.stack with [] -> None | p :: _ -> Some p.fid in
      let attrs = match attrs with None -> [] | Some mk -> mk () in
      st.sink.emit (Span_begin { id; parent; name; ts = now st; attrs });
      let frame = { fid = id; fname = name; fattrs = [] } in
      st.stack <- frame :: st.stack;
      let finish () =
        (match st.stack with
        | f :: rest when f == frame -> st.stack <- rest
        | stack -> st.stack <- List.filter (fun f -> f != frame) stack);
        st.sink.emit
          (Span_end
             { id; name = frame.fname; ts = now st; attrs = List.rev frame.fattrs })
      in
      (match f () with
      | v -> finish (); v
      | exception e -> finish (); raise e)

(* -- memory sink --------------------------------------------------------- *)

module Memory = struct
  type span = {
    id : int;
    parent : int option;
    name : string;
    start : float;
    dur : float;
    attrs : (string * string) list;
  }

  type histo = { n : int; sum : float; min : float; max : float }

  (* Bounded reservoir (Vitter's algorithm R) retaining a uniform sample
     of each histogram's observations for quantile estimation.  The
     replacement index stream is SplitMix64 seeded from the histogram
     name, so snapshots are deterministic across runs. *)
  type reservoir = {
    samples : float array;
    mutable seen : int;
    mutable rng : int64;
  }

  let reservoir_capacity = 512

  let splitmix_next r =
    r.rng <- Int64.add r.rng 0x9E3779B97F4A7C15L;
    let z = r.rng in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let reservoir_create name =
    {
      samples = Array.make reservoir_capacity 0.0;
      seen = 0;
      rng = Int64.of_int (Hashtbl.hash name);
    }

  let reservoir_add r v =
    (if r.seen < reservoir_capacity then r.samples.(r.seen) <- v
     else
       let j =
         Int64.to_int
           (Int64.rem
              (Int64.logand (splitmix_next r) Int64.max_int)
              (Int64.of_int (r.seen + 1)))
       in
       if j < reservoir_capacity then r.samples.(j) <- v);
    r.seen <- r.seen + 1

  type quantiles = { q50 : float; q95 : float; q99 : float }

  type open_span = {
    o_parent : int option;
    o_name : string;
    o_start : float;
    o_attrs : (string * string) list;
  }

  type t = {
    mutable completed : span list; (* reverse completion order *)
    opened : (int, open_span) Hashtbl.t;
    cnt : (string, int ref) Hashtbl.t;
    his : (string, histo ref) Hashtbl.t;
    res : (string, reservoir) Hashtbl.t;
  }

  let create () =
    {
      completed = [];
      opened = Hashtbl.create 32;
      cnt = Hashtbl.create 32;
      his = Hashtbl.create 32;
      res = Hashtbl.create 32;
    }

  let reset t =
    t.completed <- [];
    Hashtbl.reset t.opened;
    Hashtbl.reset t.cnt;
    Hashtbl.reset t.his;
    Hashtbl.reset t.res

  let emit t = function
    | Span_begin { id; parent; name; ts; attrs } ->
        Hashtbl.replace t.opened id
          { o_parent = parent; o_name = name; o_start = ts; o_attrs = attrs }
    | Span_end { id; ts; attrs; _ } -> (
        match Hashtbl.find_opt t.opened id with
        | None -> ()
        | Some o ->
            Hashtbl.remove t.opened id;
            t.completed <-
              {
                id;
                parent = o.o_parent;
                name = o.o_name;
                start = o.o_start;
                dur = ts -. o.o_start;
                attrs = o.o_attrs @ attrs;
              }
              :: t.completed)
    | Count { name; delta } -> (
        match Hashtbl.find_opt t.cnt name with
        | Some r -> r := !r + delta
        | None -> Hashtbl.add t.cnt name (ref delta))
    | Observe { name; value } -> (
        (match Hashtbl.find_opt t.res name with
        | Some r -> reservoir_add r value
        | None ->
            let r = reservoir_create name in
            reservoir_add r value;
            Hashtbl.add t.res name r);
        match Hashtbl.find_opt t.his name with
        | Some r ->
            let h = !r in
            r :=
              {
                n = h.n + 1;
                sum = h.sum +. value;
                min = Float.min h.min value;
                max = Float.max h.max value;
              }
        | None ->
            Hashtbl.add t.his name
              (ref { n = 1; sum = value; min = value; max = value }))

  let sink t = { emit = emit t; flush = ignore }

  let spans t =
    List.sort
      (fun a b ->
        match Float.compare a.start b.start with
        | 0 -> Int.compare a.id b.id
        | c -> c)
      t.completed

  let sorted_bindings tbl deref =
    Hashtbl.fold (fun k v acc -> (k, deref v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let counters t = sorted_bindings t.cnt ( ! )
  let histograms t = sorted_bindings t.his ( ! )

  let counter t name =
    match Hashtbl.find_opt t.cnt name with Some r -> !r | None -> 0

  let find_spans t name = List.filter (fun s -> s.name = name) (spans t)

  (* nearest-rank percentile over the retained sample *)
  let percentile sorted n p =
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)

  let quantiles t name =
    match Hashtbl.find_opt t.res name with
    | None -> None
    | Some r ->
        let n = Stdlib.min r.seen reservoir_capacity in
        if n = 0 then None
        else begin
          let s = Array.sub r.samples 0 n in
          Array.sort Float.compare s;
          Some
            {
              q50 = percentile s n 0.50;
              q95 = percentile s n 0.95;
              q99 = percentile s n 0.99;
            }
        end
end

(* -- JSONL sink ----------------------------------------------------------- *)

module Jsonl = struct
  let render = function
    | Span_begin { id; parent; name; ts; attrs } ->
        Printf.sprintf
          "{\"ev\":\"span_begin\",\"id\":%d,\"parent\":%s,\"name\":%s,\"ts\":%.6f%s}\n"
          id
          (match parent with Some p -> string_of_int p | None -> "null")
          (Microjson.escape name) ts
          (Microjson.obj_suffix "attrs" attrs)
    | Span_end { id; name; ts; attrs } ->
        Printf.sprintf
          "{\"ev\":\"span_end\",\"id\":%d,\"name\":%s,\"ts\":%.6f%s}\n" id
          (Microjson.escape name) ts
          (Microjson.obj_suffix "attrs" attrs)
    | Count { name; delta } ->
        Printf.sprintf "{\"ev\":\"count\",\"name\":%s,\"delta\":%d}\n"
          (Microjson.escape name) delta
    | Observe { name; value } ->
        Printf.sprintf "{\"ev\":\"observe\",\"name\":%s,\"value\":%s}\n"
          (Microjson.escape name)
          (Microjson.number value)

  let sink write = { emit = (fun ev -> write (render ev)); flush = ignore }

  let to_channel oc =
    {
      emit = (fun ev -> output_string oc (render ev));
      flush = (fun () -> flush oc);
    }
end

(* -- metric snapshots ------------------------------------------------------ *)

module Metrics = struct
  type t = {
    spans : int;
    counters : (string * int) list;
    histograms : (string * Memory.histo) list;
    quantiles : (string * Memory.quantiles) list;
  }

  let of_memory m =
    let histograms = Memory.histograms m in
    {
      spans = List.length (Memory.spans m);
      counters = Memory.counters m;
      histograms;
      quantiles =
        List.filter_map
          (fun (name, _) ->
            match Memory.quantiles m name with
            | Some q -> Some (name, q)
            | None -> None)
          histograms;
    }

  let quantiles_of t name = List.assoc_opt name t.quantiles

  let to_text t =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "spans: %d\n" t.spans);
    if t.counters <> [] then begin
      Buffer.add_string b "counters:\n";
      List.iter
        (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-40s %10d\n" n v))
        t.counters
    end;
    if t.histograms <> [] then begin
      Buffer.add_string b "histograms:\n";
      List.iter
        (fun (name, (h : Memory.histo)) ->
          let qs =
            match quantiles_of t name with
            | None -> ""
            | Some q ->
                Printf.sprintf " p50=%g p95=%g p99=%g" q.Memory.q50
                  q.Memory.q95 q.Memory.q99
          in
          Buffer.add_string b
            (Printf.sprintf "  %-40s n=%d sum=%g min=%g max=%g%s\n" name h.n
               h.sum h.min h.max qs))
        t.histograms
    end;
    Buffer.contents b

  let to_tsv t =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "spans\t-\t%d\n" t.spans);
    List.iter
      (fun (n, v) -> Buffer.add_string b (Printf.sprintf "counter\t%s\t%d\n" n v))
      t.counters;
    List.iter
      (fun (name, (h : Memory.histo)) ->
        let qs =
          match quantiles_of t name with
          | None -> "\t-\t-\t-"
          | Some q ->
              Printf.sprintf "\t%s\t%s\t%s"
                (Microjson.number q.Memory.q50)
                (Microjson.number q.Memory.q95)
                (Microjson.number q.Memory.q99)
        in
        Buffer.add_string b
          (Printf.sprintf "histogram\t%s\t%d\t%s\t%s\t%s%s\n" name h.n
             (Microjson.number h.sum) (Microjson.number h.min)
             (Microjson.number h.max) qs))
      t.histograms;
    Buffer.contents b

  let to_json t =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "{\"spans\":%d,\"counters\":{" t.spans);
    List.iteri
      (fun i (n, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "%s:%d" (Microjson.escape n) v))
      t.counters;
    Buffer.add_string b "},\"histograms\":{";
    List.iteri
      (fun i (name, (h : Memory.histo)) ->
        if i > 0 then Buffer.add_char b ',';
        let qs =
          match quantiles_of t name with
          | None -> ""
          | Some q ->
              Printf.sprintf ",\"p50\":%s,\"p95\":%s,\"p99\":%s"
                (Microjson.number q.Memory.q50)
                (Microjson.number q.Memory.q95)
                (Microjson.number q.Memory.q99)
        in
        Buffer.add_string b
          (Printf.sprintf "%s:{\"n\":%d,\"sum\":%s,\"min\":%s,\"max\":%s%s}"
             (Microjson.escape name) h.n (Microjson.number h.sum)
             (Microjson.number h.min) (Microjson.number h.max) qs))
      t.histograms;
    Buffer.add_string b "}}";
    Buffer.contents b
end
