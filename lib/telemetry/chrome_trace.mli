(** Chrome trace-event exporter: renders a {!Telemetry.Memory} sink's
    completed spans and counter totals to the JSON Object Format
    understood by [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto} (one ["X"] complete event per span, one ["C"] counter
    event per counter, timestamps in microseconds relative to the first
    span). *)

val render : ?process_name:string -> Telemetry.Memory.t -> string
(** The trace as a complete JSON document.  [process_name] (default
    ["automed"]) becomes the [process_name] metadata event. *)

val validate : string -> (unit, string) result
(** Checks that a string is well-formed JSON with the Chrome trace shape:
    a top-level object whose ["traceEvents"] field is an array of event
    objects, each carrying a string ["ph"] and a numeric ["ts"], with a
    numeric ["dur"] on ["X"] events and a string ["name"] on all
    non-metadata events. *)
