(** A minimal JSON emitter/parser so the telemetry layer stays
    dependency-free.  The emitter side covers exactly what the sinks and
    the Chrome-trace exporter need (escaped strings, finite numbers);
    the parser side is a complete RFC 8259 reader used to validate
    emitted traces and in tests. *)

val escape : string -> string
(** [escape s] is [s] as a quoted JSON string literal (quotes included). *)

val number : float -> string
(** A finite float as a valid JSON number ([nan]/[inf] become [0]). *)

val obj_suffix : string -> (string * string) list -> string
(** [obj_suffix key kvs] renders [,"key":{...}] from string pairs, or
    [""] when [kvs] is empty — for appending an optional attribute
    object to a hand-built JSON line. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parses a complete JSON document; trailing garbage is an error.
    Error messages carry a character offset. *)

val member : string -> t -> t option
(** Object field lookup ([None] on non-objects too). *)
