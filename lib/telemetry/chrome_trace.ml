module J = Microjson

let us base t = (t -. base) *. 1e6

let render ?(process_name = "automed") mem =
  let spans = Telemetry.Memory.spans mem in
  let base = match spans with [] -> 0.0 | s :: _ -> s.Telemetry.Memory.start in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":%s}}"
       (J.escape process_name));
  List.iter
    (fun (s : Telemetry.Memory.span) ->
      let args =
        ("span_id", string_of_int s.id)
        :: (match s.parent with
           | Some p -> [ ("parent_id", string_of_int p) ]
           | None -> [])
        @ s.attrs
      in
      let fields =
        List.map (fun (k, v) -> Printf.sprintf "%s:%s" (J.escape k) (J.escape v)) args
      in
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":%s,\"cat\":\"automed\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":{%s}}"
           (J.escape s.name)
           (J.number (us base s.start))
           (J.number (s.dur *. 1e6))
           (String.concat "," fields)))
    spans;
  let end_ts =
    List.fold_left
      (fun acc (s : Telemetry.Memory.span) ->
        Float.max acc (us base s.start +. (s.dur *. 1e6)))
      0.0 spans
  in
  List.iter
    (fun (name, total) ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":%s,\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"tid\":1,\"args\":{\"value\":%d}}"
           (J.escape name) (J.number end_ts) total))
    (Telemetry.Memory.counters mem);
  Buffer.add_string b "]}";
  Buffer.contents b

let validate text =
  let ( let* ) = Result.bind in
  let* doc = J.parse text in
  let* events =
    match J.member "traceEvents" doc with
    | Some (J.Arr evs) -> Ok evs
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "missing traceEvents field"
  in
  let check i ev =
    let ctx fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "event %d: %s" i m)) fmt in
    match ev with
    | J.Obj _ -> (
        match J.member "ph" ev with
        | Some (J.Str ph) -> (
            let* () =
              match J.member "ts" ev with
              | Some (J.Num _) -> Ok ()
              | _ when ph = "M" -> Ok () (* metadata events need no ts *)
              | _ -> ctx "missing numeric ts"
            in
            let* () =
              if ph = "M" then Ok ()
              else
                match J.member "name" ev with
                | Some (J.Str _) -> Ok ()
                | _ -> ctx "missing string name"
            in
            match ph with
            | "X" -> (
                match J.member "dur" ev with
                | Some (J.Num d) when d >= 0.0 -> Ok ()
                | Some (J.Num _) -> ctx "negative dur"
                | _ -> ctx "X event without numeric dur")
            | _ -> Ok ())
        | _ -> ctx "missing string ph")
    | _ -> ctx "not an object"
  in
  let rec all i = function
    | [] -> Ok ()
    | ev :: rest ->
        let* () = check i ev in
        all (i + 1) rest
  in
  all 0 events
