(** Zero-dependency instrumentation: hierarchical spans, named counters
    and histograms, and a pluggable sink interface.

    The library is designed around one invariant: {b when no sink is
    installed, every probe costs a single branch} (a match on the global
    sink reference).  Attribute lists are passed as thunks so that no
    string formatting happens on the fast path, and counter/histogram
    probes that need a computed value should be guarded with {!active}.

    Probes are process-global and single-threaded (like the rest of the
    system): spans installed by {!with_span} nest via an internal stack,
    so a sink sees a properly bracketed begin/end event stream.

    Timing uses a pluggable clock (default: wall clock) whose readings
    are clamped to be monotonically non-decreasing, so span durations are
    never negative even if the wall clock steps backwards.  Tests install
    a deterministic fake clock with {!set_clock}. *)

(** {1 Events and sinks} *)

type event =
  | Span_begin of {
      id : int;  (** unique within one sink installation *)
      parent : int option;
      name : string;
      ts : float;  (** clock seconds *)
      attrs : (string * string) list;
    }
  | Span_end of {
      id : int;
      name : string;
      ts : float;
      attrs : (string * string) list;
          (** attributes attached with {!annotate} while the span ran *)
    }
  | Count of { name : string; delta : int }
  | Observe of { name : string; value : float }

type sink = {
  emit : event -> unit;
  flush : unit -> unit;  (** called by {!uninstall} *)
}

val null_sink : sink
(** Swallows everything (useful to measure probe overhead). *)

val install : sink -> unit
(** Makes the sink the destination of all probes.  A previously
    installed sink is flushed before being replaced, so its buffered
    events are never silently dropped. *)

val uninstall : unit -> unit
(** Flushes and removes the installed sink, if any. *)

val active : unit -> bool
(** True while a sink is installed.  Guard for probes whose payload is
    expensive to compute (e.g. a bag cardinality). *)

val installed : unit -> sink option
(** The currently installed sink, if any.  A scoped measurement that
    must not steal events from an enclosing one combines the two with
    {!tee}: [with_sink (match installed () with Some o -> tee mine o
    | None -> mine) f]. *)

val tee : sink -> sink -> sink
(** [tee a b] forwards every event to both sinks; [flush] flushes
    both, [a] first. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s], runs [f], then flushes [s] and
    restores the previously installed sink (if any) — exception-safe. *)

(** {1 Probes} *)

val with_span :
  ?attrs:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  The span ends (and is
    emitted) when [f] returns or raises.  [attrs] is only forced when a
    sink is installed. *)

val annotate : string -> string -> unit
(** Attaches a key/value attribute to the innermost active span; no-op
    without a sink or outside any span. *)

val current_span_id : unit -> int option
(** The id of the innermost active span ([None] without a sink or
    outside any span).  Provenance annotations record it so an answer
    tuple links back into the exported Chrome trace. *)

val count : ?by:int -> string -> unit
(** Increments a named counter (default by 1). *)

val observe : string -> float -> unit
(** Records one observation of a named histogram. *)

(** {1 Clock} *)

val wall_clock : unit -> float
(** The default clock ([Unix.gettimeofday]). *)

val set_clock : (unit -> float) -> unit
(** Replaces the clock, e.g. with a deterministic counter in tests.
    Readings are still clamped monotonic per sink installation. *)

(** {1 Memory sink} *)

module Memory : sig
  type span = {
    id : int;
    parent : int option;
    name : string;
    start : float;  (** clock seconds *)
    dur : float;  (** seconds *)
    attrs : (string * string) list;  (** begin attrs @ annotations *)
  }

  type histo = { n : int; sum : float; min : float; max : float }

  type quantiles = { q50 : float; q95 : float; q99 : float }
  (** Nearest-rank percentiles estimated from a bounded reservoir (512
      samples, Vitter's algorithm R).  Exact while a histogram has seen
      at most 512 observations; an unbiased uniform-sample estimate
      beyond that.  The replacement stream is seeded from the histogram
      name, so snapshots are deterministic across runs. *)

  type t

  val create : unit -> t
  val sink : t -> sink

  val spans : t -> span list
  (** Completed spans ordered by (start, id) — deterministic under a
      deterministic clock. *)

  val counters : t -> (string * int) list
  (** Aggregated counter totals, sorted by name. *)

  val histograms : t -> (string * histo) list
  (** Aggregated histograms, sorted by name. *)

  val counter : t -> string -> int
  (** A single counter's total (0 when never incremented). *)

  val find_spans : t -> string -> span list
  (** Completed spans with the given name, in {!spans} order. *)

  val quantiles : t -> string -> quantiles option
  (** p50/p95/p99 of a histogram's observations ([None] when the
      histogram has never been observed). *)

  val reset : t -> unit
end

(** {1 Line-oriented JSON sink} *)

module Jsonl : sig
  val sink : (string -> unit) -> sink
  (** [sink write] renders every event as one JSON object per line and
      hands each line (newline included) to [write]. *)

  val to_channel : out_channel -> sink
  (** Writes lines to a channel; [flush] flushes the channel. *)
end

(** {1 Metric snapshots} *)

module Metrics : sig
  type t = {
    spans : int;  (** number of completed spans *)
    counters : (string * int) list;
    histograms : (string * Memory.histo) list;
    quantiles : (string * Memory.quantiles) list;
        (** reservoir percentiles, one entry per observed histogram *)
  }

  val of_memory : Memory.t -> t

  val quantiles_of : t -> string -> Memory.quantiles option

  val to_text : t -> string
  (** Human-readable multi-line summary. *)

  val to_tsv : t -> string
  (** One metric per line: [kind<TAB>name<TAB>fields...]; histogram
      lines end with the p50/p95/p99 fields. *)

  val to_json : t -> string
  (** A single JSON object:
      [{"spans":n,"counters":{..},"histograms":{name:{"n":..,"sum":..,"min":..,"max":..,"p50":..,"p95":..,"p99":..}}}]. *)
end
