(** The query processor.

    Queries posed against any schema in the repository are answered by
    walking the pathway network down to the data source schemas whose
    extents are materialised (BAV query processing: the add/extend steps
    of a pathway provide GAV-style view definitions that are unfolded; a
    contracted object contributes its lower bound - certain answers).

    The extent of an object registered in several pathways' targets is the
    {e bag union} of the contributions (the paper's default derivation).

    Two interfaces are provided:

    - {!run} evaluates a query directly, materialising (and caching)
      intermediate extents;
    - {!reformulate} produces the unfolded query text over source schemas,
      with every residual reference qualified by its source schema name
      ([<<Pedro:protein>>]) so that same-named objects from different
      sources stay distinct.  Running the reformulated query against
      {!source_env} gives the same answer as {!run}. *)

module Scheme = Automed_base.Scheme
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value
module Repository = Automed_repository.Repository
module Resilience = Automed_resilience.Resilience

type t
(** A processor wraps a repository with an extent cache. *)

val create : ?resilience:Resilience.t -> ?simplify:bool -> Repository.t -> t
(** With [resilience], every stored-extent fetch of a source registered
    in that registry goes through {!Resilience.call} (retries, timeout,
    circuit breaker).  A fetch that exhausts its policy fails the query
    in {!run} and becomes a recorded skip in {!run_degraded}.

    With [simplify] (the default), every pathway is statically analysed
    once before its first replay: the
    {!Automed_analysis.Rewrite} engine's simplification is applied when
    — and only when — the independent {!Automed_analysis.Equiv} checker
    certifies it equivalent, and the
    {!Automed_analysis.Reachability} live-set lets the processor skip
    replaying a pathway entirely for objects whose derivation through it
    is provably empty.  Answers are bit-identical either way;
    [simplify:false] is the naive replay (the CLI's [--no-simplify]). *)

val repository : t -> Repository.t
val resilience : t -> Resilience.t option

val simplify_enabled : t -> bool
(** Whether the static-analysis fast path (certified simplification and
    reachability pruning) is on. *)

val invalidate : t -> unit
(** Drops the extent cache (call after data or pathway changes). *)

val invalidate_source : t -> string -> unit
(** Drops every cache entry that incorporates data from the given source
    schema (directly or through derivation), so a recovered or refreshed
    source is re-fetched on the next query.  Partial bags computed while
    a source was skipped are never cached in the first place, so this is
    only needed after the source's {e data} changed. *)

type error = {
  message : string;
  schema : string option;
      (** the schema the failing request was posed against *)
  expr_size : int option;
      (** AST size of the expression being evaluated when the error was
          raised (post-optimisation / reformulation) — a proxy for how
          far the query had been unfolded *)
}

val error : ?schema:string -> ?expr_size:int -> string -> error
(** Builds an error value; the optional context fields default to
    absent.  Exposed for code that adapts string errors into processor
    errors (e.g. the integration workflow). *)

val pp_error : error Fmt.t
(** Prints the message followed by the available context, e.g.
    [no extent for ... \[schema ispider_v6, reformulated size 42\]]. *)

val extent_of : t -> schema:string -> Scheme.t -> (Value.Bag.t, error) result
(** The derived extent of one schema object: bag union of the stored
    extent (if any) and the contribution of every pathway into the
    schema.  Extend/contract bounds contribute their lower bound. *)

val run : ?optimize:bool -> t -> schema:string -> Ast.expr -> (Value.t, error) result
(** Evaluates a query whose scheme references are objects of the given
    schema.  [optimize] (default [true]) reschedules comprehension
    qualifiers (filter push-down, selectivity-greedy generator order)
    before evaluation; pass [false] to evaluate the query verbatim. *)

type completeness = {
  complete : bool;  (** no source was skipped *)
  sources_ok : string list;
      (** sources whose data is incorporated in the answer (fetched
          during this run or served from complete cached extents),
          sorted *)
  sources_skipped : (string * string) list;
      (** sources that exhausted their resilience policy, with the
          reason; such sources contribute nothing to the answer *)
  retries : int;  (** resilience retries spent during this run *)
  breaker_opens : int;  (** breaker trips during this run *)
  short_circuits : int;  (** fetches rejected by an open breaker *)
}
(** The completeness report of a degraded run: which sources answered,
    which were skipped and why, and what the resilience layer spent
    getting there. *)

val pp_completeness : completeness Fmt.t
(** Multi-line human-readable rendering, e.g.
    [DEGRADED (2 sources answered, 1 skipped)]. *)

val run_degraded :
  ?optimize:bool ->
  t ->
  schema:string ->
  Ast.expr ->
  (Value.t * completeness, error) result
(** Like {!run}, but a source fetch that exhausts its resilience policy
    degrades the answer instead of failing it: the source contributes
    nothing (its certain-answer lower bound) and is reported in the
    {!completeness} record.  Results computed with a skip are never
    cached, so a later run re-attempts the source.  Without a resilience
    registry (or with no faults) this returns exactly {!run}'s value with
    [complete = true]. *)

val run_string : t -> schema:string -> string -> (Value.t, error) result
(** Parses and runs. *)

val reformulate : t -> schema:string -> Ast.expr -> (Ast.expr, error) result
(** Unfolds the query onto the data source schemas.  Residual references
    are schema-qualified. *)

val source_env : t -> Automed_iql.Eval.env
(** Environment resolving schema-qualified references ([<<S:t>>] or
    [<<S:t,c>>]) to stored extents; for evaluating reformulated queries. *)

val answerable : t -> schema:string -> Ast.expr -> bool
(** True when every referenced object exists in the schema and the query
    evaluates without error. *)

val translate :
  t -> from_schema:string -> to_schema:string -> Ast.expr -> (Ast.expr, error) result
(** Translates a query stated on one schema into an equivalent query on
    another schema connected to it through the pathway network (in either
    direction, since pathways reverse automatically - the peer-to-peer
    BAV reformulation of McBrien & Poulovassilis).  Objects that the
    target schema cannot derive are replaced by their certain-answer
    lower bound ([Void] when nothing is known), so the translated query
    under-approximates in the same way {!run} does. *)
