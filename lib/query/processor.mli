(** The query processor.

    Queries posed against any schema in the repository are answered by
    walking the pathway network down to the data source schemas whose
    extents are materialised (BAV query processing: the add/extend steps
    of a pathway provide GAV-style view definitions that are unfolded; a
    contracted object contributes its lower bound - certain answers).

    The extent of an object registered in several pathways' targets is the
    {e bag union} of the contributions (the paper's default derivation).

    Two interfaces are provided:

    - {!run} evaluates a query directly, materialising (and caching)
      intermediate extents;
    - {!reformulate} produces the unfolded query text over source schemas,
      with every residual reference qualified by its source schema name
      ([<<Pedro:protein>>]) so that same-named objects from different
      sources stay distinct.  Running the reformulated query against
      {!source_env} gives the same answer as {!run}.

    Two observability companions ride on the same derivation walk:

    - {!run_provenance} evaluates through the provenance-annotated
      shadow interpreter ({!Automed_provenance.Peval}), returning the
      bit-identical answer plus, per answer tuple, the
      {!Automed_provenance.Lineage.t} citing the stored extents,
      pathway hops, audit certificates and telemetry spans the tuple
      was derived from;
    - {!explain_plan} renders the plan story without running the query:
      per source the reformulation tree, each reachability-pruning or
      no-definition decision with its reason, simplification
      certificates, and cache state. *)

module Scheme = Automed_base.Scheme
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value
module Repository = Automed_repository.Repository
module Resilience = Automed_resilience.Resilience
module Lineage = Automed_provenance.Lineage
module Peval = Automed_provenance.Peval

type t
(** A processor wraps a repository with an extent cache. *)

val create : ?resilience:Resilience.t -> ?simplify:bool -> Repository.t -> t
(** With [resilience], every stored-extent fetch of a source registered
    in that registry goes through {!Resilience.call} (retries, timeout,
    circuit breaker).  A fetch that exhausts its policy fails the query
    in {!run} and becomes a recorded skip in {!run_degraded}.

    With [simplify] (the default), every pathway is statically analysed
    once before its first replay: the
    {!Automed_analysis.Rewrite} engine's simplification is applied when
    — and only when — the independent {!Automed_analysis.Equiv} checker
    certifies it equivalent, and the
    {!Automed_analysis.Reachability} live-set lets the processor skip
    replaying a pathway entirely for objects whose derivation through it
    is provably empty.  Answers are bit-identical either way;
    [simplify:false] is the naive replay (the CLI's [--no-simplify]). *)

val repository : t -> Repository.t
val resilience : t -> Resilience.t option

val simplify_enabled : t -> bool
(** Whether the static-analysis fast path (certified simplification and
    reachability pruning) is on. *)

val cache_stats : t -> int * int * int
(** Live entries in the three caches — plain extents, provenance twins,
    memoised pathway analyses — for the status dashboard's cache line
    (how much state a cache-invalidation churn throws away). *)

val invalidate : t -> unit
(** Drops the extent cache (call after data or pathway changes). *)

val invalidate_source : t -> string -> unit
(** Drops every cache entry that incorporates data from the given source
    schema (directly or through derivation) — extent bags, provenance
    twins, and the memoised analysis (simplification, live set,
    certificate) of pathways that start or end at the source — so a
    recovered, refreshed or {e evolved} source is re-analysed and
    re-fetched on the next query, while entries of untouched sources
    stay cached.  Partial bags computed while a source was skipped are
    never cached in the first place, so this is only needed after the
    source's data or shape changed.  Emits the counters
    [processor.invalidated.extents], [processor.invalidated.provenance]
    and [processor.invalidated.pinfo] with the number of entries
    dropped (the cache-hygiene regression tests pin both directions on
    these). *)

type error = {
  message : string;
  schema : string option;
      (** the schema the failing request was posed against *)
  expr_size : int option;
      (** AST size of the expression being evaluated when the error was
          raised (post-optimisation / reformulation) — a proxy for how
          far the query had been unfolded *)
}

val error : ?schema:string -> ?expr_size:int -> string -> error
(** Builds an error value; the optional context fields default to
    absent.  Exposed for code that adapts string errors into processor
    errors (e.g. the integration workflow). *)

val pp_error : error Fmt.t
(** Prints the message followed by the available context, e.g.
    [no extent for ... \[schema ispider_v6, reformulated size 42\]]. *)

val extent_of : t -> schema:string -> Scheme.t -> (Value.Bag.t, error) result
(** The derived extent of one schema object: bag union of the stored
    extent (if any) and the contribution of every pathway into the
    schema.  Extend/contract bounds contribute their lower bound. *)

val run : ?optimize:bool -> t -> schema:string -> Ast.expr -> (Value.t, error) result
(** Evaluates a query whose scheme references are objects of the given
    schema.  [optimize] (default [true]) reschedules comprehension
    qualifiers (filter push-down, selectivity-greedy generator order)
    before evaluation; pass [false] to evaluate the query verbatim. *)

(** {1 Provenance-annotated answers} *)

type annotated_tuple = {
  value : Value.t;  (** one distinct answer value *)
  count : int;  (** its bag multiplicity *)
  lineage : Lineage.t;  (** what it was derived from *)
  mac : string;
      (** keyed tamper-evidence digest of (value, lineage); see
          {!Lineage.sign} *)
}

type annotated = {
  result : Value.t;
      (** the plain answer — bit-identical to what {!run} returns for
          the same query *)
  tuples : annotated_tuple list;
      (** per-tuple lineage: one entry per distinct answer value (in
          the bag's canonical order), or a single entry for a scalar
          answer *)
  lineage : Lineage.t;
      (** answer-level lineage: everything any tuple cites, joined with
          the ambient lineage (cited-but-empty extents, pruned-free
          hops, degraded-mode skips) *)
}

val default_mac_key : string
(** Key used to sign tuples when [?key] is omitted. *)

val run_provenance :
  ?optimize:bool ->
  ?key:string ->
  t ->
  schema:string ->
  Ast.expr ->
  (annotated, error) result
(** Like {!run}, but through the lineage-carrying shadow interpreter.
    The [result] field is guaranteed bit-identical to {!run}'s answer:
    scalar operator semantics are delegated to the reference evaluator
    (see {!Automed_provenance.Peval}), and the suite checks the
    equivalence by property.  Annotated extents are cached separately
    (same tainting discipline as the plain cache), so interleaving
    plain and provenance runs is safe. *)

type completeness = {
  complete : bool;  (** no source was skipped *)
  sources_ok : string list;
      (** sources whose data is incorporated in the answer (fetched
          during this run or served from complete cached extents),
          sorted *)
  sources_skipped : (string * string) list;
      (** sources that contributed nothing to the answer, with the
          reason: faulty ones that exhausted their resilience policy,
          and evolved-away ones (see [sources_evolved]) *)
  sources_evolved : string list;
      (** the subset of skipped sources that were not faulty but
          {e evolved away} — retired by a live schema evolution.  Their
          absence is permanent: re-running will not recover their
          contribution, unlike a faulty skip. *)
  retries : int;  (** resilience retries spent during this run *)
  breaker_opens : int;  (** breaker trips during this run *)
  short_circuits : int;  (** fetches rejected by an open breaker *)
  source_impact : (string * int) list;
      (** per skipped source, how many answer tuples (counted with
          multiplicity) carry its skip marker in their lineage — i.e.
          flowed through a bag the source should have fed and so could
          have gained support from it.  Only {!run_degraded_provenance}
          fills this in; {!run_degraded} leaves it empty. *)
}
(** The completeness report of a degraded run: which sources answered,
    which were skipped and why, and what the resilience layer spent
    getting there. *)

val pp_completeness : completeness Fmt.t
(** Multi-line human-readable rendering, e.g.
    [DEGRADED (2 sources answered, 1 skipped)]. *)

val run_degraded :
  ?optimize:bool ->
  t ->
  schema:string ->
  Ast.expr ->
  (Value.t * completeness, error) result
(** Like {!run}, but a source fetch that exhausts its resilience policy
    degrades the answer instead of failing it: the source contributes
    nothing (its certain-answer lower bound) and is reported in the
    {!completeness} record.  Results computed with a skip are never
    cached, so a later run re-attempts the source.  Without a resilience
    registry (or with no faults) this returns exactly {!run}'s value with
    [complete = true]. *)

val run_degraded_provenance :
  ?optimize:bool ->
  ?key:string ->
  t ->
  schema:string ->
  Ast.expr ->
  (annotated * completeness, error) result
(** {!run_degraded} through the annotated interpreter.  A skipped
    source leaves a skip marker in the lineage of every tuple that
    flowed through a bag it should have fed; the completeness report's
    [source_impact] counts those tuples per skipped source, answering
    "how much of this degraded answer could the missing source have
    changed?". *)

val run_string : t -> schema:string -> string -> (Value.t, error) result
(** Parses and runs. *)

val reformulate : t -> schema:string -> Ast.expr -> (Ast.expr, error) result
(** Unfolds the query onto the data source schemas.  Residual references
    are schema-qualified. *)

(** {1 Explain: the plan story}

    {!explain_plan} walks the same reformulation recursion as {!run} and
    {!reformulate} but records decisions instead of evaluating: which
    objects are stored (and how many rows), which are cached, and — per
    pathway into each schema — whether the pathway was applied, pruned
    by reachability analysis (with the reason it provably cannot
    contribute), or yields no definition for the object.  It never
    fetches source data, so explaining a query is side-effect free
    (breakers are not exercised, caches are not filled). *)

type cache_state = Cache_hit | Cache_cold

type explain_pathway = {
  ep_from : string;  (** the pathway's source schema *)
  ep_steps : int;  (** stored (unsimplified) step count *)
  ep_simplified_steps : int;  (** steps actually replayed *)
  ep_surviving : int list;
      (** 1-based original-step indices kept verbatim by the certified
          simplification (all of them when nothing was simplified) *)
  ep_cert : string option;  (** audit-certificate id, when simplified *)
  ep_decision : explain_decision;
}

and explain_decision =
  | Applied of explain_node list
      (** the pathway contributes; children are the source-schema
          objects its view definition reads *)
  | Pruned of string  (** reachability pruning, with the reason *)
  | No_definition of string
      (** the object is deleted/contracted along the pathway *)

and explain_node = {
  en_schema : string;
  en_object : Scheme.t;
  en_stored : bool;
  en_rows : int option;  (** stored extent cardinality, when stored *)
  en_cached : cache_state;
      (** whether a (plain or provenance) cached extent exists for this
          object right now *)
  en_pathways : explain_pathway list;
}

type explain = {
  ex_schema : string;
  ex_query : Ast.expr;  (** as posed *)
  ex_optimized : Ast.expr;  (** as evaluated (qualifier rescheduling) *)
  ex_roots : explain_node list;
      (** one node per schema object the optimized query references *)
}

val explain_plan :
  ?optimize:bool -> t -> schema:string -> Ast.expr -> (explain, error) result

val pp_explain_node : explain_node Fmt.t

val pp_explain : explain Fmt.t
(** Indented text rendering of the whole plan story (the CLI's
    [automed explain] default output). *)

val source_env : t -> Automed_iql.Eval.env
(** Environment resolving schema-qualified references ([<<S:t>>] or
    [<<S:t,c>>]) to stored extents; for evaluating reformulated queries. *)

val answerable : t -> schema:string -> Ast.expr -> bool
(** True when every referenced object exists in the schema and the query
    evaluates without error. *)

val translate :
  t -> from_schema:string -> to_schema:string -> Ast.expr -> (Ast.expr, error) result
(** Translates a query stated on one schema into an equivalent query on
    another schema connected to it through the pathway network (in either
    direction, since pathways reverse automatically - the peer-to-peer
    BAV reformulation of McBrien & Poulovassilis).  Objects that the
    target schema cannot derive are replaced by their certain-answer
    lower bound ([Void] when nothing is known), so the translated query
    under-approximates in the same way {!run} does. *)
