module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value
module Eval = Automed_iql.Eval
module Parser = Automed_iql.Parser
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Telemetry = Automed_telemetry.Telemetry
module Resilience = Automed_resilience.Resilience
module Analysis = Automed_analysis.Analysis
module Reachability = Automed_analysis.Reachability
module Rewrite = Automed_analysis.Rewrite
module Equiv = Automed_analysis.Equiv
module Lineage = Automed_provenance.Lineage
module Peval = Automed_provenance.Peval
module SS = Set.Make (String)

type error = {
  message : string;
  schema : string option;
  expr_size : int option;
}

let error ?schema ?expr_size message = { message; schema; expr_size }

let pp_error ppf e =
  Fmt.string ppf e.message;
  match (e.schema, e.expr_size) with
  | None, None -> ()
  | schema, size ->
      Fmt.pf ppf " [";
      (match schema with Some s -> Fmt.pf ppf "schema %s" s | None -> ());
      (match (schema, size) with
      | Some _, Some _ -> Fmt.pf ppf ", "
      | _ -> ());
      (match size with
      | Some n -> Fmt.pf ppf "reformulated size %d" n
      | None -> ());
      Fmt.pf ppf "]"

exception Err of error

let err fmt = Format.kasprintf (fun message -> raise (Err (error message))) fmt

(* fill in request context an [err] raised deep in the derivation lacks *)
let add_context ?schema ?expr_size e =
  {
    e with
    schema = (match e.schema with None -> schema | some -> some);
    expr_size = (match e.expr_size with None -> expr_size | some -> some);
  }

module EK = struct
  type t = string * Scheme.t

  let equal (s1, o1) (s2, o2) = String.equal s1 s2 && Scheme.equal o1 o2
  let hash = Hashtbl.hash
end

module EH = Hashtbl.Make (EK)

(* Provenance frames track, for the extent computation in progress, which
   sources contributed data and whether any source was skipped by the
   degraded mode (a "tainted" result).  Tainted bags are never cached, so
   a failed-then-recovered source cannot poison the extent cache with a
   partial answer. *)
type frame = { mutable srcs : SS.t; mutable tainted : bool }

(* Static analysis of one stored pathway, computed once and reused for
   every replay: the certified simplification and the set of target
   objects with a provably non-empty derivation.  The surviving-step
   indices and certificate id feed lineage annotations, so an answer
   tuple can say exactly which pathway steps its derivation crossed and
   under which equivalence audit. *)
type pathway_info = {
  simplified : Transform.pathway;
      (* the original when simplification is off, refused, or a no-op *)
  live : Scheme.Set.t option; (* None: unknown, never prune *)
  surviving : int list;
      (* 1-based indices of original steps kept verbatim by the rewrite *)
  cert : string option; (* audit-certificate id of the applied rewrite *)
}

type t = {
  repo : Repository.t;
  resilience : Resilience.t option;
  simplify : bool;
  cache : (Value.Bag.t * SS.t) EH.t;
      (* cached bag plus the sources whose data it incorporates *)
  pcache : (Peval.entry list * Lineage.t * SS.t) EH.t;
      (* the annotated twin of [cache], for provenance runs *)
  pinfo : (Transform.pathway, pathway_info) Hashtbl.t;
  mutable visiting : string list; (* schemas on the derivation stack *)
  mutable degraded : bool; (* soften source failures into skips *)
  mutable frames : frame list; (* innermost first *)
  mutable run_skipped : (string * string * skip_kind) list;
      (* source, reason, kind; newest first *)
}

and skip_kind = Skip_faulty | Skip_evolved

let create ?resilience ?(simplify = true) repo =
  {
    repo;
    resilience;
    simplify;
    cache = EH.create 64;
    pcache = EH.create 64;
    pinfo = Hashtbl.create 16;
    visiting = [];
    degraded = false;
    frames = [];
    run_skipped = [];
  }

let repository t = t.repo
let resilience t = t.resilience
let simplify_enabled t = t.simplify

let cache_stats t =
  (EH.length t.cache, EH.length t.pcache, Hashtbl.length t.pinfo)

let invalidate t =
  EH.reset t.cache;
  EH.reset t.pcache;
  Hashtbl.reset t.pinfo;
  t.visiting <- [];
  t.frames <- []

(* Targeted churn invalidation: exactly the entries tainted by [source]
   are dropped from all three caches — extent bags and provenance twins
   whose contributing-source sets cite it, and pathway-info records of
   pathways that start or end at it (an evolution alters the source's
   shape or replaces those pathways, so their simplification, live set
   and certificate are stale).  Entries of untouched sources survive;
   the emitted counters let tests pin both directions (no stale hits,
   no over-invalidation). *)
let invalidate_source t source =
  let doomed =
    EH.fold
      (fun ((schema, _) as key) (_, srcs) acc ->
        if schema = source || SS.mem source srcs then key :: acc else acc)
      t.cache []
  in
  List.iter (EH.remove t.cache) doomed;
  let doomed_p =
    EH.fold
      (fun ((schema, _) as key) (_, _, srcs) acc ->
        if schema = source || SS.mem source srcs then key :: acc else acc)
      t.pcache []
  in
  List.iter (EH.remove t.pcache) doomed_p;
  let doomed_i =
    Hashtbl.fold
      (fun (p : Transform.pathway) _ acc ->
        if p.from_schema = source || p.to_schema = source then p :: acc
        else acc)
      t.pinfo []
  in
  List.iter (Hashtbl.remove t.pinfo) doomed_i;
  if Telemetry.active () then begin
    Telemetry.count ~by:(List.length doomed) "processor.invalidated.extents";
    Telemetry.count ~by:(List.length doomed_p)
      "processor.invalidated.provenance";
    Telemetry.count ~by:(List.length doomed_i) "processor.invalidated.pinfo"
  end

(* -- provenance frames --------------------------------------------------- *)

let push_frame t =
  let f = { srcs = SS.empty; tainted = false } in
  t.frames <- f :: t.frames;
  f

let pop_frame t f =
  (match t.frames with
  | g :: rest when g == f -> t.frames <- rest
  | _ -> ());
  match t.frames with
  | parent :: _ ->
      parent.srcs <- SS.union parent.srcs f.srcs;
      if f.tainted then parent.tainted <- true
  | [] -> ()

let note_sources t ss =
  match t.frames with
  | [] -> ()
  | f :: _ -> f.srcs <- SS.union f.srcs ss

let note_skip ?(kind = Skip_faulty) t source reason =
  (match t.frames with [] -> () | f :: _ -> f.tainted <- true);
  if not (List.exists (fun (s, _, _) -> s = source) t.run_skipped) then
    t.run_skipped <- (source, reason, kind) :: t.run_skipped

(* Derive, for each object of [p.to_schema], its defining expression over
   the objects of [p.from_schema], by symbolically replaying the pathway. *)
let defs_of_pathway repo (p : Transform.pathway) : Ast.expr Scheme.Map.t =
  Telemetry.with_span "pathway.apply"
    ~attrs:(fun () ->
      [
        ("pathway", p.from_schema ^ " -> " ^ p.to_schema);
        ("steps", string_of_int (List.length p.steps));
      ])
  @@ fun () ->
  Telemetry.count "processor.pathway_applications";
  if Telemetry.active () then
    Telemetry.count ~by:(List.length p.steps) "processor.pathway_steps_replayed";
  let src =
    match Repository.schema repo p.from_schema with
    | Some s -> s
    | None -> err "pathway source schema %s is not registered" p.from_schema
  in
  let subst defs q =
    let missing = ref None in
    let q' =
      Ast.subst_schemes
        (fun s ->
          match Scheme.Map.find_opt s defs with
          | Some e -> Some e
          | None ->
              if !missing = None then missing := Some s;
              None)
        q
    in
    match !missing with
    | Some s ->
        err "query %s references %s, absent at this point of pathway %s -> %s"
          (Ast.to_string q) (Scheme.to_string s) p.from_schema p.to_schema
    | None -> q'
  in
  let init =
    List.fold_left
      (fun m o -> Scheme.Map.add o (Ast.SchemeRef o) m)
      Scheme.Map.empty (Schema.objects src)
  in
  List.fold_left
    (fun defs step ->
      match (step : Transform.prim) with
      | Add (o, q) -> Scheme.Map.add o (subst defs q) defs
      | Extend (o, ql, _) ->
          (* only the lower bound is derivable: certain answers *)
          Scheme.Map.add o (subst defs ql) defs
      | Delete (o, _) | Contract (o, _, _) -> Scheme.Map.remove o defs
      | Rename (a, b) -> (
          match Scheme.Map.find_opt a defs with
          | Some e -> Scheme.Map.add b e (Scheme.Map.remove a defs)
          | None -> err "rename of unknown object %s" (Scheme.to_string a))
      | Id (a, b) -> (
          if Scheme.equal a b then defs
          else
            match Scheme.Map.find_opt a defs with
            | Some e -> Scheme.Map.add b e defs
            | None -> err "id of unknown object %s" (Scheme.to_string a)))
    init p.steps

let prim_equal (a : Transform.prim) (b : Transform.prim) =
  match (a, b) with
  | Add (o1, q1), Add (o2, q2) | Delete (o1, q1), Delete (o2, q2) ->
      Scheme.equal o1 o2 && Ast.equal q1 q2
  | Extend (o1, l1, u1), Extend (o2, l2, u2)
  | Contract (o1, l1, u1), Contract (o2, l2, u2) ->
      Scheme.equal o1 o2 && Ast.equal l1 l2 && Ast.equal u1 u2
  | Rename (a1, b1), Rename (a2, b2) | Id (a1, b1), Id (a2, b2) ->
      Scheme.equal a1 a2 && Scheme.equal b1 b2
  | _ -> false

(* Which original steps survive verbatim in the simplified pathway
   (greedy in-order matching — sound because the rewrite rules only drop
   or locally replace steps, never reorder them).  1-based, matching the
   linter's step indices. *)
let surviving_indices ~original ~simplified =
  let rec go i orig simp acc =
    match (orig, simp) with
    | _, [] | [], _ -> List.rev acc
    | o :: os, s :: ss ->
        if prim_equal o s then go (i + 1) os ss (i :: acc)
        else go (i + 1) os (s :: ss) acc
  in
  go 1 original simplified []

let all_indices steps = List.mapi (fun i _ -> i + 1) steps

let cert_id (c : Equiv.certificate) =
  Printf.sprintf "eq-%do-%dt%s" c.Equiv.objects c.Equiv.trials
    (if c.Equiv.reverse_checked then "-r" else "")

(* The proof-checked fast path.  Each stored pathway is analysed once:
   the rewrite engine's simplification is used only when the independent
   equivalence checker certifies it (a refusal falls back to the
   original and is counted), and the reachability pass yields the live
   set that lets replays be skipped entirely for objects whose
   derivation is provably empty — sound because the empty bag is the
   identity of the bag union that combines contributions. *)
let pathway_info t (p : Transform.pathway) =
  match Hashtbl.find_opt t.pinfo p with
  | Some info -> info
  | None ->
      let unchanged =
        { simplified = p; live = None; surviving = all_indices p.steps;
          cert = None }
      in
      let info =
        if not t.simplify then unchanged
        else
          match Repository.schema t.repo p.from_schema with
          | None -> unchanged
          | Some src ->
              let simplified, surviving, cert =
                match Analysis.simplify_certified src p with
                | `Unchanged | `Refused _ ->
                    (p, all_indices p.steps, None)
                | `Simplified (o, cert) ->
                    (if Telemetry.active () then
                       let removed =
                         List.length p.steps
                         - List.length o.Rewrite.pathway.Transform.steps
                       in
                       Telemetry.count ~by:removed
                         "processor.pathway_steps_simplified_away");
                    ( o.Rewrite.pathway,
                      surviving_indices ~original:p.steps
                        ~simplified:o.Rewrite.pathway.Transform.steps,
                      Some (cert_id cert) )
              in
              { simplified;
                live = Reachability.live_objects ~source:src p;
                surviving; cert }
      in
      Hashtbl.replace t.pinfo p info;
      info

let rec extent_exn t ~schema o =
  match EH.find_opt t.cache (schema, o) with
  | Some (bag, srcs) ->
      Telemetry.count "processor.extent.cache_hits";
      note_sources t srcs;
      bag
  | None ->
      Telemetry.count "processor.extent.cache_misses";
      if List.mem schema t.visiting then
        err "cycle in pathway network at schema %s" schema;
      let sch =
        match Repository.schema t.repo schema with
        | Some s -> s
        | None -> err "no schema %s" schema
      in
      if not (Schema.mem o sch) then
        err "schema %s has no object %s" schema (Scheme.to_string o);
      t.visiting <- schema :: t.visiting;
      let frame = push_frame t in
      let finish () =
        t.visiting <- List.tl t.visiting;
        pop_frame t frame
      in
      let bag =
        Telemetry.with_span "processor.extent"
          ~attrs:(fun () ->
            [ ("schema", schema); ("object", Scheme.to_string o) ])
          (fun () ->
            match compute_extent t ~schema o with
            | bag -> finish (); bag
            | exception e -> finish (); raise e)
      in
      (* a bag computed while a source was skipped is partial: serving it
         from the cache after the source recovers would be a staleness
         bug, so only complete bags are cached *)
      if not frame.tainted then EH.replace t.cache (schema, o) (bag, frame.srcs);
      bag

(* The raw source fetch, routed through the resilience kernel when the
   schema is a registered source.  In degraded mode an exhausted fetch
   becomes a recorded skip (contributing nothing); otherwise it is a
   query error. *)
and fetch_stored t ~schema o :
    [ `Stored of Value.Bag.t | `Absent | `Skipped of string * skip_kind ] =
  let fetch () = Repository.stored_extent t.repo ~schema o in
  let classify = function
    | Some b ->
        note_sources t (SS.singleton schema);
        `Stored b
    | None -> `Absent
  in
  if Repository.retired t.repo schema then
    (* evolved away: permanent, so no retries and no breaker involvement *)
    let reason = "source evolved away" in
    if t.degraded then begin
      Telemetry.count "source.skipped";
      Telemetry.count "source.skipped_evolved";
      if Telemetry.active () then Telemetry.annotate "evolved" schema;
      note_skip ~kind:Skip_evolved t schema reason;
      `Skipped (reason, Skip_evolved)
    end
    else
      err "source %s evolved away (retired by schema evolution)" schema
  else
  match t.resilience with
  | Some r when Resilience.covers r schema -> (
      match Resilience.call r ~source:schema fetch with
      | Ok res -> classify res
      | Error f ->
          let reason = Fmt.str "%a" Resilience.pp_failure f in
          if t.degraded then begin
            Telemetry.count "source.skipped";
            if Telemetry.active () then Telemetry.annotate "skipped" schema;
            note_skip t schema reason;
            `Skipped (reason, Skip_faulty)
          end
          else err "%s" reason)
  | _ -> classify (fetch ())

and fetch_stored_traced t ~schema o =
  Telemetry.with_span "source.fetch"
    ~attrs:(fun () -> [ ("schema", schema); ("object", Scheme.to_string o) ])
    (fun () ->
      let r = fetch_stored t ~schema o in
      (if Telemetry.active () then
         match r with
         | `Stored b ->
             let rows = Value.Bag.cardinal b in
             Telemetry.annotate "rows" (string_of_int rows);
             Telemetry.count ~by:rows "processor.rows_fetched"
         | `Absent -> Telemetry.annotate "stored" "false"
         | `Skipped _ -> ());
      r)

and compute_extent t ~schema o =
  let stored =
    match fetch_stored_traced t ~schema o with
    | `Stored b -> [ b ]
    | `Absent | `Skipped _ -> []
  in
  let from_pathways =
    List.filter_map
      (fun (p : Transform.pathway) ->
        (* a contribution that used to flow from an evolved-away source:
           the quarantined pathway yields nothing, but a degraded run
           must account for the support the answer can no longer have *)
        if t.degraded && Repository.retired t.repo p.from_schema then
          note_skip ~kind:Skip_evolved t p.from_schema "source evolved away";
        let info = pathway_info t p in
        match info.live with
        | Some live when not (Scheme.Set.mem o live) ->
            Telemetry.count "processor.pathways_pruned";
            None
        | _ -> (
            let defs = defs_of_pathway t.repo info.simplified in
            match Scheme.Map.find_opt o defs with
            | None -> None
            | Some e -> Some (eval_over t ~schema:p.from_schema e)))
      (Repository.pathways_into t.repo schema)
  in
  List.fold_left Value.Bag.union Value.Bag.empty (stored @ from_pathways)

and eval_over t ~schema e =
  let env =
    Eval.env ~schemes:(fun s -> Some (extent_exn t ~schema s)) ()
  in
  match Eval.eval env e with
  | Ok (Value.Bag b) -> b
  | Ok v ->
      err "query %s over %s produced a non-collection %s" (Ast.to_string e)
        schema (Value.to_string v)
  | Error e -> err "%s" (Fmt.str "%a" Eval.pp_error e)

let extent_of t ~schema o =
  match extent_exn t ~schema o with
  | bag -> Ok bag
  | exception Err e -> Error (add_context ~schema e)

(* -- provenance-annotated extents ---------------------------------------- *)

let hop_of (p : Transform.pathway) info =
  {
    Lineage.pathway = p.from_schema ^ "->" ^ p.to_schema;
    steps = List.length p.steps;
    surviving = info.surviving;
    cert = info.cert;
  }

(* The annotated twin of [extent_exn]/[compute_extent]/[eval_over]: the
   same derivation walk (same caching discipline, same provenance
   frames, same pruning) over lineage-carrying bags.  Stored rows are
   tagged with their extent atom and the telemetry span id of the fetch;
   every pathway crossing stamps a hop; a degraded-mode skip leaves a
   marker in the ambient lineage. *)
let rec extent_av t ~schema o : Peval.entry list * Lineage.t =
  match EH.find_opt t.pcache (schema, o) with
  | Some (es, amb, srcs) ->
      Telemetry.count "processor.extent.cache_hits";
      note_sources t srcs;
      (es, amb)
  | None ->
      Telemetry.count "processor.extent.cache_misses";
      if List.mem schema t.visiting then
        err "cycle in pathway network at schema %s" schema;
      let sch =
        match Repository.schema t.repo schema with
        | Some s -> s
        | None -> err "no schema %s" schema
      in
      if not (Schema.mem o sch) then
        err "schema %s has no object %s" schema (Scheme.to_string o);
      t.visiting <- schema :: t.visiting;
      let frame = push_frame t in
      let finish () =
        t.visiting <- List.tl t.visiting;
        pop_frame t frame
      in
      let ((es, amb) as res) =
        Telemetry.with_span "processor.extent"
          ~attrs:(fun () ->
            [ ("schema", schema); ("object", Scheme.to_string o) ])
          (fun () ->
            match compute_extent_av t ~schema o with
            | r -> finish (); r
            | exception e -> finish (); raise e)
      in
      if not frame.tainted then
        EH.replace t.pcache (schema, o) (es, amb, frame.srcs);
      res

and compute_extent_av t ~schema o =
  let base =
    match fetch_stored_traced t ~schema o with
    | `Stored b ->
        (* the atom is ambient too, so an empty stored extent is cited *)
        let lin =
          Lineage.atom ?span:(Telemetry.current_span_id ()) ~source:schema o
        in
        (List.map (fun (v, n) -> { Peval.v; n; lin }) b, lin)
    | `Absent -> ([], Lineage.empty)
    | `Skipped (_reason, Skip_faulty) -> ([], Lineage.skip schema)
    | `Skipped (_reason, Skip_evolved) -> ([], Lineage.skip_evolved schema)
  in
  let contribs =
    List.filter_map
      (fun (p : Transform.pathway) ->
        let evolved_from =
          t.degraded && Repository.retired t.repo p.from_schema
        in
        if evolved_from then
          note_skip ~kind:Skip_evolved t p.from_schema "source evolved away";
        let info = pathway_info t p in
        match info.live with
        | Some live when not (Scheme.Set.mem o live) ->
            Telemetry.count "processor.pathways_pruned";
            if evolved_from then
              Some ([], Lineage.skip_evolved p.from_schema)
            else None
        | _ -> (
            let defs = defs_of_pathway t.repo info.simplified in
            match Scheme.Map.find_opt o defs with
            | None ->
                if evolved_from then
                  Some ([], Lineage.skip_evolved p.from_schema)
                else None
            | Some e ->
                let es, amb = eval_over_av t ~schema:p.from_schema e in
                let amb =
                  if evolved_from then
                    Lineage.union amb (Lineage.skip_evolved p.from_schema)
                  else amb
                in
                let hop = hop_of p info in
                Some
                  ( List.map
                      (fun (en : Peval.entry) ->
                        { en with lin = Lineage.add_hop hop en.lin })
                      es,
                    Lineage.add_hop hop amb )))
      (Repository.pathways_into t.repo schema)
  in
  List.fold_left
    (fun (es, amb) (es', amb') ->
      (Peval.merge_entries es es', Lineage.union amb amb'))
    base contribs

and eval_over_av t ~schema e =
  let env =
    Peval.env
      ~schemes:(fun s ->
        let es, amb = extent_av t ~schema s in
        Some (Peval.abag es amb))
      ()
  in
  match Peval.eval env e with
  | Ok (Peval.ABag (es, amb)) -> (es, amb)
  | Ok av ->
      err "query %s over %s produced a non-collection %s" (Ast.to_string e)
        schema
        (Value.to_string (Peval.value_of av))
  | Error e -> err "%s" (Fmt.str "%a" Peval.pp_error e)

let check_refs t ~schema q =
  let sch =
    match Repository.schema t.repo schema with
    | Some s -> s
    | None -> err "no schema %s" schema
  in
  Scheme.Set.iter
    (fun s ->
      if not (Schema.mem s sch) then
        err "schema %s has no object %s" schema (Scheme.to_string s))
    (Ast.schemes q)

let run_internal ~optimize t ~schema q =
  (* the expression actually evaluated, for error context and probes *)
  let evaluated = ref q in
  match
    check_refs t ~schema q;
    let q = if optimize then Automed_iql.Optimize.optimize q else q in
    evaluated := q;
    let env = Eval.env ~schemes:(fun s -> Some (extent_exn t ~schema s)) () in
    Eval.eval env q
  with
  | Ok v -> Ok v
  | Error e ->
      Error
        (error ~schema ~expr_size:(Ast.size !evaluated)
           (Fmt.str "%a" Eval.pp_error e))
  | exception Err e ->
      Error (add_context ~schema ~expr_size:(Ast.size !evaluated) e)

let run ?(optimize = true) t ~schema q =
  Telemetry.with_span "processor.run" ~attrs:(fun () -> [ ("schema", schema) ])
  @@ fun () ->
  Telemetry.count "processor.runs";
  run_internal ~optimize t ~schema q

(* -- provenance-annotated runs ------------------------------------------- *)

type annotated_tuple = {
  value : Value.t;
  count : int;
  lineage : Lineage.t;
  mac : string;
}

type annotated = {
  result : Value.t;
  tuples : annotated_tuple list;
  lineage : Lineage.t;
}

let default_mac_key = "automed-provenance-v1"

let run_provenance_internal ~optimize ~key t ~schema q =
  let evaluated = ref q in
  match
    check_refs t ~schema q;
    let q = if optimize then Automed_iql.Optimize.optimize q else q in
    evaluated := q;
    let env =
      Peval.env
        ~schemes:(fun s ->
          let es, amb = extent_av t ~schema s in
          Some (Peval.abag es amb))
        ()
    in
    Peval.eval env q
  with
  | Ok av ->
      let sign v lin = Lineage.sign ~key v lin in
      let tuples =
        match av with
        | Peval.ABag (es, _) ->
            List.map
              (fun (e : Peval.entry) ->
                { value = e.v; count = e.n; lineage = e.lin;
                  mac = sign e.v e.lin })
              es
        | Peval.Scalar (v, l) ->
            [ { value = v; count = 1; lineage = l; mac = sign v l } ]
      in
      Ok
        { result = Peval.value_of av;
          tuples;
          lineage = Peval.lineage_of av }
  | Error e ->
      Error
        (error ~schema ~expr_size:(Ast.size !evaluated)
           (Fmt.str "%a" Peval.pp_error e))
  | exception Err e ->
      Error (add_context ~schema ~expr_size:(Ast.size !evaluated) e)

let run_provenance ?(optimize = true) ?(key = default_mac_key) t ~schema q =
  Telemetry.with_span "processor.run"
    ~attrs:(fun () -> [ ("schema", schema); ("provenance", "true") ])
  @@ fun () ->
  Telemetry.count "processor.runs";
  Telemetry.count "processor.provenance_runs";
  run_provenance_internal ~optimize ~key t ~schema q

(* -- graceful degradation ------------------------------------------------ *)

type completeness = {
  complete : bool;
  sources_ok : string list;
  sources_skipped : (string * string) list;
  sources_evolved : string list;
  retries : int;
  breaker_opens : int;
  short_circuits : int;
  source_impact : (string * int) list;
}

let pp_completeness ppf c =
  Fmt.pf ppf "%s (%d source%s answered, %d skipped)"
    (if c.complete then "COMPLETE" else "DEGRADED")
    (List.length c.sources_ok)
    (if List.length c.sources_ok = 1 then "" else "s")
    (List.length c.sources_skipped);
  (match c.sources_ok with
  | [] -> ()
  | ok -> Fmt.pf ppf "@\n  ok: %s" (String.concat ", " ok));
  List.iter
    (fun (s, reason) ->
      if List.mem s c.sources_evolved then
        Fmt.pf ppf "@\n  evolved away: %s" s
      else Fmt.pf ppf "@\n  skipped: %s (%s)" s reason;
      match List.assoc_opt s c.source_impact with
      | Some n -> Fmt.pf ppf " — could have affected %d answer tuple%s" n
                    (if n = 1 then "" else "s")
      | None -> ())
    c.sources_skipped;
  if c.retries > 0 || c.breaker_opens > 0 || c.short_circuits > 0 then
    Fmt.pf ppf "@\n  retries: %d, breaker opens: %d, short circuits: %d"
      c.retries c.breaker_opens c.short_circuits

(* Runs [f] with degraded-mode skips enabled and builds the completeness
   report around it; shared by the plain and the provenance-annotated
   degraded entry points. *)
let degraded_scope t f =
  let before =
    match t.resilience with
    | Some r -> Resilience.totals r
    | None -> Resilience.zero_stats
  in
  let saved_degraded = t.degraded and saved_skipped = t.run_skipped in
  t.degraded <- true;
  t.run_skipped <- [];
  let root = push_frame t in
  let finish () =
    pop_frame t root;
    let skipped = List.rev t.run_skipped in
    t.degraded <- saved_degraded;
    t.run_skipped <- saved_skipped;
    let after =
      match t.resilience with
      | Some r -> Resilience.totals r
      | None -> Resilience.zero_stats
    in
    {
      complete = skipped = [];
      sources_ok = SS.elements root.srcs;
      sources_skipped = List.map (fun (s, r, _) -> (s, r)) skipped;
      sources_evolved =
        List.filter_map
          (fun (s, _, k) -> if k = Skip_evolved then Some s else None)
          skipped;
      retries = after.Resilience.retries - before.Resilience.retries;
      breaker_opens =
        after.Resilience.breaker_opens - before.Resilience.breaker_opens;
      short_circuits =
        after.Resilience.short_circuits - before.Resilience.short_circuits;
      source_impact = [];
    }
  in
  match f () with
  | Ok v ->
      let c = finish () in
      if not c.complete then Telemetry.count "processor.degraded_answers";
      Ok (v, c)
  | Error e ->
      ignore (finish ());
      Error e
  | exception e ->
      ignore (finish ());
      raise e

let run_degraded ?(optimize = true) t ~schema q =
  Telemetry.with_span "processor.run"
    ~attrs:(fun () -> [ ("schema", schema); ("degraded", "true") ])
  @@ fun () ->
  Telemetry.count "processor.runs";
  Telemetry.count "processor.degraded_runs";
  degraded_scope t (fun () -> run_internal ~optimize t ~schema q)

let run_degraded_provenance ?(optimize = true) ?(key = default_mac_key) t
    ~schema q =
  Telemetry.with_span "processor.run"
    ~attrs:(fun () ->
      [ ("schema", schema); ("degraded", "true"); ("provenance", "true") ])
  @@ fun () ->
  Telemetry.count "processor.runs";
  Telemetry.count "processor.degraded_runs";
  match
    degraded_scope t (fun () ->
        run_provenance_internal ~optimize ~key t ~schema q)
  with
  | Ok (ann, c) ->
      (* per-source lineage counts: how many answer tuples flowed through
         a bag the skipped source should have fed *)
      let source_impact =
        List.map
          (fun (s, _) ->
            ( s,
              List.fold_left
                (fun acc (tp : annotated_tuple) ->
                  if Lineage.cites_skip s tp.lineage then acc + tp.count
                  else acc)
                0 ann.tuples ))
          c.sources_skipped
      in
      Ok (ann, { c with source_impact })
  | (Error _ as e) -> e

let run_string t ~schema text =
  match Parser.parse text with
  | Error e -> Error (error ~schema e)
  | Ok q -> run t ~schema q

(* -- reformulation ----------------------------------------------------- *)

let rec unfold_expr t ~schema q =
  Ast.subst_schemes (fun o -> Some (unfold_scheme t ~schema o)) q

and unfold_scheme t ~schema o =
  if List.mem schema t.visiting then
    err "cycle in pathway network at schema %s" schema;
  let stored =
    match Repository.stored_extent t.repo ~schema o with
    | Some _ -> [ Ast.SchemeRef (Scheme.prefix schema o) ]
    | None -> []
  in
  t.visiting <- schema :: t.visiting;
  let finish () = t.visiting <- List.tl t.visiting in
  let from_pathways =
    match
      List.filter_map
        (fun (p : Transform.pathway) ->
          let info = pathway_info t p in
          match info.live with
          | Some live when not (Scheme.Set.mem o live) ->
              Telemetry.count "processor.pathways_pruned";
              None
          | _ -> (
              let defs = defs_of_pathway t.repo info.simplified in
              match Scheme.Map.find_opt o defs with
              | None -> None
              | Some e -> Some (unfold_expr t ~schema:p.from_schema e)))
        (Repository.pathways_into t.repo schema)
    with
    | contributions -> finish (); contributions
    | exception e -> finish (); raise e
  in
  match stored @ from_pathways with
  | [] -> Ast.Void (* no derivation: certain answers are empty *)
  | [ e ] -> e
  | e :: rest -> List.fold_left (fun acc e -> Ast.Binop (Union, acc, e)) e rest

let reformulate t ~schema q =
  Telemetry.with_span "processor.reformulate"
    ~attrs:(fun () -> [ ("schema", schema) ])
  @@ fun () ->
  Telemetry.count "processor.reformulations";
  match
    check_refs t ~schema q;
    unfold_expr t ~schema q
  with
  | q' ->
      (if Telemetry.active () then
         let n = Ast.size q' in
         Telemetry.annotate "reformulated_size" (string_of_int n);
         Telemetry.observe "processor.reformulated_size" (float_of_int n));
      Ok q'
  | exception Err e -> Error (add_context ~schema e)

(* -- explain: the plan story --------------------------------------------- *)

type cache_state = Cache_hit | Cache_cold

type explain_pathway = {
  ep_from : string;
  ep_steps : int;
  ep_simplified_steps : int;
  ep_surviving : int list;
  ep_cert : string option;
  ep_decision : explain_decision;
}

and explain_decision =
  | Applied of explain_node list
  | Pruned of string
  | No_definition of string

and explain_node = {
  en_schema : string;
  en_object : Scheme.t;
  en_stored : bool;
  en_rows : int option;
  en_cached : cache_state;
  en_pathways : explain_pathway list;
}

type explain = {
  ex_schema : string;
  ex_query : Ast.expr;
  ex_optimized : Ast.expr;
  ex_roots : explain_node list;
}

let rec explain_object t ~schema o =
  if List.mem schema t.visiting then
    err "cycle in pathway network at schema %s" schema;
  let stored = Repository.stored_extent t.repo ~schema o in
  t.visiting <- schema :: t.visiting;
  let finish () = t.visiting <- List.tl t.visiting in
  let pathways =
    match
      List.map
        (fun (p : Transform.pathway) ->
          let info = pathway_info t p in
          let base =
            {
              ep_from = p.from_schema;
              ep_steps = List.length p.steps;
              ep_simplified_steps =
                List.length info.simplified.Transform.steps;
              ep_surviving = info.surviving;
              ep_cert = info.cert;
              ep_decision = Pruned "";
            }
          in
          match info.live with
          | Some live when not (Scheme.Set.mem o live) ->
              { base with
                ep_decision =
                  Pruned
                    "reachability: no stored extent is live under this \
                     pathway's definition of the object, so its \
                     contribution is provably the empty bag" }
          | _ -> (
              let defs = defs_of_pathway t.repo info.simplified in
              match Scheme.Map.find_opt o defs with
              | None ->
                  { base with
                    ep_decision =
                      No_definition
                        "the object is deleted or contracted along the \
                         pathway: no view definition reaches the target" }
              | Some e ->
                  let children =
                    Scheme.Set.fold
                      (fun s acc ->
                        explain_object t ~schema:p.from_schema s :: acc)
                      (Ast.schemes e) []
                    |> List.rev
                  in
                  { base with ep_decision = Applied children }))
        (Repository.pathways_into t.repo schema)
    with
    | r -> finish (); r
    | exception e -> finish (); raise e
  in
  {
    en_schema = schema;
    en_object = o;
    en_stored = stored <> None;
    en_rows = Option.map Value.Bag.cardinal stored;
    en_cached =
      (if EH.mem t.cache (schema, o) || EH.mem t.pcache (schema, o) then
         Cache_hit
       else Cache_cold);
    en_pathways = pathways;
  }

let explain_plan ?(optimize = true) t ~schema q =
  Telemetry.with_span "processor.explain"
    ~attrs:(fun () -> [ ("schema", schema) ])
  @@ fun () ->
  Telemetry.count "processor.explains";
  match
    check_refs t ~schema q;
    let q' = if optimize then Automed_iql.Optimize.optimize q else q in
    let roots =
      Scheme.Set.fold
        (fun s acc -> explain_object t ~schema s :: acc)
        (Ast.schemes q') []
      |> List.rev
    in
    { ex_schema = schema; ex_query = q; ex_optimized = q'; ex_roots = roots }
  with
  | r -> Ok r
  | exception Err e -> Error (add_context ~schema e)

let pp_explain_node ppf node =
  let rec pp_node indent ppf n =
    Fmt.pf ppf "%s<%s> %s%s%s" indent n.en_schema
      (Scheme.to_string n.en_object)
      (match (n.en_stored, n.en_rows) with
      | true, Some rows -> Fmt.str " stored(%d rows)" rows
      | true, None -> " stored"
      | false, _ -> "")
      (match n.en_cached with
      | Cache_hit -> " [cached]"
      | Cache_cold -> "");
    List.iter
      (fun e ->
        Fmt.pf ppf "@\n%s  <- %s [%d->%d steps%s%s] " indent e.ep_from
          e.ep_steps e.ep_simplified_steps
          (if e.ep_simplified_steps < e.ep_steps then
             match e.ep_surviving with
             | [] -> ", no step survives verbatim"
             | ss ->
                 Fmt.str ", surviving %s"
                   (String.concat "," (List.map string_of_int ss))
           else "")
          (match e.ep_cert with Some c -> ", cert " ^ c | None -> "");
        match e.ep_decision with
        | Pruned reason -> Fmt.pf ppf "PRUNED: %s" reason
        | No_definition reason -> Fmt.pf ppf "NO DEFINITION: %s" reason
        | Applied children ->
            Fmt.pf ppf "applied";
            List.iter
              (fun c -> Fmt.pf ppf "@\n%a" (pp_node (indent ^ "    ")) c)
              children)
      n.en_pathways
  in
  pp_node "" ppf node

let pp_explain ppf e =
  Fmt.pf ppf "query over %s: %s" e.ex_schema (Ast.to_string e.ex_query);
  if not (Ast.equal e.ex_query e.ex_optimized) then
    Fmt.pf ppf "@\noptimized: %s" (Ast.to_string e.ex_optimized);
  List.iter (fun n -> Fmt.pf ppf "@\n%a" pp_explain_node n) e.ex_roots

let source_env t =
  Eval.env
    ~schemes:(fun s ->
      match Scheme.unprefix s with
      | Some (schema, base) -> Repository.stored_extent t.repo ~schema base
      | None -> None)
    ()

let answerable t ~schema q =
  match run t ~schema q with Ok _ -> true | Error _ -> false

(* Translate a query on [from_schema] onto [to_schema]: a pathway
   [to_schema -> from_schema] expresses every object of [from_schema]
   over [to_schema]'s objects; substituting those definitions rewrites
   the query.  find_path composes stored pathways and their reverses, so
   this works between any two connected schemas. *)
let translate t ~from_schema ~to_schema q =
  Telemetry.with_span "processor.translate"
    ~attrs:(fun () -> [ ("from", from_schema); ("to", to_schema) ])
  @@ fun () ->
  Telemetry.count "processor.translations";
  match
    check_refs t ~schema:from_schema q;
    match Repository.find_path t.repo ~src:to_schema ~dst:from_schema with
    | Error e -> err "%s" e
    | Ok pathway ->
        (* composed pathways concatenate steps across every hop, so the
           rename chains and dead pairs the rewrite engine collapses
           mostly arise here, at the composition seams *)
        let pathway = (pathway_info t pathway).simplified in
        let defs = defs_of_pathway t.repo pathway in
        Ast.subst_schemes
          (fun o ->
            match Scheme.Map.find_opt o defs with
            | Some e -> Some e
            | None -> Some Ast.Void)
          q
  with
  | q' -> Ok q'
  | exception Err e -> Error (add_context ~schema:from_schema e)
