module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value
module Eval = Automed_iql.Eval
module Parser = Automed_iql.Parser
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Telemetry = Automed_telemetry.Telemetry

type error = {
  message : string;
  schema : string option;
  expr_size : int option;
}

let error ?schema ?expr_size message = { message; schema; expr_size }

let pp_error ppf e =
  Fmt.string ppf e.message;
  match (e.schema, e.expr_size) with
  | None, None -> ()
  | schema, size ->
      Fmt.pf ppf " [";
      (match schema with Some s -> Fmt.pf ppf "schema %s" s | None -> ());
      (match (schema, size) with
      | Some _, Some _ -> Fmt.pf ppf ", "
      | _ -> ());
      (match size with
      | Some n -> Fmt.pf ppf "reformulated size %d" n
      | None -> ());
      Fmt.pf ppf "]"

exception Err of error

let err fmt = Format.kasprintf (fun message -> raise (Err (error message))) fmt

(* fill in request context an [err] raised deep in the derivation lacks *)
let add_context ?schema ?expr_size e =
  {
    e with
    schema = (match e.schema with None -> schema | some -> some);
    expr_size = (match e.expr_size with None -> expr_size | some -> some);
  }

module EK = struct
  type t = string * Scheme.t

  let equal (s1, o1) (s2, o2) = String.equal s1 s2 && Scheme.equal o1 o2
  let hash = Hashtbl.hash
end

module EH = Hashtbl.Make (EK)

type t = {
  repo : Repository.t;
  cache : Value.Bag.t EH.t;
  mutable visiting : string list; (* schemas on the derivation stack *)
}

let create repo = { repo; cache = EH.create 64; visiting = [] }
let repository t = t.repo

let invalidate t =
  EH.reset t.cache;
  t.visiting <- []

(* Derive, for each object of [p.to_schema], its defining expression over
   the objects of [p.from_schema], by symbolically replaying the pathway. *)
let defs_of_pathway repo (p : Transform.pathway) : Ast.expr Scheme.Map.t =
  Telemetry.with_span "pathway.apply"
    ~attrs:(fun () ->
      [
        ("pathway", p.from_schema ^ " -> " ^ p.to_schema);
        ("steps", string_of_int (List.length p.steps));
      ])
  @@ fun () ->
  Telemetry.count "processor.pathway_applications";
  if Telemetry.active () then
    Telemetry.count ~by:(List.length p.steps) "processor.pathway_steps_replayed";
  let src =
    match Repository.schema repo p.from_schema with
    | Some s -> s
    | None -> err "pathway source schema %s is not registered" p.from_schema
  in
  let subst defs q =
    let missing = ref None in
    let q' =
      Ast.subst_schemes
        (fun s ->
          match Scheme.Map.find_opt s defs with
          | Some e -> Some e
          | None ->
              if !missing = None then missing := Some s;
              None)
        q
    in
    match !missing with
    | Some s ->
        err "query %s references %s, absent at this point of pathway %s -> %s"
          (Ast.to_string q) (Scheme.to_string s) p.from_schema p.to_schema
    | None -> q'
  in
  let init =
    List.fold_left
      (fun m o -> Scheme.Map.add o (Ast.SchemeRef o) m)
      Scheme.Map.empty (Schema.objects src)
  in
  List.fold_left
    (fun defs step ->
      match (step : Transform.prim) with
      | Add (o, q) -> Scheme.Map.add o (subst defs q) defs
      | Extend (o, ql, _) ->
          (* only the lower bound is derivable: certain answers *)
          Scheme.Map.add o (subst defs ql) defs
      | Delete (o, _) | Contract (o, _, _) -> Scheme.Map.remove o defs
      | Rename (a, b) -> (
          match Scheme.Map.find_opt a defs with
          | Some e -> Scheme.Map.add b e (Scheme.Map.remove a defs)
          | None -> err "rename of unknown object %s" (Scheme.to_string a))
      | Id (a, b) -> (
          if Scheme.equal a b then defs
          else
            match Scheme.Map.find_opt a defs with
            | Some e -> Scheme.Map.add b e defs
            | None -> err "id of unknown object %s" (Scheme.to_string a)))
    init p.steps

let rec extent_exn t ~schema o =
  match EH.find_opt t.cache (schema, o) with
  | Some bag ->
      Telemetry.count "processor.extent.cache_hits";
      bag
  | None ->
      Telemetry.count "processor.extent.cache_misses";
      if List.mem schema t.visiting then
        err "cycle in pathway network at schema %s" schema;
      let sch =
        match Repository.schema t.repo schema with
        | Some s -> s
        | None -> err "no schema %s" schema
      in
      if not (Schema.mem o sch) then
        err "schema %s has no object %s" schema (Scheme.to_string o);
      t.visiting <- schema :: t.visiting;
      let finish () = t.visiting <- List.tl t.visiting in
      let bag =
        Telemetry.with_span "processor.extent"
          ~attrs:(fun () ->
            [ ("schema", schema); ("object", Scheme.to_string o) ])
          (fun () ->
            match compute_extent t ~schema o with
            | bag -> finish (); bag
            | exception e -> finish (); raise e)
      in
      EH.replace t.cache (schema, o) bag;
      bag

and compute_extent t ~schema o =
  let stored =
    match
      Telemetry.with_span "source.fetch"
        ~attrs:(fun () ->
          [ ("schema", schema); ("object", Scheme.to_string o) ])
        (fun () ->
          let r = Repository.stored_extent t.repo ~schema o in
          (if Telemetry.active () then
             match r with
             | Some b ->
                 let rows = Value.Bag.cardinal b in
                 Telemetry.annotate "rows" (string_of_int rows);
                 Telemetry.count ~by:rows "processor.rows_fetched"
             | None -> Telemetry.annotate "stored" "false");
          r)
    with
    | Some b -> [ b ]
    | None -> []
  in
  let from_pathways =
    List.filter_map
      (fun (p : Transform.pathway) ->
        let defs = defs_of_pathway t.repo p in
        match Scheme.Map.find_opt o defs with
        | None -> None
        | Some e -> Some (eval_over t ~schema:p.from_schema e))
      (Repository.pathways_into t.repo schema)
  in
  List.fold_left Value.Bag.union Value.Bag.empty (stored @ from_pathways)

and eval_over t ~schema e =
  let env =
    Eval.env ~schemes:(fun s -> Some (extent_exn t ~schema s)) ()
  in
  match Eval.eval env e with
  | Ok (Value.Bag b) -> b
  | Ok v ->
      err "query %s over %s produced a non-collection %s" (Ast.to_string e)
        schema (Value.to_string v)
  | Error e -> err "%s" (Fmt.str "%a" Eval.pp_error e)

let extent_of t ~schema o =
  match extent_exn t ~schema o with
  | bag -> Ok bag
  | exception Err e -> Error (add_context ~schema e)

let check_refs t ~schema q =
  let sch =
    match Repository.schema t.repo schema with
    | Some s -> s
    | None -> err "no schema %s" schema
  in
  Scheme.Set.iter
    (fun s ->
      if not (Schema.mem s sch) then
        err "schema %s has no object %s" schema (Scheme.to_string s))
    (Ast.schemes q)

let run ?(optimize = true) t ~schema q =
  Telemetry.with_span "processor.run" ~attrs:(fun () -> [ ("schema", schema) ])
  @@ fun () ->
  Telemetry.count "processor.runs";
  (* the expression actually evaluated, for error context and probes *)
  let evaluated = ref q in
  match
    check_refs t ~schema q;
    let q = if optimize then Automed_iql.Optimize.optimize q else q in
    evaluated := q;
    let env = Eval.env ~schemes:(fun s -> Some (extent_exn t ~schema s)) () in
    Eval.eval env q
  with
  | Ok v -> Ok v
  | Error e ->
      Error
        (error ~schema ~expr_size:(Ast.size !evaluated)
           (Fmt.str "%a" Eval.pp_error e))
  | exception Err e ->
      Error (add_context ~schema ~expr_size:(Ast.size !evaluated) e)

let run_string t ~schema text =
  match Parser.parse text with
  | Error e -> Error (error ~schema e)
  | Ok q -> run t ~schema q

(* -- reformulation ----------------------------------------------------- *)

let rec unfold_expr t ~schema q =
  Ast.subst_schemes (fun o -> Some (unfold_scheme t ~schema o)) q

and unfold_scheme t ~schema o =
  if List.mem schema t.visiting then
    err "cycle in pathway network at schema %s" schema;
  let stored =
    match Repository.stored_extent t.repo ~schema o with
    | Some _ -> [ Ast.SchemeRef (Scheme.prefix schema o) ]
    | None -> []
  in
  t.visiting <- schema :: t.visiting;
  let finish () = t.visiting <- List.tl t.visiting in
  let from_pathways =
    match
      List.filter_map
        (fun (p : Transform.pathway) ->
          let defs = defs_of_pathway t.repo p in
          match Scheme.Map.find_opt o defs with
          | None -> None
          | Some e -> Some (unfold_expr t ~schema:p.from_schema e))
        (Repository.pathways_into t.repo schema)
    with
    | contributions -> finish (); contributions
    | exception e -> finish (); raise e
  in
  match stored @ from_pathways with
  | [] -> Ast.Void (* no derivation: certain answers are empty *)
  | [ e ] -> e
  | e :: rest -> List.fold_left (fun acc e -> Ast.Binop (Union, acc, e)) e rest

let reformulate t ~schema q =
  Telemetry.with_span "processor.reformulate"
    ~attrs:(fun () -> [ ("schema", schema) ])
  @@ fun () ->
  Telemetry.count "processor.reformulations";
  match
    check_refs t ~schema q;
    unfold_expr t ~schema q
  with
  | q' ->
      (if Telemetry.active () then
         let n = Ast.size q' in
         Telemetry.annotate "reformulated_size" (string_of_int n);
         Telemetry.observe "processor.reformulated_size" (float_of_int n));
      Ok q'
  | exception Err e -> Error (add_context ~schema e)

let source_env t =
  Eval.env
    ~schemes:(fun s ->
      match Scheme.unprefix s with
      | Some (schema, base) -> Repository.stored_extent t.repo ~schema base
      | None -> None)
    ()

let answerable t ~schema q =
  match run t ~schema q with Ok _ -> true | Error _ -> false

(* Translate a query on [from_schema] onto [to_schema]: a pathway
   [to_schema -> from_schema] expresses every object of [from_schema]
   over [to_schema]'s objects; substituting those definitions rewrites
   the query.  find_path composes stored pathways and their reverses, so
   this works between any two connected schemas. *)
let translate t ~from_schema ~to_schema q =
  Telemetry.with_span "processor.translate"
    ~attrs:(fun () -> [ ("from", from_schema); ("to", to_schema) ])
  @@ fun () ->
  Telemetry.count "processor.translations";
  match
    check_refs t ~schema:from_schema q;
    match Repository.find_path t.repo ~src:to_schema ~dst:from_schema with
    | Error e -> err "%s" e
    | Ok pathway ->
        let defs = defs_of_pathway t.repo pathway in
        Ast.subst_schemes
          (fun o ->
            match Scheme.Map.find_opt o defs with
            | Some e -> Some e
            | None -> Some Ast.Void)
          q
  with
  | q' -> Ok q'
  | exception Err e -> Error (add_context ~schema:from_schema e)
