(** Global schema generation (paper Section 2.2, Figure 4).

    Given intersection schemas [I1 ... Im] derived from extensional
    schemas [ES1 ... ESn], the global schema is

    {v G = I1 U ... U Im U (ES1 - I) U ... U (ESn - I) v}

    where [ES - I] removes from [ES] the objects that are semantically
    redundant: those removed by a {e delete} step in some pathway
    [ES -> I] (their extents are included in the intersection objects'
    extents).  Objects removed by {e contract} steps are retained - the
    intersection carries no information about them.

    Extensional objects are carried into [G] under their provenance
    prefix (as in the federated schema); intersection objects keep their
    own (globally unique) names.  Redundancy removal is optional, as in
    the Intersection Schema Tool. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Repository = Automed_repository.Repository

val dropped_objects :
  Intersection.outcome list -> string -> Scheme.t list
(** The objects of the given extensional schema that became redundant:
    delete-step sources of its side pathways across all intersections. *)

val create :
  ?drop_redundant:bool ->
  Repository.t ->
  name:string ->
  intersections:Intersection.outcome list ->
  extensionals:string list ->
  (Schema.t, string) result
(** Builds and registers the global schema and one pathway into it from
    every intersection schema and every extensional schema.
    [drop_redundant] defaults to [true]. *)
