module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Ast = Automed_iql.Ast
module Resilience = Automed_resilience.Resilience
module Telemetry = Automed_telemetry.Telemetry

let ( let* ) = Result.bind

let member_prefix ~member scheme = Scheme.prefix member scheme

let rec check_distinct = function
  | [] -> Ok ()
  | m :: rest ->
      if List.mem m rest then
        Error (Printf.sprintf "member %s listed twice" m)
      else check_distinct rest

let create repo ~name ~members =
  let* () = if members = [] then Error "no members" else Ok () in
  let* () = check_distinct members in
  let* () =
    if Repository.mem_schema repo name then
      Error (Printf.sprintf "schema %s already exists" name)
    else Ok ()
  in
  let* member_schemas =
    List.fold_left
      (fun acc m ->
        let* acc = acc in
        match Repository.schema repo m with
        | Some s -> Ok (s :: acc)
        | None -> Error (Printf.sprintf "member schema %s is not registered" m))
      (Ok []) members
  in
  let member_schemas = List.rev member_schemas in
  (* all objects of the federation, prefixed, with their extent types *)
  let all_objects =
    List.concat_map
      (fun s ->
        List.map
          (fun o ->
            (member_prefix ~member:(Schema.name s) o, Schema.extent_ty o s))
          (Schema.objects s))
      member_schemas
  in
  let pathway_for s =
    let m = Schema.name s in
    let renames =
      List.map
        (fun o -> Transform.Rename (o, member_prefix ~member:m o))
        (Schema.objects s)
    in
    let own =
      Scheme.Set.of_list
        (List.map (member_prefix ~member:m) (Schema.objects s))
    in
    let extends =
      List.filter_map
        (fun (o, _) ->
          if Scheme.Set.mem o own then None
          else Some (Transform.Extend (o, Ast.Void, Ast.Any)))
        all_objects
    in
    { Transform.from_schema = m; to_schema = name; steps = renames @ extends }
  in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        Repository.add_pathway repo (pathway_for s))
      (Ok ()) member_schemas
  in
  match Repository.schema repo name with
  | Some f -> Ok f
  | None -> Error "internal: federated schema not registered"

(* Degraded fan-out: members whose metadata fetch exhausts the resilience
   policy (or that are simply unregistered) are skipped instead of
   failing the federation, as long as at least one member survives.  The
   skipped members can be folded in later with a fresh federation once
   they recover — the dataspace stays queryable meanwhile. *)
let create_degraded ?resilience repo ~name ~members =
  let* () = if members = [] then Error "no members" else Ok () in
  let* () = check_distinct members in
  let probe m =
    let fetch () = Repository.schema repo m in
    match resilience with
    | Some r when Resilience.covers r m -> (
        match Resilience.call r ~source:m fetch with
        | Ok s -> Ok s
        | Error f -> Error (Fmt.str "%a" Resilience.pp_failure f))
    | _ -> Ok (fetch ())
  in
  let available, skipped =
    List.fold_left
      (fun (avail, skipped) m ->
        match probe m with
        | Ok (Some _) -> (m :: avail, skipped)
        | Ok None -> (avail, (m, "schema is not registered") :: skipped)
        | Error reason -> (avail, (m, reason) :: skipped))
      ([], []) members
  in
  let available = List.rev available and skipped = List.rev skipped in
  match available with
  | [] -> Error "no member is available"
  | _ ->
      List.iter (fun _ -> Telemetry.count "source.skipped") skipped;
      let* f = create repo ~name ~members:available in
      Ok (f, skipped)

(* Fan-out pruning: a member whose pathway into the federation gives a
   provably empty definition for every object the query references can
   be skipped without changing the answer.  The per-query counterpart of
   the processor's per-object pruning, useful for planning and
   reporting. *)
type member_verdict = Relevant of string | Irrelevant of string

let pp_member_verdict ppf = function
  | Relevant why -> Fmt.pf ppf "relevant (%s)" why
  | Irrelevant why -> Fmt.pf ppf "irrelevant (%s)" why

(* The explain-grade sibling of [relevant_members]: every member with
   its verdict and the reason, for the CLI's plan story. *)
let member_report repo ~federation q =
  if not (Repository.mem_schema repo federation) then
    Error (Printf.sprintf "schema %s is not registered" federation)
  else
    let refs = Ast.schemes q in
    let report =
      List.map
        (fun (p : Transform.pathway) ->
          let live =
            match Repository.schema repo p.from_schema with
            | None -> None
            | Some src ->
                Automed_analysis.Reachability.live_objects ~source:src p
          in
          let verdict =
            match live with
            | _ when Repository.retired repo p.from_schema ->
                (* retirement beats reachability: the member's extents
                   are gone for good, whatever its pathway could feed *)
                Irrelevant "evolved away (retired by schema evolution)"
            | None ->
                Relevant "pathway not analysable; conservatively kept"
            | Some live -> (
                match
                  Scheme.Set.choose_opt (Scheme.Set.inter refs live)
                with
                | Some o ->
                    Relevant
                      (Printf.sprintf "can feed %s" (Scheme.to_string o))
                | None ->
                    Irrelevant
                      "its definition of every referenced object is a \
                       provably empty lower bound")
          in
          (p.from_schema, verdict))
        (Repository.pathways_into repo federation)
    in
    Ok (List.sort_uniq compare report)

let relevant_members repo ~federation q =
  if not (Repository.mem_schema repo federation) then
    Error (Printf.sprintf "schema %s is not registered" federation)
  else
    let refs = Ast.schemes q in
    let members =
      List.filter_map
        (fun (p : Transform.pathway) ->
          let live =
            match Repository.schema repo p.from_schema with
            | None -> None
            | Some src ->
                Automed_analysis.Reachability.live_objects ~source:src p
          in
          match live with
          | _ when Repository.retired repo p.from_schema -> None
          | None -> Some p.from_schema (* unanalysable: assume relevant *)
          | Some live ->
              if Scheme.Set.exists (fun o -> Scheme.Set.mem o live) refs then
                Some p.from_schema
              else None)
        (Repository.pathways_into repo federation)
    in
    Ok (List.sort_uniq String.compare members)
