module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor

type finding =
  | Duplicate_extents of Scheme.t * Scheme.t
  | Empty_extent of Scheme.t
  | Untyped of Scheme.t
  | Orphan_column of Scheme.t

let pp_finding ppf = function
  | Duplicate_extents (a, b) ->
      Fmt.pf ppf "duplicate extents: %a and %a" Scheme.pp a Scheme.pp b
  | Empty_extent s -> Fmt.pf ppf "empty extent: %a" Scheme.pp s
  | Untyped s -> Fmt.pf ppf "no extent type: %a" Scheme.pp s
  | Orphan_column s -> Fmt.pf ppf "column without its table: %a" Scheme.pp s

let err fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) = Result.bind

let inspect proc ~schema =
  let repo = Processor.repository proc in
  match Repository.schema repo schema with
  | None -> err "no schema %s" schema
  | Some s ->
      let objects = Schema.objects s in
      let extents =
        List.map
          (fun o ->
            match Processor.extent_of proc ~schema o with
            | Ok bag -> (o, Some bag)
            | Error _ -> (o, None))
          objects
      in
      let empties =
        List.filter_map
          (fun (o, bag) ->
            match bag with
            | Some b when not (Value.Bag.is_empty b) -> None
            | _ -> Some (Empty_extent o))
          extents
      in
      let untyped =
        List.filter_map
          (fun o ->
            if Schema.extent_ty o s = None then Some (Untyped o) else None)
          objects
      in
      let orphans =
        List.filter_map
          (fun o ->
            if
              Scheme.language o = "sql"
              && Scheme.construct o = "column"
              && not
                   (Schema.mem
                      (Scheme.make ~language:"sql" ~construct:"table"
                         [ List.hd (Scheme.args o) ])
                      s)
            then Some (Orphan_column o)
            else None)
          objects
      in
      (* pairwise duplicate detection over non-empty extents *)
      let nonempty =
        List.filter_map
          (fun (o, bag) ->
            match bag with
            | Some b when not (Value.Bag.is_empty b) -> Some (o, b)
            | _ -> None)
          extents
      in
      let rec dups acc = function
        | [] -> List.rev acc
        | (o, b) :: rest ->
            let acc =
              List.fold_left
                (fun acc (o', b') ->
                  if Value.Bag.equal b b' then Duplicate_extents (o, o') :: acc
                  else acc)
                acc rest
            in
            dups acc rest
      in
      Ok (dups [] nonempty @ empties @ untyped @ orphans)

let derive repo ~schema ~new_name steps =
  let* () =
    if Repository.mem_schema repo new_name then
      err "schema %s already exists" new_name
    else Ok ()
  in
  let* s =
    Repository.derive_schema repo
      { Transform.from_schema = schema; to_schema = new_name; steps }
  in
  Ok s

let rename_concept repo ~schema ~new_name ~from_ ~to_ =
  derive repo ~schema ~new_name [ Transform.Rename (from_, to_) ]

let drop_concepts repo ~schema ~new_name objects =
  derive repo ~schema ~new_name
    (List.map (fun o -> Transform.Contract (o, Ast.Void, Ast.Any)) objects)

let merge_concepts repo ~schema ~new_name ~into redundant =
  if Scheme.equal into redundant then err "cannot merge an object into itself"
  else
    derive repo ~schema ~new_name
      [ Transform.Delete (redundant, Ast.SchemeRef into) ]
