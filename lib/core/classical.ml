module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository

type source_spec = { schema : string; mappings : Intersection.mapping list }
type stage = { stage_name : string; sources : source_spec list }

type stage_outcome = {
  global : Schema.t;
  union_schemas : string list;
  per_source_manual : (string * int) list;
}

let stage_manual o = List.fold_left (fun acc (_, n) -> acc + n) 0 o.per_source_manual

type ladder_outcome = {
  stages : stage_outcome list;
  new_manual_per_stage : (string * int) list;
  total_manual : int;
}

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

let manual_mappings mappings =
  List.length
    (List.filter (fun m -> not (Intersection.is_identity_mapping m)) mappings)

let integrate_stage repo stage =
  let* () =
    if stage.sources = [] then err "stage %s has no sources" stage.stage_name
    else Ok ()
  in
  let* () =
    if Repository.mem_schema repo stage.stage_name then
      err "schema %s already exists" stage.stage_name
    else Ok ()
  in
  let targets =
    List.concat_map
      (fun src -> List.map (fun m -> m.Intersection.target) src.mappings)
      stage.sources
    |> Scheme.Set.of_list |> Scheme.Set.elements
  in
  let us_name i src =
    if i = 0 then stage.stage_name
    else Printf.sprintf "%s~%s" stage.stage_name src.schema
  in
  let* registered =
    List.fold_left
      (fun acc (i, src) ->
        let* acc = acc in
        match Repository.schema repo src.schema with
        | None -> err "source schema %s is not registered" src.schema
        | Some sch ->
            let side =
              { Intersection.schema = src.schema; mappings = src.mappings }
            in
            let pathway, _, _ =
              Intersection.side_pathway ~to_name:(us_name i src) ~targets side
                sch
            in
            (* an all-identity side yields an empty pathway (source and
               target coincide); state the per-object id assertions
               explicitly so the equivalence is checkable step by step *)
            let pathway =
              if pathway.Transform.steps = [] then
                {
                  pathway with
                  Transform.steps =
                    List.map (fun o -> Transform.Id (o, o)) (Schema.objects sch);
                }
              else pathway
            in
            let* () = Repository.add_pathway repo pathway in
            Ok ((i, src, us_name i src) :: acc))
      (Ok [])
      (List.mapi (fun i s -> (i, s)) stage.sources)
  in
  let registered = List.rev registered in
  let global = Repository.schema_exn repo stage.stage_name in
  let* () =
    List.fold_left
      (fun acc (i, _, us) ->
        let* () = acc in
        if i = 0 then Ok ()
        else
          let aux = Repository.schema_exn repo us in
          let* p = Transform.ident aux global in
          Repository.add_pathway repo p)
      (Ok ()) registered
  in
  Ok
    {
      global;
      union_schemas =
        List.filter_map
          (fun (i, _, us) -> if i = 0 then None else Some us)
          registered;
      per_source_manual =
        List.map
          (fun (_, src, _) -> (src.schema, manual_mappings src.mappings))
          registered;
    }

let ladder repo stages =
  let* outcomes =
    List.fold_left
      (fun acc stage ->
        let* acc = acc in
        let* o = integrate_stage repo stage in
        Ok (o :: acc))
      (Ok []) stages
  in
  let outcomes = List.rev outcomes in
  (* newly written transformations per stage: a mapping already stated in
     a previous stage (same target, same source) costs nothing again *)
  let stated : (string * Scheme.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let new_counts =
    List.map
      (fun stage ->
        let fresh = ref 0 in
        List.iter
          (fun src ->
            List.iter
              (fun m ->
                if not (Intersection.is_identity_mapping m) then begin
                  let key = (src.schema, m.Intersection.target) in
                  if not (Hashtbl.mem stated key) then begin
                    Hashtbl.replace stated key ();
                    incr fresh
                  end
                end)
              src.mappings)
          stage.sources;
        (stage.stage_name, !fresh))
      stages
  in
  Ok
    {
      stages = outcomes;
      new_manual_per_stage = new_counts;
      total_manual = List.fold_left (fun acc (_, n) -> acc + n) 0 new_counts;
    }
