(** Federated schemas (paper Section 2.2, Figures 3 and 4).

    A federated schema [F = S1 U ... U Sn] combines member schemas into a
    single virtual schema without any transformation or integration:
    every member object appears in [F] prefixed with its member's schema
    identifier, so provenance is visible and same-named objects from
    different members do not clash.

    Construction registers one pathway [Si -> F] per member, consisting of
    rename steps (the prefixing) followed by trivial extend steps for the
    objects contributed by the other members.  Queries over [F] therefore
    reformulate onto the members immediately: this is the "data services
    from day one" property of the dataspace. *)

module Schema = Automed_model.Schema
module Repository = Automed_repository.Repository

val create :
  Repository.t -> name:string -> members:string list -> (Schema.t, string) result
(** Members must be registered and pairwise distinct; the federated name
    must be fresh. *)

val create_degraded :
  ?resilience:Automed_resilience.Resilience.t ->
  Repository.t ->
  name:string ->
  members:string list ->
  (Schema.t * (string * string) list, string) result
(** Like {!create}, but a member that is unregistered — or whose probe
    exhausts the resilience policy (e.g. its circuit breaker is open) —
    is skipped instead of failing the construction, provided at least one
    member survives.  Returns the federation over the surviving members
    and the skipped members with reasons. *)

val member_prefix : member:string -> Automed_base.Scheme.t -> Automed_base.Scheme.t
(** How member objects are renamed into the federation ([Scheme.prefix]).  *)

type member_verdict =
  | Relevant of string  (** kept, with the reason *)
  | Irrelevant of string
      (** provably cannot contribute, with the reason — including
          members retired by a live schema evolution, reported as
          ["evolved away (retired by schema evolution)"] *)

val pp_member_verdict : member_verdict Fmt.t

val member_report :
  Repository.t ->
  federation:string ->
  Automed_iql.Ast.expr ->
  ((string * member_verdict) list, string) result
(** The per-member verdicts behind {!relevant_members}, with reasons:
    which referenced object a relevant member can feed, or why an
    irrelevant one provably cannot contribute.  Sorted by member name;
    feeds the CLI's [automed explain] plan story. *)

val relevant_members :
  Repository.t ->
  federation:string ->
  Automed_iql.Ast.expr ->
  (string list, string) result
(** The members whose pathway into the federated schema can contribute
    rows to at least one object the query references, per the
    {!Automed_analysis.Reachability} live-set analysis (sorted,
    duplicate-free).  Members outside the list are provably irrelevant
    to this query: their definitions of every referenced object are
    empty lower bounds.  A member whose pathway cannot be analysed is
    conservatively kept. *)
