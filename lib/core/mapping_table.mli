(** The mappings table of the Intersection Schema Tool (paper Section 2.3,
    step 4):

    "For each Intersection Schema, a mappings table is maintained by the
    Intersection Schema Tool, which shows the IQL query correspondences
    between objects in the Intersection Schema and the current global
    schema.  The Intersection Schema tool allows mappings to be added and
    edited by the data integrator."

    A [session] is the mutable editing state behind that table: entries
    are added, edited and removed; every edit is validated immediately
    (the source schema must contain the referenced objects, and the
    forward query must type-check against their extent types); suggested
    entries can be pre-filled from the Schema Matching tool.  [finish]
    freezes the table into an {!Intersection.spec}. *)

module Scheme = Automed_base.Scheme
module Repository = Automed_repository.Repository

type entry = {
  entry_id : int;
  target : Scheme.t;
  source_schema : string;
  forward : Automed_iql.Ast.expr;
  reverse : Automed_iql.Ast.expr option;
      (** the auto-derived reverse query, when the forward is invertible:
          what the tool shows on the second screen *)
  typed : bool;  (** whether the forward query type-checked *)
}

type session

val start : Repository.t -> name:string -> sources:string list -> (session, string) result
(** Begins editing an intersection named [name] between the given
    (registered) source schemas. *)

val add :
  session -> target:Scheme.t -> source:string -> forward:string -> (entry, string) result
(** Parses and validates a new mapping; IQL type errors are reported as
    [Error] but a well-formed yet untypeable query can be forced with
    {!add_unchecked}. *)

val add_unchecked :
  session -> target:Scheme.t -> source:string -> forward:string -> (entry, string) result
(** Like {!add} but records a type-check failure in [typed] instead of
    rejecting (the integrator may know better than the checker). *)

val edit : session -> int -> forward:string -> (entry, string) result
(** Replaces the forward query of an entry. *)

val set_reverse : session -> int -> reverse:string -> source_object:Scheme.t -> (unit, string) result
(** Overrides the reverse (delete) query for the entry's source object:
    the user-input path of the paper's footnote 7. *)

val remove : session -> int -> (unit, string) result
val entries : session -> entry list
(** In entry-id order. *)

val prefill :
  ?threshold:float -> session -> left:string -> right:string -> (entry list, string) result
(** Consults the Schema Matching tool and adds one tagging mapping per
    suggested correspondence (both sides), targeting fresh ["U" ^ name]
    objects.  Returns the entries added. *)

val repair_evolution :
  session ->
  source:string ->
  renames:(Scheme.t * Scheme.t) list ->
  dropped:Scheme.t list ->
  entry list * entry list
(** Propagates a live evolution of [source] into the editing session
    (the mapping-table counterpart of the pathway repair in
    [Automed_evolution.Evolution]): forward queries — and user-supplied
    reverse queries — referencing a renamed source object are rewritten
    in place (re-deriving the reverse and re-running the type check);
    entries whose forward query consumes a dropped object are removed.
    Entries of other sources are untouched.  Returns
    [(rewritten, removed)]. *)

val prune_source : session -> string -> entry list
(** Removes every entry of an evolved-away source, returning them.
    The session keeps its other sources' entries. *)

val finish : session -> (Intersection.spec, string) result
(** Freezes the table.  Fails when fewer than two sources have mappings
    (use {!finish_single} for an ad-hoc single-schema extension). *)

val finish_single : session -> (string * Intersection.side, string) result
(** Freezes a single-source table into the name and side for
    {!Intersection.extend_single}. *)
