(** The incremental integration workflow (paper Section 2.3).

    The workflow drives the pay-as-you-go process:

    + identify the extensional schemas to integrate;
    + create an initial federated schema over them - this is the first
      version of the global schema, and data services are available on it
      immediately;
    + select schemas and identify mappings into a new intersection schema
      (consulting the Schema Matching tool);
    + generate the intersection schema;
    + automatically combine it with the extensional schemas into a new
      version of the global schema (optionally dropping redundant
      objects);
    + test by running queries; repeat from step 3.

    Every global schema version remains registered (and queryable): the
    integration history is part of the dataspace. *)

module Schema = Automed_model.Schema
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Value = Automed_iql.Value
module Ast = Automed_iql.Ast

type iteration = {
  index : int;  (** 1-based iteration number *)
  description : string;
  outcome : Intersection.outcome;
  global_name : string;  (** the global schema version this produced *)
}

type evolution = {
  ev_index : int;  (** 1-based evolution number *)
  ev_description : string;
  ev_prev : string;  (** global version the evolution started from *)
  ev_next : string;  (** global version it produced *)
  ev_sources_touched : string list;
      (** source schemas whose data or shape the evolution changed —
          exactly the ones whose cache entries were invalidated *)
}
(** Audit record of one live schema evolution (source churn repaired
    into a new global version without re-running integration). *)

type t

val start :
  ?resilience:Automed_resilience.Resilience.t ->
  ?durable:Automed_durable.Durable.t ->
  ?simplify:bool ->
  Repository.t ->
  name:string ->
  sources:string list ->
  (t, string) result
(** Steps 1-2: registers the initial federated/global schema
    ["<name>_v0"] over the (already wrapped) source schemas.
    [resilience] is handed to the workflow's query processor, so every
    source fetch of {!run_query} runs under its policy.  [simplify]
    (default on) is handed there too: certified pathway simplification
    and reachability pruning; see {!Processor.create}.  [durable] must
    be a handle attached (see {!Automed_durable.Durable.attach}) to this
    same repository; each mutation already journals through the
    repository observer, and the workflow additionally fsyncs the
    journal after [start] and after every completed iteration, so a
    crash between iterations loses nothing. *)

val repository : t -> Repository.t
val processor : t -> Processor.t
val sources : t -> string list
val global_name : t -> string
(** Name of the current global schema version. *)

val version : t -> int
(** Number of the current global schema version ([<base>_v<version>]).
    Advanced by both {!integrate} iterations and {!evolve_version}
    evolutions. *)

val global_schema : t -> Schema.t
val iterations : t -> iteration list
(** Oldest first. *)

val evolve_version :
  ?description:string ->
  t ->
  sources_touched:string list ->
  repair:(prev:string -> next:string -> (unit, string) result) ->
  (evolution, string) result
(** One live schema evolution step.  Allocates the next global version
    name and hands both names to [repair], which must register the new
    version and the delta-sized pathways that define it (see
    {!Automed_evolution.Evolution} for the canonical repairs); every
    repository mutation it performs journals through the durable
    observer as usual.  On success the workflow advances to the new
    version, records the {!evolution} audit entry, invalidates exactly
    the cache entries tainted by [sources_touched] (untouched sources
    keep their cached extents — the incremental-repair guarantee), and
    fsyncs the journal so a crash immediately after the evolution
    replays it completely.  Fails without advancing the version when
    [repair] fails or did not register the new version. *)

val evolutions : t -> evolution list
(** Oldest first. *)

val note_source_added : t -> string -> unit
(** Adds a source schema to the workflow's extensional set, so later
    {!integrate} iterations federate it into new global versions
    (idempotent).  Called by the evolution operations; exposed for
    custom repairs. *)

val note_source_dropped : t -> string -> unit
(** Removes a source schema from the workflow's extensional set. *)

val integrate :
  ?drop_redundant:bool ->
  ?description:string ->
  t ->
  Intersection.spec ->
  (iteration, string) result
(** Steps 3-5 for a proper intersection between two or more sources. *)

val integrate_adhoc :
  ?drop_redundant:bool ->
  ?description:string ->
  t ->
  name:string ->
  Intersection.side ->
  (iteration, string) result
(** Steps 3-5 for an ad-hoc single-schema extension (footnote 8). *)

val run_query : t -> string -> (Value.t, Processor.error) result
(** Step 6: parse and evaluate IQL text over the current global schema. *)

val run : t -> Ast.expr -> (Value.t, Processor.error) result

val run_degraded :
  t -> Ast.expr -> (Value.t * Processor.completeness, Processor.error) result
(** {!Processor.run_degraded} over the current global schema: sources
    that exhaust their resilience policy degrade the answer (and are
    reported) instead of failing it. *)

val run_query_degraded :
  t -> string -> (Value.t * Processor.completeness, Processor.error) result

val run_provenance :
  ?key:string -> t -> Ast.expr -> (Processor.annotated, Processor.error) result
(** {!Processor.run_provenance} over the current global schema: the
    bit-identical answer plus per-tuple lineage (cited source extents,
    pathway hops with simplification certificates, telemetry span ids)
    and a keyed tamper-evidence digest per tuple. *)

val run_query_provenance :
  ?key:string -> t -> string -> (Processor.annotated, Processor.error) result

val run_degraded_provenance :
  ?key:string ->
  t ->
  Ast.expr ->
  (Processor.annotated * Processor.completeness, Processor.error) result
(** Degraded run with lineage: the completeness report's
    [source_impact] counts, per skipped source, the answer tuples it
    could have affected. *)

val explain : t -> Ast.expr -> (Processor.explain, Processor.error) result
(** {!Processor.explain_plan} over the current global schema. *)

val explain_query : t -> string -> (Processor.explain, Processor.error) result

val answerable : t -> Ast.expr -> bool

val manual_steps : t -> int
(** Total user-defined transformations across all iterations: the
    integration effort metric of Section 3. *)

val auto_steps : t -> int

val suggestions :
  ?threshold:float -> t -> left:string -> right:string ->
  (Automed_matching.Matcher.suggestion list, string) result
(** Step 4 assistance: schema matching between two registered schemas. *)
