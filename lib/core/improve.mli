(** Schema improvement (the third subprocess of data integration in the
    paper's Section 1: raising the quality of an integrated schema, e.g.
    by removing redundant information or renaming concepts).

    {!inspect} analyses a schema over its {e derived} extents and reports
    quality findings; the refinement operations each derive a new,
    improved schema version through a registered pathway, so improvements
    are ordinary BAV transformations: reversible, and the pre-improvement
    schema stays queryable. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor

type finding =
  | Duplicate_extents of Scheme.t * Scheme.t
      (** two objects with identical derived extents: integration may have
          left semantically redundant concepts *)
  | Empty_extent of Scheme.t
      (** no source contributes any data (often a contracted concept that
          was never re-mapped) *)
  | Untyped of Scheme.t  (** no extent type is known *)
  | Orphan_column of Scheme.t
      (** a relational column whose table object is not in the schema *)

val pp_finding : finding Fmt.t

val inspect : Processor.t -> schema:string -> (finding list, string) result
(** Quality report over the derived extents.  Objects whose extents
    cannot be derived at all are reported as {!Empty_extent}. *)

val rename_concept :
  Repository.t ->
  schema:string ->
  new_name:string ->
  from_:Scheme.t ->
  to_:Scheme.t ->
  (Schema.t, string) result
(** Derives an improved schema [new_name] from [schema] in which the
    concept [from_] is renamed to [to_] (a [rename] pathway step). *)

val drop_concepts :
  Repository.t ->
  schema:string ->
  new_name:string ->
  Scheme.t list ->
  (Schema.t, string) result
(** Derives an improved schema without the given objects (trivial
    [contract] steps: their information is declared out of scope). *)

val merge_concepts :
  Repository.t ->
  schema:string ->
  new_name:string ->
  into:Scheme.t ->
  Scheme.t ->
  (Schema.t, string) result
(** Derives an improved schema in which a redundant object's extent is
    folded into [into] ([add] of the union under the target name is not
    needed - the two extents are asserted equivalent, the redundant
    object is removed with a [delete] recovering it from [into]).
    Intended for {!Duplicate_extents} findings. *)
