module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository

type mapping = {
  target : Scheme.t;
  forward : Ast.expr;
  restore : (Scheme.t * Ast.expr) option;
}

type side = { schema : string; mappings : mapping list }
type spec = { name : string; sides : side list }

type outcome = {
  intersection : Schema.t;
  aux_schemas : string list;
  side_pathways : (string * Transform.pathway) list;
  manual_steps : int;
  auto_steps : int;
}

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

(* -- automatic inversion of tagging adds ------------------------------- *)

(* [{'TAG', x1...xn} | pat <- <<source>>]  with pat binding x1...xn
   inverts to
   [{x1...xn} | {t, x1...xn} <- <<target>>; t = 'TAG']
   (scalar head when n = 1). *)
let invert_forward ~target ~source forward =
  match (forward : Ast.expr) with
  | SchemeRef src when Scheme.equal src source ->
      (* identity derivation: the source object simply becomes the target *)
      Some (Ast.SchemeRef target)
  | Comp (Tuple (Const (Value.Str tag) :: head_rest), [ Gen (pat, SchemeRef src) ])
    when Scheme.equal src source ->
      let head_vars =
        List.map (function Ast.Var x -> Some x | _ -> None) head_rest
      in
      if List.exists Option.is_none head_vars then None
      else
        let head_vars = List.map Option.get head_vars in
        let bound = Ast.pat_vars pat in
        if head_vars <> bound || head_vars = [] then None
        else
          (* a tag variable that cannot clash with the bound variables *)
          let rec fresh candidate =
            if List.mem candidate bound then fresh (candidate ^ "0")
            else candidate
          in
          let tag_var = fresh "t" in
          let gen_pat =
            Ast.PTuple (Ast.PVar tag_var :: List.map (fun x -> Ast.PVar x) bound)
          in
          let head =
            match head_vars with
            | [ x ] -> Ast.Var x
            | xs -> Ast.Tuple (List.map (fun x -> Ast.Var x) xs)
          in
          Some
            (Ast.Comp
               ( head,
                 [
                   Ast.Gen (gen_pat, Ast.SchemeRef target);
                   Ast.Filter
                     (Ast.Binop (Eq, Var tag_var, Const (Value.Str tag)));
                 ] ))
  | _ -> None

(* the single source object an invertible forward query draws from *)
let forward_source forward =
  match (forward : Ast.expr) with
  | SchemeRef src -> Some src
  | Comp (_, [ Gen (_, SchemeRef src) ]) -> Some src
  | _ -> None

let is_identity_mapping m =
  match m.forward with
  | Ast.SchemeRef s -> Scheme.equal s m.target
  | _ -> false

(* -- validation -------------------------------------------------------- *)

let rec distinct_names = function
  | [] -> Ok ()
  | s :: rest ->
      if List.exists (fun s' -> s'.schema = s.schema) rest then
        err "side schema %s listed twice" s.schema
      else distinct_names rest

let validate_side repo side =
  match Repository.schema repo side.schema with
  | None -> err "side schema %s is not registered" side.schema
  | Some sch ->
      let* () =
        List.fold_left
          (fun acc m ->
            let* () = acc in
            (* the forward query may only reference objects of the side *)
            let missing =
              Scheme.Set.filter
                (fun s -> not (Schema.mem s sch))
                (Ast.schemes m.forward)
            in
            if not (Scheme.Set.is_empty missing) then
              err "mapping for %s: query references %s absent from %s"
                (Scheme.to_string m.target)
                (String.concat ", "
                   (List.map Scheme.to_string (Scheme.Set.elements missing)))
                side.schema
            else Ok ())
          (Ok ()) side.mappings
      in
      let rec dup = function
        | [] -> Ok ()
        | m :: rest ->
            if List.exists (fun m' -> Scheme.equal m'.target m.target) rest then
              err "side %s defines %s twice" side.schema
                (Scheme.to_string m.target)
            else dup rest
      in
      let* () = dup side.mappings in
      Ok sch

(* -- pathway construction ---------------------------------------------- *)

let side_pathway ~to_name ~targets side side_schema =
  let defined = List.map (fun m -> m.target) side.mappings in
  (* identity mappings carry an existing object through unchanged: no add
     is possible (the object is already there) and the object must not be
     contracted away at the end *)
  let carried, proper =
    List.partition is_identity_mapping side.mappings
  in
  let carried = List.map (fun m -> m.target) carried in
  (* a source object whose name collides with a target it does not carry
     (e.g. gpmDB's own <<protein>> while <<protein>> names the Pedro-shaped
     target) is renamed out of the way before the adds *)
  let collides o =
    List.exists (Scheme.equal o) targets
    && not (List.exists (Scheme.equal o) carried)
  in
  let tmp_of o = Scheme.rename (List.nth (List.rev (Scheme.args o)) 0 ^ "__src") o in
  let collisions = List.filter collides (Schema.objects side_schema) in
  let renames = List.map (fun o -> Transform.Rename (o, tmp_of o)) collisions in
  let resolve o =
    if List.exists (Scheme.equal o) collisions then tmp_of o else o
  in
  let resolve_query q =
    Ast.subst_schemes
      (fun o ->
        if List.exists (Scheme.equal o) collisions then
          Some (Ast.SchemeRef (tmp_of o))
        else None)
      q
  in
  let adds =
    List.map
      (fun m -> Transform.Add (m.target, resolve_query m.forward))
      proper
  in
  let extends =
    List.filter_map
      (fun t ->
        if List.exists (Scheme.equal t) defined then None
        else Some (Transform.Extend (t, Ast.Void, Ast.Any)))
      targets
  in
  (* deletes: user-specified restores first, then automatic inversions;
     each source object is deleted at most once *)
  (* an object that is carried (identity-mapped) or already deleted must
     not be deleted again, even when another mapping draws from it *)
  let deletes, deleted, user_restores =
    List.fold_left
      (fun (steps, deleted, users) m ->
        let unavailable src =
          List.exists (Scheme.equal src) deleted
          || List.exists (Scheme.equal src) carried
        in
        if is_identity_mapping m then (steps, deleted, users)
        else
          match m.restore with
          | Some (src, q) ->
              let src = resolve src in
              if unavailable src then (steps, deleted, users)
              else (Transform.Delete (src, q) :: steps, src :: deleted, users + 1)
          | None -> (
              match forward_source (resolve_query m.forward) with
              | None -> (steps, deleted, users)
              | Some src -> (
                  if unavailable src then (steps, deleted, users)
                  else
                    match
                      invert_forward ~target:m.target ~source:src
                        (resolve_query m.forward)
                    with
                    | Some q ->
                        (Transform.Delete (src, q) :: steps, src :: deleted, users)
                    | None -> (steps, deleted, users))))
      ([], [], 0) side.mappings
  in
  let deletes = List.rev deletes in
  let contracts =
    List.filter_map
      (fun o ->
        let o = resolve o in
        if
          List.exists (Scheme.equal o) deleted
          || List.exists (Scheme.equal o) carried
        then None
        else Some (Transform.Contract (o, Ast.Void, Ast.Any)))
      (Schema.objects side_schema)
  in
  let pathway =
    {
      Transform.from_schema = side.schema;
      to_schema = to_name;
      steps = renames @ adds @ extends @ deletes @ contracts;
    }
  in
  (pathway, List.length proper + user_restores,
   List.length renames + List.length extends
   + (List.length deletes - user_restores)
   + List.length contracts)

let create repo spec =
  let* () =
    if List.length spec.sides < 2 then
      err "intersection %s needs at least two sides" spec.name
    else Ok ()
  in
  let* () = distinct_names spec.sides in
  let* () =
    if Repository.mem_schema repo spec.name then
      err "schema %s already exists" spec.name
    else Ok ()
  in
  let* side_schemas =
    List.fold_left
      (fun acc side ->
        let* acc = acc in
        let* sch = validate_side repo side in
        Ok (sch :: acc))
      (Ok []) spec.sides
  in
  let side_schemas = List.rev side_schemas in
  let targets =
    List.concat_map (fun side -> List.map (fun m -> m.target) side.mappings)
      spec.sides
    |> Scheme.Set.of_list |> Scheme.Set.elements
  in
  let* () =
    if targets = [] then err "intersection %s defines no objects" spec.name
    else Ok ()
  in
  let aux_name i side = Printf.sprintf "%s~%s" spec.name side.schema |> fun s ->
    if i = 0 then spec.name else s
  in
  (* build and register every side pathway *)
  let* registered =
    List.fold_left
      (fun acc (i, side, sch) ->
        let* acc = acc in
        let to_name = aux_name i side in
        let pathway, manual, auto = side_pathway ~to_name ~targets side sch in
        let* () = Repository.add_pathway repo pathway in
        Ok ((i, side, to_name, pathway, manual, auto) :: acc))
      (Ok [])
      (List.mapi (fun i (side, sch) -> (i, side, sch))
         (List.combine spec.sides side_schemas))
  in
  let registered = List.rev registered in
  (* ident pathways from each aux to the designated intersection *)
  let intersection = Repository.schema_exn repo spec.name in
  let* ident_steps =
    List.fold_left
      (fun acc (i, _, to_name, _, _, _) ->
        let* acc = acc in
        if i = 0 then Ok acc
        else
          let aux = Repository.schema_exn repo to_name in
          let* p = Transform.ident aux intersection in
          let* () = Repository.add_pathway repo p in
          Ok (acc + List.length p.steps))
      (Ok 0) registered
  in
  let manual_steps =
    List.fold_left (fun acc (_, _, _, _, m, _) -> acc + m) 0 registered
  in
  let auto_steps =
    List.fold_left (fun acc (_, _, _, _, _, a) -> acc + a) ident_steps registered
  in
  Ok
    {
      intersection;
      aux_schemas =
        List.filter_map
          (fun (i, _, to_name, _, _, _) -> if i = 0 then None else Some to_name)
          registered;
      side_pathways =
        List.map (fun (_, side, _, p, _, _) -> (side.schema, p)) registered;
      manual_steps;
      auto_steps;
    }

let extend_single repo ~name side =
  let* () =
    if Repository.mem_schema repo name then
      err "schema %s already exists" name
    else Ok ()
  in
  let* sch = validate_side repo side in
  let targets = List.map (fun m -> m.target) side.mappings in
  let* () =
    if targets = [] then err "extension %s defines no objects" name else Ok ()
  in
  let pathway, manual, auto = side_pathway ~to_name:name ~targets side sch in
  let* () = Repository.add_pathway repo pathway in
  Ok
    {
      intersection = Repository.schema_exn repo name;
      aux_schemas = [];
      side_pathways = [ (side.schema, pathway) ];
      manual_steps = manual;
      auto_steps = auto;
    }

let mapped_sources repo ~intersection =
  (* aux schemas: sources of all-Id pathways into the intersection *)
  let all = Repository.pathways repo in
  let is_all_ids (p : Transform.pathway) =
    p.steps <> []
    && List.for_all (function Transform.Id _ -> true | _ -> false) p.steps
  in
  let aux =
    List.filter_map
      (fun (p : Transform.pathway) ->
        if p.to_schema = intersection && is_all_ids p then Some p.from_schema
        else None)
      all
  in
  let targets = intersection :: aux in
  List.filter_map
    (fun (p : Transform.pathway) ->
      if List.mem p.to_schema targets && not (is_all_ids p) then
        let deleted =
          List.filter_map
            (function Transform.Delete (s, _) -> Some s | _ -> None)
            p.steps
        in
        Some (p.from_schema, deleted)
      else None)
    all
