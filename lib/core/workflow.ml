module Schema = Automed_model.Schema
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Parser = Automed_iql.Parser
module Value = Automed_iql.Value
module Ast = Automed_iql.Ast
module Matcher = Automed_matching.Matcher

type iteration = {
  index : int;
  description : string;
  outcome : Intersection.outcome;
  global_name : string;
}

type evolution = {
  ev_index : int;
  ev_description : string;
  ev_prev : string;
  ev_next : string;
  ev_sources_touched : string list;
}

type t = {
  repo : Repository.t;
  proc : Processor.t;
  base_name : string;
  mutable srcs : string list;
  durable : Automed_durable.Durable.t option;
  mutable iters : iteration list; (* newest first *)
  mutable version : int; (* of the current global schema *)
  mutable evols : evolution list; (* newest first *)
}

let ( let* ) = Result.bind

let version_name base i = Printf.sprintf "%s_v%d" base i

(* Journal appends land per mutation via the repository observer; after
   each workflow milestone we also flush the journal so a completed
   iteration survives a crash immediately after it. *)
let flush_journal t =
  match t.durable with
  | None -> Ok ()
  | Some d -> Automed_durable.Durable.sync d

let start ?resilience ?durable ?simplify repo ~name ~sources =
  let* () =
    if sources = [] then Error "workflow needs at least one source" else Ok ()
  in
  let* () =
    match durable with
    | Some d when Automed_durable.Durable.repository d != repo ->
        Error "durable handle is attached to a different repository"
    | _ -> Ok ()
  in
  let* _g =
    Global.create repo ~name:(version_name name 0) ~intersections:[]
      ~extensionals:sources
  in
  let t =
    {
      repo;
      proc = Processor.create ?resilience ?simplify repo;
      base_name = name;
      srcs = sources;
      durable;
      iters = [];
      version = 0;
      evols = [];
    }
  in
  let* () = flush_journal t in
  Ok t

let repository t = t.repo
let processor t = t.proc
let sources t = t.srcs

let global_name t = version_name t.base_name t.version
let version t = t.version

let global_schema t = Repository.schema_exn t.repo (global_name t)
let iterations t = List.rev t.iters

let all_outcomes t =
  List.rev_map (fun it -> it.outcome) t.iters |> List.rev

let record ?(description = "") t outcome ~drop_redundant =
  let index = List.length t.iters + 1 in
  let global = version_name t.base_name (t.version + 1) in
  let* _g =
    Global.create ~drop_redundant t.repo ~name:global
      ~intersections:(all_outcomes t @ [ outcome ])
      ~extensionals:t.srcs
  in
  let it = { index; description; outcome; global_name = global } in
  t.iters <- it :: t.iters;
  t.version <- t.version + 1;
  Processor.invalidate t.proc;
  let* () = flush_journal t in
  Ok it

(* -- live schema evolution ----------------------------------------------- *)

let evolutions t = List.rev t.evols

(* One evolution step: allocate the next global version name, run the
   caller's repair (which registers the delta-sized chain pathway from
   the previous version plus any contributions/quarantines — every
   mutation journals through the repository observer), then advance the
   version.  Invalidation is targeted: only cache entries tainted by the
   touched sources are dropped (Processor.invalidate_source), never the
   whole cache — untouched sources keep their cached extents, which is
   what makes re-querying after an evolution cost O(delta).  The journal
   is flushed before returning so a crash immediately after an evolution
   replays it completely. *)
let evolve_version ?(description = "") t ~sources_touched ~repair =
  let prev = version_name t.base_name t.version in
  let next = version_name t.base_name (t.version + 1) in
  let* () = repair ~prev ~next in
  let* () =
    if not (Repository.mem_schema t.repo next) then
      Error
        (Printf.sprintf "evolution repair did not register global version %s"
           next)
    else Ok ()
  in
  t.version <- t.version + 1;
  let ev =
    {
      ev_index = List.length t.evols + 1;
      ev_description = description;
      ev_prev = prev;
      ev_next = next;
      ev_sources_touched = sources_touched;
    }
  in
  t.evols <- ev :: t.evols;
  List.iter (Processor.invalidate_source t.proc) sources_touched;
  let* () = flush_journal t in
  Ok ev

let note_source_added t name =
  if not (List.mem name t.srcs) then t.srcs <- t.srcs @ [ name ]

let note_source_dropped t name =
  t.srcs <- List.filter (fun s -> s <> name) t.srcs

let integrate ?(drop_redundant = true) ?description t spec =
  let* outcome = Intersection.create t.repo spec in
  record ?description t outcome ~drop_redundant

let integrate_adhoc ?(drop_redundant = true) ?description t ~name side =
  let* outcome = Intersection.extend_single t.repo ~name side in
  record ?description t outcome ~drop_redundant

let run t q = Processor.run t.proc ~schema:(global_name t) q

let run_query t text =
  match Parser.parse text with
  | Error e -> Error (Processor.error ~schema:(global_name t) e)
  | Ok q -> run t q

let run_degraded t q = Processor.run_degraded t.proc ~schema:(global_name t) q

let run_query_degraded t text =
  match Parser.parse text with
  | Error e -> Error (Processor.error ~schema:(global_name t) e)
  | Ok q -> run_degraded t q

let run_provenance ?key t q =
  Processor.run_provenance ?key t.proc ~schema:(global_name t) q

let run_query_provenance ?key t text =
  match Parser.parse text with
  | Error e -> Error (Processor.error ~schema:(global_name t) e)
  | Ok q -> run_provenance ?key t q

let run_degraded_provenance ?key t q =
  Processor.run_degraded_provenance ?key t.proc ~schema:(global_name t) q

let explain t q = Processor.explain_plan t.proc ~schema:(global_name t) q

let explain_query t text =
  match Parser.parse text with
  | Error e -> Error (Processor.error ~schema:(global_name t) e)
  | Ok q -> explain t q

let answerable t q = Processor.answerable t.proc ~schema:(global_name t) q

let manual_steps t =
  List.fold_left (fun acc it -> acc + it.outcome.Intersection.manual_steps) 0 t.iters

let auto_steps t =
  List.fold_left (fun acc it -> acc + it.outcome.Intersection.auto_steps) 0 t.iters

let suggestions ?threshold t ~left ~right =
  Matcher.suggest ?threshold t.repo ~left ~right
