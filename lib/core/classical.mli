(** The classical, up-front integration strategy (paper Section 2.1,
    Figure 1) used as the comparison baseline in the case study.

    Each data source schema [DSi] is transformed into a union-compatible
    schema [USi]; the [USi] are identical and are connected pairwise by
    ident transformations; one of them is designated as (that version of)
    the global schema.  Extents of global objects are the bag union of
    the contributions of all sources.

    The iSpider project produced three successive global schema versions
    (GS1 shaped after Pedro, GS2 adding gpmDB-only concepts, GS3 adding
    PepSeeker-only concepts); [ladder] replays such a staged integration
    and reports the per-stage, per-source counts of non-trivial
    transformations - the numbers the paper compares against (19 + 35 +
    41 = 95). *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Repository = Automed_repository.Repository

type source_spec = {
  schema : string;
  mappings : Intersection.mapping list;
      (** identity mappings ([forward = <<o>>]) model concepts the stage
          shape shares with this source; they are not counted as effort *)
}

type stage = { stage_name : string; sources : source_spec list }

type stage_outcome = {
  global : Schema.t;
  union_schemas : string list;  (** the non-designated [USi] *)
  per_source_manual : (string * int) list;
      (** non-identity mappings per source: the paper's non-trivial
          transformation counts *)
}

val stage_manual : stage_outcome -> int

val integrate_stage : Repository.t -> stage -> (stage_outcome, string) result
(** Builds all [DSi -> USi] pathways, idents them, and registers the
    designated global schema under [stage_name]. *)

type ladder_outcome = {
  stages : stage_outcome list;
  new_manual_per_stage : (string * int) list;
      (** stage name to {e newly written} non-trivial transformations:
          stage k's count minus the mappings already written for stage
          k-1 (re-stated mappings cost nothing the second time) *)
  total_manual : int;
}

val ladder : Repository.t -> stage list -> (ladder_outcome, string) result
(** Stages must be given oldest first; later stages restate earlier
    mappings plus the new ones. *)
