module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Parser = Automed_iql.Parser
module Types = Automed_iql.Types
module Repository = Automed_repository.Repository
module Matcher = Automed_matching.Matcher

type entry = {
  entry_id : int;
  target : Scheme.t;
  source_schema : string;
  forward : Ast.expr;
  reverse : Ast.expr option;
  typed : bool;
}

type user_reverse = { ur_source : Scheme.t; ur_query : Ast.expr }

type session = {
  repo : Repository.t;
  name : string;
  sources : string list;
  mutable next_id : int;
  mutable items : entry list; (* newest first *)
  user_reverses : (int, user_reverse) Hashtbl.t;
}

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

let start repo ~name ~sources =
  let* () =
    if List.length sources < 1 then err "need at least one source" else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        if Repository.mem_schema repo s then Ok ()
        else err "source schema %s is not registered" s)
      (Ok ()) sources
  in
  Ok
    {
      repo;
      name;
      sources;
      next_id = 0;
      items = [];
      user_reverses = Hashtbl.create 8;
    }

let source_schema session source =
  if not (List.mem source session.sources) then
    err "%s is not one of this table's sources" source
  else
    match Repository.schema session.repo source with
    | Some s -> Ok s
    | None -> err "source schema %s vanished" source

let validate_refs sch forward =
  let missing =
    Scheme.Set.filter (fun o -> not (Schema.mem o sch)) (Ast.schemes forward)
  in
  if Scheme.Set.is_empty missing then Ok ()
  else
    err "query references %s absent from the source"
      (String.concat ", "
         (List.map Scheme.to_string (Scheme.Set.elements missing)))

let type_checks sch forward =
  match Types.infer ~schemes:(Schema.typing sch) forward with
  | Ok (Types.TBag _) -> true
  | Ok _ | Error _ -> false

let derive_reverse ~target ~forward =
  match (forward : Ast.expr) with
  | Ast.SchemeRef src | Ast.Comp (_, [ Ast.Gen (_, Ast.SchemeRef src) ]) ->
      Intersection.invert_forward ~target ~source:src forward
  | _ -> None

let mk_entry session ~target ~source ~forward ~typed =
  let entry =
    {
      entry_id = session.next_id;
      target;
      source_schema = source;
      forward;
      reverse = derive_reverse ~target ~forward;
      typed;
    }
  in
  session.next_id <- session.next_id + 1;
  session.items <- entry :: session.items;
  entry

let add_gen ~strict session ~target ~source ~forward =
  let* sch = source_schema session source in
  let* forward = Parser.parse forward in
  let* () = validate_refs sch forward in
  let typed = type_checks sch forward in
  let* () =
    if strict && not typed then
      err "the forward query for %s does not type-check (use add_unchecked \
           to force it)"
        (Scheme.to_string target)
    else Ok ()
  in
  let* () =
    if
      List.exists
        (fun e -> Scheme.equal e.target target && e.source_schema = source)
        session.items
    then err "a mapping for %s from %s already exists" (Scheme.to_string target) source
    else Ok ()
  in
  Ok (mk_entry session ~target ~source ~forward ~typed)

let add session ~target ~source ~forward =
  add_gen ~strict:true session ~target ~source ~forward

let add_unchecked session ~target ~source ~forward =
  add_gen ~strict:false session ~target ~source ~forward

let find session id =
  match List.find_opt (fun e -> e.entry_id = id) session.items with
  | Some e -> Ok e
  | None -> err "no entry %d" id

let edit session id ~forward =
  let* old = find session id in
  let* sch = source_schema session old.source_schema in
  let* forward = Parser.parse forward in
  let* () = validate_refs sch forward in
  let updated =
    {
      old with
      forward;
      typed = type_checks sch forward;
      reverse = derive_reverse ~target:old.target ~forward;
    }
  in
  session.items <-
    List.map (fun e -> if e.entry_id = id then updated else e) session.items;
  Ok updated

let set_reverse session id ~reverse ~source_object =
  let* entry = find session id in
  let* sch = source_schema session entry.source_schema in
  let* () =
    if Schema.mem source_object sch then Ok ()
    else
      err "%s is not an object of %s" (Scheme.to_string source_object)
        entry.source_schema
  in
  let* reverse = Parser.parse reverse in
  Hashtbl.replace session.user_reverses id
    { ur_source = source_object; ur_query = reverse };
  Ok ()

let remove session id =
  let* _ = find session id in
  session.items <- List.filter (fun e -> e.entry_id <> id) session.items;
  Hashtbl.remove session.user_reverses id;
  Ok ()

let entries session =
  List.sort (fun a b -> Int.compare a.entry_id b.entry_id) session.items

let prefill ?threshold session ~left ~right =
  let* () =
    if List.mem left session.sources && List.mem right session.sources then Ok ()
    else err "both %s and %s must be sources of this table" left right
  in
  let* suggestions = Matcher.suggest ?threshold session.repo ~left ~right in
  let added = ref [] in
  List.iter
    (fun (s : Matcher.suggestion) ->
      let base = List.nth (List.rev (Scheme.args s.Matcher.left)) 0 in
      let target =
        match Scheme.construct s.Matcher.left with
        | "table" -> Scheme.table ("U" ^ base)
        | _ -> Scheme.column ("U" ^ List.hd (Scheme.args s.Matcher.left)) base
      in
      let tagging source_schema (obj : Scheme.t) =
        match Scheme.args obj with
        | [ _t ] -> Printf.sprintf "[{'%s', k} | k <- %s]" source_schema
                      (Scheme.to_string obj)
        | _ -> Printf.sprintf "[{'%s', k, x} | {k,x} <- %s]" source_schema
                 (Scheme.to_string obj)
      in
      let try_add source obj =
        match
          add session ~target ~source ~forward:(tagging source obj)
        with
        | Ok e -> added := e :: !added
        | Error _ -> ()
      in
      try_add left s.Matcher.left;
      try_add right s.Matcher.right)
    suggestions;
  Ok (List.rev !added)

(* Modification propagation into a live editing session: a source
   evolution must not leave the table referencing objects that no longer
   exist.  Renames rewrite the stored queries in place; drops remove the
   entries that consumed the object. *)
let repair_evolution session ~source ~renames ~dropped =
  let rename_all e = List.fold_left
      (fun e (from_, to_) -> Ast.rename_scheme ~from_ ~to_ e)
      e renames
  in
  let refs_dropped e =
    let refs = Ast.schemes e.forward in
    List.exists (fun o -> Scheme.Set.mem o refs) dropped
  in
  let touched e =
    let refs = Ast.schemes e.forward in
    List.exists (fun (o, _) -> Scheme.Set.mem o refs) renames
  in
  let removed =
    List.filter
      (fun e -> e.source_schema = source && refs_dropped e)
      session.items
  in
  List.iter (fun e -> Hashtbl.remove session.user_reverses e.entry_id) removed;
  let rewritten = ref [] in
  session.items <-
    List.filter_map
      (fun e ->
        if e.source_schema <> source then Some e
        else if refs_dropped e then None
        else if not (touched e) then Some e
        else begin
          let forward = rename_all e.forward in
          let typed =
            match source_schema session source with
            | Ok sch -> type_checks sch forward
            | Error _ -> e.typed
          in
          let e' =
            {
              e with
              forward;
              typed;
              reverse = derive_reverse ~target:e.target ~forward;
            }
          in
          (match Hashtbl.find_opt session.user_reverses e.entry_id with
          | Some { ur_source; ur_query } ->
              let ur_source =
                match List.assoc_opt ur_source renames with
                | Some renamed -> renamed
                | None -> ur_source
              in
              Hashtbl.replace session.user_reverses e.entry_id
                { ur_source; ur_query = rename_all ur_query }
          | None -> ());
          rewritten := e' :: !rewritten;
          Some e'
        end)
      session.items;
  (List.rev !rewritten, removed)

let prune_source session source =
  let removed = List.filter (fun e -> e.source_schema = source) session.items in
  List.iter (fun e -> Hashtbl.remove session.user_reverses e.entry_id) removed;
  session.items <-
    List.filter (fun e -> e.source_schema <> source) session.items;
  removed

let side_of session source =
  let mappings =
    List.filter_map
      (fun e ->
        if e.source_schema = source then
          Some
            {
              Intersection.target = e.target;
              forward = e.forward;
              restore =
                (match Hashtbl.find_opt session.user_reverses e.entry_id with
                | Some { ur_source; ur_query } -> Some (ur_source, ur_query)
                | None -> None);
            }
        else None)
      (entries session)
  in
  { Intersection.schema = source; mappings }

let populated_sources session =
  List.filter
    (fun s -> List.exists (fun e -> e.source_schema = s) session.items)
    session.sources

let finish session =
  let populated = populated_sources session in
  if List.length populated < 2 then
    err "an intersection needs mappings from at least two sources (got %d)"
      (List.length populated)
  else
    Ok
      {
        Intersection.name = session.name;
        sides = List.map (side_of session) populated;
      }

let finish_single session =
  match populated_sources session with
  | [ source ] -> Ok (session.name, side_of session source)
  | l -> err "expected mappings from exactly one source, got %d" (List.length l)
