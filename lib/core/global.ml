module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

let dropped_objects intersections es =
  List.concat_map
    (fun (o : Intersection.outcome) ->
      List.concat_map
        (fun (side, (p : Transform.pathway)) ->
          if side <> es then []
          else
            List.filter_map
              (function Transform.Delete (s, _) -> Some s | _ -> None)
              p.steps)
        o.side_pathways)
    intersections
  |> Scheme.Set.of_list |> Scheme.Set.elements

let create ?(drop_redundant = true) repo ~name ~intersections ~extensionals =
  let* () =
    if Repository.mem_schema repo name then
      err "schema %s already exists" name
    else Ok ()
  in
  let* es_schemas =
    List.fold_left
      (fun acc es ->
        let* acc = acc in
        match Repository.schema repo es with
        | Some s -> Ok ((es, s) :: acc)
        | None -> err "extensional schema %s is not registered" es)
      (Ok []) extensionals
  in
  let es_schemas = List.rev es_schemas in
  (* the object set of G *)
  let intersection_objects =
    List.concat_map
      (fun (o : Intersection.outcome) -> Schema.objects o.intersection)
      intersections
    |> Scheme.Set.of_list
  in
  let survivors es sch =
    let dropped =
      if drop_redundant then Scheme.Set.of_list (dropped_objects intersections es)
      else Scheme.Set.empty
    in
    List.filter (fun o -> not (Scheme.Set.mem o dropped)) (Schema.objects sch)
  in
  let es_objects =
    List.concat_map
      (fun (es, sch) ->
        List.map (fun o -> Scheme.prefix es o) (survivors es sch))
      es_schemas
    |> Scheme.Set.of_list
  in
  let all_objects = Scheme.Set.union intersection_objects es_objects in
  let extends_for own =
    Scheme.Set.fold
      (fun o acc ->
        if Scheme.Set.mem o own then acc
        else Transform.Extend (o, Ast.Void, Ast.Any) :: acc)
      all_objects []
    |> List.rev
  in
  (* pathway from each intersection schema: identity on its objects *)
  let intersection_pathway (o : Intersection.outcome) =
    let own = Scheme.Set.of_list (Schema.objects o.intersection) in
    {
      Transform.from_schema = Schema.name o.intersection;
      to_schema = name;
      steps = extends_for own;
    }
  in
  (* pathway from each extensional schema: contract redundant objects,
     prefix the survivors, extend with the rest of G *)
  let es_pathway (es, sch) =
    let dropped =
      if drop_redundant then dropped_objects intersections es else []
    in
    let contracts =
      List.map (fun o -> Transform.Contract (o, Ast.Void, Ast.Any)) dropped
    in
    let surv = survivors es sch in
    let renames =
      List.map (fun o -> Transform.Rename (o, Scheme.prefix es o)) surv
    in
    let own = Scheme.Set.of_list (List.map (Scheme.prefix es) surv) in
    {
      Transform.from_schema = es;
      to_schema = name;
      steps = contracts @ renames @ extends_for own;
    }
  in
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        Repository.add_pathway repo p)
      (Ok ())
      (List.map intersection_pathway intersections
      @ List.map es_pathway es_schemas)
  in
  match Repository.schema repo name with
  | Some g -> Ok g
  | None -> err "internal: global schema %s not registered" name
