(** The pathway rewrite engine: sound static simplification.

    Applies the pathway-algebra identities that {!Pathway_lint} only
    reports ([rename-chain], [dead-step-pair]) plus step-order
    normalisation, producing a shorter pathway with the same semantics:
    identical symbolic final state, identical derived definitions (and so
    bit-identical query answers), in both directions of the pathway.

    Rules (each application is recorded as an auditable
    {!application}):

    {ul
    {- [drop-identity-step]: [id o o] is a no-op in both the schema fold
       and the definition replay.}
    {- [collapse-rename-chain]: [rename a b; ...; rename b c] with no
       intervening step mentioning [b] or [c] becomes [rename a c].}
    {- [cancel-rename-roundtrip]: the [a = c] case of the chain - both
       renames vanish.}
    {- [cancel-dead-pair]: [add]/[extend] of an object later removed by
       [delete]/[contract] with no intervening step mentioning it - both
       steps vanish.}
    {- [reorder-commuting-steps]: adjacent steps on disjoint scheme sets
       are sorted into the canonical rename, add, extend, delete,
       contract, id order.}}

    The engine only touches pathways whose per-step lint is free of
    error-severity diagnostics; anything else is returned unchanged with
    [eligible = false].  Simplification is meant to be {e proof-checked},
    not trusted: callers should certify the result with {!Equiv.check}
    before using it (the query processor refuses uncertified rewrites). *)

module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform

type application = {
  rule : string;  (** rule id, e.g. ["collapse-rename-chain"] *)
  step : int;
      (** 1-based index of the first affected step, in the pathway as it
          stood when the rule fired *)
  detail : string;  (** human-readable description of the rewrite *)
}

type outcome = {
  pathway : Transform.pathway;  (** the simplified pathway *)
  applications : application list;  (** in application order; [] = no change *)
  eligible : bool;
      (** false when the input pathway had lint errors and was left
          untouched *)
}

val rules : (string * string) list
(** Rule ids with one-line descriptions, in the order the engine tries
    them. *)

val simplify : Schema.t -> Transform.pathway -> outcome
(** Simplifies the pathway against its source schema to a fixpoint.
    Never raises; an ineligible or already-minimal pathway comes back
    unchanged. *)

val pp_application : application Fmt.t
