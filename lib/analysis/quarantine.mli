(** Stranded-pathway detection and quarantine repair.

    A live schema evolution can leave a previously valid pathway
    {e stranded}: its steps reference objects the evolution dropped or
    renamed, or its derived object set no longer agrees with the
    registered target schema.  A stranded pathway cannot simply be
    deleted — earlier global schema versions are defined through it and
    must stay queryable — so the repair is {e quarantine}: replace the
    steps (through {!Repository.replace_pathway}, so the change is
    journaled and crash-safe) with the universal shape that contracts
    every current source object and extends every target object with a
    [Void] lower bound.  The quarantined pathway still derives exactly
    its target's objects, but every definition it provides is [Void]:
    it contributes nothing to any answer and the query processor never
    fetches its source through it. *)

module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository

val check : Repository.t -> Transform.pathway -> string option
(** [Some reason] when the pathway is stranded against the current
    repository state: an endpoint schema is gone, the steps no longer
    replay, or the derived object set disagrees with the registered
    target (subset agreement for contributions, exact otherwise). *)

val is_stranded : Repository.t -> Transform.pathway -> bool

val is_void_degraded_step : Transform.prim -> bool
(** A [Void]-lower-bound contract or extend: the "no information" bound
    the evolution repair degrades a definition to when it cannot be
    propagated.  Counted per step by the health observatory's
    repair-debt accounting. *)

val is_quarantined : Transform.pathway -> bool
(** Recognises the quarantine shape: non-empty steps consisting only of
    [Void]-lower-bound contracts and extends.  Note the shape is a
    necessary, not sufficient, sign of contributing nothing: a pathway
    whose steps only extend {e other} objects (the federation shape
    {!Automed_integration.Global.create} builds) passes its own objects
    through untouched, with identity definitions.  Use {!is_inert} for
    the strong "contributes nothing" certificate. *)

val is_inert : Repository.t -> Transform.pathway -> bool
(** The strong quarantine certificate: the pathway {e provably
    contributes nothing} to any answer, so removing it from the
    repository preserves every query on every schema version
    bit-identically.  Requires {!is_quarantined} {e and} that every
    object of the (registered) source schema is contracted by some
    step — nothing passes through, so every definition the pathway
    derives is the empty [Void] contribution.  This is exactly the
    shape {!quarantined_steps} writes; maintenance reclamation relies
    on it to retire dead quarantines
    ({!Automed_repository.Repository.remove_pathway}). *)

val quarantined_steps :
  Repository.t -> Transform.pathway -> Transform.prim list
(** The universal quarantine steps for the pathway's current endpoint
    schemas. *)

val quarantine :
  Repository.t -> Transform.pathway -> (Transform.pathway, string) result
(** Replaces the pathway's steps with {!quarantined_steps} through
    {!Repository.replace_pathway} (journaled; contribution status is
    preserved) and returns the stored replacement.  Emits the
    [analysis.pathways_quarantined] counter. *)
