module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Transform = Automed_transform.Transform
module Telemetry = Automed_telemetry.Telemetry

type application = { rule : string; step : int; detail : string }

type outcome = {
  pathway : Transform.pathway;
  applications : application list;
  eligible : bool;
}

let rules =
  [
    ( "drop-identity-step",
      "id o o changes neither the schema state nor any derived definition" );
    ( "collapse-rename-chain",
      "rename a b; ...; rename b c with b and c untouched in between is \
       rename a c" );
    ( "cancel-rename-roundtrip",
      "rename a b; ...; rename b a with a and b untouched in between is a \
       no-op" );
    ( "cancel-dead-pair",
      "an object added/extended and later deleted/contracted, never read in \
       between, was dead work" );
    ( "reorder-commuting-steps",
      "adjacent steps over disjoint scheme sets sort into the canonical \
       rename, add, extend, delete, contract, id order" );
  ]

let pp_application ppf a =
  Fmt.pf ppf "%s (step %d): %s" a.rule a.step a.detail

(* -- footprints ---------------------------------------------------------- *)

let queries_of = function
  | Transform.Add (_, q) | Transform.Delete (_, q) -> [ q ]
  | Transform.Extend (_, ql, qu) | Transform.Contract (_, ql, qu) -> [ ql; qu ]
  | Transform.Rename _ | Transform.Id _ -> []

let written = function
  | Transform.Add (s, _)
  | Transform.Delete (s, _)
  | Transform.Extend (s, _, _)
  | Transform.Contract (s, _, _) ->
      Scheme.Set.singleton s
  | Transform.Rename (a, b) | Transform.Id (a, b) ->
      Scheme.Set.add a (Scheme.Set.singleton b)

(* The rules repeatedly ask "does this step mention scheme s?" while
   scanning; recomputing [Ast.schemes] over large embedded queries on
   every probe dominated the engine's cost on real pathways, so each
   step carries its footprint (and the subset its queries read) for the
   lifetime of the rewrite. *)
type astep = {
  p : Transform.prim;
  fp : Scheme.Set.t;
  reads : Scheme.Set.t;
  key : int * string;  (** canonical order: (kind rank, scheme name) *)
}

(* canonical order: renames, adds, extends, deletes, contracts, ids --
   the shape intersection pathways are stated in *)
let kind_rank = function
  | Transform.Rename _ -> 0
  | Transform.Add _ -> 1
  | Transform.Extend _ -> 2
  | Transform.Delete _ -> 3
  | Transform.Contract _ -> 4
  | Transform.Id _ -> 5

let annotate prim =
  let reads =
    List.fold_left
      (fun acc q -> Scheme.Set.union acc (Ast.schemes q))
      Scheme.Set.empty (queries_of prim)
  in
  {
    p = prim;
    fp = Scheme.Set.union (written prim) reads;
    reads;
    key = (kind_rank prim, Scheme.to_string (Transform.prim_scheme prim));
  }

let mentions s a = Scheme.Set.mem s a.fp

let sch = Scheme.to_string

(* -- the rules ----------------------------------------------------------- *)
(* Each rule takes the current (annotated) step list and applies its
   first instance — or, for the reorder pass, one full sweep — returning
   the rewritten list plus the audit records; [None] means the rule has
   no instance.  The driver iterates to a fixpoint; shrinking rules fire
   one instance at a time so every audit record's step index is accurate
   for the pathway as it stood when the rule fired. *)

let drop_identity steps =
  let rec go prefix i = function
    | [] -> None
    | { p = Transform.Id (a, b); _ } :: rest when Scheme.equal a b ->
        Some
          ( List.rev_append prefix rest,
            [
              {
                rule = "drop-identity-step";
                step = i + 1;
                detail = Printf.sprintf "id %s %s is a no-op" (sch a) (sch b);
              };
            ] )
    | s :: rest -> go (s :: prefix) (i + 1) rest
  in
  go [] 0 steps

(* rename a b ... rename b c: nothing in between may mention b (it would
   read or shadow the renamed object) nor c (the collapsed rename frees
   the name b but occupies c earlier than the original did) *)
let collapse_chain steps =
  let rec outer prefix i = function
    | [] -> None
    | ({ p = Transform.Rename (a, b); _ } as s) :: rest -> (
        let rec scan between = function
          | { p = Transform.Rename (b', c); _ } :: tail when Scheme.equal b b'
            ->
              if List.exists (mentions c) between then None
              else Some (List.rev between, c, tail)
          | x :: tail when not (mentions b x) -> scan (x :: between) tail
          | _ -> None
        in
        match scan [] rest with
        | Some (between, c, tail) ->
            let app rule detail = { rule; step = i + 1; detail } in
            let replacement, application =
              if Scheme.equal a c then
                ( between @ tail,
                  app "cancel-rename-roundtrip"
                    (Printf.sprintf
                       "rename %s %s and rename %s %s cancel out" (sch a)
                       (sch b) (sch b) (sch c)) )
              else
                ( (annotate (Transform.Rename (a, c)) :: between) @ tail,
                  app "collapse-rename-chain"
                    (Printf.sprintf
                       "rename %s %s and rename %s %s collapse to rename %s \
                        %s"
                       (sch a) (sch b) (sch b) (sch c) (sch a) (sch c)) )
            in
            Some (List.rev_append prefix replacement, [ application ])
        | None -> outer (s :: prefix) (i + 1) rest)
    | s :: rest -> outer (s :: prefix) (i + 1) rest
  in
  outer [] 0 steps

(* add/extend s ... delete/contract s: with nothing in between mentioning
   s, the definition map and the schema state are net-unchanged, so both
   steps (and the intermediate existence of s) were dead work *)
let cancel_dead_pair steps =
  let removal_of s a =
    match a.p with
    | Transform.Delete (s', _) | Transform.Contract (s', _, _) ->
        Scheme.equal s s'
        (* the restore query of the removal must not read s either *)
        && not (Scheme.Set.mem s a.reads)
    | _ -> false
  in
  let rec outer prefix i = function
    | [] -> None
    | ({ p = Transform.Add (s, _) | Transform.Extend (s, _, _); _ } as birth)
      :: rest -> (
        let rec scan between = function
          | death :: tail when removal_of s death ->
              Some (List.rev between, death, tail)
          | x :: tail when not (mentions s x) -> scan (x :: between) tail
          | _ -> None
        in
        match scan [] rest with
        | Some (between, death, tail) ->
            Some
              ( List.rev_append prefix (between @ tail),
                [
                  {
                    rule = "cancel-dead-pair";
                    step = i + 1;
                    detail =
                      Printf.sprintf
                        "%s %s is undone by a later %s and never read in \
                         between"
                        (Transform.prim_kind birth.p)
                        (sch s)
                        (Transform.prim_kind death.p);
                  };
                ] )
        | None -> outer (birth :: prefix) (i + 1) rest)
    | s :: rest -> outer (s :: prefix) (i + 1) rest
  in
  outer [] 0 steps

let commute a b = Scheme.Set.is_empty (Scheme.Set.inter a.fp b.fp)

(* bubble sort on the precomputed keys, swapping only commuting pairs;
   sweeps repeat until no adjacent out-of-order commuting pair remains.
   Sorting to completion inside one pass (rather than a swap per driver
   round) keeps the driver's round count — and with it the number of
   O(n^2) shrink-rule rescans — independent of the inversion count. *)
let reorder steps =
  let rec sweep i acc apps = function
    | x :: y :: rest when x.key > y.key && commute x y ->
        let app =
          {
            rule = "reorder-commuting-steps";
            step = i + 1;
            detail =
              Printf.sprintf
                "%s %s and %s %s commute; swapped into canonical order"
                (Transform.prim_kind x.p)
                (sch (Transform.prim_scheme x.p))
                (Transform.prim_kind y.p)
                (sch (Transform.prim_scheme y.p));
          }
        in
        sweep (i + 1) (y :: acc) (app :: apps) (x :: rest)
    | x :: rest -> sweep (i + 1) (x :: acc) apps rest
    | [] -> (List.rev acc, apps)
  in
  let rec fix steps apps =
    match sweep 0 [] [] steps with
    | steps', [] -> (steps', apps)
    | steps', new_apps -> fix steps' (List.rev_append new_apps apps)
  in
  match fix steps [] with
  | _, [] -> None
  | steps', apps -> Some (steps', List.rev apps)

(* -- the driver ---------------------------------------------------------- *)

let passes = [ drop_identity; collapse_chain; cancel_dead_pair; reorder ]

(* shrinking rules strictly reduce length; a reorder sweep strictly
   reduces the number of out-of-order adjacent pairs, so the fixpoint
   exists -- the cap is belt and braces *)
let max_rounds = 10_000

let simplify schema (p : Transform.pathway) =
  if Diagnostic.has_errors (Pathway_lint.lint schema p) then
    { pathway = p; applications = []; eligible = false }
  else begin
    let rec go steps apps rounds =
      if rounds >= max_rounds then (steps, apps)
      else
        match List.find_map (fun pass -> pass steps) passes with
        | Some (steps', new_apps) ->
            Telemetry.count
              ~by:(List.length new_apps)
              "analysis.rewrite.applications";
            go steps' (List.rev_append new_apps apps) (rounds + 1)
        | None -> (steps, apps)
    in
    let steps, apps = go (List.map annotate p.steps) [] 0 in
    {
      pathway = { p with steps = List.map (fun a -> a.p) steps };
      applications = List.rev apps;
      eligible = true;
    }
  end
