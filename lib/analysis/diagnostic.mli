(** Diagnostics produced by the static pathway/repository linter.

    Every finding carries a severity, a stable rule identifier (the
    kebab-case names documented in README "Static analysis"), a location
    (which pathway, which 1-based step, which scheme, if known) and a
    human-readable message.  [Error] findings are violations that would
    make {!Automed_transform.Transform.apply} or the IQL evaluator fail
    at runtime, or that break the repository network; [Warning] findings
    are hazards (information loss, dead work, ambiguity); [Info] findings
    are observations. *)

module Scheme = Automed_base.Scheme

type severity = Error | Warning | Info

type location = {
  pathway : string option;  (** e.g. ["pedro -> ispider_v0"] *)
  step : int option;  (** 1-based step index within the pathway *)
  scheme : Scheme.t option;  (** the offending schema object *)
}

type t = {
  severity : severity;
  rule : string;  (** stable rule id, e.g. ["add-present"] *)
  location : location;
  message : string;
}

val no_location : location

val make :
  ?pathway:string ->
  ?step:int ->
  ?scheme:Scheme.t ->
  severity ->
  rule:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [make ~rule Error "fmt" ...] builds a diagnostic with a formatted
    message. *)

val severity_to_string : severity -> string
val compare : t -> t -> int
(** Orders by severity (errors first), then pathway, step, rule. *)

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

val count : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val pp : t Fmt.t
(** One-line human-readable rendering:
    [error\[add-present\] pathway a -> b, step 3: ...]. *)

val to_tsv : t -> string
(** Machine-readable rendering: severity, rule, pathway, step, scheme and
    message separated by tabs ([-] for absent fields).  Tabs, newlines,
    carriage returns and backslashes embedded in a field are escaped
    ([\t], [\n], [\r], [\\]) so every diagnostic is exactly one row. *)

val pp_summary : (int * int * int) Fmt.t
(** Renders the triple returned by {!count}. *)
