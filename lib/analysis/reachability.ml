module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module SS = Set.Make (String)

(* A definition that can be decided empty without data: the certain
   answers of [Void], an empty bag literal, or a range whose lower bound
   is one of those.  (Extend/contract lower bounds are exactly what the
   definition replay keeps.) *)
let provably_empty = function
  | Ast.Void | Ast.EBag [] | Ast.Range (Ast.Void, _) -> true
  | _ -> false

let live_objects ~source (p : Transform.pathway) =
  let query_live liveness q =
    if provably_empty q then false
    else
      match q with
      | Ast.SchemeRef s -> (
          match Scheme.Map.find_opt s liveness with
          | Some l -> l
          | None -> true (* unknown reference: assume live *))
      | _ -> true
  in
  let init =
    List.fold_left
      (fun m o -> Scheme.Map.add o true m)
      Scheme.Map.empty (Schema.objects source)
  in
  let exception Unknown in
  match
    List.fold_left
      (fun liveness (step : Transform.prim) ->
        match step with
        | Add (o, q) | Extend (o, q, _) ->
            Scheme.Map.add o (query_live liveness q) liveness
        | Delete (o, _) | Contract (o, _, _) -> Scheme.Map.remove o liveness
        | Rename (a, b) -> (
            match Scheme.Map.find_opt a liveness with
            | Some l -> Scheme.Map.add b l (Scheme.Map.remove a liveness)
            | None -> raise Unknown)
        | Id (a, b) -> (
            if Scheme.equal a b then liveness
            else
              match Scheme.Map.find_opt a liveness with
              | Some l -> Scheme.Map.add b l liveness
              | None -> raise Unknown))
      init p.steps
  with
  | liveness ->
      Some
        (Scheme.Map.fold
           (fun o live acc -> if live then Scheme.Set.add o acc else acc)
           liveness Scheme.Set.empty)
  | exception Unknown -> None

(* -- chasing live definitions down the network --------------------------- *)

type ctx = {
  repo : Repository.t;
  defs_cache :
    (Transform.pathway, Ast.expr Scheme.Map.t option) Hashtbl.t;
  memo : (string * Scheme.t, SS.t) Hashtbl.t;
  in_progress : (string * Scheme.t, unit) Hashtbl.t;
}

let make_ctx repo =
  {
    repo;
    defs_cache = Hashtbl.create 16;
    memo = Hashtbl.create 64;
    in_progress = Hashtbl.create 16;
  }

let all_stored_sources repo =
  List.fold_left
    (fun acc s ->
      let n = Schema.name s in
      if Repository.has_stored_extents repo n then SS.add n acc else acc)
    SS.empty (Repository.schemas repo)

let pathway_defs ctx (p : Transform.pathway) =
  match Hashtbl.find_opt ctx.defs_cache p with
  | Some d -> d
  | None ->
      let d =
        match Repository.schema ctx.repo p.from_schema with
        | None -> None
        | Some src -> Result.to_option (Equiv.defs src p)
      in
      Hashtbl.replace ctx.defs_cache p d;
      d

let rec sources_of ctx ~schema o =
  match Hashtbl.find_opt ctx.memo (schema, o) with
  | Some s -> s
  | None ->
      if Hashtbl.mem ctx.in_progress (schema, o) then SS.empty
      else begin
        Hashtbl.replace ctx.in_progress (schema, o) ();
        let base =
          match Repository.stored_extent ctx.repo ~schema o with
          | Some _ -> SS.singleton schema
          | None -> SS.empty
        in
        let acc =
          List.fold_left
            (fun acc (p : Transform.pathway) ->
              match pathway_defs ctx p with
              | None ->
                  (* unanalysable pathway: over-approximate, never prune *)
                  SS.union acc (all_stored_sources ctx.repo)
              | Some defs -> (
                  match Scheme.Map.find_opt o defs with
                  | None -> acc
                  | Some e when provably_empty e -> acc
                  | Some e ->
                      Scheme.Set.fold
                        (fun s acc ->
                          SS.union acc
                            (sources_of ctx ~schema:p.from_schema s))
                        (Ast.schemes e) acc))
            base
            (Repository.pathways_into ctx.repo schema)
        in
        Hashtbl.remove ctx.in_progress (schema, o);
        Hashtbl.replace ctx.memo (schema, o) acc;
        acc
      end

let object_sources repo ~schema o =
  SS.elements (sources_of (make_ctx repo) ~schema o)

let default_root repo =
  match List.rev (Repository.pathways repo) with
  | p :: _ -> Some p.Transform.to_schema
  | [] -> None

let unreachable_sources ?root repo =
  if Repository.pathways repo = [] then []
  else
    let root = match root with Some r -> Some r | None -> default_root repo in
    match root with
    | None -> []
    | Some root -> (
        match Repository.schema repo root with
        | None -> []
        | Some root_schema ->
            let ctx = make_ctx repo in
            let reachable =
              List.fold_left
                (fun acc o -> SS.union acc (sources_of ctx ~schema:root o))
                SS.empty
                (Schema.objects root_schema)
            in
            SS.elements
              (SS.filter
                 (fun s -> s <> root && not (SS.mem s reachable))
                 (all_stored_sources repo)))
