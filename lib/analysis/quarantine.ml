module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Telemetry = Automed_telemetry.Telemetry

(* A pathway is {e stranded} when replaying it against the current
   repository can no longer work: schema evolution dropped or renamed
   objects its steps reference, or changed the endpoint schemas so the
   derived object set no longer agrees with the registered target.
   Stranded pathways are repaired by {e quarantine}: replacing the steps
   with the universal shape that contracts every current source object
   and extends every target object with a [Void] lower bound — the
   pathway stays in the network (old global versions remain well-defined
   and the id keeps resolving), but it contributes nothing and never
   fetches its source. *)

let check repo (p : Transform.pathway) =
  match
    (Repository.schema repo p.from_schema, Repository.schema repo p.to_schema)
  with
  | None, _ -> Some ("source schema " ^ p.from_schema ^ " is not registered")
  | _, None -> Some ("target schema " ^ p.to_schema ^ " is not registered")
  | Some src, Some tgt -> (
      match Transform.apply src p with
      | Error e -> Some ("steps no longer replay: " ^ e)
      | Ok derived ->
          if Repository.is_contribution repo p then
            if
              List.for_all
                (fun o -> Schema.mem o tgt)
                (Schema.objects derived)
            then None
            else
              Some
                "contribution derives objects absent from the evolved target"
          else if Schema.same_objects derived tgt then None
          else
            Some
              (Printf.sprintf
                 "derived object set (%d objects) no longer matches the \
                  registered target %s (%d objects)"
                 (Schema.object_count derived) p.to_schema
                 (Schema.object_count tgt)))

let is_stranded repo p = check repo p <> None

(* Quarantined steps are recognisable by shape: nothing but [Void]-bound
   contracts and extends, so the pathway provably contributes nothing. *)
let is_void_degraded_step = function
  | Transform.Contract (_, Ast.Void, _) | Transform.Extend (_, Ast.Void, _) ->
      true
  | _ -> false

let is_quarantined (p : Transform.pathway) =
  p.steps <> [] && List.for_all is_void_degraded_step p.steps

(* The strong certificate behind certified pathway removal: all steps
   are [Void]-bound (no definition carries information) and every source
   object is contracted (no object passes through with an identity
   definition, as it does in the extends-only federation shape).  Every
   derived definition is therefore the empty [Void] contribution and
   removing the pathway cannot change any answer. *)
let is_inert repo (p : Transform.pathway) =
  is_quarantined p
  &&
  match Repository.schema repo p.from_schema with
  | None -> false
  | Some src ->
      let contracted =
        List.filter_map
          (function Transform.Contract (o, _, _) -> Some o | _ -> None)
          p.steps
        |> Scheme.Set.of_list
      in
      List.for_all
        (fun o -> Scheme.Set.mem o contracted)
        (Schema.objects src)

let quarantined_steps repo (p : Transform.pathway) =
  let src = Repository.schema_exn repo p.from_schema in
  let tgt = Repository.schema_exn repo p.to_schema in
  List.map
    (fun o -> Transform.Contract (o, Ast.Void, Ast.Any))
    (Schema.objects src)
  @ List.map
      (fun o -> Transform.Extend (o, Ast.Void, Ast.Any))
      (Schema.objects tgt)

let quarantine repo (p : Transform.pathway) =
  let p' = { p with Transform.steps = quarantined_steps repo p } in
  match Repository.replace_pathway repo ~old:p p' with
  | Ok () ->
      Telemetry.count "analysis.pathways_quarantined";
      Ok p'
  | Error e -> Error e
