module Scheme = Automed_base.Scheme

type severity = Error | Warning | Info

type location = {
  pathway : string option;
  step : int option;
  scheme : Scheme.t option;
}

type t = {
  severity : severity;
  rule : string;
  location : location;
  message : string;
}

let no_location = { pathway = None; step = None; scheme = None }

let make ?pathway ?step ?scheme severity ~rule fmt =
  Format.kasprintf
    (fun message ->
      { severity; rule; location = { pathway; step; scheme }; message })
    fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match
        Option.compare String.compare a.location.pathway b.location.pathway
      with
      | 0 -> (
          match Option.compare Int.compare a.location.step b.location.step with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let pp ppf d =
  Fmt.pf ppf "%s[%s]" (severity_to_string d.severity) d.rule;
  (match d.location.pathway with
  | Some p -> Fmt.pf ppf " pathway %s" p
  | None -> ());
  (match d.location.step with
  | Some i -> Fmt.pf ppf ", step %d" i
  | None -> ());
  Fmt.pf ppf ": %s" d.message

(* a diagnostic must stay exactly one TSV row even when a schema name or
   message embeds a tab or newline *)
let escape_field s =
  let hostile = function '\t' | '\n' | '\r' | '\\' -> true | _ -> false in
  if not (String.exists hostile s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '\t' -> Buffer.add_string buf "\\t"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let to_tsv d =
  String.concat "\t"
    (List.map escape_field
       [
         severity_to_string d.severity;
         d.rule;
         Option.value ~default:"-" d.location.pathway;
         (match d.location.step with Some i -> string_of_int i | None -> "-");
         (match d.location.scheme with
         | Some s -> Scheme.to_string s
         | None -> "-");
         d.message;
       ])

let pp_summary ppf (e, w, i) =
  Fmt.pf ppf "%d error%s, %d warning%s, %d info" e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")
    i
