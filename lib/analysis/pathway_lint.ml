module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Model = Automed_model.Model
module Ast = Automed_iql.Ast
module Types = Automed_iql.Types
module Transform = Automed_transform.Transform
module D = Diagnostic

let label (p : Transform.pathway) =
  Printf.sprintf "%s -> %s" p.from_schema p.to_schema

(* -- symbolic schema-level step ------------------------------------------ *)

(* Mirrors Transform.apply_prim but recovers from every violation: the
   returned state is the best-effort effect of the step, so later steps
   are checked against the most plausible schema. *)
let schema_step ~name idx state prim =
  let mk ?scheme sev rule fmt = D.make ~pathway:name ~step:idx ?scheme sev ~rule fmt in
  let validity s =
    match Model.validate_scheme s with
    | Ok _ -> []
    | Error e -> [ mk ~scheme:s D.Error "invalid-scheme" "%s" e ]
  in
  let add_like verb s ty_query =
    let vd = validity s in
    if Schema.mem s state then
      ( vd
        @ [
            mk ~scheme:s D.Error "add-present"
              "%s of %s: the object is already present in the schema state"
              verb (Scheme.to_string s);
          ],
        state )
    else if vd <> [] then (vd, state)
    else
      let extent_ty =
        Option.bind ty_query (fun q -> Transform.infer_extent_ty state q)
      in
      match Schema.add_object ?extent_ty s state with
      | Ok state' -> ([], state')
      | Error e -> ([ mk ~scheme:s D.Error "invalid-scheme" "%s" e ], state)
  in
  let remove_like verb s =
    match Schema.remove_object s state with
    | Ok state' -> ([], state')
    | Error _ ->
        ( [
            mk ~scheme:s D.Error "delete-absent"
              "%s of %s: the object is absent from the schema state" verb
              (Scheme.to_string s);
          ],
          state )
  in
  match prim with
  | Transform.Add (s, q) -> add_like "add" s (Some q)
  | Transform.Extend (s, ql, _) -> add_like "extend" s (Some ql)
  | Transform.Delete (s, _) -> remove_like "delete" s
  | Transform.Contract (s, _, _) -> remove_like "contract" s
  | Transform.Rename (a, b) ->
      let kind_diags =
        if Scheme.language a <> Scheme.language b
           || Scheme.construct a <> Scheme.construct b
        then
          [
            mk ~scheme:a D.Error "rename-kind"
              "rename cannot change the construct kind: %s -> %s"
              (Scheme.to_string a) (Scheme.to_string b);
          ]
        else []
      in
      let source_diags =
        if Schema.mem a state then []
        else
          [
            mk ~scheme:a D.Error "rename-absent"
              "rename of %s: the object is absent from the schema state"
              (Scheme.to_string a);
          ]
      in
      let target_diags =
        if Schema.mem b state then
          [
            mk ~scheme:b D.Error "rename-collision"
              "rename %s -> %s: the target is already present in the schema \
               state"
              (Scheme.to_string a) (Scheme.to_string b);
          ]
        else []
      in
      let diags = kind_diags @ source_diags @ target_diags in
      if diags <> [] then (diags, state)
      else (
        match Schema.rename_object a b state with
        | Ok state' -> ([], state')
        | Error e -> ([ mk ~scheme:a D.Error "rename-kind" "%s" e ], state))
  | Transform.Id (a, _) ->
      let vd = validity a in
      if Schema.mem a state then (vd, state)
      else
        ( vd
          @ [
              mk ~scheme:a D.Error "dangling-id"
                "id endpoint %s is absent from the schema state"
                (Scheme.to_string a);
            ],
          state )

(* -- embedded query lints ------------------------------------------------ *)

let query_diags ~name idx ~scheme ~side state q =
  match q with
  | Ast.Void | Ast.Any -> []
  | _ ->
      let missing =
        Scheme.Set.filter (fun s -> not (Schema.mem s state)) (Ast.schemes q)
      in
      if not (Scheme.Set.is_empty missing) then
        List.map
          (fun m ->
            D.make ~pathway:name ~step:idx ~scheme:m D.Error
              ~rule:"query-unbound"
              "query %s references %s, absent from the %s schema"
              (Ast.to_string q) (Scheme.to_string m) side)
          (Scheme.Set.elements missing)
      else
        match Types.infer ~schemes:(Schema.typing state) q with
        | Ok _ -> []
        | Error e ->
            [
              D.make ~pathway:name ~step:idx ~scheme D.Error
                ~rule:"query-ill-typed" "%a" Types.pp_error e;
            ]

(* A delete's restore query should rebuild the deleted object's extent:
   when the object declares an extent type, check compatibility. *)
let restore_diags ~name idx ~scheme pre post q =
  match (q, Schema.extent_ty scheme pre) with
  | (Ast.Void | Ast.Any), _ | _, None -> []
  | q, Some expected -> (
      let unresolved =
        Scheme.Set.exists (fun s -> not (Schema.mem s post)) (Ast.schemes q)
      in
      if unresolved then []
      else
        match
          Types.check_extent_query ~schemes:(Schema.typing post) ~expected q
        with
        | Ok () -> []
        | Error e ->
            [
              D.make ~pathway:name ~step:idx ~scheme D.Warning
                ~rule:"query-extent-mismatch"
                "restore query does not rebuild the extent type %s of %s: %a"
                (Types.to_string expected) (Scheme.to_string scheme)
                Types.pp_error e;
            ])

let step_diags ~name idx state prim =
  let schema_ds, state' = schema_step ~name idx state prim in
  let qd side st scheme q = query_diags ~name idx ~scheme ~side st q in
  let query_ds =
    match prim with
    | Transform.Add (s, q) -> qd "pre" state s q
    | Transform.Extend (s, ql, qu) -> qd "pre" state s ql @ qd "pre" state s qu
    | Transform.Delete (s, q) ->
        qd "post" state' s q @ restore_diags ~name idx ~scheme:s state state' q
    | Transform.Contract (s, ql, qu) ->
        qd "post" state' s ql @ qd "post" state' s qu
    | Transform.Rename _ | Transform.Id _ -> []
  in
  (schema_ds @ query_ds, state')

(* -- pathway-algebra lints ----------------------------------------------- *)

let step_queries = function
  | Transform.Add (_, q) | Transform.Delete (_, q) -> [ q ]
  | Transform.Extend (_, ql, qu) | Transform.Contract (_, ql, qu) -> [ ql; qu ]
  | Transform.Rename _ | Transform.Id _ -> []

let reads s prim =
  List.exists (fun q -> Scheme.Set.mem s (Ast.schemes q)) (step_queries prim)

let touches s prim =
  match prim with
  | Transform.Rename (a, b) | Transform.Id (a, b) ->
      Scheme.equal a s || Scheme.equal b s
  | Transform.Add (x, _) | Transform.Extend (x, _, _) -> Scheme.equal x s
  | Transform.Delete _ | Transform.Contract _ -> false

let dead_pair_diags ~name steps =
  let arr = Array.of_list steps in
  let n = Array.length arr in
  let out = ref [] in
  Array.iteri
    (fun i prim ->
      match prim with
      | Transform.Add (s, _) | Transform.Extend (s, _, _) ->
          let rec scan j =
            if j < n then
              match arr.(j) with
              | (Transform.Delete (x, _) | Transform.Contract (x, _, _)) as p
                when Scheme.equal x s ->
                  if not (reads s p) then
                    out :=
                      D.make ~pathway:name ~step:(j + 1) ~scheme:s D.Warning
                        ~rule:"dead-step-pair"
                        "%s introduced at step %d is removed at step %d with \
                         no intervening reader; both steps can be dropped"
                        (Scheme.to_string s) (i + 1) (j + 1)
                      :: !out
              | p -> if not (reads s p || touches s p) then scan (j + 1)
          in
          scan (i + 1)
      | _ -> ())
    arr;
  List.rev !out

let rename_chain_diags ~name steps =
  let arr = Array.of_list steps in
  let n = Array.length arr in
  let out = ref [] in
  Array.iteri
    (fun i prim ->
      match prim with
      | Transform.Rename (a, b) ->
          let rec scan j =
            if j < n then
              match arr.(j) with
              | Transform.Rename (b', c) when Scheme.equal b' b ->
                  out :=
                    D.make ~pathway:name ~step:(j + 1) ~scheme:b D.Warning
                      ~rule:"rename-chain"
                      "%s is renamed to %s at step %d and on to %s at step %d \
                       with no intervening use; collapse into a single rename"
                      (Scheme.to_string a) (Scheme.to_string b) (i + 1)
                      (Scheme.to_string c) (j + 1)
                    :: !out
              | p -> if not (reads b p || touches b p) then scan (j + 1)
          in
          scan (i + 1)
      | _ -> ())
    arr;
  List.rev !out

let lossy_reverse_diags ~name steps =
  List.concat
    (List.mapi
       (fun i prim ->
         match prim with
         | Transform.Delete (s, Ast.Void) ->
             [
               D.make ~pathway:name ~step:(i + 1) ~scheme:s D.Warning
                 ~rule:"non-reversible"
                 "delete of %s carries restore query Void: the reverse \
                  pathway cannot rebuild its extent — use contract Range \
                  Void Any to make the information loss explicit"
                 (Scheme.to_string s);
             ]
         | _ -> [])
       steps)

(* -- driver -------------------------------------------------------------- *)

let fold ~name schema steps =
  let diags, final, _ =
    List.fold_left
      (fun (diags, state, idx) prim ->
        let ds, state' = step_diags ~name idx state prim in
        (ds :: diags, state', idx + 1))
      ([], schema, 1) steps
  in
  (List.concat (List.rev diags), final)

let final_state schema (p : Transform.pathway) =
  snd (fold ~name:(label p) schema p.steps)

let id_target_diags ~name final steps =
  List.concat
    (List.mapi
       (fun i prim ->
         match prim with
         | Transform.Id (_, b) when not (Schema.mem b final) ->
             [
               D.make ~pathway:name ~step:(i + 1) ~scheme:b D.Error
                 ~rule:"dangling-id"
                 "id endpoint %s is absent from the final schema"
                 (Scheme.to_string b);
             ]
         | _ -> [])
       steps)

(* With the step lints clean, re-applying the reversed steps from the
   final state must succeed; report any residue as a reversal hazard. *)
let reverse_diags ~name final (p : Transform.pathway) =
  let rev = Transform.reverse p in
  let ds, _ = fold ~name final rev.steps in
  match D.errors ds with
  | [] -> []
  | d :: _ ->
      [
        D.make ~pathway:name D.Warning ~rule:"non-reversible"
          "the reverse pathway does not re-apply from the target schema: %s"
          d.D.message;
      ]

let involution_diags ~name (p : Transform.pathway) =
  if Transform.reverse (Transform.reverse p) = p then []
  else
    [
      D.make ~pathway:name D.Error ~rule:"reverse-involution"
        "reverse (reverse p) differs structurally from p";
    ]

let lint ?name schema (p : Transform.pathway) =
  let name = match name with Some n -> n | None -> label p in
  let step_ds, final = fold ~name schema p.steps in
  let id_ds = id_target_diags ~name final p.steps in
  let empty_ds =
    if p.steps = [] then
      [
        D.make ~pathway:name D.Info ~rule:"empty-pathway"
          "pathway has no steps; source and target must be identical schemas";
      ]
    else []
  in
  let reverse_ds =
    if D.has_errors (step_ds @ id_ds) then [] else reverse_diags ~name final p
  in
  step_ds @ id_ds
  @ dead_pair_diags ~name p.steps
  @ rename_chain_diags ~name p.steps
  @ lossy_reverse_diags ~name p.steps
  @ reverse_ds
  @ involution_diags ~name p
  @ empty_ds
