(** Source-reachability analysis over the pathway network.

    A pathway defines most global-schema objects only as the trivial
    lower bound [extend o Range Void Any] — such a definition can never
    contribute a row, so replaying the pathway for that object is wasted
    work, and a data source none of whose objects feed a {e live}
    definition chain up to the root schema can never appear in an
    answer.  This pass proves both facts statically:

    - {!live_objects} is the per-pathway fast path the query processor's
      fan-out pruning keys off (skipping a pathway whose definition of
      the wanted object is provably empty preserves bit-identical
      answers, because the empty bag is the identity of bag union);
    - {!unreachable_sources} backs the [unreachable-source] lint rule
      and `automed analyze`'s reachability report. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository

val live_objects :
  source:Schema.t -> Transform.pathway -> Scheme.Set.t option
(** The target-schema objects whose derived definition through this
    pathway is not provably empty.  [None] when the pathway cannot be
    replayed symbolically (e.g. a rename of an unknown object): callers
    must then assume every object is live. *)

val object_sources :
  Repository.t -> schema:string -> Scheme.t -> string list
(** The names of the schemas whose {e stored} extents can contribute
    rows to the given object, found by chasing live definitions down
    the pathway network (sorted, duplicate-free).  An empty list proves
    the object's extent is empty. *)

val unreachable_sources : ?root:string -> Repository.t -> string list
(** Schemas with stored extents that no object of the root schema can
    reach through live definitions (sorted).  [root] defaults to the
    target of the most recently registered pathway; an empty repository
    or unknown root yields []. *)
