(** The independent pathway-equivalence checker.

    Certifies that a candidate pathway (typically a {!Rewrite} output)
    has the same semantics as the original, without sharing any logic
    with the rewrite engine: equivalence is re-derived from the pathway
    semantics themselves.  Four checks must all pass, in both directions
    of the pathway (stored pathways are used reversed by the network
    search):

    + identical endpoints;
    + identical symbolic final state ({!Automed_transform.Transform.apply}
      on both, compared object-by-object including extent types);
    + identical derived definitions (an independent symbolic replay of
      each pathway's add/extend/rename steps, compared per object with
      {!Automed_iql.Ast.equal});
    + differential evaluation: every derived definition is evaluated on
      both sides over randomly generated source extents and the answers
      must be bit-identical (a definition absent on one side is the
      empty contribution [Void]).

    The query processor refuses any rewrite this checker cannot certify,
    so static simplification is proof-checked rather than trusted. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value
module Transform = Automed_transform.Transform

val defs :
  Schema.t -> Transform.pathway -> (Ast.expr Scheme.Map.t, string) result
(** The definition each target-schema object gets by symbolically
    replaying the pathway over the source schema: the view definitions
    query reformulation unfolds.  Extend contributes its lower bound.
    Fails on a step that references an object absent at that point. *)

type certificate = {
  objects : int;  (** forward definitions compared *)
  trials : int;  (** differential-evaluation rounds run *)
  reverse_checked : bool;
      (** whether the reverse-direction definitions were comparable
          (they are skipped only when both reverse replays fail
          identically) *)
}

val check :
  ?seed:int64 ->
  ?trials:int ->
  ?extents:(int -> (Scheme.t * Value.Bag.t) list) ->
  ?syntactic:bool ->
  Schema.t ->
  original:Transform.pathway ->
  candidate:Transform.pathway ->
  (certificate, string) result
(** [check src ~original ~candidate] proves the two pathways equivalent
    over source schema [src], or says why not.  [trials] (default 2)
    differential rounds are evaluated over extents generated from [seed]
    (deterministic); [extents] overrides generation — it is given the
    trial index and must cover the source objects (e.g. qcheck-generated
    extents in the property tests).  [syntactic:false] skips the
    per-object syntactic comparison so the differential evaluator can be
    exercised on its own (used by the mutation tests). *)
