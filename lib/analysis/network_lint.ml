module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module D = Diagnostic

let label (p : Transform.pathway) =
  Printf.sprintf "%s -> %s" p.from_schema p.to_schema

let default_root repo =
  match List.rev (Repository.pathways repo) with
  | p :: _ -> Some p.Transform.to_schema
  | [] -> None

let endpoint_diags repo (p : Transform.pathway) =
  let name = label p in
  let missing side s =
    if Repository.mem_schema repo s then []
    else
      [
        D.make ~pathway:name D.Error ~rule:"endpoint-missing"
          "%s schema %s is not registered in the repository" side s;
      ]
  in
  missing "source" p.Transform.from_schema @ missing "target" p.Transform.to_schema

let pathway_diags repo (p : Transform.pathway) =
  match Repository.schema repo p.Transform.from_schema with
  | None -> []
  | Some src ->
      let name = label p in
      let ds = Pathway_lint.lint ~name src p in
      let mismatch =
        match Repository.schema repo p.Transform.to_schema with
        | None -> []
        | Some registered ->
            (* only meaningful when the steps themselves are clean *)
            if D.has_errors ds then []
            else
              let derived = Pathway_lint.final_state src p in
              if Repository.is_contribution repo p then
                (* contributions agree on a subset of the target *)
                if
                  List.for_all
                    (fun o -> Schema.mem o registered)
                    (Schema.objects derived)
                then []
                else
                  [
                    D.make ~pathway:name D.Error ~rule:"endpoint-mismatch"
                      "contribution derives object(s) that are not part of \
                       the registered schema %s"
                      p.Transform.to_schema;
                  ]
              else if Schema.same_objects derived registered then []
              else
                [
                  D.make ~pathway:name D.Error ~rule:"endpoint-mismatch"
                    "applying the pathway to %s yields %d object(s) that do \
                     not match the %d object(s) of the registered schema %s"
                    p.Transform.from_schema
                    (Schema.object_count derived)
                    (Schema.object_count registered)
                    p.Transform.to_schema;
                ]
      in
      ds @ mismatch

let pair_diags pathways =
  let rec go acc = function
    | [] -> List.rev acc
    | (p : Transform.pathway) :: rest ->
        let acc =
          List.fold_left
            (fun acc (q : Transform.pathway) ->
              let same_pair =
                p.from_schema = q.from_schema && p.to_schema = q.to_schema
              in
              let reverse_pair =
                p.from_schema = q.to_schema && p.to_schema = q.from_schema
              in
              if same_pair && p.steps = q.steps then
                D.make ~pathway:(label p) D.Warning ~rule:"duplicate-pathway"
                  "registered twice with identical steps"
                :: acc
              else if reverse_pair && (Transform.reverse p).steps = q.steps
              then
                D.make ~pathway:(label p) D.Warning ~rule:"duplicate-pathway"
                  "pathway %s is its automatic reverse: pathways are \
                   bidirectional, registering both is redundant"
                  (label q)
                :: acc
              else if same_pair || reverse_pair then
                D.make ~pathway:(label p) D.Warning ~rule:"conflicting-pathway"
                  "a structurally different pathway between the same schemas \
                   is also registered; query reformulation will use \
                   whichever the network search finds first"
                :: acc
              else acc)
            acc rest
        in
        go acc rest
  in
  go [] pathways

let reachability_diags ?root repo =
  let pathways = Repository.pathways repo in
  if pathways = [] then []
  else
    let root =
      match root with Some r -> Some r | None -> default_root repo
    in
    match root with
    | None -> []
    | Some root when not (Repository.mem_schema repo root) ->
        [
          D.make D.Error ~rule:"unreachable-schema"
            "root schema %s is not registered in the repository" root;
        ]
    | Some root ->
        let reached = Hashtbl.create 16 in
        Hashtbl.replace reached root ();
        let queue = Queue.create () in
        Queue.push root queue;
        while not (Queue.is_empty queue) do
          let here = Queue.pop queue in
          List.iter
            (fun (p : Transform.pathway) ->
              let visit s =
                if not (Hashtbl.mem reached s) then begin
                  Hashtbl.replace reached s ();
                  Queue.push s queue
                end
              in
              if p.from_schema = here then visit p.to_schema
              else if p.to_schema = here then visit p.from_schema)
            pathways
        done;
        List.filter_map
          (fun s ->
            let n = Schema.name s in
            if Hashtbl.mem reached n then None
            else
              Some
                (D.make D.Error ~rule:"unreachable-schema"
                   "schema %s is not reachable from %s through the pathway \
                    network: queries over it cannot be reformulated"
                   n root))
          (Repository.schemas repo)

(* A source whose stored extents no live definition chain carries up to
   the root schema is dead weight: replaying its pathways can never put
   a row into an answer over the root. *)
let source_reachability_diags ?root repo =
  if Repository.pathways repo = [] then []
  else
    match (match root with Some r -> Some r | None -> default_root repo) with
    | None -> []
    | Some root ->
        List.map
          (fun s ->
            D.make D.Warning ~rule:"unreachable-source"
              "source schema %s has materialised extents but no live \
               definition chain carries them to %s: its data can never \
               appear in an answer over the root"
              s root)
          (Reachability.unreachable_sources ~root repo)

(* Every schema with materialised extents is a data source whose fetches
   can fail at query time; without a resilience policy one flaky source
   fails global queries outright.  Only checked when the caller says
   which sources its resilience registry covers. *)
let resilience_diags ?covered repo =
  match covered with
  | None -> []
  | Some covered ->
      List.filter_map
        (fun s ->
          let n = Schema.name s in
          if Repository.has_stored_extents repo n && not (List.mem n covered)
          then
            Some
              (D.make D.Warning ~rule:"unprotected-source"
                 "source schema %s has materialised extents but no \
                  resilience policy: a fetch failure fails queries outright \
                  instead of degrading them"
                 n)
          else None)
        (Repository.schemas repo)

(* A workflow-built repository (recognisable by versioned global
   schemas) accumulates integration state worth keeping; running it with
   no write-ahead journal attached means a crash loses every iteration.
   Only checked when the caller says whether a durable handle exists. *)
let durability_diags ?journaled repo =
  let is_versioned n =
    match String.rindex_opt n '_' with
    | None -> false
    | Some i ->
        i + 1 < String.length n
        && n.[i + 1] = 'v'
        && i + 2 < String.length n
        && String.for_all
             (fun c -> c >= '0' && c <= '9')
             (String.sub n (i + 2) (String.length n - i - 2))
  in
  match journaled with
  | None | Some true -> []
  | Some false ->
      if
        List.exists
          (fun s -> is_versioned (Schema.name s))
          (Repository.schemas repo)
      then
        [
          D.make D.Warning ~rule:"unjournaled-repository"
            "repository holds workflow-built global schema versions but no \
             durable journal is attached: a crash silently loses the \
             integration history";
        ]
      else []

(* Schema evolution can strand a pathway (steps referencing dropped or
   renamed objects, or endpoint shapes that drifted apart) or leave a
   data-bearing pathway flowing from a source that evolved away.  Both
   have the same repair — quarantine via [lint --fix] — so both surface
   under dedicated rules. *)
let evolution_diags repo =
  List.concat_map
    (fun (p : Transform.pathway) ->
      let name = label p in
      let stranded =
        match Quarantine.check repo p with
        | None -> []
        | Some reason ->
            [
              D.make ~pathway:name D.Error ~rule:"stranded-pathway"
                "pathway was stranded by schema evolution (%s): quarantine \
                 it with [lint --fix] so it stops contributing"
                reason;
            ]
      in
      let retired =
        if
          Repository.retired repo p.Transform.from_schema
          && not (Quarantine.is_quarantined p)
        then
          [
            D.make ~pathway:name D.Error ~rule:"stranded-pathway"
              "source schema %s evolved away but this pathway still carries \
               its data: quarantine it with [lint --fix]"
              p.Transform.from_schema;
          ]
        else []
      in
      stranded @ retired)
    (Repository.pathways repo)

let lint ?root ?covered ?journaled repo =
  let pathways = Repository.pathways repo in
  List.concat_map (fun p -> endpoint_diags repo p @ pathway_diags repo p) pathways
  @ pair_diags pathways
  @ evolution_diags repo
  @ reachability_diags ?root repo
  @ source_reachability_diags ?root repo
  @ resilience_diags ?covered repo
  @ durability_diags ?journaled repo
