module Scheme = Automed_base.Scheme
module Prng = Automed_base.Prng
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Value = Automed_iql.Value
module Eval = Automed_iql.Eval
module Types = Automed_iql.Types
module Transform = Automed_transform.Transform

let ( let* ) = Result.bind
let err fmt = Format.kasprintf (fun s -> Error s) fmt

(* An independent replay of the definition semantics (mirrors what query
   reformulation does, on purpose: that is the semantics simplification
   must preserve).  Kept Result-valued so a broken candidate is a
   verdict, not an exception. *)
let defs schema (p : Transform.pathway) =
  let subst defs q =
    let missing = ref None in
    let q' =
      Ast.subst_schemes
        (fun s ->
          match Scheme.Map.find_opt s defs with
          | Some e -> Some e
          | None ->
              if !missing = None then missing := Some s;
              None)
        q
    in
    match !missing with
    | Some s ->
        err "definition query %s references %s, absent at this point"
          (Ast.to_string q) (Scheme.to_string s)
    | None -> Ok q'
  in
  let init =
    List.fold_left
      (fun m o -> Scheme.Map.add o (Ast.SchemeRef o) m)
      Scheme.Map.empty (Schema.objects schema)
  in
  List.fold_left
    (fun acc step ->
      let* defs = acc in
      match (step : Transform.prim) with
      | Add (o, q) ->
          let* q = subst defs q in
          Ok (Scheme.Map.add o q defs)
      | Extend (o, ql, _) ->
          let* ql = subst defs ql in
          Ok (Scheme.Map.add o ql defs)
      | Delete (o, _) | Contract (o, _, _) -> Ok (Scheme.Map.remove o defs)
      | Rename (a, b) -> (
          match Scheme.Map.find_opt a defs with
          | Some e -> Ok (Scheme.Map.add b e (Scheme.Map.remove a defs))
          | None -> err "rename of unknown object %s" (Scheme.to_string a))
      | Id (a, b) -> (
          if Scheme.equal a b then Ok defs
          else
            match Scheme.Map.find_opt a defs with
            | Some e -> Ok (Scheme.Map.add b e defs)
            | None -> err "id of unknown object %s" (Scheme.to_string a)))
    (Ok init) p.steps

type certificate = { objects : int; trials : int; reverse_checked : bool }

(* -- deterministic extent generation ------------------------------------- *)
(* Tiny value domains on purpose: joins collide, bags carry duplicate
   elements, so multiplicity bugs (bag vs set semantics) show up. *)

let rec gen_value rng (ty : Types.ty) =
  match ty with
  | Types.TUnit -> Value.Unit
  | Types.TBool -> Value.Bool (Prng.bool rng)
  | Types.TInt -> Value.Int (Prng.int rng 4)
  | Types.TFloat -> Value.Float (float_of_int (Prng.int rng 3))
  | Types.TStr | Types.TVar _ ->
      Value.Str (Prng.choose rng [| "a"; "b"; "c"; "d" |])
  | Types.TTuple ts -> Value.Tuple (List.map (gen_value rng) ts)
  | Types.TBag t -> Value.Bag (gen_bag rng t)

and gen_bag rng elt_ty =
  let n = Prng.int rng 5 in
  Value.Bag.of_list (List.init n (fun _ -> gen_value rng elt_ty))

let gen_extents rng schema =
  List.map
    (fun o ->
      let elt_ty =
        match Schema.extent_ty o schema with
        | Some (Types.TBag t) -> t
        | Some t -> t
        | None -> Types.TStr
      in
      (o, gen_bag rng elt_ty))
    (Schema.objects schema)

let env_of_extents exts =
  let table =
    List.fold_left
      (fun m (o, bag) -> Scheme.Map.add o bag m)
      Scheme.Map.empty exts
  in
  Eval.env ~schemes:(fun s -> Scheme.Map.find_opt s table) ()

(* -- the checks ---------------------------------------------------------- *)

let states_agree s1 s2 =
  if not (Schema.same_objects s1 s2) then
    err "final states disagree: %d vs %d object(s)" (Schema.object_count s1)
      (Schema.object_count s2)
  else
    match
      List.find_opt
        (fun o -> Schema.extent_ty o s1 <> Schema.extent_ty o s2)
        (Schema.objects s1)
    with
    | Some o ->
        err "final states disagree on the extent type of %s"
          (Scheme.to_string o)
    | None -> Ok ()

let def_domain m = Scheme.Map.fold (fun o _ acc -> o :: acc) m []

(* a definition absent from one side is the empty contribution *)
let def_or_void m o =
  match Scheme.Map.find_opt o m with Some e -> e | None -> Ast.Void

let differential ~what env d1 d2 =
  let domain =
    List.sort_uniq Scheme.compare (def_domain d1 @ def_domain d2)
  in
  List.fold_left
    (fun acc o ->
      let* () = acc in
      match
        (Eval.eval env (def_or_void d1 o), Eval.eval env (def_or_void d2 o))
      with
      | Ok v1, Ok v2 ->
          if Value.equal v1 v2 then Ok ()
          else
            err "%s definitions of %s evaluate differently: %s vs %s" what
              (Scheme.to_string o) (Value.to_string v1) (Value.to_string v2)
      | Error _, Error _ -> Ok ()
      | Ok _, Error e ->
          err "%s definition of %s fails only for the candidate: %s" what
            (Scheme.to_string o)
            (Fmt.str "%a" Eval.pp_error e)
      | Error e, Ok _ ->
          err "%s definition of %s fails only for the original: %s" what
            (Scheme.to_string o)
            (Fmt.str "%a" Eval.pp_error e))
    (Ok ()) domain

let syntactic_defs_agree ~what d1 d2 =
  if Scheme.Map.equal Ast.equal d1 d2 then Ok ()
  else
    let domain =
      List.sort_uniq Scheme.compare (def_domain d1 @ def_domain d2)
    in
    let offender =
      List.find_opt
        (fun o ->
          match (Scheme.Map.find_opt o d1, Scheme.Map.find_opt o d2) with
          | Some e1, Some e2 -> not (Ast.equal e1 e2)
          | Some _, None | None, Some _ -> true
          | None, None -> false)
        domain
    in
    err "%s definitions differ%s" what
      (match offender with
      | Some o -> " on " ^ Scheme.to_string o
      | None -> "")

let check ?(seed = 0x5EED_CAFEL) ?(trials = 2) ?extents ?(syntactic = true)
    schema ~(original : Transform.pathway)
    ~(candidate : Transform.pathway) =
  let* () =
    if
      original.from_schema = candidate.from_schema
      && original.to_schema = candidate.to_schema
    then Ok ()
    else
      err "endpoints differ: %s -> %s vs %s -> %s" original.from_schema
        original.to_schema candidate.from_schema candidate.to_schema
  in
  let* s1 =
    Result.map_error
      (fun e -> "original pathway does not apply: " ^ e)
      (Transform.apply schema original)
  in
  let* s2 =
    Result.map_error
      (fun e -> "candidate pathway does not apply: " ^ e)
      (Transform.apply schema candidate)
  in
  let* () = states_agree s1 s2 in
  let* d1 =
    Result.map_error
      (fun e -> "original pathway has no definitions: " ^ e)
      (defs schema original)
  in
  let* d2 =
    Result.map_error
      (fun e -> "candidate pathway has no definitions: " ^ e)
      (defs schema candidate)
  in
  let* () = if syntactic then syntactic_defs_agree ~what:"forward" d1 d2 else Ok () in
  (* the reverse direction: stored pathways double as reverse edges of
     the network search, so equivalence must hold both ways *)
  let reverse_defs =
    match
      ( defs s1 (Transform.reverse original),
        defs s1 (Transform.reverse candidate) )
    with
    | Ok r1, Ok r2 -> Ok (Some (r1, r2))
    | Error _, Error _ -> Ok None
    | Ok _, Error e ->
        err "reverse of the candidate has no definitions: %s" e
    | Error e, Ok _ -> err "reverse of the original has no definitions: %s" e
  in
  let* reverse_defs = reverse_defs in
  let* () =
    match reverse_defs with
    | Some (r1, r2) when syntactic -> syntactic_defs_agree ~what:"reverse" r1 r2
    | _ -> Ok ()
  in
  let* () =
    let rec trial k =
      if k >= trials then Ok ()
      else
        let source_extents =
          match extents with
          | Some f -> f k
          | None ->
              gen_extents (Prng.create (Int64.add seed (Int64.of_int k))) schema
        in
        let* () =
          differential ~what:"forward" (env_of_extents source_extents) d1 d2
        in
        let* () =
          match reverse_defs with
          | None -> Ok ()
          | Some (r1, r2) ->
              let target_extents =
                gen_extents
                  (Prng.create (Int64.add (Int64.lognot seed) (Int64.of_int k)))
                  s1
              in
              differential ~what:"reverse" (env_of_extents target_extents) r1 r2
        in
        trial (k + 1)
    in
    trial 0
  in
  Ok
    {
      objects = Scheme.Map.cardinal d1;
      trials;
      reverse_checked = reverse_defs <> None;
    }
