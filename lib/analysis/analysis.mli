(** Entry points of the static pathway/repository linter.

    The linter validates BAV pathways and the repository network without
    executing any transformation or query: it folds each pathway over a
    symbolic schema state, type-checks every embedded IQL query with
    {!Automed_iql.Types.infer} against the state at that step, and
    analyses the pathway algebra and the repository graph.  See
    {!Pathway_lint} and {!Network_lint} for the rule inventory, and the
    README "Static analysis" section for the user-facing documentation
    ([automed-cli lint]). *)

module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository

val lint_pathway :
  ?name:string -> Schema.t -> Transform.pathway -> Diagnostic.t list
(** {!Pathway_lint.lint}: every diagnostic for one pathway checked
    against a starting schema. *)

val lint_repository :
  ?root:string ->
  ?covered:string list ->
  ?journaled:bool ->
  Repository.t ->
  Diagnostic.t list
(** {!Network_lint.lint}: every registered pathway plus the network
    checks, sorted errors-first.  [covered] names the sources protected
    by a resilience policy and enables the [unprotected-source] warning;
    [journaled] states whether a durable journal is attached and enables
    the [unjournaled-repository] warning. *)

val install_gate : Repository.t -> unit
(** Opt-in validation gate: after this call,
    {!Repository.add_pathway} additionally rejects any pathway for which
    the linter reports error-severity diagnostics (warnings pass).  The
    error message carries the rule ids and step locations. *)

val remove_gate : Repository.t -> unit

type simplification =
  [ `Unchanged  (** no rewrite rule applied *)
  | `Simplified of Rewrite.outcome * Equiv.certificate
      (** simplified and certified equivalent *)
  | `Refused of Rewrite.outcome * string
      (** the rewrite engine produced a candidate the equivalence
          checker could not certify; the candidate must not be used *) ]

val simplify_certified :
  ?seed:int64 ->
  ?trials:int ->
  Schema.t ->
  Transform.pathway ->
  simplification
(** {!Rewrite.simplify} followed by {!Equiv.check}: the proof-checked
    simplification pipeline the query processor and the lint autofixer
    share.  A refusal is counted on the [analysis.rewrites_refused]
    telemetry counter (certifications on [analysis.rewrites_certified]). *)

type fix = {
  pathway : string;  (** ["from -> to"] label *)
  steps_before : int;
  steps_after : int;
  applications : Rewrite.application list;
  quarantined : bool;
      (** the pathway was stranded by schema evolution (or still carried
          data of an evolved-away source) and was quarantined instead of
          simplified; see {!Quarantine} *)
  applied : (unit, string) result;
      (** [Ok ()] when the stored pathway was replaced through
          {!Repository.replace_pathway} (journaled via the repository
          observer); [Error] when certification or replacement failed *)
}

val fix_repository : ?seed:int64 -> ?trials:int -> Repository.t -> fix list
(** Two repair passes over every stored pathway, both through the
    repository API — so an attached write-ahead journal records each
    change as an [Op_replace_pathway].  First, pathways stranded by
    schema evolution (see {!Quarantine.check}) and unquarantined
    pathways from evolved-away sources are quarantined.  Then the
    remaining pathways are simplified, replacing the ones that both
    changed and certified.  Returns one record per pathway either pass
    touched (quarantined, certified or refused); untouched pathways are
    omitted. *)
