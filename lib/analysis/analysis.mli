(** Entry points of the static pathway/repository linter.

    The linter validates BAV pathways and the repository network without
    executing any transformation or query: it folds each pathway over a
    symbolic schema state, type-checks every embedded IQL query with
    {!Automed_iql.Types.infer} against the state at that step, and
    analyses the pathway algebra and the repository graph.  See
    {!Pathway_lint} and {!Network_lint} for the rule inventory, and the
    README "Static analysis" section for the user-facing documentation
    ([automed-cli lint]). *)

module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository

val lint_pathway :
  ?name:string -> Schema.t -> Transform.pathway -> Diagnostic.t list
(** {!Pathway_lint.lint}: every diagnostic for one pathway checked
    against a starting schema. *)

val lint_repository :
  ?root:string ->
  ?covered:string list ->
  ?journaled:bool ->
  Repository.t ->
  Diagnostic.t list
(** {!Network_lint.lint}: every registered pathway plus the network
    checks, sorted errors-first.  [covered] names the sources protected
    by a resilience policy and enables the [unprotected-source] warning;
    [journaled] states whether a durable journal is attached and enables
    the [unjournaled-repository] warning. *)

val install_gate : Repository.t -> unit
(** Opt-in validation gate: after this call,
    {!Repository.add_pathway} additionally rejects any pathway for which
    the linter reports error-severity diagnostics (warnings pass).  The
    error message carries the rule ids and step locations. *)

val remove_gate : Repository.t -> unit
