module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Telemetry = Automed_telemetry.Telemetry
module D = Diagnostic

let lint_pathway = Pathway_lint.lint

let lint_repository ?root ?covered ?journaled repo =
  Telemetry.with_span "analysis.lint_repository" @@ fun () ->
  let diags =
    List.stable_sort D.compare
      (Network_lint.lint ?root ?covered ?journaled repo)
  in
  (if Telemetry.active () then begin
     let e, w, i = D.count diags in
     Telemetry.count ~by:e "lint.diagnostics.error";
     Telemetry.count ~by:w "lint.diagnostics.warning";
     Telemetry.count ~by:i "lint.diagnostics.info"
   end);
  diags

let gate_validator src p =
  match D.errors (Pathway_lint.lint src p) with
  | [] -> Ok ()
  | errors ->
      Error
        (Printf.sprintf "rejected by the pathway linter: %s"
           (String.concat "; "
              (List.map (fun d -> Fmt.str "%a" D.pp d) errors)))

let install_gate repo = Repository.set_validator repo (Some gate_validator)
let remove_gate repo = Repository.set_validator repo None

(* -- proof-checked simplification ---------------------------------------- *)

type simplification =
  [ `Unchanged
  | `Simplified of Rewrite.outcome * Equiv.certificate
  | `Refused of Rewrite.outcome * string ]

let simplify_certified ?seed ?trials src p : simplification =
  let o = Rewrite.simplify src p in
  if o.Rewrite.applications = [] then `Unchanged
  else
    match
      Equiv.check ?seed ?trials src ~original:p ~candidate:o.Rewrite.pathway
    with
    | Ok cert ->
        Telemetry.count "analysis.rewrites_certified";
        `Simplified (o, cert)
    | Error reason ->
        Telemetry.count "analysis.rewrites_refused";
        `Refused (o, reason)

type fix = {
  pathway : string;
  steps_before : int;
  steps_after : int;
  applications : Rewrite.application list;
  quarantined : bool;
  applied : (unit, string) result;
}

let fix_repository ?seed ?trials repo =
  Telemetry.with_span "analysis.fix_repository" @@ fun () ->
  (* Quarantine pass first: stranded pathways (and data-bearing pathways
     from evolved-away sources) are replaced by their universal
     quarantine shape before the simplification pass looks at anything,
     so the rewriter never reasons over steps that cannot replay. *)
  let quarantine_fixes =
    List.filter_map
      (fun (p : Transform.pathway) ->
        let label = Printf.sprintf "%s -> %s" p.from_schema p.to_schema in
        let needs =
          Quarantine.is_stranded repo p
          || Repository.retired repo p.from_schema
             && not (Quarantine.is_quarantined p)
        in
        if not needs then None
        else
          let applied, steps_after =
            match Quarantine.quarantine repo p with
            | Ok p' -> (Ok (), List.length p'.Transform.steps)
            | Error e -> (Error e, List.length p.steps)
          in
          if applied = Ok () then Telemetry.count "analysis.fixes_applied";
          Some
            {
              pathway = label;
              steps_before = List.length p.steps;
              steps_after;
              applications = [];
              quarantined = true;
              applied;
            })
      (Repository.pathways repo)
  in
  quarantine_fixes
  @ List.filter_map
    (fun (p : Transform.pathway) ->
      let label = Printf.sprintf "%s -> %s" p.from_schema p.to_schema in
      match Repository.schema repo p.from_schema with
      | None -> None
      | Some src -> (
          match simplify_certified ?seed ?trials src p with
          | `Unchanged -> None
          | `Simplified (o, _cert) ->
              let applied =
                Repository.replace_pathway repo ~old:p o.Rewrite.pathway
              in
              if applied = Ok () then Telemetry.count "analysis.fixes_applied";
              Some
                {
                  pathway = label;
                  steps_before = List.length p.steps;
                  steps_after = List.length o.Rewrite.pathway.Transform.steps;
                  applications = o.Rewrite.applications;
                  quarantined = false;
                  applied;
                }
          | `Refused (o, reason) ->
              Some
                {
                  pathway = label;
                  steps_before = List.length p.steps;
                  steps_after = List.length o.Rewrite.pathway.Transform.steps;
                  applications = o.Rewrite.applications;
                  quarantined = false;
                  applied = Error ("rewrite not certified: " ^ reason);
                }))
    (Repository.pathways repo)
