module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module D = Diagnostic

let lint_pathway = Pathway_lint.lint

let lint_repository ?root repo =
  List.stable_sort D.compare (Network_lint.lint ?root repo)

let gate_validator src p =
  match D.errors (Pathway_lint.lint src p) with
  | [] -> Ok ()
  | errors ->
      Error
        (Printf.sprintf "rejected by the pathway linter: %s"
           (String.concat "; "
              (List.map (fun d -> Fmt.str "%a" D.pp d) errors)))

let install_gate repo = Repository.set_validator repo (Some gate_validator)
let remove_gate repo = Repository.set_validator repo None
