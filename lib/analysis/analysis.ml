module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Telemetry = Automed_telemetry.Telemetry
module D = Diagnostic

let lint_pathway = Pathway_lint.lint

let lint_repository ?root ?covered ?journaled repo =
  Telemetry.with_span "analysis.lint_repository" @@ fun () ->
  let diags =
    List.stable_sort D.compare
      (Network_lint.lint ?root ?covered ?journaled repo)
  in
  (if Telemetry.active () then begin
     let e, w, i = D.count diags in
     Telemetry.count ~by:e "lint.diagnostics.error";
     Telemetry.count ~by:w "lint.diagnostics.warning";
     Telemetry.count ~by:i "lint.diagnostics.info"
   end);
  diags

let gate_validator src p =
  match D.errors (Pathway_lint.lint src p) with
  | [] -> Ok ()
  | errors ->
      Error
        (Printf.sprintf "rejected by the pathway linter: %s"
           (String.concat "; "
              (List.map (fun d -> Fmt.str "%a" D.pp d) errors)))

let install_gate repo = Repository.set_validator repo (Some gate_validator)
let remove_gate repo = Repository.set_validator repo None
