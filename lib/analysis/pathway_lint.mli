(** Static analysis of a single pathway against a starting schema.

    The linter folds the pathway over a symbolic schema state (the object
    set with extent types — no extents are touched) exactly as
    {!Automed_transform.Transform.apply} would, but recovers from each
    violation instead of stopping, so one run reports every problem.

    Rules (see README "Static analysis" for the full table):

    {ul
    {- [add-present] (error): [add]/[extend] of an object already in the
       schema state.}
    {- [delete-absent] (error): [delete]/[contract] of an absent object.}
    {- [rename-absent] (error): [rename] of an absent object.}
    {- [rename-collision] (error): [rename] onto an existing object.}
    {- [rename-kind] (error): [rename] changing the construct kind.}
    {- [dangling-id] (error): an [id] endpoint absent from the schema
       state (left endpoint at the step, right endpoint in the final
       state).}
    {- [invalid-scheme] (error): a scheme that fails MDR validation.}
    {- [query-unbound] (error): an embedded query referencing an object
       absent from the schema state on the side the query is stated over
       (pre-schema for add/extend, post-schema for delete/contract).}
    {- [query-ill-typed] (error): IQL type inference fails on an embedded
       query.}
    {- [query-extent-mismatch] (warning): a delete's restore query is
       typeable but produces a type incompatible with the deleted
       object's declared extent type.}
    {- [dead-step-pair] (warning): an object added and later removed with
       no intervening query or id reading it.}
    {- [rename-chain] (warning): [rename a b] followed by [rename b c]
       with no intervening use of [b].}
    {- [non-reversible] (warning): the reverse pathway loses information
       ([delete] with restore query [Void]) or fails to re-apply.}
    {- [reverse-involution] (error): [reverse (reverse p)] is not
       structurally [p].}
    {- [empty-pathway] (info): a pathway with no steps.}} *)

module Schema = Automed_model.Schema
module Transform = Automed_transform.Transform

val lint : ?name:string -> Schema.t -> Transform.pathway -> Diagnostic.t list
(** All diagnostics for the pathway, in step order.  [name] overrides the
    ["from -> to"] label used in locations. *)

val final_state : Schema.t -> Transform.pathway -> Schema.t
(** Best-effort symbolic result of the pathway: each step that would fail
    is skipped rather than aborting.  Coincides with
    [Transform.apply] (up to the schema name) when {!lint} reports no
    errors. *)
