(** Static analysis of a whole repository: every registered pathway is
    linted against its registered source schema, and the pathway network
    itself is checked.

    Network rules:

    {ul
    {- [endpoint-missing] (error): a pathway endpoint names a schema that
       is not registered.}
    {- [endpoint-mismatch] (error): applying a pathway to its registered
       source schema does not produce the object set of its registered
       target schema.}
    {- [duplicate-pathway] (warning): two registered pathways with the
       same endpoints and structurally identical (or mutually reverse)
       steps.}
    {- [conflicting-pathway] (warning): two structurally different
       pathways between the same pair of schemas — reformulation will use
       whichever breadth-first search finds first.}
    {- [unreachable-schema] (error): a schema that cannot be reached from
       the root schema through the (bidirectional) pathway network, so no
       query over it can ever be reformulated onto the rest of the
       dataspace.  Only checked when the repository has at least one
       pathway.}
    {- [unprotected-source] (warning): a schema with materialised extents
       that is not covered by the caller's resilience registry, so a
       fetch failure fails queries outright instead of degrading them.
       Only checked when [covered] is passed.}
    {- [unjournaled-repository] (warning): the repository holds
       workflow-built global schema versions (names ending [_v<digits>])
       but no durable journal is attached, so a crash silently loses the
       integration history.  Only checked when [journaled] is passed as
       [Some false].}} *)

module Repository = Automed_repository.Repository

val default_root : Repository.t -> string option
(** The target schema of the most recently registered pathway — in
    workflow-built repositories this is the current global schema
    version. *)

val lint :
  ?root:string ->
  ?covered:string list ->
  ?journaled:bool ->
  Repository.t ->
  Diagnostic.t list
(** Network checks plus {!Pathway_lint.lint} over every registered
    pathway.  [root] is the schema reachability is measured from,
    defaulting to {!default_root}.  [covered] names the sources protected
    by a resilience policy and enables the [unprotected-source] check.
    [journaled] states whether a durable journal is attached (see
    [Automed_durable]) and enables the [unjournaled-repository] check. *)
