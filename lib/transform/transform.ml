module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Types = Automed_iql.Types
module Telemetry = Automed_telemetry.Telemetry

type query = Ast.expr

type prim =
  | Add of Scheme.t * query
  | Delete of Scheme.t * query
  | Extend of Scheme.t * query * query
  | Contract of Scheme.t * query * query
  | Rename of Scheme.t * Scheme.t
  | Id of Scheme.t * Scheme.t

type pathway = { from_schema : string; to_schema : string; steps : prim list }

let prim_scheme = function
  | Add (s, _) | Delete (s, _) | Extend (s, _, _) | Contract (s, _, _) -> s
  | Rename (s, _) | Id (s, _) -> s

let prim_kind = function
  | Add _ -> "add"
  | Delete _ -> "delete"
  | Extend _ -> "extend"
  | Contract _ -> "contract"
  | Rename _ -> "rename"
  | Id _ -> "id"

let reverse_prim = function
  | Add (s, q) -> Delete (s, q)
  | Delete (s, q) -> Add (s, q)
  | Extend (s, ql, qu) -> Contract (s, ql, qu)
  | Contract (s, ql, qu) -> Extend (s, ql, qu)
  | Rename (a, b) -> Rename (b, a)
  | Id (a, b) -> Id (b, a)

let reverse p =
  {
    from_schema = p.to_schema;
    to_schema = p.from_schema;
    steps = List.rev_map reverse_prim p.steps;
  }

let is_trivial = function
  | Extend (_, Ast.Void, Ast.Any) | Contract (_, Ast.Void, Ast.Any) -> true
  | Id _ -> true
  | Add _ | Delete _ | Extend _ | Contract _ | Rename _ -> false

let is_manual = function
  | Rename _ | Id _ -> false
  | p -> not (is_trivial p)

let count_non_trivial p =
  List.length (List.filter is_manual p.steps)

let ( let* ) = Result.bind

let rec contains_var = function
  | Types.TVar _ -> true
  | Types.TTuple ts -> List.exists contains_var ts
  | Types.TBag t -> contains_var t
  | Types.TUnit | Types.TBool | Types.TInt | Types.TFloat | Types.TStr -> false

let infer_extent_ty schema q =
  match Types.infer ~schemes:(Schema.typing schema) q with
  | Ok (Types.TBag _ as t) when not (contains_var t) -> Some t
  | Ok _ | Error _ -> None

(* static strings: a no-sink probe stays a single branch, no allocation *)
let prim_counter = function
  | Add _ -> "transform.prim.add"
  | Delete _ -> "transform.prim.delete"
  | Extend _ -> "transform.prim.extend"
  | Contract _ -> "transform.prim.contract"
  | Rename _ -> "transform.prim.rename"
  | Id _ -> "transform.prim.id"

let apply_prim schema prim =
  Telemetry.count (prim_counter prim);
  let result =
    match prim with
    | Add (s, q) ->
        Schema.add_object ?extent_ty:(infer_extent_ty schema q) s schema
    | Extend (s, ql, _) ->
        Schema.add_object ?extent_ty:(infer_extent_ty schema ql) s schema
    | Delete (s, _) | Contract (s, _, _) -> Schema.remove_object s schema
    | Rename (a, b) -> Schema.rename_object a b schema
    | Id (a, _) ->
        if Schema.mem a schema then Ok schema
        else
          Error
            (Printf.sprintf "schema %s has no object %s" (Schema.name schema)
               (Scheme.to_string a))
  in
  Result.map_error
    (fun e ->
      Printf.sprintf "%s %s: %s" (prim_kind prim)
        (Scheme.to_string (prim_scheme prim))
        e)
    result

let fold_steps schema p f =
  let* final, _ =
    List.fold_left
      (fun acc prim ->
        let* s, i = acc in
        match f s prim with
        | Ok s' -> Ok (s', i + 1)
        | Error e ->
            Error
              (Printf.sprintf "pathway %s -> %s, step %d: %s" p.from_schema
                 p.to_schema i e))
      (Ok (schema, 1))
      p.steps
  in
  Ok final

let apply schema p =
  Telemetry.with_span "transform.apply"
    ~attrs:(fun () ->
      [
        ("pathway", p.from_schema ^ " -> " ^ p.to_schema);
        ("steps", string_of_int (List.length p.steps));
      ])
    (fun () ->
      let* s = fold_steps schema p apply_prim in
      Ok (Schema.rename p.to_schema s))

(* A query attached to a step may only mention objects present in the
   schema it is stated over: the pre-schema for add/extend, the
   post-schema for delete/contract. *)
let check_query_refs side schema q =
  let missing =
    Scheme.Set.filter (fun s -> not (Schema.mem s schema)) (Ast.schemes q)
  in
  if Scheme.Set.is_empty missing then Ok ()
  else
    Error
      (Printf.sprintf "query %s references %s absent from the %s schema"
         (Ast.to_string q)
         (String.concat ", "
            (List.map Scheme.to_string (Scheme.Set.elements missing)))
         side)

let well_formed schema p =
  let check_prim pre prim =
    let* post = apply_prim pre prim in
    let* () =
      match prim with
      | Add (_, q) | Extend (_, q, _) -> check_query_refs "pre" pre q
      | Delete (_, q) | Contract (_, q, _) -> check_query_refs "post" post q
      | Rename _ | Id _ -> Ok ()
    in
    let* () =
      match prim with
      | Extend (_, _, qu) | Contract (_, _, qu) -> (
          match qu with
          | Ast.Any -> Ok ()
          | q -> check_query_refs "bound" (match prim with
                   | Extend _ -> pre
                   | _ -> post) q)
      | _ -> Ok ()
    in
    Ok post
  in
  let* _final = fold_steps schema p check_prim in
  Ok ()

let ident s1 s2 =
  if not (Schema.same_objects s1 s2) then
    Error
      (Printf.sprintf "ident: schemas %s and %s are not syntactically identical"
         (Schema.name s1) (Schema.name s2))
  else
    Ok
      {
        from_schema = Schema.name s1;
        to_schema = Schema.name s2;
        steps = List.map (fun o -> Id (o, o)) (Schema.objects s1);
      }

let compose p q =
  if p.to_schema <> q.from_schema then
    Error
      (Printf.sprintf "cannot compose pathway to %s with pathway from %s"
         p.to_schema q.from_schema)
  else
    Ok
      {
        from_schema = p.from_schema;
        to_schema = q.to_schema;
        steps = p.steps @ q.steps;
      }

type shape = {
  renames : (Scheme.t * Scheme.t) list;
  adds : (Scheme.t * query) list;
  extends : Scheme.t list;
  deletes : (Scheme.t * query) list;
  contracts : Scheme.t list;
  ids : (Scheme.t * Scheme.t) list;
}

let intersection_shape p =
  let rec take_renames acc = function
    | Rename (a, b) :: rest -> take_renames ((a, b) :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec take_adds adds extends = function
    | Add (s, q) :: rest -> take_adds ((s, q) :: adds) extends rest
    | Extend (s, Ast.Void, Ast.Any) :: rest ->
        take_adds adds (s :: extends) rest
    | rest -> (List.rev adds, List.rev extends, rest)
  in
  let rec take_deletes acc = function
    | Delete (s, q) :: rest -> take_deletes ((s, q) :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec take_contracts acc = function
    | Contract (s, Ast.Void, Ast.Any) :: rest -> take_contracts (s :: acc) rest
    | (Contract (s, _, _) :: _) as rest ->
        ( List.rev acc,
          rest,
          Some
            (Printf.sprintf "contract of %s must carry Range Void Any"
               (Scheme.to_string s)) )
    | rest -> (List.rev acc, rest, None)
  in
  let rec take_ids acc = function
    | Id (a, b) :: rest -> take_ids ((a, b) :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let renames, rest = take_renames [] p.steps in
  let adds, extends, rest = take_adds [] [] rest in
  let deletes, rest = take_deletes [] rest in
  let contracts, rest, contract_err = take_contracts [] rest in
  match contract_err with
  | Some e -> Error e
  | None -> (
      let ids, rest = take_ids [] rest in
      match rest with
      | [] -> Ok { renames; adds; extends; deletes; contracts; ids }
      | prim :: _ ->
          Error
            (Printf.sprintf
               "pathway %s -> %s is not in intersection form: unexpected step \
                on %s"
               p.from_schema p.to_schema
               (Scheme.to_string (prim_scheme prim))))

let pp_prim ppf = function
  | Add (s, q) -> Fmt.pf ppf "add %a %a" Scheme.pp s Ast.pp q
  | Delete (s, q) -> Fmt.pf ppf "delete %a %a" Scheme.pp s Ast.pp q
  | Extend (s, ql, qu) ->
      Fmt.pf ppf "extend %a Range %a %a" Scheme.pp s Ast.pp ql Ast.pp qu
  | Contract (s, ql, qu) ->
      Fmt.pf ppf "contract %a Range %a %a" Scheme.pp s Ast.pp ql Ast.pp qu
  | Rename (a, b) -> Fmt.pf ppf "rename %a %a" Scheme.pp a Scheme.pp b
  | Id (a, b) -> Fmt.pf ppf "id %a %a" Scheme.pp a Scheme.pp b

let pp ppf p =
  Fmt.pf ppf "@[<v2>pathway %s -> %s:@,%a@]" p.from_schema p.to_schema
    Fmt.(list ~sep:cut pp_prim)
    p.steps
