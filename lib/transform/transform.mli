(** Primitive schema transformations and pathways (the BAV approach).

    A pathway from schema [S1] to schema [S2] is a sequence of primitive
    transformations.  [add]/[delete] carry a query defining the extent of
    the new/removed object in terms of the rest of the schema;
    [extend]/[contract] carry lower and upper bound queries ([Range ql qu],
    possibly [Void]/[Any]) when the extent cannot be derived precisely;
    [rename] renames a construct with a textual name; [id] asserts that an
    object of [S1] is the same as an object of [S2].

    Pathways are automatically reversible (paper Section 2.1): reverse the
    step order, swap add/delete, swap extend/contract, and swap the
    arguments of rename/id. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema

type query = Automed_iql.Ast.expr

type prim =
  | Add of Scheme.t * query
      (** [Add (o, q)]: [q] over the pre-schema defines the extent of [o] *)
  | Delete of Scheme.t * query
      (** [Delete (o, q)]: [q] over the post-schema recovers the extent *)
  | Extend of Scheme.t * query * query
      (** [Extend (o, ql, qu)]: bounds over the pre-schema *)
  | Contract of Scheme.t * query * query
      (** [Contract (o, ql, qu)]: bounds over the post-schema *)
  | Rename of Scheme.t * Scheme.t
  | Id of Scheme.t * Scheme.t

type pathway = {
  from_schema : string;
  to_schema : string;
  steps : prim list;
}

val prim_scheme : prim -> Scheme.t
(** The object the step introduces into, or removes from, or (for
    rename/id) maps {e from}, in the direction of travel. *)

val prim_kind : prim -> string
(** The step's verb: ["add"], ["delete"], ["extend"], ["contract"],
    ["rename"] or ["id"] — used to tag error messages and diagnostics. *)

val infer_extent_ty : Schema.t -> query -> Automed_iql.Types.ty option
(** The extent type [apply_prim] records for an added object: the query's
    inferred type when it is a fully-determined bag type, [None]
    otherwise.  Exposed so static analysis tracks the same symbolic
    state. *)

val reverse_prim : prim -> prim
val reverse : pathway -> pathway

val is_trivial : prim -> bool
(** True when the step is an extend/contract whose query part is
    [Range Void Any], or an [Id].  The paper's case study counts only
    non-trivial transformations as integration effort. *)

val is_manual : prim -> bool
(** [not (is_trivial p)] for add/delete/extend/contract, false for
    rename/id - the measure used in Section 3. *)

val count_non_trivial : pathway -> int

val apply_prim : Schema.t -> prim -> (Schema.t, string) result
(** Schema-level effect of one step.  [Add]/[Extend] require the object to
    be absent and infer its extent type from the query when possible;
    [Delete]/[Contract] require presence; [Rename] renames; [Id] checks
    that the object is present (it asserts cross-schema identity and has
    no structural effect).  Error messages are tagged with the step's verb
    and offending scheme, e.g. [add <<u>>: schema s already contains
    <<u>>]; {!apply} and {!well_formed} additionally prefix the pathway
    endpoints and the 1-based step index, so runtime failures name the
    same locations as the static linter's diagnostics. *)

val apply : Schema.t -> pathway -> (Schema.t, string) result
(** Applies all steps in order; the result keeps the target schema name. *)

val well_formed : Schema.t -> pathway -> (unit, string) result
(** [apply] succeeds and every step's queries reference only objects
    available in the schema on the appropriate side of the step. *)

val ident : Schema.t -> Schema.t -> (pathway, string) result
(** Expands an [ident] between two syntactically identical schemas into a
    sequence of [Id] steps, one per object (paper Section 2.1). *)

val compose : pathway -> pathway -> (pathway, string) result
(** [compose p q] concatenates pathways when [p.to_schema = q.from_schema]. *)

(** Shape of an intersection pathway: optional leading renames (used to
    move a source object out of the way of a same-named target), then a
    sequence of adds (possibly interleaved with trivial extends, which
    arise in n-ary intersections for objects a side does not define), then
    deletes, then contracts, optionally followed by ids (paper
    Section 2.2). *)
type shape = {
  renames : (Scheme.t * Scheme.t) list;
  adds : (Scheme.t * query) list;
  extends : Scheme.t list;  (** trivial [Range Void Any] extends *)
  deletes : (Scheme.t * query) list;
  contracts : Scheme.t list;
  ids : (Scheme.t * Scheme.t) list;
}

val intersection_shape : pathway -> (shape, string) result
(** Fails when the pathway does not have the canonical shape, or when a
    contract step carries bounds other than [Range Void Any]. *)

val pp_prim : prim Fmt.t
val pp : pathway Fmt.t
