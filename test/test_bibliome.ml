(* The bibliographic dataspace: three modelling languages integrated
   through two intersection schemas, with hand-verifiable answers. *)

module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Workflow = Automed_integration.Workflow
module Value = Automed_iql.Value
module Bibliome = Automed_bibliome.Bibliome

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let env =
  lazy
    (let repo = Repository.create () in
     ok (Bibliome.setup repo);
     let wf = ok (Bibliome.integrate repo) in
     (repo, wf))

let test_setup_registers_three_models () =
  let repo, _ = Lazy.force env in
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Repository.mem_schema repo s))
    [ "dblp"; "arxiv"; "library" ]

let test_integration_versions () =
  let _, wf = Lazy.force env in
  Alcotest.(check string) "two iterations" "biblio_v2" (Workflow.global_name wf);
  Alcotest.(check int) "manual transformations" 8 (Workflow.manual_steps wf)

let test_checks () =
  let _, wf = Lazy.force env in
  List.iter
    (fun (c : Bibliome.check) ->
      match Workflow.run_query wf c.Bibliome.query with
      | Ok v ->
          Alcotest.(check string) c.Bibliome.label c.Bibliome.expected
            (Value.to_string v)
      | Error e ->
          Alcotest.failf "%s: %a" c.Bibliome.label Processor.pp_error e)
    Bibliome.checks

let test_year_partial_concept () =
  (* the year concept has contributions from two sources only *)
  let _, wf = Lazy.force env in
  match Workflow.run_query wf "[s | {s, k, y} <- <<UPublication,year>>]" with
  | Ok (Value.Bag b) ->
      let sources =
        Value.Bag.fold
          (fun v _ acc -> match v with Value.Str s -> s :: acc | _ -> acc)
          (Value.Bag.distinct b) []
      in
      Alcotest.(check (list string)) "two sources" [ "arxiv"; "dblp" ]
        (List.sort String.compare sources)
  | Ok v -> Alcotest.failf "non-bag %s" (Value.to_string v)
  | Error e -> Alcotest.failf "%a" Processor.pp_error e

let test_redundant_dropped () =
  let repo, wf = Lazy.force env in
  let module Schema = Automed_model.Schema in
  let module Scheme = Automed_base.Scheme in
  let g = Repository.schema_exn repo (Workflow.global_name wf) in
  Alcotest.(check bool) "mapped titles dropped" false
    (Schema.mem
       (Scheme.prefix "dblp" (Scheme.column "publication" "title"))
       g);
  Alcotest.(check bool) "unmapped venue kept" true
    (Schema.mem (Scheme.prefix "dblp" (Scheme.column "publication" "venue")) g)

let suite =
  [
    Alcotest.test_case "three models registered" `Quick
      test_setup_registers_three_models;
    Alcotest.test_case "integration versions" `Quick test_integration_versions;
    Alcotest.test_case "hand-verifiable answers" `Quick test_checks;
    Alcotest.test_case "partial year concept" `Quick test_year_partial_concept;
    Alcotest.test_case "redundancy removal" `Quick test_redundant_dropped;
  ]
