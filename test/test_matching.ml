(* The schema matching tool: name evidence, instance evidence, ranking. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Repository = Automed_repository.Repository
module Matcher = Automed_matching.Matcher

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let test_name_score () =
  let high =
    Matcher.name_score (Scheme.column "protein" "accession_num")
      (Scheme.column "protein" "accession")
  in
  let low =
    Matcher.name_score (Scheme.column "protein" "accession_num")
      (Scheme.column "iontable" "immon")
  in
  Alcotest.(check bool) "similar > dissimilar" true (high > low);
  Alcotest.(check bool) "identical is 1" true
    (Matcher.name_score (Scheme.table "protein") (Scheme.table "protein") = 1.0)

let test_name_score_token_based () =
  (* token overlap rescues reordered identifiers *)
  let s =
    Matcher.name_score (Scheme.column "t" "db_search") (Scheme.column "t" "search_db")
  in
  Alcotest.(check bool) "token overlap" true (s > 0.9)

let test_instance_score () =
  let b1 = Value.Bag.of_list [ Value.Str "a"; Value.Str "b"; Value.Str "c" ] in
  let b2 = Value.Bag.of_list [ Value.Str "b"; Value.Str "c"; Value.Str "d" ] in
  let s = Matcher.instance_score b1 b2 in
  Alcotest.(check bool) "jaccard 2/4" true (abs_float (s -. 0.5) < 1e-9);
  Alcotest.(check bool) "disjoint" true
    (Matcher.instance_score b1 (Value.Bag.of_list [ Value.Str "z" ]) = 0.0);
  Alcotest.(check bool) "empty" true
    (Matcher.instance_score Value.Bag.empty Value.Bag.empty = 0.0)

let test_instance_score_pairs () =
  (* column extents compare value components, ignoring keys *)
  let pairs ks vs =
    Value.Bag.of_list
      (List.map2 (fun k v -> Value.tuple2 (Value.Str k) (Value.Str v)) ks vs)
  in
  let b1 = pairs [ "k1"; "k2" ] [ "x"; "y" ] in
  let b2 = pairs [ "zz1"; "zz2" ] [ "x"; "y" ] in
  Alcotest.(check bool) "same values, different keys" true
    (Matcher.instance_score b1 b2 = 1.0)

let test_combine () =
  Alcotest.(check bool) "name only" true
    (Matcher.combine { name_score = 0.8; instance_score = None } = 0.8);
  Alcotest.(check bool) "averaged" true
    (abs_float
       (Matcher.combine { name_score = 0.8; instance_score = Some 0.4 } -. 0.6)
    < 1e-9)

let repo_with_two_schemas () =
  let repo = Repository.create () in
  let s1 =
    ok
      (Schema.of_objects "left"
         [
           (Scheme.table "protein", None);
           (Scheme.column "protein" "accession_num", None);
           (Scheme.table "peptidehit", None);
         ])
  in
  let s2 =
    ok
      (Schema.of_objects "right"
         [
           (Scheme.table "protein", None);
           (Scheme.column "protein" "accession", None);
           (Scheme.table "iontable", None);
         ])
  in
  ok (Repository.add_schema repo s1);
  ok (Repository.add_schema repo s2);
  ok
    (Repository.set_extent repo ~schema:"left" (Scheme.table "protein")
       (Value.Bag.of_list [ Value.Str "P1"; Value.Str "P2" ]));
  ok
    (Repository.set_extent repo ~schema:"right" (Scheme.table "protein")
       (Value.Bag.of_list [ Value.Str "P1"; Value.Str "P3" ]));
  repo

let test_suggest () =
  let repo = repo_with_two_schemas () in
  let suggestions = ok (Matcher.suggest repo ~left:"left" ~right:"right") in
  Alcotest.(check bool) "nonempty" true (suggestions <> []);
  (* the accession columns are near-identical in name and rank first *)
  let top = List.hd suggestions in
  Alcotest.(check string) "top left" "<<protein,accession_num>>"
    (Scheme.to_string top.Matcher.left);
  Alcotest.(check string) "top right" "<<protein,accession>>"
    (Scheme.to_string top.Matcher.right);
  (* the protein tables are suggested with instance evidence attached *)
  let protein_pair =
    List.find_opt
      (fun s ->
        Scheme.equal s.Matcher.left (Scheme.table "protein")
        && Scheme.equal s.Matcher.right (Scheme.table "protein"))
      suggestions
  in
  (match protein_pair with
  | Some s ->
      Alcotest.(check bool) "instance evidence used" true
        (s.Matcher.evidence.instance_score <> None)
  | None -> Alcotest.fail "protein ~ protein not suggested");
  (* sorted descending *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Matcher.score >= b.Matcher.score && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted suggestions);
  (* same-construct pairs only *)
  List.iter
    (fun s ->
      Alcotest.(check string) "construct" (Scheme.construct s.Matcher.left)
        (Scheme.construct s.Matcher.right))
    suggestions

let test_suggest_threshold_limit () =
  let repo = repo_with_two_schemas () in
  let all = ok (Matcher.suggest ~threshold:0.0 repo ~left:"left" ~right:"right") in
  let strict = ok (Matcher.suggest ~threshold:0.9 repo ~left:"left" ~right:"right") in
  Alcotest.(check bool) "threshold filters" true
    (List.length strict < List.length all);
  let limited = ok (Matcher.suggest ~threshold:0.0 ~limit:2 repo ~left:"left" ~right:"right") in
  Alcotest.(check int) "limit" 2 (List.length limited)

let test_suggest_missing_schema () =
  let repo = repo_with_two_schemas () in
  match Matcher.suggest repo ~left:"ghost" ~right:"right" with
  | Ok _ -> Alcotest.fail "missing schema accepted"
  | Error _ -> ()

let test_suggest_on_ispider () =
  (* the matcher finds the paper's first correspondence: Pedro's protein
     accession and gpmDB's proseq label share instance values *)
  let ds = Automed_ispider.Sources.generate () in
  let repo = Repository.create () in
  ok (Automed_ispider.Sources.wrap_all repo ds);
  let suggestions =
    ok
      (Matcher.suggest ~threshold:0.2 ~limit:100 repo ~left:"pedro"
         ~right:"gpmdb")
  in
  let found =
    List.exists
      (fun s ->
        Scheme.equal s.Matcher.left (Scheme.column "protein" "accession_num")
        && Scheme.equal s.Matcher.right (Scheme.column "proseq" "label")
        && s.Matcher.evidence.instance_score <> None
        && Option.get s.Matcher.evidence.instance_score > 0.0)
      suggestions
  in
  Alcotest.(check bool) "accession ~ label surfaced" true found

let suite =
  [
    Alcotest.test_case "name score" `Quick test_name_score;
    Alcotest.test_case "token-based name score" `Quick test_name_score_token_based;
    Alcotest.test_case "instance score" `Quick test_instance_score;
    Alcotest.test_case "instance score on pairs" `Quick test_instance_score_pairs;
    Alcotest.test_case "combine" `Quick test_combine;
    Alcotest.test_case "suggest" `Quick test_suggest;
    Alcotest.test_case "threshold and limit" `Quick test_suggest_threshold_limit;
    Alcotest.test_case "missing schema" `Quick test_suggest_missing_schema;
    Alcotest.test_case "suggests the paper's first mapping" `Quick
      test_suggest_on_ispider;
  ]
