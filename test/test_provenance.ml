(* Tuple-level lineage: the annotated evaluator agrees bit-for-bit with
   the reference evaluator, lineages cite exactly the extents a tuple
   rests on (sufficiency, checked by property), MACs detect forged
   lineage, degraded runs report per-source impact, and explain_plan
   tells the pruning story. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Parser = Automed_iql.Parser
module Value = Automed_iql.Value
module Eval = Automed_iql.Eval
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Workflow = Automed_integration.Workflow
module Federated = Automed_integration.Federated
module Resilience = Automed_resilience.Resilience
module Policy = Resilience.Policy
module Fault = Resilience.Fault
module Microjson = Automed_telemetry.Microjson
module Lineage = Automed_provenance.Lineage
module Peval = Automed_provenance.Peval

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let ok_p = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%a" Processor.pp_error e

let q = Parser.parse_exn
let bag vs = Value.Bag.of_list vs
let v_str s = Value.Str s

let schema name objs =
  ok (Schema.of_objects name (List.map (fun o -> (o, None)) objs))

let contains ~sub s = Automed_base.Strutil.contains_sub ~sub s

(* a policy that fails fast and never opens the breaker, so every
   injected fault surfaces as a skip (same shape as test_resilience) *)
let fail_fast =
  {
    Policy.retries = 0;
    backoff_base_ms = 0.;
    backoff_factor = 1.;
    backoff_jitter = 0.;
    timeout_ms = None;
    breaker_threshold = 0;
    breaker_cooldown_ms = 0.;
  }

(* -- lineage algebra ------------------------------------------------------ *)

let t_obj = Scheme.table "t"
let u_obj = Scheme.table "u"
let atom ?span source extent = Lineage.atom ?span ~source extent

let test_lineage_semilattice () =
  let a = atom "s1" t_obj and b = atom "s2" u_obj in
  let ab = Lineage.union a b in
  Alcotest.(check bool) "union commutes" true
    (Lineage.equal ab (Lineage.union b a));
  Alcotest.(check bool) "idempotent" true
    (Lineage.equal ab (Lineage.union ab ab));
  Alcotest.(check bool) "empty is unit" true
    (Lineage.equal a (Lineage.union a Lineage.empty));
  Alcotest.(check (list string)) "sources sorted" [ "s1"; "s2" ]
    (Lineage.sources ab);
  Alcotest.(check bool) "cites s1" true (Lineage.cites_source "s1" ab);
  Alcotest.(check bool) "no skip" false (Lineage.cites_skip "s1" ab);
  let sk = Lineage.union ab (Lineage.skip "down") in
  Alcotest.(check (list string)) "skips" [ "down" ] (Lineage.skipped sk);
  Alcotest.(check bool) "only_skips drops atoms" true
    (Lineage.equal (Lineage.only_skips sk) (Lineage.skip "down"))

let test_lineage_json_and_mac () =
  let hop =
    { Lineage.pathway = "a->b"; steps = 3; surviving = [ 1; 3 ];
      cert = Some "eq-2o-8t" }
  in
  let l = Lineage.add_hop hop (Lineage.add_span 7 (atom "s1" t_obj)) in
  let json = Lineage.to_json l in
  (match Microjson.parse json with
  | Error e -> Alcotest.failf "lineage JSON does not parse: %s" e
  | Ok j ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " member") true
            (Microjson.member k j <> None))
        [ "atoms"; "pathways"; "spans"; "skipped" ]);
  let v = v_str "x" in
  let mac = Lineage.sign ~key:"k" v l in
  Alcotest.(check int) "16 hex digits" 16 (String.length mac);
  Alcotest.(check bool) "verifies" true (Lineage.verify ~key:"k" v l mac);
  (* mutation tests: any forgery must be detected *)
  Alcotest.(check bool) "wrong key" false
    (Lineage.verify ~key:"other" v l mac);
  Alcotest.(check bool) "transplanted to another value" false
    (Lineage.verify ~key:"k" (v_str "y") l mac);
  let forged = Lineage.union l (atom "sneaky" u_obj) in
  Alcotest.(check bool) "extended lineage" false
    (Lineage.verify ~key:"k" v forged mac);
  let dropped_hop = atom ~span:7 "s1" t_obj in
  Alcotest.(check bool) "dropped hop" false
    (Lineage.verify ~key:"k" v dropped_hop mac)

(* -- annotated evaluation mirrors the reference evaluator ----------------- *)

(* binds: (object, weighted rows, lineage) *)
let peval_env binds =
  Peval.env
    ~schemes:(fun s ->
      Option.map
        (fun (rows, lin) ->
          Peval.abag
            (Peval.canon
               (List.map (fun (v, n) -> { Peval.v; n; lin }) rows))
            lin)
        (List.assoc_opt s
           (List.map (fun (o, rows, lin) -> (o, (rows, lin))) binds)))
    ()

let eval_env binds =
  Eval.env
    ~schemes:(fun s ->
      Option.map Value.Bag.of_weighted_list
        (List.assoc_opt s
           (List.map (fun (o, rows, _) -> (o, rows)) binds)))
    ()

let check_agrees binds text =
  let e = q text in
  let reference =
    match Eval.eval (eval_env binds) e with
    | Ok v -> Ok v
    | Error err -> Error err.Eval.message
  in
  let annotated =
    match Peval.eval (peval_env binds) e with
    | Ok av -> Ok (Peval.value_of av)
    | Error err -> Error err.Peval.message
  in
  match (reference, annotated) with
  | Ok v1, Ok v2 ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: same value" text)
        true (Value.equal v1 v2)
  | Error _, Error _ -> () (* both reject; messages may differ in detail *)
  | Ok v, Error e ->
      Alcotest.failf "%s: reference %s but annotated fails with %s" text
        (Value.to_string v) e
  | Error e, Ok v ->
      Alcotest.failf "%s: annotated %s but reference fails with %s" text
        (Value.to_string v) e

let std_binds =
  [
    (t_obj, [ (v_str "a", 2); (v_str "b", 1) ], atom "s1" t_obj);
    (u_obj, [ (v_str "b", 1); (v_str "c", 3) ], atom "s2" u_obj);
  ]

let test_peval_agrees_with_eval () =
  List.iter (check_agrees std_binds)
    [
      "<<t>>";
      "<<t>> ++ <<u>>";
      "<<t>> -- <<u>>";
      "count(<<t>>)";
      "sum([1 | x <- <<t>>])";
      "distinct(<<t>> ++ <<u>>)";
      "[x | x <- <<t>>; x = 'a']";
      "[{x, y} | x <- <<t>>; y <- <<u>>; x = y]";
      "flatten([[x; x] | x <- <<t>>])";
      "group([{x, 1} | x <- <<t>> ++ <<u>>])";
      "max([1; 2] ++ [0])";
      "avg([1.0; 2.0; 3.0])";
      "if count(<<t>>) > 2 then 'big' else 'small'";
      "let n = count(<<t>>) in n * n";
      "count(<<t>>) > 2 and count(<<u>>) > 0";
      "count(<<t>>) = 3 or 1 / 0 = 0" (* short-circuit preserved *);
      "- count(<<t>>)";
      "not (count(<<t>>) = 0)";
      "[x | x <- <<t>> -- <<u>>]";
      "member('b', <<u>>)";
      "1 / 0" (* both must reject *);
      "sum(['a'])" (* both must reject *);
    ]

let weighted_rows rows =
  List.fold_left
    (fun b (k, n) ->
      Value.Bag.add ~count:n (v_str (Printf.sprintf "r%d" k)) b)
    Value.Bag.empty rows

let test_peval_qcheck_agrees =
  (* random small bags under a fixed query pool: the annotated
     evaluator's value projection must match the reference evaluator *)
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 0 5) (pair (int_range 0 3) (int_range 1 3)))
        (list_size (int_range 0 5) (pair (int_range 0 3) (int_range 1 3))))
  in
  let print (a, b) =
    let side rows =
      String.concat ","
        (List.map (fun (k, n) -> Printf.sprintf "r%d x%d" k n) rows)
    in
    side a ^ " | " ^ side b
  in
  QCheck.Test.make ~count:100 ~name:"peval agrees with eval (random bags)"
    (QCheck.make ~print gen)
    (fun (rows1, rows2) ->
      let binds =
        [
          (t_obj, weighted_rows rows1, atom "s1" t_obj);
          (u_obj, weighted_rows rows2, atom "s2" u_obj);
        ]
      in
      List.iter (check_agrees binds)
        [
          "<<t>> ++ <<u>>";
          "<<t>> -- <<u>>";
          "distinct(<<t>>)";
          "count(<<t>>) + count(<<u>>)";
          "[{x, y} | x <- <<t>>; y <- <<u>>; x = y]";
          "group([{x, x} | x <- <<t>> ++ <<u>>])";
        ];
      true)

(* -- end-to-end provenance through the processor -------------------------- *)

(* two sources contributing to one merged schema through pathways *)
let union_repo () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "s1" [ t_obj ]));
  ok (Repository.add_schema repo (schema "s2" [ t_obj ]));
  ok
    (Repository.set_extent repo ~schema:"s1" t_obj
       (bag [ v_str "a"; v_str "b" ]));
  ok
    (Repository.set_extent repo ~schema:"s2" t_obj
       (bag [ v_str "b"; v_str "c" ]));
  let into name =
    { Transform.from_schema = name; to_schema = "merged"; steps = [] }
  in
  ok (Repository.add_pathway repo (into "s1"));
  ok (Repository.add_pathway repo (into "s2"));
  repo

let test_run_provenance_end_to_end () =
  let repo = union_repo () in
  let proc = Processor.create repo in
  let query = q "<<t>>" in
  let plain = ok_p (Processor.run proc ~schema:"merged" query) in
  let ann = ok_p (Processor.run_provenance proc ~schema:"merged" query) in
  (* the answer is bit-identical to the plain run *)
  Alcotest.(check bool) "bit-identical" true
    (Value.equal plain ann.Processor.result);
  let tuple v =
    match
      List.find_opt
        (fun (tp : Processor.annotated_tuple) -> Value.equal tp.value v)
        ann.Processor.tuples
    with
    | Some tp -> tp
    | None -> Alcotest.failf "no tuple for %s" (Value.to_string v)
  in
  (* per-tuple lineage: 'a' rests on s1 only, 'b' on both *)
  let a = tuple (v_str "a") and b = tuple (v_str "b") in
  Alcotest.(check (list string)) "a cites s1" [ "s1" ]
    (Lineage.sources a.Processor.lineage);
  Alcotest.(check int) "a count" 1 a.Processor.count;
  Alcotest.(check (list string)) "b cites both" [ "s1"; "s2" ]
    (Lineage.sources b.Processor.lineage);
  Alcotest.(check int) "b count (bag union)" 2 b.Processor.count;
  (* the pathway hop is stamped *)
  Alcotest.(check bool) "hop s1->merged" true
    (List.exists
       (fun (h : Lineage.hop) -> h.pathway = "s1->merged")
       (Lineage.hops a.Processor.lineage));
  (* tamper evidence: the shipped MAC verifies, a forged lineage fails *)
  List.iter
    (fun (tp : Processor.annotated_tuple) ->
      Alcotest.(check bool) "mac verifies" true
        (Lineage.verify ~key:Processor.default_mac_key tp.value tp.lineage
           tp.mac);
      Alcotest.(check bool) "forged lineage detected" false
        (Lineage.verify ~key:Processor.default_mac_key tp.value
           (Lineage.union tp.lineage (atom "forged" u_obj))
           tp.mac))
    ann.Processor.tuples

let test_provenance_cache_interleaving () =
  (* plain and annotated runs interleave without cross-contamination *)
  let repo = union_repo () in
  let proc = Processor.create repo in
  let query = q "count(<<t>>)" in
  let p1 = ok_p (Processor.run proc ~schema:"merged" query) in
  let a1 = ok_p (Processor.run_provenance proc ~schema:"merged" query) in
  let a2 = ok_p (Processor.run_provenance proc ~schema:"merged" query) in
  let p2 = ok_p (Processor.run proc ~schema:"merged" query) in
  Alcotest.(check bool) "plain stable" true (Value.equal p1 p2);
  Alcotest.(check bool) "annotated stable" true
    (Value.equal a1.Processor.result a2.Processor.result);
  Alcotest.(check bool) "agree" true (Value.equal p1 a1.Processor.result);
  (* lineage survives the pcache round-trip *)
  Alcotest.(check bool) "cached lineage intact" true
    (Lineage.equal a1.Processor.lineage a2.Processor.lineage)

let test_aggregate_cites_empty_extent () =
  (* an aggregate over a cited-but-empty extent still cites it: the
     ambient lineage carries the atom *)
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "src" [ t_obj ]));
  ok (Repository.set_extent repo ~schema:"src" t_obj Value.Bag.empty);
  let proc = Processor.create repo in
  let ann =
    ok_p (Processor.run_provenance proc ~schema:"src" (q "count(<<t>>)"))
  in
  Alcotest.(check string) "count 0" "0"
    (Value.to_string ann.Processor.result);
  match ann.Processor.tuples with
  | [ tp ] ->
      Alcotest.(check (list string)) "cites the empty extent" [ "src" ]
        (Lineage.sources tp.Processor.lineage)
  | tps -> Alcotest.failf "expected one tuple, got %d" (List.length tps)

(* -- sufficiency ---------------------------------------------------------- *)

(* union_repo with each stored extent kept or emptied *)
let partial_union_repo ~keep_s1 ~keep_s2 =
  let repo = Repository.create () in
  List.iter
    (fun (name, keep, rows) ->
      ok (Repository.add_schema repo (schema name [ t_obj ]));
      ok
        (Repository.set_extent repo ~schema:name t_obj
           (if keep then bag (List.map v_str rows) else Value.Bag.empty)))
    [ ("s1", keep_s1, [ "a"; "b" ]); ("s2", keep_s2, [ "b"; "c" ]) ];
  let into name =
    { Transform.from_schema = name; to_schema = "merged"; steps = [] }
  in
  ok (Repository.add_pathway repo (into "s1"));
  ok (Repository.add_pathway repo (into "s2"));
  repo

let positive_queries =
  [
    "<<t>>";
    "distinct(<<t>>)";
    "<<t>> ++ <<t>>";
    "[x | x <- <<t>>; x = 'b']";
    "[{x, y} | x <- <<t>>; y <- <<t>>; x = y]";
    "count(<<t>>)";
  ]

let test_sufficiency () =
  (* re-evaluating restricted to exactly the extents a tuple cites
     reproduces that tuple with its multiplicity (positive fragment) *)
  let proc = Processor.create (union_repo ()) in
  List.iter
    (fun text ->
      let query = q text in
      let ann =
        ok_p (Processor.run_provenance proc ~schema:"merged" query)
      in
      List.iter
        (fun (tp : Processor.annotated_tuple) ->
          let cited source =
            List.exists
              (fun (a : Lineage.atom) -> a.source = source)
              (Lineage.atoms tp.lineage)
          in
          let restricted =
            Processor.create
              (partial_union_repo ~keep_s1:(cited "s1")
                 ~keep_s2:(cited "s2"))
          in
          match ok_p (Processor.run restricted ~schema:"merged" query) with
          | Value.Bag b ->
              Alcotest.(check int)
                (Printf.sprintf "%s: %s reproduced exactly" text
                   (Value.to_string tp.value))
                tp.count
                (Value.Bag.multiplicity tp.value b)
          | v ->
              (* scalar answer: must be reproduced verbatim *)
              Alcotest.(check bool)
                (Printf.sprintf "%s: scalar reproduced" text)
                true (Value.equal v tp.value))
        ann.Processor.tuples)
    positive_queries

let test_sufficiency_qcheck =
  (* the same property under random extents *)
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 0 5) (int_range 0 3))
        (list_size (int_range 0 5) (int_range 0 3)))
  in
  let print (a, b) =
    Printf.sprintf "s1=[%s] s2=[%s]"
      (String.concat ";" (List.map string_of_int a))
      (String.concat ";" (List.map string_of_int b))
  in
  QCheck.Test.make ~count:60 ~name:"lineage sufficiency (random extents)"
    (QCheck.make ~print gen)
    (fun (rows1, rows2) ->
      let row k = v_str (Printf.sprintf "r%d" k) in
      let build s1 s2 =
        let repo = Repository.create () in
        List.iter
          (fun (name, rows) ->
            ok (Repository.add_schema repo (schema name [ t_obj ]));
            ok (Repository.set_extent repo ~schema:name t_obj (bag rows)))
          [ ("s1", s1); ("s2", s2) ];
        let into name =
          { Transform.from_schema = name; to_schema = "merged"; steps = [] }
        in
        ok (Repository.add_pathway repo (into "s1"));
        ok (Repository.add_pathway repo (into "s2"));
        repo
      in
      let b1 = List.map row rows1 and b2 = List.map row rows2 in
      let proc = Processor.create (build b1 b2) in
      List.for_all
        (fun text ->
          let query = q text in
          let ann =
            ok_p (Processor.run_provenance proc ~schema:"merged" query)
          in
          List.for_all
            (fun (tp : Processor.annotated_tuple) ->
              let cited source =
                List.exists
                  (fun (a : Lineage.atom) -> a.source = source)
                  (Lineage.atoms tp.lineage)
              in
              let restricted =
                Processor.create
                  (build
                     (if cited "s1" then b1 else [])
                     (if cited "s2" then b2 else []))
              in
              match
                ok_p (Processor.run restricted ~schema:"merged" query)
              with
              | Value.Bag b -> Value.Bag.multiplicity tp.value b = tp.count
              | v -> Value.equal v tp.value)
            ann.Processor.tuples)
        [ "<<t>>"; "distinct(<<t>>)"; "[x | x <- <<t>>; x = 'r1']" ])

(* -- degraded provenance: per-source impact ------------------------------- *)

let test_degraded_provenance_impact () =
  let repo = union_repo () in
  let res = Resilience.create ~policy:fail_fast () in
  Resilience.register res "s1";
  Resilience.register res "s2";
  Resilience.inject res ~source:"s2" (Fault.rate 1.0);
  let proc = Processor.create ~resilience:res repo in
  (* a comprehension, so generator ambient skips land on each tuple *)
  let query = q "[x | x <- <<t>>]" in
  let ann, c =
    ok_p (Processor.run_degraded_provenance proc ~schema:"merged" query)
  in
  Alcotest.(check bool) "incomplete" false c.Processor.complete;
  Alcotest.(check (list string)) "s2 skipped" [ "s2" ]
    (List.map fst c.Processor.sources_skipped);
  (* both of s1's tuples flowed through the bag s2 should have fed *)
  Alcotest.(check int) "impact counts affected tuples" 2
    (match List.assoc_opt "s2" c.Processor.source_impact with
    | Some n -> n
    | None -> Alcotest.fail "no impact entry for s2");
  List.iter
    (fun (tp : Processor.annotated_tuple) ->
      Alcotest.(check bool) "tuple carries the skip marker" true
        (Lineage.cites_skip "s2" tp.Processor.lineage))
    ann.Processor.tuples;
  (* recovery: a fresh run is complete and drops the markers *)
  Resilience.inject res ~source:"s2" Fault.none;
  let ann, c =
    ok_p (Processor.run_degraded_provenance proc ~schema:"merged" query)
  in
  Alcotest.(check bool) "complete after recovery" true c.Processor.complete;
  Alcotest.(check (list (pair string int))) "no impact when complete" []
    c.Processor.source_impact;
  Alcotest.(check int) "full answer" 4
    (match ann.Processor.result with
    | Value.Bag b -> Value.Bag.cardinal b
    | _ -> -1);
  List.iter
    (fun (tp : Processor.annotated_tuple) ->
      Alcotest.(check bool) "no stale skip marker" false
        (Lineage.cites_skip "s2" tp.Processor.lineage))
    ann.Processor.tuples

(* -- explain_plan --------------------------------------------------------- *)

let test_explain_plan () =
  let repo = union_repo () in
  (* a provably-dead pathway: its only definition is an empty bound *)
  ok (Repository.add_schema repo (schema "dead" []));
  ok
    (Repository.add_pathway repo
       {
         Transform.from_schema = "dead";
         to_schema = "merged";
         steps = [ Transform.Extend (t_obj, Ast.Void, Ast.Any) ];
       });
  let proc = Processor.create repo in
  let ex = ok_p (Processor.explain_plan proc ~schema:"merged" (q "<<t>>")) in
  Alcotest.(check string) "schema" "merged" ex.Processor.ex_schema;
  let root =
    match ex.Processor.ex_roots with
    | [ r ] -> r
    | rs -> Alcotest.failf "expected one root, got %d" (List.length rs)
  in
  Alcotest.(check bool) "root object" true
    (Scheme.equal t_obj root.Processor.en_object);
  Alcotest.(check bool) "not stored on merged" false root.Processor.en_stored;
  Alcotest.(check bool) "cold before any run" true
    (root.Processor.en_cached = Processor.Cache_cold);
  let decision from =
    match
      List.find_opt
        (fun (p : Processor.explain_pathway) -> p.ep_from = from)
        root.Processor.en_pathways
    with
    | Some p -> p.Processor.ep_decision
    | None -> Alcotest.failf "no pathway from %s" from
  in
  (* live pathways are applied, with stored leaves underneath *)
  (match decision "s1" with
  | Processor.Applied [ child ] ->
      Alcotest.(check string) "child schema" "s1" child.Processor.en_schema;
      Alcotest.(check bool) "child stored" true child.Processor.en_stored;
      Alcotest.(check (option int)) "child rows" (Some 2)
        child.Processor.en_rows
  | _ -> Alcotest.fail "s1 should be applied with one child");
  (* the dead pathway is pruned, with a reachability reason *)
  (match decision "dead" with
  | Processor.Pruned reason ->
      Alcotest.(check bool) "mentions reachability" true
        (contains ~sub:"reachability" reason)
  | _ -> Alcotest.fail "dead pathway should be pruned");
  (* after a provenance run, the cache state flips to hit *)
  let _ = ok_p (Processor.run_provenance proc ~schema:"merged" (q "<<t>>")) in
  let ex2 = ok_p (Processor.explain_plan proc ~schema:"merged" (q "<<t>>")) in
  (match ex2.Processor.ex_roots with
  | [ r ] ->
      Alcotest.(check bool) "cached after run" true
        (r.Processor.en_cached = Processor.Cache_hit)
  | _ -> Alcotest.fail "one root expected");
  (* the text rendering mentions the key facts *)
  let txt = Fmt.str "%a" Processor.pp_explain ex in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " in rendering") true
        (contains ~sub txt))
    [ "merged"; "PRUNED"; "applied"; "stored(2 rows)" ]

(* -- the workflow surface over the paper's case study --------------------- *)

let test_ispider_provenance_and_explain () =
  (* acceptance: all 7 case-study queries run with per-tuple lineage,
     bit-identical to the plain run, and explain_plan tells the story *)
  let module Sources = Automed_ispider.Sources in
  let module Queries = Automed_ispider.Queries in
  let module Intersection_run = Automed_ispider.Intersection_run in
  let repo = Repository.create () in
  ok (Sources.wrap_all repo (Sources.generate ()));
  let run = ok (Intersection_run.execute repo) in
  let wf = run.Intersection_run.workflow in
  List.iter
    (fun (query : Queries.query) ->
      let text = query.Queries.global_text in
      let plain = ok_p (Workflow.run_query wf text) in
      let ann = ok_p (Workflow.run_query_provenance wf text) in
      Alcotest.(check bool)
        (Printf.sprintf "Q%d bit-identical" query.Queries.number)
        true
        (Value.equal plain ann.Processor.result);
      List.iter
        (fun (tp : Processor.annotated_tuple) ->
          Alcotest.(check bool) "tuple cites at least one source" true
            (Lineage.sources tp.Processor.lineage <> []);
          Alcotest.(check bool) "mac verifies" true
            (Lineage.verify ~key:Processor.default_mac_key tp.Processor.value
               tp.Processor.lineage tp.Processor.mac))
        ann.Processor.tuples;
      let ex = ok_p (Workflow.explain_query wf text) in
      Alcotest.(check bool) "explain has roots" true
        (ex.Processor.ex_roots <> []))
    Queries.all

(* -- federated member report ---------------------------------------------- *)

let test_member_report () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "left" [ t_obj ]));
  ok (Repository.add_schema repo (schema "right" [ u_obj ]));
  ok (Repository.set_extent repo ~schema:"left" t_obj (bag [ v_str "a" ]));
  ok (Repository.set_extent repo ~schema:"right" u_obj (bag [ v_str "b" ]));
  let _ =
    ok (Federated.create repo ~name:"fed" ~members:[ "left"; "right" ])
  in
  let query = q "count(<<left:t>>)" in
  let report = ok (Federated.member_report repo ~federation:"fed" query) in
  let verdict m =
    match List.assoc_opt m report with
    | Some v -> v
    | None -> Alcotest.failf "no verdict for %s" m
  in
  (match verdict "left" with
  | Federated.Relevant why ->
      Alcotest.(check bool) "names the fed object" true
        (contains ~sub:"left:t" why)
  | Federated.Irrelevant why ->
      Alcotest.failf "left should be relevant, got: %s" why);
  (match verdict "right" with
  | Federated.Irrelevant _ -> ()
  | Federated.Relevant why ->
      Alcotest.failf "right should be irrelevant, got: %s" why);
  (* and the verdicts agree with relevant_members *)
  Alcotest.(check (list string)) "consistent with relevant_members"
    [ "left" ]
    (ok (Federated.relevant_members repo ~federation:"fed" query))

let suite =
  [
    Alcotest.test_case "lineage semilattice" `Quick test_lineage_semilattice;
    Alcotest.test_case "lineage json + mac forgery" `Quick
      test_lineage_json_and_mac;
    Alcotest.test_case "peval agrees with eval" `Quick
      test_peval_agrees_with_eval;
    QCheck_alcotest.to_alcotest test_peval_qcheck_agrees;
    Alcotest.test_case "run_provenance end to end" `Quick
      test_run_provenance_end_to_end;
    Alcotest.test_case "plain/annotated cache interleaving" `Quick
      test_provenance_cache_interleaving;
    Alcotest.test_case "aggregate cites empty extent" `Quick
      test_aggregate_cites_empty_extent;
    Alcotest.test_case "sufficiency on fixed queries" `Quick test_sufficiency;
    QCheck_alcotest.to_alcotest test_sufficiency_qcheck;
    Alcotest.test_case "degraded provenance impact" `Quick
      test_degraded_provenance_impact;
    Alcotest.test_case "explain plan" `Quick test_explain_plan;
    Alcotest.test_case "ispider provenance + explain (7 queries)" `Quick
      test_ispider_provenance_and_explain;
    Alcotest.test_case "federated member report" `Quick test_member_report;
  ]
