(* The full case study (paper Section 3): generated sources, the
   intersection-based integration (26 manual transformations), the
   classical ladder (95), query ground truths and the pay-as-you-go
   progression. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Parser = Automed_iql.Parser
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Workflow = Automed_integration.Workflow
module Intersection = Automed_integration.Intersection
module Classical = Automed_integration.Classical
module Sources = Automed_ispider.Sources
module Queries = Automed_ispider.Queries
module Intersection_run = Automed_ispider.Intersection_run
module Classical_run = Automed_ispider.Classical_run

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* The dataset and both integrations are deterministic and somewhat
   expensive to build, so they are shared across the test cases. *)
let dataset = lazy (Sources.generate ())

let intersection_env =
  lazy
    (let ds = Lazy.force dataset in
     let repo = Repository.create () in
     ok (Sources.wrap_all repo ds);
     let run = ok (Intersection_run.execute repo) in
     (ds, repo, run))

let classical_env =
  lazy
    (let ds = Lazy.force dataset in
     let repo = Repository.create () in
     ok (Sources.wrap_all repo ds);
     let run = ok (Classical_run.execute repo) in
     (ds, repo, run))

(* -- sources ------------------------------------------------------------- *)

let test_generation_deterministic () =
  let d1 = Sources.generate ~seed:9L ~scale:10 () in
  let d2 = Sources.generate ~seed:9L ~scale:10 () in
  let count ds name =
    Automed_datasource.Relational.tables ds
    |> List.map (fun t ->
           (Automed_datasource.Relational.table_name t,
            Automed_datasource.Relational.rows t))
    |> fun l -> (name, l)
  in
  Alcotest.(check bool) "same rows" true
    (count d1.Sources.pedro "p" = count d2.Sources.pedro "p"
    && count d1.Sources.gpmdb "g" = count d2.Sources.gpmdb "g"
    && count d1.Sources.pepseeker "s" = count d2.Sources.pepseeker "s")

let test_schema_sizes () =
  let _, repo, _ = Lazy.force intersection_env in
  let size name = Schema.object_count (Repository.schema_exn repo name) in
  (* the reconstruction sizes documented in EXPERIMENTS.md *)
  Alcotest.(check int) "pedro" 43 (size "pedro");
  Alcotest.(check int) "gpmdb" 60 (size "gpmdb");
  Alcotest.(check int) "pepseeker" 65 (size "pepseeker")

let test_known_values_planted () =
  let ds = Lazy.force dataset in
  let has db table col value =
    match Automed_datasource.Relational.find_table db table with
    | None -> false
    | Some t -> (
        match Automed_datasource.Relational.column_extent t col with
        | Ok bag ->
            Value.Bag.fold
              (fun v _ acc ->
                acc
                || match v with
                   | Value.Tuple [ _; Value.Str s ] -> s = value
                   | _ -> false)
              bag false
        | Error _ -> false)
  in
  Alcotest.(check bool) "accession in pedro" true
    (has ds.Sources.pedro "protein" "accession_num" Sources.Known.accession);
  Alcotest.(check bool) "accession in gpmdb" true
    (has ds.Sources.gpmdb "proseq" "label" Sources.Known.accession);
  Alcotest.(check bool) "accession in pepseeker" true
    (has ds.Sources.pepseeker "protein" "accession" Sources.Known.accession);
  Alcotest.(check bool) "peptide in pedro" true
    (has ds.Sources.pedro "peptidehit" "sequence" Sources.Known.peptide_sequence)

(* -- intersection methodology (the paper's headline numbers) ------------- *)

let test_total_manual_is_26 () =
  let _, _, run = Lazy.force intersection_env in
  Alcotest.(check int) "26 manual transformations" 26
    run.Intersection_run.total_manual

let test_step_breakdown () =
  let _, _, run = Lazy.force intersection_env in
  Alcotest.(check (list int)) "6+1+1+(14+1)+3" [ 6; 1; 1; 14; 1; 3 ]
    (List.map (fun s -> s.Intersection_run.manual) run.Intersection_run.steps)

let test_queries_match_ground_truth () =
  let ds, _, run = Lazy.force intersection_env in
  let wf = run.Intersection_run.workflow in
  List.iter
    (fun (q : Queries.query) ->
      match Workflow.run_query wf q.Queries.global_text with
      | Error e ->
          Alcotest.failf "query %d: %a" q.Queries.number Processor.pp_error e
      | Ok (Value.Bag got) ->
          let expected = q.Queries.ground_truth ds in
          if not (Value.Bag.equal got expected) then
            Alcotest.failf "query %d: got %d answers, expected %d"
              q.Queries.number (Value.Bag.cardinal got)
              (Value.Bag.cardinal expected)
      | Ok v ->
          Alcotest.failf "query %d: non-bag %s" q.Queries.number
            (Value.to_string v))
    Queries.all

let test_queries_nonempty () =
  (* guard against vacuous ground truths *)
  let ds, _, _ = Lazy.force intersection_env in
  List.iter
    (fun (q : Queries.query) ->
      Alcotest.(check bool)
        (Printf.sprintf "query %d ground truth nonempty" q.Queries.number)
        true
        (not (Value.Bag.is_empty (q.Queries.ground_truth ds))))
    Queries.all

let test_payg_progression () =
  (* each query becomes answerable exactly at its documented iteration *)
  let _, repo, run = Lazy.force intersection_env in
  let proc = Processor.create repo in
  let answerable_at version (q : Queries.query) =
    match Parser.parse q.Queries.global_text with
    | Error e -> Alcotest.failf "parse: %s" e
    | Ok ast ->
        Processor.answerable proc ~schema:(Printf.sprintf "ispider_v%d" version) ast
  in
  ignore run;
  List.iter
    (fun (q : Queries.query) ->
      for v = 0 to 6 do
        let expected = v >= q.Queries.needs_iteration in
        Alcotest.(check bool)
          (Printf.sprintf "query %d at v%d" q.Queries.number v)
          expected (answerable_at v q)
      done)
    Queries.all

let test_queries_use_fresh_processor () =
  (* reproducibility: a fresh processor over the same repository yields
     identical answers (cache-independence) *)
  let _, repo, run = Lazy.force intersection_env in
  let wf = run.Intersection_run.workflow in
  let fresh = Processor.create repo in
  List.iter
    (fun (q : Queries.query) ->
      let a = Workflow.run_query wf q.Queries.global_text in
      let b =
        Processor.run_string fresh ~schema:(Workflow.global_name wf)
          q.Queries.global_text
      in
      match (a, b) with
      | Ok va, Ok vb ->
          Alcotest.(check bool)
            (Printf.sprintf "query %d stable" q.Queries.number)
            true (Value.equal va vb)
      | _ -> Alcotest.failf "query %d failed" q.Queries.number)
    Queries.all

let test_intersection_pathways_canonical () =
  let _, _, run = Lazy.force intersection_env in
  List.iter
    (fun (it : Workflow.iteration) ->
      List.iter
        (fun (_, p) ->
          match Automed_transform.Transform.intersection_shape p with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "iteration %d: %s" it.Workflow.index e)
        it.Workflow.outcome.Intersection.side_pathways)
    (Workflow.iterations run.Intersection_run.workflow)

let test_redundant_objects_dropped () =
  let _, repo, run = Lazy.force intersection_env in
  let g =
    Repository.schema_exn repo
      (Workflow.global_name run.Intersection_run.workflow)
  in
  (* Pedro's protein accession was mapped into UProtein: dropped *)
  Alcotest.(check bool) "mapped object dropped" false
    (Schema.mem
       (Scheme.prefix "pedro" (Scheme.column "protein" "accession_num"))
       g);
  (* Pedro's predicted_mass was never mapped: retained under its prefix *)
  Alcotest.(check bool) "unmapped object kept" true
    (Schema.mem
       (Scheme.prefix "pedro" (Scheme.column "protein" "predicted_mass"))
       g);
  (* intersection concepts are present unprefixed *)
  Alcotest.(check bool) "UProtein present" true
    (Schema.mem (Scheme.table "UProtein") g)

(* -- classical baseline --------------------------------------------------- *)

let test_classical_counts () =
  let _, _, run = Lazy.force classical_env in
  Alcotest.(check int) "gpmDB -> GS1" 19 run.Classical_run.gs1_gpm;
  Alcotest.(check int) "PepSeeker -> GS1" 35 run.Classical_run.gs1_pep;
  Alcotest.(check int) "PepSeeker -> GS2" 41 run.Classical_run.gs2_pep;
  Alcotest.(check int) "total 95" 95 run.Classical_run.total_manual

let test_classical_new_per_stage () =
  let _, _, run = Lazy.force classical_env in
  Alcotest.(check (list (pair string int))) "stage breakdown"
    [ ("GS1", 54); ("GS2", 41); ("GS3", 0) ]
    run.Classical_run.ladder.Classical.new_manual_per_stage

let test_classical_queries_run () =
  let _, repo, _ = Lazy.force classical_env in
  let proc = Processor.create repo in
  List.iter
    (fun (q : Queries.query) ->
      match Processor.run_string proc ~schema:"GS3" q.Queries.classical_text with
      | Ok (Value.Bag b) ->
          Alcotest.(check bool)
            (Printf.sprintf "classical query %d nonempty" q.Queries.number)
            true
            (not (Value.Bag.is_empty b))
      | Ok v ->
          Alcotest.failf "classical query %d: non-bag %s" q.Queries.number
            (Value.to_string v)
      | Error e ->
          Alcotest.failf "classical query %d: %a" q.Queries.number
            Processor.pp_error e)
    Queries.all

let test_classical_query7_needs_gs3 () =
  (* the ion query only becomes answerable at the last classical stage:
     the all-up-front cost precedes any ion data service *)
  let _, repo, _ = Lazy.force classical_env in
  let proc = Processor.create repo in
  let q7 = Queries.find 7 in
  let ast = Parser.parse_exn q7.Queries.classical_text in
  Alcotest.(check bool) "not at GS1" false
    (Processor.answerable proc ~schema:"GS1" ast);
  Alcotest.(check bool) "not at GS2" false
    (Processor.answerable proc ~schema:"GS2" ast);
  Alcotest.(check bool) "at GS3" true (Processor.answerable proc ~schema:"GS3" ast)

(* classical ground truths: the classical GS merges extents untagged, so
   the expected answers are the plain unions of the per-source columns *)
let classical_gt_column specs wanted =
  let module Relational = Automed_datasource.Relational in
  List.concat_map
    (fun (db, table, col) ->
      match Relational.find_table db table with
      | None -> []
      | Some t -> (
          match Relational.column_extent t col with
          | Ok bag ->
              Value.Bag.fold
                (fun v n acc ->
                  match v with
                  | Value.Tuple [ k; Value.Str s ] when s = wanted ->
                      List.init n (fun _ -> k) @ acc
                  | _ -> acc)
                bag []
          | Error _ -> []))
    specs
  |> Value.Bag.of_list
  |> fun b -> b

let test_classical_queries_match_ground_truth () =
  let ds, repo, _ = Lazy.force classical_env in
  let proc = Processor.create repo in
  let check_q n specs wanted =
    let q = Queries.find n in
    match Processor.run_string proc ~schema:"GS3" q.Queries.classical_text with
    | Ok (Value.Bag got) ->
        let expected = classical_gt_column specs wanted in
        Alcotest.(check bool)
          (Printf.sprintf "classical query %d matches ground truth" n)
          true (Value.Bag.equal got expected)
    | _ -> Alcotest.failf "classical query %d failed" n
  in
  check_q 1
    [ (ds.Sources.pedro, "protein", "accession_num");
      (ds.Sources.gpmdb, "proseq", "label");
      (ds.Sources.pepseeker, "protein", "accession") ]
    Sources.Known.accession;
  check_q 2
    [ (ds.Sources.pedro, "protein", "description");
      (ds.Sources.pepseeker, "protein", "description") ]
    Sources.Known.family_description;
  check_q 3
    [ (ds.Sources.pedro, "protein", "organism");
      (ds.Sources.pepseeker, "protein", "taxon") ]
    Sources.Known.organism

let test_all_schemas_hdm_valid () =
  (* the entire pathway network only ever produces schemas whose HDM
     representation is referentially sound *)
  let module Hdm = Automed_hdm.Hdm in
  let _, repo, _ = Lazy.force intersection_env in
  List.iter
    (fun s ->
      match Schema.hdm s with
      | Ok g ->
          Alcotest.(check bool)
            (Printf.sprintf "%s HDM valid" (Schema.name s))
            true
            (Result.is_ok (Hdm.validate g))
      | Error e -> Alcotest.failf "%s: %s" (Schema.name s) e)
    (Repository.schemas repo)

let test_classical_accession_query_agrees () =
  (* both methodologies find the same three protein identifications for
     the known accession (modulo provenance tagging) *)
  let _, repo, _ = Lazy.force classical_env in
  let proc = Processor.create repo in
  let q1 = Queries.find 1 in
  match Processor.run_string proc ~schema:"GS3" q1.Queries.classical_text with
  | Ok (Value.Bag b) -> Alcotest.(check int) "three sources" 3 (Value.Bag.cardinal b)
  | _ -> Alcotest.fail "query failed"

(* -- the headline comparison --------------------------------------------- *)

let test_effort_comparison () =
  let _, _, irun = Lazy.force intersection_env in
  let _, _, crun = Lazy.force classical_env in
  Alcotest.(check bool) "26 < 95" true
    (irun.Intersection_run.total_manual < crun.Classical_run.total_manual);
  Alcotest.(check int) "factor > 3" 3
    (crun.Classical_run.total_manual / irun.Intersection_run.total_manual)

(* The seven case-study queries must be bit-identical with the static
   simplification/pruning pipeline on (the default, used by
   [intersection_env]) and off: certified rewrites and reachability
   pruning change how much work the processor does, never the answer. *)
let test_simplify_bit_identical () =
  let ds = Lazy.force dataset in
  let naive_repo = Repository.create () in
  ok (Sources.wrap_all naive_repo ds);
  let naive = ok (Intersection_run.execute ~simplify:false naive_repo) in
  let _, _, run = Lazy.force intersection_env in
  List.iter
    (fun (q : Queries.query) ->
      let answer (r : Intersection_run.run) =
        match Workflow.run_query r.Intersection_run.workflow q.Queries.global_text with
        | Ok v -> v
        | Error e -> Alcotest.fail (Fmt.str "%a" Processor.pp_error e)
      in
      Alcotest.(check bool)
        (Printf.sprintf "query %d bit-identical" q.Queries.number)
        true
        (Value.equal (answer naive) (answer run)))
    Queries.all

let suite =
  [
    Alcotest.test_case "generation deterministic" `Quick test_generation_deterministic;
    Alcotest.test_case "schema sizes" `Quick test_schema_sizes;
    Alcotest.test_case "known values planted" `Quick test_known_values_planted;
    Alcotest.test_case "26 manual transformations" `Quick test_total_manual_is_26;
    Alcotest.test_case "step breakdown 6+1+1+15+3" `Quick test_step_breakdown;
    Alcotest.test_case "queries match ground truth" `Quick
      test_queries_match_ground_truth;
    Alcotest.test_case "ground truths nonempty" `Quick test_queries_nonempty;
    Alcotest.test_case "pay-as-you-go progression" `Quick test_payg_progression;
    Alcotest.test_case "answers stable across processors" `Quick
      test_queries_use_fresh_processor;
    Alcotest.test_case "pathways canonical" `Quick
      test_intersection_pathways_canonical;
    Alcotest.test_case "redundant objects dropped" `Quick
      test_redundant_objects_dropped;
    Alcotest.test_case "classical counts 19/35/41" `Quick test_classical_counts;
    Alcotest.test_case "classical per-stage 54/41/0" `Quick
      test_classical_new_per_stage;
    Alcotest.test_case "classical queries run on GS3" `Quick
      test_classical_queries_run;
    Alcotest.test_case "ion query needs GS3" `Quick test_classical_query7_needs_gs3;
    Alcotest.test_case "classical query 1 agrees" `Quick
      test_classical_accession_query_agrees;
    Alcotest.test_case "classical queries match ground truth" `Quick
      test_classical_queries_match_ground_truth;
    Alcotest.test_case "all schemas HDM-valid" `Quick test_all_schemas_hdm_valid;
    Alcotest.test_case "26 vs 95 comparison" `Quick test_effort_comparison;
    Alcotest.test_case "simplify on/off bit-identical" `Quick
      test_simplify_bit_identical;
  ]
