(* PRNG determinism and string utilities. *)

module Prng = Automed_base.Prng
module Strutil = Automed_base.Strutil

let test_prng_deterministic () =
  let a = Prng.create 7L and b = Prng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_copy () =
  let a = Prng.create 3L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_prng_int_bounds () =
  let rng = Prng.create 11L in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_prng_int_rejects () =
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int (Prng.create 1L) 0))

let test_prng_float_bounds () =
  let rng = Prng.create 13L in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let test_prng_choose_shuffle () =
  let rng = Prng.create 5L in
  let a = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    let v = Prng.choose rng a in
    if v < 1 || v > 5 then Alcotest.failf "bad choice %d" v
  done;
  let b = Array.copy a in
  Prng.shuffle rng b;
  Alcotest.(check (list int)) "shuffle is a permutation" [ 1; 2; 3; 4; 5 ]
    (List.sort compare (Array.to_list b))

let test_prng_sample () =
  let rng = Prng.create 9L in
  let xs = [ 1; 2; 3; 4; 5; 6 ] in
  let s = Prng.sample rng 3 xs in
  Alcotest.(check int) "sample size" 3 (List.length s);
  List.iter
    (fun x -> Alcotest.(check bool) "sampled from xs" true (List.mem x xs))
    s;
  Alcotest.(check int) "sample all when k too big" 6
    (List.length (Prng.sample rng 10 xs))

let test_levenshtein () =
  Alcotest.(check int) "identical" 0 (Strutil.levenshtein "abc" "abc");
  Alcotest.(check int) "empty" 3 (Strutil.levenshtein "" "abc");
  Alcotest.(check int) "kitten/sitting" 3 (Strutil.levenshtein "kitten" "sitting");
  Alcotest.(check int) "substitution" 1 (Strutil.levenshtein "cat" "car")

let test_similarity () =
  Alcotest.(check bool) "identical is 1" true (Strutil.similarity "abc" "abc" = 1.0);
  Alcotest.(check bool) "case folded" true (Strutil.similarity "ABC" "abc" = 1.0);
  Alcotest.(check bool) "different below 1" true (Strutil.similarity "abc" "xyz" < 0.5)

let test_tokens () =
  Alcotest.(check (list string)) "underscores" [ "db"; "search" ]
    (Strutil.tokens "db_search");
  Alcotest.(check (list string)) "camel case" [ "protein"; "hit" ]
    (Strutil.tokens "proteinHit");
  Alcotest.(check (list string)) "mixed" [ "db"; "search"; "id" ]
    (Strutil.tokens "dbSearch_id");
  Alcotest.(check (list string)) "empty" [] (Strutil.tokens "")

let test_token_overlap () =
  Alcotest.(check bool) "full overlap" true
    (Strutil.token_overlap "db_search" "search_db" = 1.0);
  Alcotest.(check bool) "no overlap" true
    (Strutil.token_overlap "protein" "peptide" = 0.0)

let test_pad_starts_contains () =
  Alcotest.(check string) "pad" "ab  " (Strutil.pad 4 "ab");
  Alcotest.(check string) "no truncate" "abcdef" (Strutil.pad 4 "abcdef");
  Alcotest.(check bool) "starts_with" true
    (Strutil.starts_with ~prefix:"pro" "protein");
  Alcotest.(check bool) "contains" true (Strutil.contains_sub ~sub:"ote" "protein");
  Alcotest.(check bool) "not contains" false
    (Strutil.contains_sub ~sub:"xyz" "protein")

let qcheck_levenshtein_symmetric =
  QCheck.Test.make ~name:"levenshtein symmetric" ~count:200
    QCheck.(pair string_printable string_printable)
    (fun (a, b) -> Strutil.levenshtein a b = Strutil.levenshtein b a)

let qcheck_levenshtein_triangle =
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:200
    QCheck.(
      triple string_printable string_printable
        string_printable)
    (fun (a, b, c) ->
      Strutil.levenshtein a c <= Strutil.levenshtein a b + Strutil.levenshtein b c)

let qcheck_similarity_range =
  QCheck.Test.make ~name:"similarity in [0,1]" ~count:200
    QCheck.(pair string_printable string_printable)
    (fun (a, b) ->
      let s = Strutil.similarity a b in
      s >= 0.0 && s <= 1.0)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng int rejects" `Quick test_prng_int_rejects;
    Alcotest.test_case "prng float bounds" `Quick test_prng_float_bounds;
    Alcotest.test_case "prng choose/shuffle" `Quick test_prng_choose_shuffle;
    Alcotest.test_case "prng sample" `Quick test_prng_sample;
    Alcotest.test_case "levenshtein" `Quick test_levenshtein;
    Alcotest.test_case "similarity" `Quick test_similarity;
    Alcotest.test_case "tokens" `Quick test_tokens;
    Alcotest.test_case "token overlap" `Quick test_token_overlap;
    Alcotest.test_case "pad/starts/contains" `Quick test_pad_starts_contains;
    QCheck_alcotest.to_alcotest qcheck_levenshtein_symmetric;
    QCheck_alcotest.to_alcotest qcheck_levenshtein_triangle;
    QCheck_alcotest.to_alcotest qcheck_similarity_range;
  ]
