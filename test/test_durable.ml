(* Crash safety of the durable repository: journal framing, checkpoint
   atomicity, fault-injected recovery and the kill-point matrix (a
   simulated crash at every journal record boundary, and inside records,
   must recover to exactly the state the completed ops describe). *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Parser = Automed_iql.Parser
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Serialize = Automed_repository.Serialize
module Processor = Automed_query.Processor
module Intersection = Automed_integration.Intersection
module Workflow = Automed_integration.Workflow
module Sources = Automed_ispider.Sources
module Queries = Automed_ispider.Queries
module Intersection_run = Automed_ispider.Intersection_run
module Resilience = Automed_resilience.Resilience
module Crc32 = Automed_durable.Crc32
module Vfs = Automed_durable.Vfs
module Journal = Automed_durable.Journal
module Durable = Automed_durable.Durable

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let err = function Ok _ -> Alcotest.fail "expected error" | Error e -> e
let save repo = Serialize.save ~extents:true repo

(* -- CRC32 ---------------------------------------------------------------- *)

let test_crc_known_answer () =
  (* the IEEE 802.3 check value *)
  Alcotest.(check string) "123456789" "cbf43926"
    (Crc32.to_hex (Crc32.digest "123456789"));
  Alcotest.(check string) "empty" "00000000" (Crc32.to_hex (Crc32.digest ""));
  (* incremental = one-shot *)
  let half = Crc32.digest "12345" in
  Alcotest.(check string) "incremental" "cbf43926"
    (Crc32.to_hex (Crc32.digest ~crc:half "6789"))

(* -- journal framing ------------------------------------------------------ *)

let test_journal_roundtrip () =
  let vfs = Vfs.memory () in
  let payloads = [ "alpha"; ""; "third record\nwith newline"; "\x00\xff" ] in
  List.iter (fun p -> ok (Journal.append vfs ~file:"j" p)) payloads;
  let scan = ok (Journal.read vfs ~file:"j") in
  Alcotest.(check (list string)) "payloads" payloads
    (List.map snd scan.Journal.records);
  (match scan.Journal.tail with
  | Journal.Clean -> ()
  | t -> Alcotest.failf "expected clean tail, got %a" Journal.pp_tail t);
  Alcotest.(check int) "valid covers all" scan.Journal.total_bytes
    scan.Journal.valid_bytes

let test_journal_missing_file () =
  let scan = ok (Journal.read (Vfs.memory ()) ~file:"absent") in
  Alcotest.(check int) "no records" 0 (List.length scan.Journal.records)

let test_journal_torn_and_corrupt () =
  let a = Journal.frame "first" and b = Journal.frame "second" in
  (* torn: the file ends inside the second record *)
  let torn = a ^ String.sub b 0 (String.length b - 3) in
  let scan = Journal.scan torn in
  Alcotest.(check (list string)) "prefix survives" [ "first" ]
    (List.map snd scan.Journal.records);
  (match scan.Journal.tail with
  | Journal.Torn { offset; _ } ->
      Alcotest.(check int) "torn at boundary" (String.length a) offset
  | t -> Alcotest.failf "expected torn, got %a" Journal.pp_tail t);
  Alcotest.(check int) "valid_bytes stops at boundary" (String.length a)
    scan.Journal.valid_bytes;
  (* corrupt: one flipped bit in the second payload *)
  let both = Bytes.of_string (a ^ b) in
  let i = String.length a + Journal.header_bytes in
  Bytes.set both i (Char.chr (Char.code (Bytes.get both i) lxor 0x10));
  let scan = Journal.scan (Bytes.to_string both) in
  Alcotest.(check (list string)) "prefix survives corruption" [ "first" ]
    (List.map snd scan.Journal.records);
  match scan.Journal.tail with
  | Journal.Corrupt _ -> ()
  | t -> Alcotest.failf "expected corrupt, got %a" Journal.pp_tail t

(* -- a scripted mixed-op scenario ----------------------------------------- *)

(* Each closure performs exactly one journaled mutation, covering all
   five op constructors (including hostile names and string values that
   exercise the serialisation escapes). *)
let scripted_ops repo =
  let add name objs =
    ok (Repository.add_schema repo (ok (Schema.of_objects name objs)))
  in
  [
    (fun () ->
      add "src" [ (Scheme.table "t", None); (Scheme.column "t" "c", None) ]);
    (fun () ->
      ok
        (Repository.set_extent repo ~schema:"src" (Scheme.table "t")
           (Value.Bag.of_list
              [ Value.Str "it's\na\t'quoted' \\ value"; Value.Str "plain" ])));
    (fun () ->
      ok
        (Repository.set_extent repo ~schema:"src" (Scheme.column "t" "c")
           (Value.Bag.of_list
              [ Value.tuple2 (Value.Str "a") (Value.Int 1);
                Value.tuple2 (Value.Str "b") (Value.Int 2) ])));
    (fun () ->
      ok
        (Repository.add_pathway repo
           {
             Transform.from_schema = "src";
             to_schema = "derived";
             steps =
               [
                 Transform.Add
                   (Scheme.table "tagged",
                    Parser.parse_exn "[{'S', k} | k <- <<t>>]");
               ];
           }));
    (fun () -> add "we\"ird\\nam\ne" [ (Scheme.table "wt", None) ]);
    (fun () ->
      ok
        (Repository.set_extent repo ~schema:"we\"ird\\nam\ne"
           (Scheme.table "wt")
           (Value.Bag.of_list [ Value.Str "w1" ])));
    (fun () -> add "lone" [ (Scheme.table "lt", None) ]);
    (fun () -> ok (Repository.rename_schema repo "we\"ird\\nam\ne" "tamed"));
    (fun () -> ok (Repository.remove_schema repo "lone"));
    (fun () ->
      ok
        (Repository.set_extent repo ~schema:"tamed" (Scheme.table "wt")
           (Value.Bag.of_list [ Value.Str "w1"; Value.Str "w2" ])));
    (* the evolution ops: contributions, in-place alters, retirement *)
    (fun () ->
      ok
        (Repository.add_contribution repo
           {
             Transform.from_schema = "tamed";
             to_schema = "derived";
             steps =
               [ Transform.Rename (Scheme.table "wt", Scheme.table "tagged") ];
           }));
    (fun () ->
      ok
        (Repository.alter_schema repo "tamed"
           (Repository.Alter_add_object (Scheme.table "extra", None))));
    (fun () ->
      ok
        (Repository.alter_schema repo "tamed"
           (Repository.Alter_add_object
              ( Scheme.column "wt" "c",
                Some
                  (Automed_iql.Types.TBag
                     (Automed_iql.Types.TTuple
                        [ Automed_iql.Types.TStr; Automed_iql.Types.TInt ])) ))));
    (fun () ->
      ok
        (Repository.alter_schema repo "tamed"
           (Repository.Alter_rename_object
              (Scheme.table "extra", Scheme.table "extra2"))));
    (fun () ->
      ok
        (Repository.alter_schema repo "tamed"
           (Repository.Alter_drop_object (Scheme.column "wt" "c"))));
    (fun () -> ok (Repository.retire_source repo "src"));
  ]

(* Runs the script with a durable handle on a fresh memory store.
   Returns the vfs, the journal contents, the scan, and the serialised
   repository state after each prefix of ops (states.(k) = state once
   the first k ops committed). *)
let scripted_run () =
  let vfs = Vfs.memory () in
  let repo = Repository.create () in
  let d = ok (Durable.attach vfs repo) in
  let states = ref [ save repo ] in
  List.iter
    (fun op ->
      op ();
      states := save repo :: !states)
    (scripted_ops repo);
  let journal = ok (Vfs.(vfs.read) Durable.journal_file) in
  let scan = Journal.scan journal in
  Alcotest.(check int) "one record per op" (List.length (scripted_ops (Repository.create ())))
    (Durable.appended d);
  (vfs, journal, scan, Array.of_list (List.rev !states))

let recover_journal_bytes bytes =
  let store = Vfs.memory () in
  ok (Vfs.(store.write) Durable.journal_file bytes);
  ok (Durable.recover store)

(* -- the kill-point matrix ------------------------------------------------ *)

let test_killpoint_matrix () =
  let _vfs, journal, scan, states = scripted_run () in
  let boundaries =
    List.map fst scan.Journal.records @ [ String.length journal ]
  in
  (* a crash at every record boundary: recovery must rebuild exactly the
     state after the ops whose records are complete, bit-identically *)
  List.iteri
    (fun k cut ->
      let d, report = recover_journal_bytes (String.sub journal 0 cut) in
      Alcotest.(check int)
        (Printf.sprintf "boundary %d replays %d" k k)
        k report.Durable.replayed;
      Alcotest.(check int)
        (Printf.sprintf "boundary %d drops nothing" k)
        0 report.Durable.truncated_bytes;
      Alcotest.(check string)
        (Printf.sprintf "boundary %d state bit-identical" k)
        states.(k)
        (save (Durable.repository d)))
    boundaries;
  (* a crash inside every record: recovery truncates the torn tail and
     lands on the preceding boundary's state *)
  List.iteri
    (fun k (off, payload) ->
      List.iter
        (fun cut ->
          let d, report = recover_journal_bytes (String.sub journal 0 cut) in
          Alcotest.(check int)
            (Printf.sprintf "mid-record %d replays %d" k k)
            k report.Durable.replayed;
          Alcotest.(check bool)
            (Printf.sprintf "mid-record %d warns" k)
            true
            (report.Durable.truncated_bytes > 0
            && report.Durable.warnings <> []);
          Alcotest.(check string)
            (Printf.sprintf "mid-record %d state bit-identical" k)
            states.(k)
            (save (Durable.repository d)))
        [
          off + 3; (* inside the length/crc header *)
          off + Journal.header_bytes + (String.length payload / 2);
        ])
    scan.Journal.records

(* -- a live crash through the kill-point harness -------------------------- *)

let test_live_crash_recovery () =
  let _vfs, journal, scan, states = scripted_run () in
  (* rerun the script on a crashable store, arming the write budget to
     die 3 bytes into each record in turn *)
  List.iteri
    (fun k (off, _) ->
      let inner = Vfs.memory () in
      let vfs, arm = Vfs.crashable inner in
      let repo = Repository.create () in
      let _d = ok (Durable.attach vfs repo) in
      arm (Some (off + 3));
      (try List.iter (fun op -> op ()) (scripted_ops repo)
       with Vfs.Crash _ -> ());
      arm None;
      (* a new handle recovers from what physically reached "disk" *)
      Repository.set_observer repo None;
      let d, report = ok (Durable.recover inner) in
      Alcotest.(check int)
        (Printf.sprintf "crash in record %d replays %d" k k)
        k report.Durable.replayed;
      Alcotest.(check string)
        (Printf.sprintf "crash in record %d state" k)
        states.(k)
        (save (Durable.repository d)))
    scan.Journal.records;
  ignore journal

(* -- bit flips and scrub -------------------------------------------------- *)

let test_bit_flip_detected () =
  let _vfs, journal, scan, states = scripted_run () in
  let n = List.length scan.Journal.records in
  (* flip one payload bit in the middle record: recovery must keep the
     prefix, truncate from the flipped record on, and warn - never load
     a silently wrong repository *)
  let k = n / 2 in
  let off, payload = List.nth scan.Journal.records k in
  let corrupted = Bytes.of_string journal in
  let i = off + Journal.header_bytes + (String.length payload / 3) in
  Bytes.set corrupted i (Char.chr (Char.code (Bytes.get corrupted i) lxor 0x40));
  let d, report = recover_journal_bytes (Bytes.to_string corrupted) in
  Alcotest.(check int) "prefix replayed" k report.Durable.replayed;
  Alcotest.(check bool) "warned" true (report.Durable.warnings <> []);
  Alcotest.(check bool) "truncated" true (report.Durable.truncated_bytes > 0);
  Alcotest.(check string) "prefix state" states.(k)
    (save (Durable.repository d));
  (* scrub sees the same corruption without touching the store *)
  let store = Vfs.memory () in
  ok (Vfs.(store.write) Durable.journal_file (Bytes.to_string corrupted));
  let s = ok (Durable.scrub store) in
  (match s.Durable.journal_tail with
  | Journal.Corrupt _ -> ()
  | t -> Alcotest.failf "scrub should report corrupt, got %a" Journal.pp_tail t);
  Alcotest.(check int) "scrub leaves bytes alone"
    (String.length journal)
    (String.length (ok (Vfs.(store.read) Durable.journal_file)))

let test_recovery_truncates_then_clean () =
  let _vfs, journal, scan, _states = scripted_run () in
  let off, payload = List.nth scan.Journal.records 2 in
  let cut = off + Journal.header_bytes + (String.length payload / 2) in
  let store = Vfs.memory () in
  ok (Vfs.(store.write) Durable.journal_file (String.sub journal 0 cut));
  let d, report = ok (Durable.recover store) in
  Alcotest.(check bool) "first recovery warns" true
    (report.Durable.warnings <> []);
  Durable.detach d;
  (* the torn tail is gone from disk: a second recovery is clean *)
  let _d, report = ok (Durable.recover store) in
  Alcotest.(check (list string)) "second recovery clean" []
    report.Durable.warnings;
  Alcotest.(check int) "journal truncated to boundary" off
    (String.length (ok (Vfs.(store.read) Durable.journal_file)))

(* -- checkpoints ---------------------------------------------------------- *)

let scripted_store_with_checkpoint () =
  let vfs = Vfs.memory () in
  let repo = Repository.create () in
  let d = ok (Durable.attach vfs repo) in
  let ops = scripted_ops repo in
  List.iteri (fun i op -> if i < 5 then op ()) ops;
  ok (Durable.snapshot d);
  List.iteri (fun i op -> if i >= 5 then op ()) ops;
  (vfs, repo, d)

let test_snapshot_then_more_ops () =
  let vfs, repo, d = scripted_store_with_checkpoint () in
  let post = List.length (scripted_ops (Repository.create ())) - 5 in
  Alcotest.(check int) "journal holds only post-snapshot ops" post
    (Durable.appended d);
  Durable.detach d;
  let d', report = ok (Durable.recover vfs) in
  Alcotest.(check bool) "checkpoint used" true report.Durable.checkpoint_loaded;
  Alcotest.(check int) "journal replayed on top" post report.Durable.replayed;
  Alcotest.(check string) "state bit-identical" (save repo)
    (save (Durable.repository d'))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_corrupt_checkpoint_is_hard_error () =
  let vfs, _repo, d = scripted_store_with_checkpoint () in
  Durable.detach d;
  let contents = ok (Vfs.(vfs.read) Durable.checkpoint_file) in
  let corrupted = Bytes.of_string contents in
  let i = String.length contents / 2 in
  Bytes.set corrupted i (Char.chr (Char.code (Bytes.get corrupted i) lxor 0x01));
  ok (Vfs.(vfs.write) Durable.checkpoint_file (Bytes.to_string corrupted));
  let e = err (Durable.recover vfs) in
  Alcotest.(check bool) "error mentions the checkpoint" true
    (contains ~sub:"checkpoint" e)

let test_failed_rename_keeps_old_checkpoint () =
  let disk =
    Resilience.Disk.create
      { Resilience.Disk.none with Resilience.Disk.fail_rename = true }
  in
  let inner = Vfs.memory () in
  let repo = Repository.create () in
  let d = ok (Durable.attach inner repo) in
  List.iteri (fun i op -> if i < 5 then op ()) (scripted_ops repo);
  ok (Durable.snapshot d);
  let good_checkpoint = ok (Vfs.(inner.read) Durable.checkpoint_file) in
  List.iteri (fun i op -> if i >= 5 then op ()) (scripted_ops repo);
  let journal_before = ok (Vfs.(inner.read) Durable.journal_file) in
  (* route the next snapshot through the failing-rename injector: the
     commit must fail without damaging the previous checkpoint or the
     journal *)
  Durable.detach d;
  let faulty = Vfs.with_faults disk inner in
  let d2 = ok (Durable.attach faulty repo) in
  ignore (err (Durable.snapshot d2));
  Alcotest.(check string) "old checkpoint intact" good_checkpoint
    (ok (Vfs.(inner.read) Durable.checkpoint_file));
  Alcotest.(check string) "journal intact" journal_before
    (ok (Vfs.(inner.read) Durable.journal_file));
  (* recovery from the unrenamed store still reaches the current state *)
  Durable.detach d2;
  let d3, _ = ok (Durable.recover inner) in
  Alcotest.(check string) "recoverable state unchanged" (save repo)
    (save (Durable.repository d3))

(* -- attach semantics ----------------------------------------------------- *)

let test_attach_nonempty_snapshots () =
  (* attaching to a repository that already has content must checkpoint
     it immediately: the store is self-contained from the first attach *)
  let repo = Repository.create () in
  List.iter (fun op -> op ()) (scripted_ops repo);
  let vfs = Vfs.memory () in
  let d = ok (Durable.attach vfs repo) in
  Alcotest.(check bool) "checkpoint written" true
    (Vfs.(vfs.exists) Durable.checkpoint_file);
  Durable.detach d;
  let d', report = ok (Durable.recover vfs) in
  Alcotest.(check bool) "loaded from checkpoint" true
    report.Durable.checkpoint_loaded;
  Alcotest.(check string) "state preserved" (save repo)
    (save (Durable.repository d'))

let test_attach_twice_rejected () =
  let repo = Repository.create () in
  let _d = ok (Durable.attach (Vfs.memory ()) repo) in
  ignore (err (Durable.attach (Vfs.memory ()) repo))

(* -- workflow integration ------------------------------------------------- *)

let two_sources repo =
  let add name objs =
    ok (Repository.add_schema repo (ok (Schema.of_objects name objs)))
  in
  add "lib1" [ (Scheme.table "book", None) ];
  add "lib2" [ (Scheme.table "volume", None) ];
  let set s o vs =
    ok
      (Repository.set_extent repo ~schema:s o
         (Value.Bag.of_list (List.map (fun x -> Value.Str x) vs)))
  in
  set "lib1" (Scheme.table "book") [ "b1"; "b2" ];
  set "lib2" (Scheme.table "volume") [ "v1"; "v2"; "v3" ]

let ubook_spec =
  let q = Parser.parse_exn in
  let side schema table tag =
    {
      Intersection.schema;
      mappings =
        [
          { Intersection.target = Scheme.table "UBook";
            forward = q (Printf.sprintf "[{'%s', k} | k <- <<%s>>]" tag table);
            restore = None };
        ];
    }
  in
  {
    Intersection.name = "i_book";
    sides = [ side "lib1" "book" "L1"; side "lib2" "volume" "L2" ];
  }

let test_workflow_journals_and_recovers () =
  let vfs = Vfs.memory () in
  let repo = Repository.create () in
  two_sources repo;
  let d = ok (Durable.attach vfs repo) in
  let wf = ok (Workflow.start ~durable:d repo ~name:"demo" ~sources:[ "lib1"; "lib2" ]) in
  let _it = ok (Workflow.integrate wf ubook_spec) in
  (* kill the process: all that survives is the store *)
  Durable.detach d;
  let d', report = ok (Durable.recover vfs) in
  Alcotest.(check bool) "something replayed or checkpointed" true
    (report.Durable.replayed > 0 || report.Durable.checkpoint_loaded);
  Alcotest.(check string) "workflow state survives" (save repo)
    (save (Durable.repository d'));
  let proc = Processor.create (Durable.repository d') in
  match Processor.run_string proc ~schema:"demo_v1" "count(<<UBook>>)" with
  | Ok v -> Alcotest.(check string) "queries run after recovery" "5" (Value.to_string v)
  | Error e -> Alcotest.failf "%a" Processor.pp_error e

let test_workflow_rejects_foreign_durable () =
  let repo = Repository.create () in
  two_sources repo;
  let other = Repository.create () in
  let d = ok (Durable.attach (Vfs.memory ()) other) in
  ignore
    (err (Workflow.start ~durable:d repo ~name:"demo" ~sources:[ "lib1" ]))

(* -- the full iSpider run ------------------------------------------------- *)

let test_ispider_recovery_end_to_end () =
  (* the 7-query case study (scale 10 for speed): journal the whole
     integration, recover from the journal alone, and answer all seven
     priority queries identically to the uncrashed repository *)
  let ds = Sources.generate ~scale:10 () in
  let vfs = Vfs.memory () in
  let repo = Repository.create () in
  let _d = ok (Durable.attach vfs repo) in
  ok (Sources.wrap_all repo ds);
  let run = ok (Intersection_run.execute repo) in
  let global = Workflow.global_name run.Intersection_run.workflow in
  let journal = ok (Vfs.(vfs.read) Durable.journal_file) in
  let d', report = recover_journal_bytes journal in
  Alcotest.(check int) "every op replayed"
    (List.length (Journal.scan journal).Journal.records)
    report.Durable.replayed;
  Alcotest.(check string) "bit-identical store" (save repo)
    (save (Durable.repository d'));
  let proc = Processor.create repo in
  let proc' = Processor.create (Durable.repository d') in
  List.iter
    (fun (q : Queries.query) ->
      match
        ( Processor.run_string proc ~schema:global q.Queries.global_text,
          Processor.run_string proc' ~schema:global q.Queries.global_text )
      with
      | Ok a, Ok b ->
          Alcotest.(check bool)
            (Printf.sprintf "query %d identical" q.Queries.number)
            true (Value.equal a b)
      | _ -> Alcotest.failf "query %d failed" q.Queries.number)
    Queries.all

(* -- telemetry ------------------------------------------------------------ *)

let test_telemetry_counters () =
  let module Telemetry = Automed_telemetry.Telemetry in
  let mem = Telemetry.Memory.create () in
  Telemetry.with_sink (Telemetry.Memory.sink mem) (fun () ->
      let _vfs, journal, scan, _states = scripted_run () in
      let n = List.length scan.Journal.records in
      Alcotest.(check int) "durable.append counts every record" n
        (Telemetry.Memory.counter mem "durable.append");
      let off, payload = List.nth scan.Journal.records (n - 1) in
      let cut = off + Journal.header_bytes + (String.length payload / 2) in
      let _ = recover_journal_bytes (String.sub journal 0 cut) in
      Alcotest.(check int) "durable.replay counts the prefix" (n - 1)
        (Telemetry.Memory.counter mem "durable.replay");
      Alcotest.(check bool) "scrub_bad_record fired" true
        (Telemetry.Memory.counter mem "durable.scrub_bad_record" > 0))

let suite =
  [
    Alcotest.test_case "crc32 known answers" `Quick test_crc_known_answer;
    Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal missing file" `Quick test_journal_missing_file;
    Alcotest.test_case "journal torn and corrupt tails" `Quick
      test_journal_torn_and_corrupt;
    Alcotest.test_case "kill-point matrix" `Quick test_killpoint_matrix;
    Alcotest.test_case "live crash via write budget" `Quick
      test_live_crash_recovery;
    Alcotest.test_case "bit flip detected, never silent" `Quick
      test_bit_flip_detected;
    Alcotest.test_case "recovery truncates torn tail" `Quick
      test_recovery_truncates_then_clean;
    Alcotest.test_case "snapshot then more ops" `Quick
      test_snapshot_then_more_ops;
    Alcotest.test_case "corrupt checkpoint is a hard error" `Quick
      test_corrupt_checkpoint_is_hard_error;
    Alcotest.test_case "failed rename keeps old checkpoint" `Quick
      test_failed_rename_keeps_old_checkpoint;
    Alcotest.test_case "attach snapshots non-empty repository" `Quick
      test_attach_nonempty_snapshots;
    Alcotest.test_case "attach twice rejected" `Quick test_attach_twice_rejected;
    Alcotest.test_case "workflow journals and recovers" `Quick
      test_workflow_journals_and_recovers;
    Alcotest.test_case "workflow rejects foreign durable" `Quick
      test_workflow_rejects_foreign_durable;
    Alcotest.test_case "iSpider journal recovery end to end" `Slow
      test_ispider_recovery_end_to_end;
    Alcotest.test_case "telemetry counters" `Quick test_telemetry_counters;
  ]
