(* The query processor: extent derivation along pathways, bag-union of
   multiple contributions, certain-answer lower bounds, reformulation. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Ast = Automed_iql.Ast
module Parser = Automed_iql.Parser
module Value = Automed_iql.Value
module Eval = Automed_iql.Eval
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let ok_p = function Ok v -> v | Error e -> Alcotest.failf "%a" Processor.pp_error e
let q = Parser.parse_exn
let bag vs = Value.Bag.of_list vs
let v_str s = Value.Str s

let schema name objs =
  ok (Schema.of_objects name (List.map (fun o -> (o, None)) objs))

(* source schema with a stored extent, one derived schema on top *)
let simple_repo () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "src" [ Scheme.table "t" ]));
  ok
    (Repository.set_extent repo ~schema:"src" (Scheme.table "t")
       (bag [ v_str "a"; v_str "b" ]));
  ok
    (Repository.add_pathway repo
       {
         Transform.from_schema = "src";
         to_schema = "derived";
         steps =
           [
             Transform.Add
               (Scheme.table "tagged", q "[{'S', k} | k <- <<t>>]");
           ];
       });
  repo

let test_extent_stored () =
  let proc = Processor.create (simple_repo ()) in
  let b = ok_p (Processor.extent_of proc ~schema:"src" (Scheme.table "t")) in
  Alcotest.(check int) "stored" 2 (Value.Bag.cardinal b)

let test_extent_derived () =
  let proc = Processor.create (simple_repo ()) in
  let b = ok_p (Processor.extent_of proc ~schema:"derived" (Scheme.table "tagged")) in
  Alcotest.(check int) "derived" 2 (Value.Bag.cardinal b);
  Alcotest.(check bool) "tagged" true
    (Value.Bag.mem (Value.tuple2 (v_str "S") (v_str "a")) b);
  (* the untouched object flows through *)
  let t = ok_p (Processor.extent_of proc ~schema:"derived" (Scheme.table "t")) in
  Alcotest.(check int) "identity" 2 (Value.Bag.cardinal t)

let test_extent_missing_object () =
  let proc = Processor.create (simple_repo ()) in
  match Processor.extent_of proc ~schema:"src" (Scheme.table "nope") with
  | Ok _ -> Alcotest.fail "missing object accepted"
  | Error _ -> ()

let test_run () =
  let proc = Processor.create (simple_repo ()) in
  let v = ok_p (Processor.run_string proc ~schema:"derived"
                  "[k | {s, k} <- <<tagged>>; s = 'S']") in
  Alcotest.(check string) "answers" "['a'; 'b']" (Value.to_string v)

(* two pathways into one schema: extents must bag-union *)
let union_repo () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "s1" [ Scheme.table "t" ]));
  ok (Repository.add_schema repo (schema "s2" [ Scheme.table "t" ]));
  ok
    (Repository.set_extent repo ~schema:"s1" (Scheme.table "t")
       (bag [ v_str "a"; v_str "b" ]));
  ok
    (Repository.set_extent repo ~schema:"s2" (Scheme.table "t")
       (bag [ v_str "b"; v_str "c" ]));
  let into name =
    {
      Transform.from_schema = name;
      to_schema = "merged";
      steps = [];
    }
  in
  ok (Repository.add_pathway repo (into "s1"));
  ok (Repository.add_pathway repo (into "s2"));
  repo

let test_bag_union_of_contributions () =
  let proc = Processor.create (union_repo ()) in
  let b = ok_p (Processor.extent_of proc ~schema:"merged" (Scheme.table "t")) in
  Alcotest.(check int) "cardinal" 4 (Value.Bag.cardinal b);
  Alcotest.(check int) "b twice" 2 (Value.Bag.multiplicity (v_str "b") b)

(* extend contributes its lower bound only *)
let test_extend_lower_bound () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "src" [ Scheme.table "t" ]));
  ok
    (Repository.set_extent repo ~schema:"src" (Scheme.table "t")
       (bag [ v_str "a" ]));
  ok
    (Repository.add_pathway repo
       {
         Transform.from_schema = "src";
         to_schema = "ext";
         steps =
           [
             Transform.Extend (Scheme.table "known", q "<<t>>", Ast.Any);
             Transform.Extend (Scheme.table "unknown", Ast.Void, Ast.Any);
           ];
       });
  let proc = Processor.create repo in
  let known = ok_p (Processor.extent_of proc ~schema:"ext" (Scheme.table "known")) in
  Alcotest.(check int) "lower bound used" 1 (Value.Bag.cardinal known);
  let unknown = ok_p (Processor.extent_of proc ~schema:"ext" (Scheme.table "unknown")) in
  Alcotest.(check bool) "void lower bound" true (Value.Bag.is_empty unknown)

let test_rename_and_delete_in_pathway () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "src" [ Scheme.table "t" ]));
  ok
    (Repository.set_extent repo ~schema:"src" (Scheme.table "t")
       (bag [ v_str "a" ]));
  ok
    (Repository.add_pathway repo
       {
         Transform.from_schema = "src";
         to_schema = "r";
         steps =
           [
             Transform.Add (Scheme.table "copy", q "<<t>>");
             Transform.Delete (Scheme.table "t", q "<<copy>>");
             Transform.Rename (Scheme.table "copy", Scheme.table "final");
           ];
       });
  let proc = Processor.create repo in
  let b = ok_p (Processor.extent_of proc ~schema:"r" (Scheme.table "final")) in
  Alcotest.(check int) "renamed derivation" 1 (Value.Bag.cardinal b);
  match Processor.extent_of proc ~schema:"r" (Scheme.table "t") with
  | Ok _ -> Alcotest.fail "deleted object still has an extent in r"
  | Error _ -> ()

(* reformulation produces a source-only query with the same answers *)
let test_reformulate_equals_run () =
  let proc = Processor.create (simple_repo ()) in
  let query = q "[k | {s, k} <- <<tagged>>; s = 'S']" in
  let direct = ok_p (Processor.run proc ~schema:"derived" query) in
  let unfolded = ok_p (Processor.reformulate proc ~schema:"derived" query) in
  (* the unfolded query only references schema-qualified source objects *)
  Scheme.Set.iter
    (fun s ->
      Alcotest.(check bool) "qualified" true (Scheme.is_prefixed s))
    (Ast.schemes unfolded);
  let via_sources =
    match Eval.eval (Processor.source_env proc) unfolded with
    | Ok v -> v
    | Error e -> Alcotest.failf "eval: %a" Eval.pp_error e
  in
  Alcotest.(check bool) "same answers" true (Value.equal direct via_sources)

let test_reformulate_union () =
  let proc = Processor.create (union_repo ()) in
  let query = q "<<t>>" in
  let direct = ok_p (Processor.run proc ~schema:"merged" query) in
  let unfolded = ok_p (Processor.reformulate proc ~schema:"merged" query) in
  let via_sources =
    match Eval.eval (Processor.source_env proc) unfolded with
    | Ok v -> v
    | Error e -> Alcotest.failf "eval: %a" Eval.pp_error e
  in
  Alcotest.(check bool) "union preserved" true (Value.equal direct via_sources)

let test_answerable () =
  let proc = Processor.create (simple_repo ()) in
  Alcotest.(check bool) "yes" true
    (Processor.answerable proc ~schema:"derived" (q "count(<<tagged>>)"));
  Alcotest.(check bool) "no: missing object" false
    (Processor.answerable proc ~schema:"derived" (q "count(<<missing>>)"))

let test_invalidate () =
  let repo = simple_repo () in
  let proc = Processor.create repo in
  let before = ok_p (Processor.extent_of proc ~schema:"derived" (Scheme.table "tagged")) in
  Alcotest.(check int) "before" 2 (Value.Bag.cardinal before);
  (* change the stored extent; the cache must be refreshable *)
  ok
    (Repository.set_extent repo ~schema:"src" (Scheme.table "t")
       (bag [ v_str "a"; v_str "b"; v_str "c" ]));
  let cached = ok_p (Processor.extent_of proc ~schema:"derived" (Scheme.table "tagged")) in
  Alcotest.(check int) "cache still serves old value" 2 (Value.Bag.cardinal cached);
  Processor.invalidate proc;
  let fresh = ok_p (Processor.extent_of proc ~schema:"derived" (Scheme.table "tagged")) in
  Alcotest.(check int) "after invalidate" 3 (Value.Bag.cardinal fresh)

let test_cycle_detection () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "a" [ Scheme.table "t" ]));
  ok (Repository.add_schema repo (schema "b" [ Scheme.table "t" ]));
  ok
    (Repository.add_pathway repo
       { Transform.from_schema = "a"; to_schema = "b"; steps = [] });
  ok
    (Repository.add_pathway repo
       { Transform.from_schema = "b"; to_schema = "a"; steps = [] });
  let proc = Processor.create repo in
  match Processor.extent_of proc ~schema:"a" (Scheme.table "t") with
  | Ok _ -> Alcotest.fail "cycle not detected"
  | Error e ->
      Alcotest.(check bool) "mentions cycle" true
        (Automed_base.Strutil.contains_sub ~sub:"cycle"
           (Fmt.str "%a" Processor.pp_error e))

let test_translate_down () =
  (* query on the derived schema, translated onto the source *)
  let proc = Processor.create (simple_repo ()) in
  let query = q "[k | {s, k} <- <<tagged>>; s = 'S']" in
  let translated =
    ok_p (Processor.translate proc ~from_schema:"derived" ~to_schema:"src" query)
  in
  (* the translated query references only src objects *)
  Scheme.Set.iter
    (fun s ->
      Alcotest.(check bool) "src object" true (Scheme.equal s (Scheme.table "t")))
    (Ast.schemes translated);
  (* and yields the same answers when run on src *)
  let direct = ok_p (Processor.run proc ~schema:"derived" query) in
  let via_src = ok_p (Processor.run proc ~schema:"src" translated) in
  Alcotest.(check bool) "same answers" true (Value.equal direct via_src)

let test_translate_up () =
  (* query on the source, translated onto the derived schema: the
     untouched object carries over *)
  let proc = Processor.create (simple_repo ()) in
  let query = q "count(<<t>>)" in
  let translated =
    ok_p (Processor.translate proc ~from_schema:"src" ~to_schema:"derived" query)
  in
  let direct = ok_p (Processor.run proc ~schema:"src" query) in
  let via_derived = ok_p (Processor.run proc ~schema:"derived" translated) in
  Alcotest.(check bool) "same answers" true (Value.equal direct via_derived)

let test_translate_unconnected () =
  let repo = simple_repo () in
  ok (Repository.add_schema repo (schema "island" [ Scheme.table "x" ]));
  let proc = Processor.create repo in
  match
    Processor.translate proc ~from_schema:"derived" ~to_schema:"island"
      (q "count(<<tagged>>)")
  with
  | Ok _ -> Alcotest.fail "translation across unconnected schemas accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "stored extent" `Quick test_extent_stored;
    Alcotest.test_case "derived extent" `Quick test_extent_derived;
    Alcotest.test_case "missing object" `Quick test_extent_missing_object;
    Alcotest.test_case "run query" `Quick test_run;
    Alcotest.test_case "bag union of contributions" `Quick
      test_bag_union_of_contributions;
    Alcotest.test_case "extend lower bound" `Quick test_extend_lower_bound;
    Alcotest.test_case "rename and delete in pathway" `Quick
      test_rename_and_delete_in_pathway;
    Alcotest.test_case "reformulate = run" `Quick test_reformulate_equals_run;
    Alcotest.test_case "reformulate union" `Quick test_reformulate_union;
    Alcotest.test_case "answerable" `Quick test_answerable;
    Alcotest.test_case "cache invalidation" `Quick test_invalidate;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "translate down the network" `Quick test_translate_down;
    Alcotest.test_case "translate up the network" `Quick test_translate_up;
    Alcotest.test_case "translate needs a pathway" `Quick test_translate_unconnected;
  ]
