(* The Schemas & Transformations Repository: registration, pathway
   validation, composite pathway search, stored extents. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Parser = Automed_iql.Parser
module Transform = Automed_transform.Transform
module Repository = Automed_repository.Repository

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let err = function Ok _ -> Alcotest.fail "expected error" | Error _ -> ()
let q = Parser.parse_exn

let schema name objs =
  ok (Schema.of_objects name (List.map (fun o -> (o, None)) objs))

let test_schema_registry () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "a" [ Scheme.table "t" ]));
  Alcotest.(check bool) "mem" true (Repository.mem_schema repo "a");
  err (Repository.add_schema repo (schema "a" []));
  Alcotest.(check int) "count" 1 (List.length (Repository.schemas repo));
  ok (Repository.remove_schema repo "a");
  Alcotest.(check bool) "removed" false (Repository.mem_schema repo "a");
  err (Repository.remove_schema repo "a")

let test_add_pathway_derives_target () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "a" [ Scheme.table "t" ]));
  let p =
    {
      Transform.from_schema = "a";
      to_schema = "b";
      steps = [ Transform.Add (Scheme.table "u", q "[k | k <- <<t>>]") ];
    }
  in
  ok (Repository.add_pathway repo p);
  (match Repository.schema repo "b" with
  | Some b ->
      Alcotest.(check int) "derived objects" 2 (Schema.object_count b)
  | None -> Alcotest.fail "target not registered");
  (* a schema referenced by a pathway cannot be removed *)
  err (Repository.remove_schema repo "a")

let test_add_pathway_checks () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "a" [ Scheme.table "t" ]));
  (* unknown source *)
  err
    (Repository.add_pathway repo
       { Transform.from_schema = "ghost"; to_schema = "b"; steps = [] });
  (* ill-formed: query references a missing object *)
  err
    (Repository.add_pathway repo
       {
         Transform.from_schema = "a";
         to_schema = "b";
         steps = [ Transform.Add (Scheme.table "u", q "<<ghost>>") ];
       });
  (* disagreeing target *)
  ok (Repository.add_schema repo (schema "c" [ Scheme.table "other" ]));
  err
    (Repository.add_pathway repo
       { Transform.from_schema = "a"; to_schema = "c"; steps = [] })

let chain_repo () =
  (* a -> b -> c, plus an unrelated island d *)
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "a" [ Scheme.table "t" ]));
  ok
    (Repository.add_pathway repo
       {
         Transform.from_schema = "a";
         to_schema = "b";
         steps = [ Transform.Add (Scheme.table "u", q "[k | k <- <<t>>]") ];
       });
  ok
    (Repository.add_pathway repo
       {
         Transform.from_schema = "b";
         to_schema = "c";
         steps = [ Transform.Contract (Scheme.table "t", Automed_iql.Ast.Void, Automed_iql.Ast.Any) ];
       });
  ok (Repository.add_schema repo (schema "d" [ Scheme.table "x" ]));
  repo

let test_find_path_forward () =
  let repo = chain_repo () in
  let p = ok (Repository.find_path repo ~src:"a" ~dst:"c") in
  Alcotest.(check string) "from" "a" p.Transform.from_schema;
  Alcotest.(check string) "to" "c" p.Transform.to_schema;
  Alcotest.(check int) "two steps composed" 2 (List.length p.Transform.steps)

let test_find_path_reverse () =
  let repo = chain_repo () in
  let p = ok (Repository.find_path repo ~src:"c" ~dst:"a") in
  (* reversal: the contract of t becomes an extend, the add becomes delete *)
  match p.Transform.steps with
  | [ Transform.Extend (s, _, _); Transform.Delete (u, _) ] ->
      Alcotest.(check bool) "extend t" true (Scheme.equal s (Scheme.table "t"));
      Alcotest.(check bool) "delete u" true (Scheme.equal u (Scheme.table "u"))
  | steps -> Alcotest.failf "unexpected %d steps" (List.length steps)

let test_find_path_failures () =
  let repo = chain_repo () in
  err (Repository.find_path repo ~src:"a" ~dst:"d");
  err (Repository.find_path repo ~src:"a" ~dst:"ghost");
  let self = ok (Repository.find_path repo ~src:"a" ~dst:"a") in
  Alcotest.(check int) "empty pathway to self" 0 (List.length self.Transform.steps)

let test_extents () =
  let repo = Repository.create () in
  ok (Repository.add_schema repo (schema "a" [ Scheme.table "t" ]));
  let bag = Value.Bag.of_list [ Value.Str "k1" ] in
  ok (Repository.set_extent repo ~schema:"a" (Scheme.table "t") bag);
  (match Repository.stored_extent repo ~schema:"a" (Scheme.table "t") with
  | Some b -> Alcotest.(check int) "stored" 1 (Value.Bag.cardinal b)
  | None -> Alcotest.fail "extent lost");
  Alcotest.(check bool) "has extents" true (Repository.has_stored_extents repo "a");
  err (Repository.set_extent repo ~schema:"a" (Scheme.table "ghost") bag);
  err (Repository.set_extent repo ~schema:"ghost" (Scheme.table "t") bag);
  Alcotest.(check bool) "none elsewhere" true
    (Repository.stored_extent repo ~schema:"a" (Scheme.table "ghost") = None)

let test_pathways_listing () =
  let repo = chain_repo () in
  Alcotest.(check int) "total" 2 (List.length (Repository.pathways repo));
  Alcotest.(check int) "from a" 1 (List.length (Repository.pathways_from repo "a"));
  Alcotest.(check int) "into c" 1 (List.length (Repository.pathways_into repo "c"));
  Alcotest.(check int) "into a" 0 (List.length (Repository.pathways_into repo "a"))

let suite =
  [
    Alcotest.test_case "schema registry" `Quick test_schema_registry;
    Alcotest.test_case "pathway derives target" `Quick test_add_pathway_derives_target;
    Alcotest.test_case "pathway validation" `Quick test_add_pathway_checks;
    Alcotest.test_case "find_path forward" `Quick test_find_path_forward;
    Alcotest.test_case "find_path reverse" `Quick test_find_path_reverse;
    Alcotest.test_case "find_path failures" `Quick test_find_path_failures;
    Alcotest.test_case "stored extents" `Quick test_extents;
    Alcotest.test_case "pathway listings" `Quick test_pathways_listing;
  ]
