(* Schemes: construction, printing, parsing, prefixing. *)

module Scheme = Automed_base.Scheme

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let test_make_defaults () =
  let t = Scheme.make [ "protein" ] in
  check "language" "sql" (Scheme.language t);
  check "construct" "table" (Scheme.construct t);
  let c = Scheme.make [ "protein"; "organism" ] in
  check "column construct" "column" (Scheme.construct c)

let test_make_empty () =
  Alcotest.check_raises "empty args rejected"
    (Invalid_argument "Scheme.make: empty argument list") (fun () ->
      ignore (Scheme.make []))

let test_pp_elided () =
  check "table" "<<protein>>" (Scheme.to_string (Scheme.table "protein"));
  check "column" "<<protein,organism>>"
    (Scheme.to_string (Scheme.column "protein" "organism"))

let test_pp_full () =
  let s = Scheme.make ~language:"xml" ~construct:"element" [ "row" ] in
  check "full form" "<<xml,element,row>>" (Scheme.to_string s)

let test_parse_table () =
  match Scheme.of_string "<<protein>>" with
  | Ok s -> check_bool "table" true (Scheme.equal s (Scheme.table "protein"))
  | Error e -> Alcotest.fail e

let test_parse_column () =
  match Scheme.of_string "<< protein , organism >>" with
  | Ok s ->
      check_bool "column with spaces" true
        (Scheme.equal s (Scheme.column "protein" "organism"))
  | Error e -> Alcotest.fail e

let test_parse_full () =
  match Scheme.of_string "<<xml,element,row>>" with
  | Ok s ->
      check "language" "xml" (Scheme.language s);
      check "construct" "element" (Scheme.construct s)
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  List.iter
    (fun input ->
      match Scheme.of_string input with
      | Ok _ -> Alcotest.failf "should reject %S" input
      | Error _ -> ())
    [ ""; "protein"; "<<>>"; "<<a,,b>>"; "<protein>"; "<<protein" ]

let test_roundtrip () =
  List.iter
    (fun s ->
      match Scheme.of_string (Scheme.to_string s) with
      | Ok s' -> check_bool (Scheme.to_string s) true (Scheme.equal s s')
      | Error e -> Alcotest.fail e)
    [
      Scheme.table "protein";
      Scheme.column "peptidehit" "db_search";
      Scheme.make ~language:"xml" ~construct:"element" [ "row" ];
      Scheme.make ~language:"rdf" ~construct:"property" [ "knows" ];
    ]

let test_prefix_unprefix () =
  let s = Scheme.column "protein" "organism" in
  let p = Scheme.prefix "pedro" s in
  check "prefixed" "<<pedro:protein,organism>>" (Scheme.to_string p);
  (match Scheme.unprefix p with
  | Some (owner, base) ->
      check "owner" "pedro" owner;
      check_bool "base restored" true (Scheme.equal base s)
  | None -> Alcotest.fail "unprefix failed");
  check_bool "original not prefixed" false (Scheme.is_prefixed s);
  check_bool "prefixed detected" true (Scheme.is_prefixed p)

let test_rename () =
  let s = Scheme.column "protein" "organism" in
  check "rename column" "<<protein,taxon>>"
    (Scheme.to_string (Scheme.rename "taxon" s));
  check "rename table" "<<prot2>>"
    (Scheme.to_string (Scheme.rename "prot2" (Scheme.table "protein")))

let test_ordering () =
  let a = Scheme.table "a" and b = Scheme.table "b" in
  Alcotest.(check bool) "a < b" true (Scheme.compare a b < 0);
  Alcotest.(check bool) "same scheme equal" true
    (Scheme.compare a (Scheme.table "a") = 0);
  let col = Scheme.column "a" "x" in
  Alcotest.(check bool) "table before column of same name" true
    (Scheme.compare a col <> 0)

let test_map_set () =
  let open Scheme in
  let m =
    Map.empty |> Map.add (table "t") 1 |> Map.add (column "t" "c") 2
  in
  Alcotest.(check (option int)) "map find" (Some 2)
    (Map.find_opt (column "t" "c") m);
  let s = Set.of_list [ table "t"; table "t"; column "t" "c" ] in
  Alcotest.(check int) "set dedups" 2 (Set.cardinal s)

let qcheck_prefix_roundtrip =
  QCheck.Test.make ~name:"prefix/unprefix roundtrip" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 1 8)) (string_of_size (Gen.int_range 1 8)))
    (fun (t, c) ->
      QCheck.assume
        (String.length t > 0 && String.length c > 0
        && (not (String.contains t ':'))
        && (not (String.contains t ','))
        && not (String.contains c ','));
      let s = Automed_base.Scheme.column t c in
      match Automed_base.Scheme.unprefix (Automed_base.Scheme.prefix "p" s) with
      | Some ("p", s') -> Automed_base.Scheme.equal s s'
      | _ -> false)

let suite =
  [
    Alcotest.test_case "make defaults" `Quick test_make_defaults;
    Alcotest.test_case "make rejects empty" `Quick test_make_empty;
    Alcotest.test_case "pp elided" `Quick test_pp_elided;
    Alcotest.test_case "pp full" `Quick test_pp_full;
    Alcotest.test_case "parse table" `Quick test_parse_table;
    Alcotest.test_case "parse column" `Quick test_parse_column;
    Alcotest.test_case "parse full" `Quick test_parse_full;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "prefix/unprefix" `Quick test_prefix_unprefix;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "map and set" `Quick test_map_set;
    QCheck_alcotest.to_alcotest qcheck_prefix_roundtrip;
  ]
