(* XML document sources: parsing and wrapping into the xml modelling
   language. *)

module Scheme = Automed_base.Scheme
module Schema = Automed_model.Schema
module Value = Automed_iql.Value
module Repository = Automed_repository.Repository
module Processor = Automed_query.Processor
module Document = Automed_datasource.Document

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let err = function Ok _ -> Alcotest.fail "expected error" | Error _ -> ()

let sample =
  {|<?xml version="1.0"?>
<!-- personnel extract -->
<staff>
  <person mail="ada@example.org" dept="cs">Ada</person>
  <person mail="bob@example.org">Bob &amp; co</person>
  <team name="db">
    <person mail="eve@example.org"/>
  </team>
</staff>|}

let test_parse_structure () =
  let root = ok (Document.parse sample) in
  Alcotest.(check string) "root tag" "staff" root.Document.tag;
  Alcotest.(check int) "children" 3 (List.length root.Document.children);
  let first = List.hd root.Document.children in
  Alcotest.(check string) "attr" "ada@example.org"
    (List.assoc "mail" first.Document.attrs);
  Alcotest.(check string) "text" "Ada" first.Document.text;
  let second = List.nth root.Document.children 1 in
  Alcotest.(check string) "entity decoded" "Bob & co" second.Document.text;
  let team = List.nth root.Document.children 2 in
  Alcotest.(check int) "nested child" 1 (List.length team.Document.children)

let test_parse_errors () =
  List.iter
    (fun doc -> err (Document.parse doc))
    [
      "";  (* no root *)
      "<a><b></a>";  (* mismatched close *)
      "<a>";  (* unterminated *)
      "<a attr></a>";  (* attribute without value *)
      "<a>&unknown;</a>";  (* bad entity *)
      "<a/><b/>";  (* two roots *)
      "<!-- only a comment -->";
    ]

let test_parse_self_closing_and_quotes () =
  let root = ok (Document.parse "<r><x a='1' b=\"2\"/></r>") in
  match root.Document.children with
  | [ x ] ->
      Alcotest.(check string) "single quotes" "1" (List.assoc "a" x.Document.attrs);
      Alcotest.(check string) "double quotes" "2" (List.assoc "b" x.Document.attrs)
  | _ -> Alcotest.fail "expected one child"

let wrap_sample () =
  let repo = Repository.create () in
  let root = ok (Document.parse sample) in
  let schema = ok (Document.wrap repo ~name:"personnel" root) in
  (repo, schema)

let xml_scheme construct args = Scheme.make ~language:"xml" ~construct args

let test_wrap_schema () =
  let _, schema = wrap_sample () in
  Alcotest.(check bool) "person element" true
    (Schema.mem (xml_scheme "element" [ "person" ]) schema);
  Alcotest.(check bool) "mail attribute" true
    (Schema.mem (xml_scheme "attribute" [ "person"; "mail" ]) schema);
  Alcotest.(check bool) "text pseudo-attribute" true
    (Schema.mem (xml_scheme "attribute" [ "person"; "#text" ]) schema);
  Alcotest.(check bool) "staff/person nesting" true
    (Schema.mem (xml_scheme "nest" [ "staff"; "person" ]) schema);
  Alcotest.(check bool) "team/person nesting" true
    (Schema.mem (xml_scheme "nest" [ "team"; "person" ]) schema)

let test_wrap_extents () =
  let repo, _ = wrap_sample () in
  let extent scheme =
    match Repository.stored_extent repo ~schema:"personnel" scheme with
    | Some b -> b
    | None -> Alcotest.failf "no extent for %s" (Scheme.to_string scheme)
  in
  Alcotest.(check int) "three persons" 3
    (Value.Bag.cardinal (extent (xml_scheme "element" [ "person" ])));
  Alcotest.(check int) "three mails" 3
    (Value.Bag.cardinal (extent (xml_scheme "attribute" [ "person"; "mail" ])));
  Alcotest.(check int) "two direct persons under staff" 2
    (Value.Bag.cardinal (extent (xml_scheme "nest" [ "staff"; "person" ])))

let test_wrap_queryable () =
  let repo, _ = wrap_sample () in
  let proc = Processor.create repo in
  match
    Processor.run_string proc ~schema:"personnel"
      "[m | {k, m} <- <<xml,attribute,person,mail>>]"
  with
  | Ok (Value.Bag b) -> Alcotest.(check int) "queryable" 3 (Value.Bag.cardinal b)
  | Ok v -> Alcotest.failf "non-bag %s" (Value.to_string v)
  | Error e -> Alcotest.failf "%a" Processor.pp_error e

let test_wrap_deterministic () =
  let r1, _ = wrap_sample () in
  let r2, _ = wrap_sample () in
  let e repo =
    Repository.stored_extent repo ~schema:"personnel"
      (xml_scheme "element" [ "person" ])
  in
  Alcotest.(check bool) "same node ids" true (e r1 = e r2)

let test_integrates_with_relational () =
  (* an intersection schema spanning the XML source and a relational one *)
  let repo, _ = wrap_sample () in
  let module Relational = Automed_datasource.Relational in
  let module Wrapper = Automed_datasource.Wrapper in
  let staff =
    ok
      (Relational.create_table ~name:"staff" ~key:"id"
         [ ("id", Relational.CStr); ("email", Relational.CStr) ])
  in
  let staff =
    ok
      (Relational.insert staff
         [ Relational.str_cell "s1"; Relational.str_cell "ada@example.org" ])
  in
  let db = ok (Relational.add_table (Relational.create_db "hr") staff) in
  let _ = ok (Wrapper.wrap repo db) in
  let module Intersection = Automed_integration.Intersection in
  let o =
    ok
      (Intersection.create repo
         {
           Intersection.name = "i_person";
           sides =
             [
               {
                 Intersection.schema = "hr";
                 mappings =
                   [
                     { Intersection.target = Scheme.column "UPerson" "email";
                       forward =
                         Automed_iql.Parser.parse_exn
                           "[{'hr', k, x} | {k,x} <- <<staff,email>>]";
                       restore = None };
                   ];
               };
               {
                 Intersection.schema = "personnel";
                 mappings =
                   [
                     { Intersection.target = Scheme.column "UPerson" "email";
                       forward =
                         Automed_iql.Parser.parse_exn
                           "[{'xml', k, x} | {k,x} <- \
                            <<xml,attribute,person,mail>>]";
                       restore = None };
                   ];
               };
             ];
         })
  in
  let proc = Processor.create repo in
  match
    Processor.extent_of proc
      ~schema:(Schema.name o.Intersection.intersection)
      (Scheme.column "UPerson" "email")
  with
  | Ok b -> Alcotest.(check int) "1 + 3 contributions" 4 (Value.Bag.cardinal b)
  | Error e -> Alcotest.failf "%a" Processor.pp_error e

let suite =
  [
    Alcotest.test_case "parse structure" `Quick test_parse_structure;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "self-closing and quotes" `Quick
      test_parse_self_closing_and_quotes;
    Alcotest.test_case "wrap schema" `Quick test_wrap_schema;
    Alcotest.test_case "wrap extents" `Quick test_wrap_extents;
    Alcotest.test_case "wrapped source queryable" `Quick test_wrap_queryable;
    Alcotest.test_case "wrap deterministic" `Quick test_wrap_deterministic;
    Alcotest.test_case "integrates with relational source" `Quick
      test_integrates_with_relational;
  ]
